"""Soak test — the full pipeline at the largest laptop-friendly scale.

One epoch of ~1M records through 128 logical ranks (a quarter of the
paper's rank count), end to end: adaptive ingest, real files, and a
verified 5%-selectivity query.  Asserts the headline invariants hold
together at scale: near-1x write amplification, single-digit load
imbalance, and query I/O proportional to selectivity.
"""

import numpy as np

from repro.bench.results import emit
from repro.bench.tables import banner, render_table
from repro.core.carp import CarpRun
from repro.core.config import CarpOptions
from repro.core.records import range_mask
from repro.query.engine import PartitionedStore
from repro.traces.vpic import VpicTraceSpec, generate_timestep

SPEC = VpicTraceSpec(nranks=128, particles_per_rank=8000, seed=123,
                     value_size=8)
OPTS = CarpOptions(
    pivot_count=512, oob_capacity=256, renegotiations_per_epoch=6,
    memtable_records=4096, round_records=512, value_size=8,
)


def test_soak_1m_records_128_ranks(benchmark, tmp_path):
    streams = generate_timestep(SPEC, 9)
    keys = np.concatenate([b.keys for b in streams])

    def ingest():
        with CarpRun(SPEC.nranks, tmp_path / "soak", OPTS) as run:
            stats = run.ingest_epoch(0, streams)
            return stats, run.write_amplification()

    stats, waf = benchmark.pedantic(ingest, rounds=1, iterations=1)

    lo, hi = map(float, np.quantile(keys.astype(np.float64), [0.40, 0.45]))
    with PartitionedStore(tmp_path / "soak") as store:
        res = store.query(0, lo, hi)
        frac = res.cost.bytes_read / store.total_bytes(0)
    expect = int(np.count_nonzero(range_mask(keys, lo, hi)))

    rows = [
        ["records", f"{stats.records:,}"],
        ["ranks / partitions", SPEC.nranks],
        ["renegotiations", stats.renegotiations],
        ["load std-dev", f"{stats.load_stddev:.2%}"],
        ["stray fraction", f"{stats.stray_fraction:.2%}"],
        ["write amplification", f"{waf:.3f}x"],
        ["5%-query matches", f"{len(res):,} (exact)"],
        ["5%-query bytes read", f"{frac:.1%} of data"],
    ]
    text = banner("soak", "1M records through 128 ranks, end to end")
    text += "\n" + render_table(["metric", "value"], rows)
    emit("soak", text)

    assert stats.records == 1_024_000
    assert len(res) == expect            # exact query results at scale
    assert stats.load_stddev < 0.10      # single-digit imbalance
    assert waf < 1.05                    # WAF ~ 1x (metadata only)
    assert frac < 0.10                   # I/O ~ selectivity (+ floor)
