"""Ablation (§V-C1) — histogram vs reservoir summary statistics.

The paper picked histogram-based sampling for its efficiency and
tunable compactness, noting other quantile estimators plug in.  This
ablation runs CARP end-to-end with both backends on stationary and
drifting epochs and compares partition balance and per-rank memory.

Expected shape: both deliver workable balance; the histogram backend
(one counter per partition, bins aligned to the current table) wins on
memory, while the reservoir's accuracy is bounded by its sample size
rather than the current table's bin placement.
"""


from repro.bench.results import emit
from repro.bench.tables import banner, fmt_bytes, fmt_pct, render_table
from repro.core.carp import CarpRun
from repro.core.records import RecordBatch
from repro.traces.vpic import generate_timestep
from benchmarks.conftest import BENCH_OPTIONS, BENCH_SPEC, LATE_TS

RESERVOIR_CAPS = (256, 1024)


def workloads():
    stationary = generate_timestep(BENCH_SPEC, LATE_TS)
    a = generate_timestep(BENCH_SPEC, 2)
    b = generate_timestep(BENCH_SPEC, 10)
    drifting = [RecordBatch.concat([x, y]) for x, y in zip(a, b)]
    return {"stationary": stationary, "drifting": drifting}


def backend_memory(options) -> int:
    """Per-rank bytes the statistics backend holds."""
    if options.stats_backend in ("reservoir", "recency_reservoir"):
        return options.reservoir_capacity * 8
    return BENCH_SPEC.nranks * 8  # one int64 counter per partition


def sweep(tmp_path):
    configs = [("histogram", BENCH_OPTIONS)]
    for cap in RESERVOIR_CAPS:
        configs.append((
            f"reservoir-{cap}",
            BENCH_OPTIONS.with_(stats_backend="reservoir",
                                reservoir_capacity=cap),
        ))
    configs.append((
        "recency-1024",
        BENCH_OPTIONS.with_(stats_backend="recency_reservoir",
                            reservoir_capacity=1024),
    ))
    rows = []
    balances = {}
    for wl_name, streams in workloads().items():
        for name, opts in configs:
            out = tmp_path / f"{wl_name}_{name}"
            with CarpRun(BENCH_SPEC.nranks, out, opts) as run:
                stats = run.ingest_epoch(0, streams)
            balances[(wl_name, name)] = stats.load_stddev
            rows.append([
                wl_name, name, fmt_pct(stats.load_stddev),
                stats.renegotiations, fmt_bytes(backend_memory(opts)),
            ])
    return rows, balances


def test_ablation_stats_backend(benchmark, tmp_path):
    rows, balances = benchmark.pedantic(lambda: sweep(tmp_path), rounds=1,
                                        iterations=1)
    headers = ["workload", "backend", "load std-dev", "renegs",
               "stats memory/rank"]
    text = banner(
        "§V-C1 ablation", "histogram vs reservoir summary statistics"
    ) + "\n" + render_table(headers, rows)
    emit("ablation_stats_backend", text)

    for wl in ("stationary", "drifting"):
        hist = balances[(wl, "histogram")]
        res = balances[(wl, "reservoir-1024")]
        # both backends produce workable partitions
        assert hist < 0.30 if wl == "stationary" else hist < 0.60
        assert res < 0.30 if wl == "stationary" else res < 0.60
        # neither is catastrophically worse than the other
        assert res < 3 * hist + 0.05
        assert hist < 3 * res + 0.05
    # a bigger reservoir is at least as accurate as a small one
    # (allowing sampling noise)
    assert (balances[("stationary", "reservoir-1024")]
            < balances[("stationary", "reservoir-256")] + 0.05)
    # recency bias modestly improves the uniform reservoir under drift
    # (the remaining gap to the histogram is adaptation-window cost,
    # which no statistics backend can remove)
    assert (balances[("drifting", "recency-1024")]
            < balances[("drifting", "reservoir-1024")])
