"""Fig. 11 — sensitivity of CARP to renegotiation frequency and pivots.

Sweeps the two main tunables over a real logical CARP ingest of an
epoch with *intra-epoch drift* (an early and a late VPIC timestep
concatenated — the regime the rebalancing trigger exists for; on a
stationary epoch frequency has no effect, which the sweep also
verifies):

* renegotiation frequency: 2x to 26x per epoch,
* pivot count: 64 to 2048,

reporting (a) the normalized partition-load standard deviation and
(b) the simulated ingestion runtime at paper scale (188 GB through the
512-rank cluster, renegotiation pauses priced by the TRP model).

Expected shape (paper §VII-C4): load balance improves strongly from
2x to 6x renegotiations per epoch with diminishing returns after;
more pivots help with diminishing returns beyond ~512; and runtime
stays flat across the whole sweep, because renegotiation pauses hide
behind receiver buffering.
"""

import numpy as np

from repro.bench.results import emit
from repro.bench.tables import banner, fmt_pct, fmt_seconds, render_table
from repro.core.carp import CarpRun
from repro.core.records import RecordBatch
from repro.sim.cluster import GB
from repro.sim.runner import time_epoch
from repro.traces.vpic import VpicTraceSpec, generate_timestep
from benchmarks.conftest import BENCH_OPTIONS

FREQS = (2, 6, 13, 26)
PIVOTS = (64, 256, 512, 2048)
DATA_BYTES = 188 * GB

TUNE_SPEC = VpicTraceSpec(nranks=16, particles_per_rank=10_000, seed=2024,
                          value_size=8)


def drifting_epoch():
    a = generate_timestep(TUNE_SPEC, 4)
    b = generate_timestep(TUNE_SPEC, 10)
    return [RecordBatch.concat([x, y]) for x, y in zip(a, b)]


def sweep(tmp_path):
    streams = drifting_epoch()
    results = {}
    for freq in FREQS:
        for pivots in PIVOTS:
            opts = BENCH_OPTIONS.with_(
                renegotiations_per_epoch=freq, pivot_count=pivots,
                round_records=256,
            )
            out = tmp_path / f"f{freq}_p{pivots}"
            with CarpRun(TUNE_SPEC.nranks, out, opts) as run:
                stats = run.ingest_epoch(0, streams)
            timing = time_epoch(stats, nranks=512, scale_to_bytes=DATA_BYTES)
            results[(freq, pivots)] = (stats.load_stddev, timing.runtime,
                                       stats.renegotiations)
    return results


def test_fig11_tuning_sweep(benchmark, tmp_path):
    results = benchmark.pedantic(lambda: sweep(tmp_path), rounds=1,
                                 iterations=1)

    headers = ["renegs/epoch"] + [f"{p} pivots" for p in PIVOTS]
    balance_rows = [
        [f] + [fmt_pct(results[(f, p)][0]) for p in PIVOTS] for f in FREQS
    ]
    runtime_rows = [
        [f] + [fmt_seconds(results[(f, p)][1]) for p in PIVOTS] for f in FREQS
    ]
    text = banner(
        "Fig 11a", "partition load std-dev vs renegotiation frequency x pivots"
        " (drifting epoch)"
    ) + "\n" + render_table(headers, balance_rows)
    text += "\n" + banner(
        "Fig 11b", "simulated ingestion runtime (188 GB @ 512-rank cluster)"
    ) + "\n" + render_table(headers, runtime_rows)
    emit("fig11_tuning", text)

    balances = {k: v[0] for k, v in results.items()}
    runtimes = {k: v[1] for k, v in results.items()}

    worst = balances[(2, 64)]
    best = min(balances[(26, p)] for p in PIVOTS)
    # tuning moves balance substantially (paper: 14% -> 2%)
    assert best < worst / 3
    assert best < 0.10

    # strong gain from 2x -> 6x, diminishing returns after (paper:
    # "beneficial to increase from 2x to 6x ... minimal gains beyond")
    gain_early = balances[(2, 512)] - balances[(6, 512)]
    gain_late = balances[(13, 512)] - balances[(26, 512)]
    assert gain_early > 3 * abs(gain_late)

    # more pivots help at a fixed frequency
    assert balances[(6, 512)] < balances[(6, 64)]

    # runtime is flat across the whole sweep (paper: "none of these
    # parameters seem to impact runtime in any measurable way")
    rts = np.array(list(runtimes.values()))
    assert rts.max() < 1.05 * rts.min()


def test_fig11_frequency_irrelevant_without_drift(benchmark, tmp_path):
    """Control: on a stationary epoch the rebalancing trigger buys
    nothing (it "only addresses intra-epoch drift", §VII-C4)."""

    def run():
        streams = generate_timestep(TUNE_SPEC, 10)
        out = {}
        for freq in (2, 26):
            opts = BENCH_OPTIONS.with_(renegotiations_per_epoch=freq,
                                       round_records=256)
            d = tmp_path / f"ctrl{freq}"
            with CarpRun(TUNE_SPEC.nranks, d, opts) as run_:
                out[freq] = run_.ingest_epoch(0, streams).load_stddev
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    assert abs(out[2] - out[26]) < 0.05
