"""Ablation — per-epoch bootstrap vs warm-started partition tables.

The paper bootstraps CARP's partitions from scratch at every epoch
(§V-B).  Fig. 9 hints at the alternative: a table from the *previous*
timestep fits reasonably well except in high-drift phases.  This
ablation runs both policies over the full synthetic VPIC run and
compares renegotiation counts and per-epoch balance.

Expected shape: warm start eliminates bootstrap renegotiations and is
competitive while drift is slow, but inherits stale tables through the
high-drift phase — exactly the Fig. 9 "from previous" series, now
produced by the online system instead of an oracle.
"""

import numpy as np

from repro.bench.results import emit
from repro.bench.tables import banner, fmt_pct, render_table
from repro.core.carp import CarpRun
from repro.core.triggers import TriggerReason
from repro.traces.vpic import generate_timestep
from benchmarks.conftest import BENCH_OPTIONS, BENCH_SPEC

EPOCHS = tuple(range(0, BENCH_SPEC.ntimesteps, 2))  # every other timestep


def run_policy(tmp_path, warm: bool):
    opts = BENCH_OPTIONS.with_(warm_start=warm)
    out = tmp_path / ("warm" if warm else "cold")
    stats = []
    with CarpRun(BENCH_SPEC.nranks, out, opts) as run:
        for epoch, ts_index in enumerate(EPOCHS):
            stats.append(run.ingest_epoch(
                epoch, generate_timestep(BENCH_SPEC, ts_index)
            ))
    return stats


def test_ablation_warm_start(benchmark, tmp_path):
    cold, warm = benchmark.pedantic(
        lambda: (run_policy(tmp_path, False), run_policy(tmp_path, True)),
        rounds=1, iterations=1,
    )
    rows = []
    for i, ts_index in enumerate(EPOCHS):
        rows.append([
            BENCH_SPEC.timesteps[ts_index],
            cold[i].renegotiations, fmt_pct(cold[i].load_stddev),
            warm[i].renegotiations, fmt_pct(warm[i].load_stddev),
        ])
    headers = ["timestep", "cold renegs", "cold balance",
               "warm renegs", "warm balance"]
    text = banner(
        "ablation", "per-epoch bootstrap (paper) vs warm-started tables"
    ) + "\n" + render_table(headers, rows)
    emit("ablation_warmstart", text)

    # warm start never bootstraps after the first epoch
    assert all(
        s.triggers.count(TriggerReason.BOOTSTRAP) == 0 for s in warm[1:]
    )
    # both policies keep partitions workably balanced
    assert np.mean([s.load_stddev for s in warm]) < 0.25
    assert np.mean([s.load_stddev for s in cold]) < 0.25
    # neither loses data
    for s in cold + warm:
        assert s.records == BENCH_SPEC.nranks * BENCH_SPEC.particles_per_rank
