"""Fig. 1 — energy-distribution characterization of VPIC and AMR traces.

Regenerates the band-occupancy series behind Fig. 1: per-timestep
fractions of keys in the "interesting bands" (VPIC: body 0-1, tail 1-16
and the late 16-64 second mode; AMR: cold, medium and front bands), plus
the timestep-to-timestep drift metric underlying the Fig. 9 narrative.

Expected shape (paper §III): both distributions highly skewed; VPIC's
tail grows to 20-30% and turns bimodal in 16-64; AMR's explosion energy
dissipates into a growing medium band.
"""

import numpy as np

from repro.bench.results import emit
from repro.bench.tables import banner, fmt_pct, render_table
from repro.traces.amr import AMR_BANDS, AmrTraceSpec
from repro.traces.amr import timestep_keys as amr_keys
from repro.traces.stats import TimestepProfile, distribution_drift
from repro.traces.vpic import VPIC_BANDS
from repro.traces.vpic import timestep_keys as vpic_keys
from benchmarks.conftest import BENCH_SPEC

AMR_SPEC = AmrTraceSpec(nranks=16, cells_per_rank=6000, seed=2024)


def _profile_rows(spec, keys_fn, bands):
    rows = []
    prev = None
    for i, ts in enumerate(spec.timesteps):
        keys = keys_fn(spec, i)
        prof = TimestepProfile.from_keys(ts, keys, bands)
        drift = distribution_drift(prev, keys) if prev is not None else 0.0
        rows.append(
            [ts]
            + [fmt_pct(f) for f in prof.band_fracs]
            + [f"{prof.skew:.1f}", f"{drift:.3f}"]
        )
        prev = keys
    return rows


def test_fig1a_vpic_band_occupancy(benchmark):
    rows = benchmark.pedantic(
        lambda: _profile_rows(BENCH_SPEC, vpic_keys, VPIC_BANDS),
        rounds=1, iterations=1,
    )
    headers = ["timestep", "[0,1)", "[1,16)", "[16,64)", "[64,inf)",
               "skew", "drift"]
    text = banner("Fig 1a", "VPIC energy distributions over time") + "\n"
    text += render_table(headers, rows)
    emit("fig1a_vpic_distributions", text)

    # shape assertions: tail grows, late bimodality in 16-64
    fracs = []
    for i in range(BENCH_SPEC.ntimesteps):
        keys = vpic_keys(BENCH_SPEC, i)
        fracs.append(np.mean(keys >= 1.0))
    assert fracs[-1] > 0.18
    assert fracs[-1] > 3 * fracs[0]


def test_fig1b_amr_band_occupancy(benchmark):
    rows = benchmark.pedantic(
        lambda: _profile_rows(AMR_SPEC, amr_keys, AMR_BANDS),
        rounds=1, iterations=1,
    )
    headers = ["timestep", "cold", "low", "medium", "front", "skew", "drift"]
    text = banner("Fig 1b", "AMR (Sedov blast) energy distributions over time")
    text += "\n" + render_table(headers, rows)
    emit("fig1b_amr_distributions", text)

    early = amr_keys(AMR_SPEC, 0)
    late = amr_keys(AMR_SPEC, AMR_SPEC.ntimesteps - 1)
    med = lambda k: np.mean((k > 1.0) & (k < 50.0))
    assert med(late) > 5 * med(early)
    assert np.quantile(late, 0.999) < np.quantile(early, 0.999)
