"""Fig. 10b — lossiness of the pivot representation vs pivot count.

Oracle pivots are computed from the full key distribution of each of
the 12 timesteps at several pivot counts; the partition table derived
from them is scored by how evenly it splits that same timestep's keys
(normalized load std-dev — zero would mean a lossless representation).

Expected shape: higher pivot counts reduce imbalance with diminishing
returns beyond ~256-512; the final (most skewed, longest-tailed)
timesteps are the hardest to reconstruct at low pivot counts.
"""

import numpy as np

from repro.baselines.static_partition import pivot_lossiness_study
from repro.bench.results import emit
from repro.bench.tables import banner, fmt_pct, render_table
from benchmarks.conftest import BENCH_SPEC

NPARTS = 512
PIVOT_COUNTS = (16, 32, 64, 128, 256, 512, 1024, 2048)


def test_fig10b_pivot_lossiness(benchmark, bench_all_timestep_keys):
    keys = bench_all_timestep_keys
    study = benchmark.pedantic(
        lambda: pivot_lossiness_study(keys, NPARTS, PIVOT_COUNTS),
        rounds=1, iterations=1,
    )
    headers = ["timestep"] + [f"{k}p" for k in PIVOT_COUNTS]
    rows = [
        [BENCH_SPEC.timesteps[i]]
        + [fmt_pct(study[k][i]) for k in PIVOT_COUNTS]
        for i in range(len(keys))
    ]
    text = banner(
        "Fig 10b", f"pivot-count lossiness: load std-dev of oracle tables "
        f"({NPARTS} partitions)"
    ) + "\n" + render_table(headers, rows)
    emit("fig10b_pivot_lossiness", text)

    means = {k: float(np.mean(study[k])) for k in PIVOT_COUNTS}

    # more pivots -> lower loss, monotonically in the mean
    ordered = [means[k] for k in PIVOT_COUNTS]
    assert all(b <= a * 1.2 for a, b in zip(ordered, ordered[1:]))
    assert means[2048] < means[16] / 5

    # diminishing returns beyond ~256 pivots
    gain_low = means[32] - means[256]
    gain_high = means[256] - means[2048]
    assert gain_low > 2 * gain_high

    # the last (extremely skewed) timesteps are hardest at low counts
    low = np.array(study[32])
    assert low[-2:].mean() > low[:3].mean()


def test_fig10b_oracle_table_speed(benchmark, bench_all_timestep_keys):
    """Timed kernel: oracle pivots + table for one timestep at 512p."""
    from repro.baselines.static_partition import oracle_partition_table

    keys = bench_all_timestep_keys[-1]
    table = benchmark(lambda: oracle_partition_table(keys, NPARTS, 512))
    assert table.nparts == NPARTS
