"""Scale sweep — partition count vs selectivity floor and balance.

§VII-A: "minimum effective query selectivity is capped by the size of
one CARP partition — 0.18% (or 1/512) for 512 ranks.  This percentage
decreases with scale as the number of partitions increases and when
subpartitioning is enabled."

The sweep ingests the same total data volume at 8-64 logical ranks
(and with 4-way subpartitioning at the largest scale) and measures the
median point-query selectivity of the resulting layout, which should
track ~1/partitions, while load balance stays healthy at every scale.
"""

import numpy as np

from repro.bench.results import emit
from repro.bench.tables import banner, fmt_pct, render_table
from repro.core.carp import CarpRun
from repro.query.engine import PartitionedStore
from repro.query.metrics import selectivity_profile
from repro.traces.vpic import VpicTraceSpec, generate_timestep
from benchmarks.conftest import BENCH_OPTIONS

TOTAL_RECORDS = 96_000
SCALES = (8, 16, 32, 64)


def run_scale(tmp_path, nranks: int, subpartitions: int = 1):
    spec = VpicTraceSpec(nranks=nranks,
                         particles_per_rank=TOTAL_RECORDS // nranks,
                         seed=77, value_size=8)
    opts = BENCH_OPTIONS.with_(subpartitions=subpartitions,
                               round_records=max(4096 // nranks, 64))
    out = tmp_path / f"n{nranks}_s{subpartitions}"
    with CarpRun(nranks, out, opts) as run:
        stats = run.ingest_epoch(0, generate_timestep(spec, 9))
    with PartitionedStore(out) as store:
        sample = store.query(0, *store.key_range(0))
        probes = np.quantile(sample.keys.astype(np.float64),
                             np.linspace(0.05, 0.95, 19))
        sel = selectivity_profile(store, 0, probes)
    return stats, float(np.median(sel))


def test_scale_sweep(benchmark, tmp_path):
    def sweep():
        rows = []
        numbers = {}
        for n in SCALES:
            stats, median_sel = run_scale(tmp_path, n)
            numbers[(n, 1)] = (stats.load_stddev, median_sel)
            rows.append([n, 1, fmt_pct(stats.load_stddev),
                         fmt_pct(median_sel), fmt_pct(1.0 / n)])
        stats, median_sel = run_scale(tmp_path, SCALES[-1], subpartitions=4)
        numbers[(SCALES[-1], 4)] = (stats.load_stddev, median_sel)
        rows.append([SCALES[-1], 4, fmt_pct(stats.load_stddev),
                     fmt_pct(median_sel), fmt_pct(1.0 / SCALES[-1])])
        return rows, numbers

    rows, numbers = benchmark.pedantic(sweep, rounds=1, iterations=1)
    headers = ["ranks", "subpartitions", "load std-dev",
               "median point selectivity", "1/partitions"]
    text = banner(
        "§VII-A scale", "selectivity floor and balance vs partition count"
    ) + "\n" + render_table(headers, rows)
    emit("scale_sweep", text)

    # the selectivity floor shrinks as partitions multiply
    sels = [numbers[(n, 1)][1] for n in SCALES]
    assert all(b < a for a, b in zip(sels, sels[1:]))
    # and tracks ~1/partitions within a small constant factor
    for n in SCALES:
        assert numbers[(n, 1)][1] < 4.0 / n
    # subpartitioning tightens it further at fixed rank count
    assert numbers[(SCALES[-1], 4)][1] < numbers[(SCALES[-1], 1)][1]
    # balance stays workable at every scale
    for key, (balance, _) in numbers.items():
        assert balance < 0.30
