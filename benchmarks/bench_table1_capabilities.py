"""Table I — the capability matrix, derived from measurements.

The paper's Table I classifies indexing approaches along three axes:
in-situ operation, efficient indexing (write path), and efficient range
querying.  Rather than restating the table, this benchmark *derives*
each cell from quantities measured elsewhere in the harness:

* efficient indexing  <=> effective write throughput >= 80% of the raw
  storage bound at 512 ranks (write amplification ~1x),
* efficient querying  <=> a 1%-selectivity range query costs < 5x the
  sorted clustered layout's latency,
* in-situ             <=> structural (no post-processing pass exists).
"""


from repro.baselines import fastquery, lsm, tritonsort
from repro.baselines.fastquery import BitmapIndex
from repro.baselines.fullscan import write_unpartitioned
from repro.bench.results import emit
from repro.bench.tables import banner, render_table
from repro.query.engine import PartitionedStore
from repro.sim.cluster import GB, PAPER_CLUSTER
from repro.sim.engine import simulate_ingestion
from repro.workloads.queries import build_query_suite
from benchmarks.conftest import LATE_TS

DATA = 188 * GB
N = 512


def measure(bench_carp, bench_sorted, bench_streams, bench_keys,
            tmp_path_factory):
    storage = PAPER_CLUSTER.storage_bound(N)
    network = PAPER_CLUSTER.network_bound(N)

    raw_dir = tmp_path_factory.mktemp("table1_raw")
    write_unpartitioned(raw_dir, LATE_TS, bench_streams[LATE_TS])
    index = BitmapIndex.from_streams(bench_streams[LATE_TS], nbins=512,
                                     record_size=12)
    # probe at 10% selectivity — above the benchmark's per-partition
    # floor (1/16), matching the paper's regime where query selectivity
    # exceeds 1/512
    spec = build_query_suite(bench_keys[LATE_TS])[7]

    # a real LSM-tree ingest of the same epoch, for the "DB indexes" row
    tree = lsm.LSMTree(sst_records=1024, level0_ssts=2, growth_factor=3,
                       value_size=8)
    for stream in bench_streams[LATE_TS]:
        tree.insert(stream)
    tree.flush()

    with PartitionedStore(bench_carp["dir"]) as carp_store, \
         PartitionedStore(bench_sorted[LATE_TS]) as sorted_store, \
         PartitionedStore(raw_dir) as raw_store:
        sorted_latency = sorted_store.query(LATE_TS, spec.lo, spec.hi).cost.latency
        latencies = {
            "TritonSort (clustered sort)": sorted_latency,
            "FastQuery (bitmap aux)": index.query(spec.lo, spec.hi)[2].latency,
            "DB index (LSM-tree)": tree.query(spec.lo, spec.hi)[2],
            "DeltaFS (hash, range query = scan)": raw_store.scan(LATE_TS).cost.latency,
            "CARP": carp_store.query(LATE_TS, spec.lo, spec.hi).cost.latency,
        }

    throughputs = {
        "TritonSort (clustered sort)": tritonsort.ingestion_throughput(DATA, N),
        "FastQuery (bitmap aux)": fastquery.ingestion_throughput(DATA, storage),
        "DB index (LSM-tree)": lsm.ingestion_throughput(
            tree.stats.write_amplification, storage),
        "DeltaFS (hash, range query = scan)": simulate_ingestion(
            DATA, network, storage).effective_throughput,
        "CARP": simulate_ingestion(DATA, network, storage).effective_throughput,
    }
    in_situ = {
        "TritonSort (clustered sort)": False,
        "FastQuery (bitmap aux)": False,
        "DB index (LSM-tree)": True,
        "DeltaFS (hash, range query = scan)": True,
        "CARP": True,
    }
    return latencies, throughputs, in_situ, sorted_latency, storage


def test_table1_capability_matrix(benchmark, bench_carp, bench_sorted,
                                  bench_streams, bench_keys,
                                  tmp_path_factory):
    latencies, throughputs, in_situ, sorted_latency, storage = benchmark.pedantic(
        lambda: measure(bench_carp, bench_sorted, bench_streams, bench_keys,
                        tmp_path_factory),
        rounds=1, iterations=1,
    )
    rows = []
    verdicts = {}
    for name in latencies:
        eff_index = throughputs[name] >= 0.8 * storage
        eff_query = latencies[name] < 5 * sorted_latency
        verdicts[name] = (in_situ[name], eff_index, eff_query)
        rows.append([
            name,
            "yes" if in_situ[name] else "no",
            f"{'yes' if eff_index else 'no'} ({throughputs[name] / storage:.0%} of bound)",
            f"{'yes' if eff_query else 'no'} ({latencies[name] / sorted_latency:.1f}x sorted)",
        ])
    headers = ["approach", "in-situ", "efficient indexing",
               "efficient range querying"]
    text = banner("Table I", "capability matrix derived from measurements")
    text += "\n" + render_table(headers, rows)
    emit("table1_capabilities", text)

    # the paper's Table I, cell by cell
    assert verdicts["TritonSort (clustered sort)"] == (False, False, True)
    assert verdicts["FastQuery (bitmap aux)"] == (False, False, False)
    assert verdicts["DB index (LSM-tree)"] == (True, False, True)
    assert verdicts["DeltaFS (hash, range query = scan)"] == (True, True, False)
    assert verdicts["CARP"] == (True, True, True)
