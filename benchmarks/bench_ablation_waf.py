"""Ablation (§III) — write amplification across indexing strategies.

The paper's write-rate argument in one table: the maximum achievable
ingest rate is storage bandwidth divided by the Write Amplification
Factor, so

* CARP is designed to WAF 1x (data written exactly once),
* post-processing sorts cost 2-3x (original write + sort passes),
* online database indexes cost 19-37x in the literature; our compact
  leveled LSM-tree measures its own WAF directly.

CARP's and the LSM-tree's WAF are *measured* from real bytes appended;
the post-processing WAFs follow from pass counts.
"""


from repro.baselines.lsm import LSMTree
from repro.baselines.tritonsort import SORT_READ_PASSES, SORT_WRITE_PASSES
from repro.bench.results import emit
from repro.bench.tables import banner, fmt_si, render_table
from repro.core.carp import CarpRun
from repro.sim.cluster import PAPER_CLUSTER
from repro.traces.vpic import generate_timestep
from benchmarks.conftest import BENCH_OPTIONS, BENCH_SPEC, LATE_TS


def measure(tmp_path):
    streams = generate_timestep(BENCH_SPEC, LATE_TS)

    with CarpRun(BENCH_SPEC.nranks, tmp_path / "carp", BENCH_OPTIONS) as run:
        run.ingest_epoch(0, streams)
        carp_waf = run.write_amplification()

    tree = LSMTree(sst_records=512, level0_ssts=2, growth_factor=3,
                   value_size=8)
    for s in streams:
        tree.insert(s)
    tree.flush()
    lsm_waf = tree.stats.write_amplification

    # post-processing WAFs from pass structure: original write counts 1;
    # each later write pass adds 1 (reads consume bandwidth too but the
    # paper's WAF counts I/O operations per application write)
    fastquery_waf = 1 + 1 + 0.24          # write + re-read + index write
    tritonsort_waf = 1 + SORT_READ_PASSES + SORT_WRITE_PASSES

    storage = PAPER_CLUSTER.storage_bound(512)
    rows = []
    for name, waf, measured in [
        ("CARP", carp_waf, "measured"),
        ("FastQuery (post-proc)", fastquery_waf, "pass count"),
        ("TritonSort (post-proc)", tritonsort_waf, "pass count"),
        ("LSM-tree (online)", lsm_waf, "measured"),
    ]:
        rows.append([name, f"{waf:.2f}x", measured,
                     fmt_si(storage / waf, "B/s")])
    return rows, carp_waf, lsm_waf


def test_ablation_write_amplification(benchmark, tmp_path):
    rows, carp_waf, lsm_waf = benchmark.pedantic(
        lambda: measure(tmp_path), rounds=1, iterations=1
    )
    headers = ["approach", "WAF", "source", "max ingest @ 3 GB/s bound"]
    text = banner(
        "§III ablation", "write amplification factor per indexing strategy"
    ) + "\n" + render_table(headers, rows)
    emit("ablation_waf", text)

    # CARP's design constraint: WAF ~ 1 (metadata only)
    assert 1.0 <= carp_waf < 1.15
    # an online index re-writes data many times
    assert lsm_waf > 2.5
    # in-situ strategies with high WAF would not outperform
    # post-processing (the paper's §III argument)
    assert lsm_waf > 1 + 0.24 + 1
