"""Fig. 10a — renegotiation round latency vs scale and pivot count.

Evaluates the TRP latency model (reduction tree, fan-out 64) from 16 to
2048 ranks for six pivot counts (64-2048), mirroring the paper's
microbenchmark.

Expected shape: latency grows logarithmically with rank count (depth of
the reduction tree) and roughly proportionally with pivot count
(message size); a 512-pivot round at 2048 ranks lands in the paper's
IPoIB ballpark (~100-200 ms).
"""


from repro.bench.results import emit
from repro.bench.tables import banner, fmt_seconds, render_table
from repro.core.renegotiation import synthetic_reneg_stats
from repro.sim.netmodel import NetModel

SCALES = (16, 32, 64, 128, 256, 512, 1024, 2048)
PIVOT_COUNTS = (64, 128, 256, 512, 1024, 2048)


def compute_latencies():
    net = NetModel()
    return {
        (n, k): net.renegotiation_time(synthetic_reneg_stats(n, k))
        for n in SCALES
        for k in PIVOT_COUNTS
    }


def test_fig10a_renegotiation_scalability(benchmark):
    lat = benchmark.pedantic(compute_latencies, rounds=1, iterations=1)
    headers = ["ranks"] + [f"{k} pivots" for k in PIVOT_COUNTS]
    rows = [
        [n] + [fmt_seconds(lat[(n, k)]) for k in PIVOT_COUNTS]
        for n in SCALES
    ]
    text = banner(
        "Fig 10a", "TRP renegotiation round latency (fan-out 64)"
    ) + "\n" + render_table(headers, rows)
    emit("fig10a_reneg_scalability", text)

    # paper ballpark: ~150 ms at 2048 ranks / 512 pivots (IPoIB)
    assert 0.03 < lat[(2048, 512)] < 0.4

    # logarithmic scaling: going 16 -> 2048 ranks (128x) costs << 128x
    for k in PIVOT_COUNTS:
        assert lat[(2048, k)] < 12 * lat[(16, k)]
        # monotone in scale
        ts = [lat[(n, k)] for n in SCALES]
        assert all(b >= a for a, b in zip(ts, ts[1:]))

    # more pivots -> proportionally higher latency at every scale
    for n in SCALES:
        ks = [lat[(n, k)] for k in PIVOT_COUNTS]
        assert all(b > a for a, b in zip(ks, ks[1:]))
    # message-size term roughly linear in pivot count at large k
    assert lat[(2048, 2048)] / lat[(2048, 512)] > 1.5


def test_fig10a_latency_model_speed(benchmark):
    """Timed kernel: pricing one 2048-rank round."""
    net = NetModel()
    stats = synthetic_reneg_stats(2048, 512)
    t = benchmark(lambda: net.renegotiation_time(stats))
    assert t > 0
