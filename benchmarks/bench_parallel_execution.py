"""Parallel execution backends — ingest/query speedup and bit-identity.

The paper motivates CARP's per-rank logs with parallel processing
(§VII-A); ``repro.exec`` makes that executable.  This benchmark runs
the same seeded ingest+query pipeline under the serial, thread, and
process backends, reporting wall-clock speedups while *proving* the
outputs identical (log hashes and query digests) — speed may vary with
the host, bytes must not.

The ≥1.8x process-pool acceptance bar applies on hosts with at least
4 CPU cores; on smaller hosts (CI runners, laptops on battery) the
speedup is reported as measured and only the determinism assertions
gate.
"""

from __future__ import annotations

import hashlib
import os
import time

from repro.bench.results import emit
from repro.bench.tables import banner, fmt_seconds, render_table
from repro.core.carp import CarpRun
from repro.core.config import CarpOptions
from repro.exec import ProcessExecutor, SerialExecutor, ThreadExecutor
from repro.query.engine import PartitionedStore
from repro.storage.log import list_logs
from repro.traces.vpic import VpicTraceSpec, generate_timestep

SPEC = VpicTraceSpec(nranks=8, particles_per_rank=12_000, seed=2024,
                     value_size=8)

OPTIONS = CarpOptions(
    pivot_count=128,
    oob_capacity=128,
    renegotiations_per_epoch=4,
    memtable_records=1024,
    round_records=512,
    value_size=8,
)

EPOCHS = (0, 1)

QUERIES = (
    (0, -1.0, 1.0),
    (0, 0.0, 4.0),
    (1, 0.5, 2.5),
    (1, -8.0, 8.0),
)

WORKERS = 4

BACKENDS = (
    ("serial", SerialExecutor),
    ("thread", lambda: ThreadExecutor(WORKERS)),
    ("process", lambda: ProcessExecutor(WORKERS)),
)


def run_backend(out_dir, make_exec, streams):
    """Ingest + query under one backend; wall times and output digests."""
    with make_exec() as executor:
        t0 = time.perf_counter()
        with CarpRun(SPEC.nranks, out_dir, OPTIONS,
                     executor=executor) as run:
            for epoch in EPOCHS:
                run.ingest_epoch(epoch, streams[epoch])
        t_ingest = time.perf_counter() - t0

        t0 = time.perf_counter()
        digest = hashlib.sha256()
        with PartitionedStore(out_dir, executor=executor) as store:
            for epoch, lo, hi in QUERIES:
                res = store.query(epoch, lo, hi)
                digest.update(res.keys.tobytes())
                digest.update(res.rids.tobytes())
        t_query = time.perf_counter() - t0

    logs = {p.name: hashlib.sha256(p.read_bytes()).hexdigest()
            for p in list_logs(out_dir)}
    return {
        "ingest_s": t_ingest,
        "query_s": t_query,
        "logs": logs,
        "query_digest": digest.hexdigest(),
    }


def test_parallel_execution_speedup(benchmark, tmp_path_factory):
    streams = {ep: generate_timestep(SPEC, ep) for ep in EPOCHS}

    def measure():
        return {
            name: run_backend(tmp_path_factory.mktemp(f"exec_{name}"),
                              make_exec, streams)
            for name, make_exec in BACKENDS
        }

    outcomes = benchmark.pedantic(measure, rounds=1, iterations=1)

    serial = outcomes["serial"]
    rows = []
    json_rows = []
    for name, _ in BACKENDS:
        o = outcomes[name]
        total = o["ingest_s"] + o["query_s"]
        speedup = (serial["ingest_s"] + serial["query_s"]) / total
        rows.append([
            name,
            1 if name == "serial" else WORKERS,
            fmt_seconds(o["ingest_s"]),
            fmt_seconds(o["query_s"]),
            f"{speedup:.2f}x",
            "yes" if (o["logs"] == serial["logs"]
                      and o["query_digest"] == serial["query_digest"])
            else "NO",
        ])
        json_rows.append({
            "backend": name,
            "workers": 1 if name == "serial" else WORKERS,
            "ingest": o["ingest_s"],
            "query": o["query_s"],
            "speedup": speedup,
            "bit_identical": o["logs"] == serial["logs"]
            and o["query_digest"] == serial["query_digest"],
        })

    headers = ["backend", "workers", "ingest", "query",
               "speedup", "bit-identical"]
    text = banner(
        "parallel execution", f"ingest+query across executor backends "
        f"({os.cpu_count()} host cores; identical bytes required)"
    ) + "\n" + render_table(headers, rows)
    emit("bench_parallel_execution", text, rows=json_rows,
         units={"ingest": "s", "query": "s", "speedup": "x"})

    # bytes are the hard gate on every host
    for name, _ in BACKENDS:
        assert outcomes[name]["logs"] == serial["logs"], name
        assert outcomes[name]["query_digest"] == serial["query_digest"], name

    # the throughput bar only means something with real cores to use
    cores = os.cpu_count() or 1
    if cores >= 4:
        process_total = (outcomes["process"]["ingest_s"]
                         + outcomes["process"]["query_s"])
        serial_total = serial["ingest_s"] + serial["query_s"]
        assert serial_total / process_total >= 1.8
