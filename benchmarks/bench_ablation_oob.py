"""Ablation (§V-C2) — Out-Of-Bounds buffer capacity.

Paper: "We have found OOB buffers with a capacity of 512-1024 items per
rank sufficiently effective."

The OOB capacity controls how much evidence the epoch-bootstrap
renegotiation sees (all ranks' buffers are folded into the first
partition table) and how eagerly the table is extended when new keys
appear.  Tiny buffers bootstrap from so few samples that early
partitions are poor and extra renegotiations fire; beyond ~a few
hundred entries the returns vanish — at the cost of buffering memory.
"""


from repro.bench.results import emit
from repro.bench.tables import banner, fmt_pct, render_table
from repro.core.carp import CarpRun
from repro.core.triggers import TriggerReason
from repro.traces.vpic import generate_timestep
from benchmarks.conftest import BENCH_OPTIONS, BENCH_SPEC

CAPACITIES = (16, 64, 256, 512, 1024)


def drifting_epoch():
    """An epoch whose keyspace expands mid-way (early -> late timestep),
    so the partition table must be extended through the OOB machinery."""
    from repro.core.records import RecordBatch

    a = generate_timestep(BENCH_SPEC, 0)
    b = generate_timestep(BENCH_SPEC, 11)
    return [RecordBatch.concat([x, y]) for x, y in zip(a, b)]


def sweep(tmp_path):
    streams = drifting_epoch()
    out = {}
    for cap in CAPACITIES:
        opts = BENCH_OPTIONS.with_(oob_capacity=cap)
        d = tmp_path / f"oob{cap}"
        with CarpRun(BENCH_SPEC.nranks, d, opts) as run:
            stats = run.ingest_epoch(0, streams)
        out[cap] = stats
    return out


def test_ablation_oob_capacity(benchmark, tmp_path):
    stats = benchmark.pedantic(lambda: sweep(tmp_path), rounds=1, iterations=1)
    rows = []
    for cap in CAPACITIES:
        s = stats[cap]
        rows.append([
            cap,
            s.renegotiations,
            s.triggers.count(TriggerReason.OOB_FULL),
            fmt_pct(s.load_stddev),
            fmt_pct(s.stray_fraction),
        ])
    headers = ["OOB capacity", "renegotiations", "oob-full triggers",
               "load std-dev", "stray fraction"]
    text = banner(
        "§V-C2 ablation", "OOB buffer capacity vs renegotiation churn and balance"
    ) + "\n" + render_table(headers, rows)
    emit("ablation_oob", text)

    # tiny buffers fire many more OOB renegotiations
    oob_fires = {c: stats[c].triggers.count(TriggerReason.OOB_FULL)
                 for c in CAPACITIES}
    assert oob_fires[16] > oob_fires[512]
    # diminishing returns: 512 vs 1024 changes little (paper's
    # "512-1024 sufficiently effective")
    assert abs(stats[512].load_stddev - stats[1024].load_stddev) < 0.05
    # every configuration persists everything
    for c in CAPACITIES:
        assert stats[c].records == 2 * BENCH_SPEC.nranks * BENCH_SPEC.particles_per_rank
