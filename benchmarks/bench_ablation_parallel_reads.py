"""Ablation (§VII-A observation) — layout distribution vs read speed.

The paper's "surprising takeaway": CARP's partially ordered layout can
be read *faster* than the fully sorted one — "it has enough contiguity
to be read efficiently vs small random I/Os, but is distributed enough
to allow for parallel processing of a query."

The standard cost model assumes query bytes are perfectly spread over
the storage cluster.  This ablation re-prices the Fig. 7a comparison
with a *source-aware* model (effective bandwidth scales with the
number of independent logs a query touches): the sorted layout's
single log caps its parallelism, while CARP's per-rank logs supply up
to 16 parallel sources — flipping the winner for large queries exactly
as the paper reports.
"""


from repro.bench.results import emit
from repro.bench.tables import banner, fmt_seconds, render_table
from repro.query.engine import PartitionedStore
from repro.sim.iomodel import IOModel
from repro.workloads.queries import query_for_selectivity
from benchmarks.conftest import LATE_TS

#: wide selectivities: the source-parallelism effect needs queries that
#: span several CARP partitions (the paper's 512-rank runs hit dozens of
#: logs even at 1%; at 16 ranks the equivalent regime is 10-60%)
SELECTIVITIES = (0.02, 0.10, 0.30, 0.60)


def priced(store, epoch, lo, hi, io):
    """Re-price a query with source-aware reads."""
    res = store.query(epoch, lo, hi)
    entries = store.overlapping_entries(epoch, lo, hi)
    sources = len({i for i, _ in entries})
    read = io.read_time(res.cost.bytes_read, res.cost.read_requests,
                        sources=max(sources, 1))
    return read + res.cost.merge_time, sources


def test_ablation_parallel_read_layout(benchmark, bench_carp, bench_sorted,
                                       bench_keys):
    io = IOModel()
    keys = bench_keys[LATE_TS]
    suite = [query_for_selectivity(keys, s) for s in SELECTIVITIES]

    def measure():
        rows = []
        ratios = []
        with PartitionedStore(bench_carp["dir"]) as carp, \
             PartitionedStore(bench_sorted[LATE_TS]) as sorted_store:
            for spec in suite:
                c_lat, c_src = priced(carp, LATE_TS, spec.lo, spec.hi, io)
                s_lat, s_src = priced(sorted_store, LATE_TS, spec.lo,
                                      spec.hi, io)
                ratios.append(c_lat / s_lat)
                rows.append([
                    f"{spec.target_selectivity:.0%}",
                    c_src, fmt_seconds(c_lat),
                    s_src, fmt_seconds(s_lat),
                    f"{c_lat / s_lat:.2f}x",
                ])
        return rows, ratios

    rows, ratios = benchmark.pedantic(measure, rounds=1, iterations=1)
    headers = ["selectivity", "CARP sources", "CARP latency",
               "sorted sources", "sorted latency", "CARP/sorted"]
    text = banner(
        "§VII-A ablation", "source-aware read pricing: distributed CARP "
        "layout vs single sorted log"
    ) + "\n" + render_table(headers, rows)
    emit("ablation_parallel_reads", text)

    # with source parallelism counted, CARP wins the large queries —
    # the paper's surprising takeaway
    assert min(ratios) < 1.0
    # CARP's queries touch many logs; the sorted layout only one
    with PartitionedStore(bench_carp["dir"]) as carp:
        spec = suite[-1]
        entries = carp.overlapping_entries(LATE_TS, spec.lo, spec.hi)
        assert len({i for i, _ in entries}) >= 8
