"""Fig. 10c — impact of KoiDB repartitioning on read amplification.

Each benchmark epoch carries strong *intra-epoch* drift (an early and a
late VPIC timestep concatenated into one stream), a 1-round shuffle
delivery delay, and memtables large enough to span several
renegotiations — the regime where, without KoiDB's repartitioning,
every flushed SST unions multiple owned ranges plus in-flight strays
and partition selectivity collapses.  CARP runs twice (repartitioning
on/off) at 64 ranks, and the RAF profile (bytes of SSTs covering a
probe key / perfectly-balanced read size) is summarized at the 50th and
99th percentile over data-distributed probes.

Expected shape: without repartitioning, median and tail RAF reach
10-25x (the paper reports 16-64x at 512 partitions); with
repartitioning they collapse toward 1-2x — the paper's "up to 48x"
selectivity improvement, scaled to this partition count.
"""

import numpy as np

from repro.bench.results import emit
from repro.bench.tables import banner, render_table
from repro.core.carp import CarpRun
from repro.core.records import RecordBatch
from repro.query.engine import PartitionedStore
from repro.query.metrics import raf_percentiles, read_amplification_profile
from repro.traces.vpic import VpicTraceSpec, generate_timestep
from benchmarks.conftest import BENCH_OPTIONS

RAF_SPEC = VpicTraceSpec(nranks=64, particles_per_rank=2000, seed=2024,
                         value_size=8)
NRANKS = RAF_SPEC.nranks
EPOCH_PAIRS = ((0, 11), (2, 9), (4, 10))

RAF_OPTIONS = BENCH_OPTIONS.with_(
    shuffle_delay_rounds=1,
    renegotiations_per_epoch=8,
    round_records=64,
    memtable_records=4096,
    oob_capacity=128,
)


def drifting_streams(pair):
    """One epoch whose streams drift mid-way (timestep a -> b)."""
    a = generate_timestep(RAF_SPEC, pair[0])
    b = generate_timestep(RAF_SPEC, pair[1])
    return [RecordBatch.concat([x, y]) for x, y in zip(a, b)]


def ingest(tmp_path, separate_strays: bool):
    out = tmp_path / ("sep" if separate_strays else "nosep")
    opts = RAF_OPTIONS.with_(separate_strays=separate_strays)
    stats = {}
    with CarpRun(NRANKS, out, opts) as run:
        for epoch, pair in enumerate(EPOCH_PAIRS):
            stats[epoch] = run.ingest_epoch(epoch, drifting_streams(pair))
    return out, stats


def measure(tmp_path):
    rows = []
    json_rows = []
    numbers = {}
    for separate in (False, True):
        out, stats = ingest(tmp_path, separate)
        with PartitionedStore(out) as store:
            for epoch, pair in enumerate(EPOCH_PAIRS):
                lo, hi = store.key_range(epoch)
                sample = store.query(epoch, lo, hi)
                probes = np.quantile(sample.keys.astype(np.float64),
                                     np.linspace(0.02, 0.98, 49))
                raf = read_amplification_profile(store, epoch, probes, NRANKS)
                p50, p99 = raf_percentiles(raf)
                numbers[(separate, epoch)] = (p50, p99)
                drift = (f"T{RAF_SPEC.timesteps[pair[0]]}"
                         f"+T{RAF_SPEC.timesteps[pair[1]]}")
                rows.append([
                    drift,
                    "on" if separate else "off",
                    f"{stats[epoch].stray_fraction:.1%}",
                    f"{p50:.1f}x", f"{p99:.1f}x",
                ])
                json_rows.append({
                    "epoch": epoch,
                    "drift": drift,
                    "repartitioning": separate,
                    "stray_fraction": stats[epoch].stray_fraction,
                    "raf_p50": p50,
                    "raf_p99": p99,
                })
    return rows, json_rows, numbers


def test_fig10c_repartitioning_raf(benchmark, tmp_path):
    rows, json_rows, numbers = benchmark.pedantic(
        lambda: measure(tmp_path), rounds=1, iterations=1
    )
    headers = ["epoch (drift)", "repartitioning", "stray frac", "RAF p50",
               "RAF p99"]
    text = banner(
        "Fig 10c", f"read amplification with/without KoiDB repartitioning "
        f"({NRANKS} partitions, memtables spanning renegotiations)"
    ) + "\n" + render_table(headers, rows)
    emit("fig10c_koidb_raf", text, rows=json_rows,
         units={"stray_fraction": "fraction", "raf_p50": "x", "raf_p99": "x"})

    for epoch in range(len(EPOCH_PAIRS)):
        off_p50, off_p99 = numbers[(False, epoch)]
        on_p50, on_p99 = numbers[(True, epoch)]
        # repartitioning collapses both median and tail RAF
        assert on_p50 < off_p50 / 2
        assert on_p99 < off_p99 / 2
        # with repartitioning, the median approaches ideal (paper: 1-2x)
        assert on_p50 < 4.0
        # without it, selectivity collapses toward the partition count
        assert off_p50 > 6.0


def test_fig10c_raf_profile_speed(benchmark, bench_carp):
    """Timed kernel: one 49-probe RAF profile over real manifests."""
    with PartitionedStore(bench_carp["dir"]) as store:
        lo, hi = store.key_range(2)
        probes = np.linspace(lo, hi, 49)
        raf = benchmark(
            lambda: read_amplification_profile(store, 2, probes, 16)
        )
    assert len(raf) == 49
