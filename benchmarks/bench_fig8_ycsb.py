"""Fig. 8 — YCSB Workload E query batches against CARP and TritonSort.

The paper runs this suite with 4-way KoiDB subpartitioning ("CARP's
median selectivity of 0.07% (with 4-way KoiDB subpartitioning enabled)"),
so the benchmark measures both the plain and the 4-way subpartitioned
CARP layouts.

Workload E's scans are defined in sorted-SST numbers: start positions
drawn from YCSB's Zipfian distribution, fixed widths of 5/20/50/100
SSTs, execution order scrambled by the FNV hash.  SST ranges are
translated into key ranges via the sorted layout's boundaries so both
systems answer identical queries, exactly as the paper does.  Batches
run for two timesteps (an early and a late one).

Expected shape: CARP is slower for the most selective batch (width 5 —
below its per-partition floor) but comparable for wider scans, despite
paying the merge cost (paper Fig. 8).
"""

import pytest

from repro.bench.results import emit
from repro.core.carp import CarpRun
from benchmarks.conftest import BENCH_OPTIONS, BENCH_SPEC
from repro.bench.tables import banner, fmt_seconds, render_table
from repro.query.engine import PartitionedStore
from repro.storage.compactor import sorted_sst_boundaries
from repro.workloads.ycsb import sst_query_to_key_range, workload_e_batch
from benchmarks.conftest import EARLY_TS, LATE_TS

WIDTHS = (5, 20, 50, 100)
QUERIES_PER_BATCH = 100  # paper: 1000; scaled 10x down with the data


@pytest.fixture(scope="module")
def bench_carp_sub4(tmp_path_factory, bench_streams):
    """CARP output with the paper's 4-way KoiDB subpartitioning."""
    out = tmp_path_factory.mktemp("fig8_sub4")
    opts = BENCH_OPTIONS.with_(subpartitions=4, memtable_records=2048)
    with CarpRun(BENCH_SPEC.nranks, out, opts) as run:
        for epoch, streams in bench_streams.items():
            run.ingest_epoch(epoch, streams)
    return out


def run_batches(carp_dir, sub4_dir, sorted_dirs):
    rows = []
    agg = {"carp": {}, "carp4": {}, "sorted": {},
           "carp_bytes": {}, "carp4_bytes": {}}
    with PartitionedStore(carp_dir) as carp,             PartitionedStore(sub4_dir) as carp4:
        for ts in (EARLY_TS, LATE_TS):
            bounds = sorted_sst_boundaries(sorted_dirs[ts])
            n_ssts = len(bounds) - 1
            with PartitionedStore(sorted_dirs[ts]) as sorted_store:
                for width in WIDTHS:
                    w = min(width, n_ssts)
                    batch = workload_e_batch(n_ssts, w, QUERIES_PER_BATCH,
                                             seed=ts * 100 + width)
                    carp_t = carp4_t = sort_t = 0.0
                    carp_b = carp4_b = 0
                    matched = 0
                    for q in batch:
                        lo, hi = sst_query_to_key_range(q, bounds)
                        c = carp.query(ts, lo, hi)
                        c4 = carp4.query(ts, lo, hi)
                        s = sorted_store.query(ts, lo, hi)
                        assert len(c) == len(s) == len(c4)
                        carp_t += c.cost.latency
                        carp4_t += c4.cost.latency
                        sort_t += s.cost.latency
                        carp_b += c.cost.bytes_read
                        carp4_b += c4.cost.bytes_read
                        matched += len(c)
                    agg["carp"][(ts, w)] = carp_t
                    agg["carp4"][(ts, w)] = carp4_t
                    agg["sorted"][(ts, w)] = sort_t
                    agg["carp_bytes"][(ts, w)] = carp_b
                    agg["carp4_bytes"][(ts, w)] = carp4_b
                    rows.append([
                        ts, w, matched,
                        fmt_seconds(carp_t), fmt_seconds(carp4_t),
                        fmt_seconds(sort_t),
                        f"{carp4_t / sort_t:.2f}x",
                    ])
    return rows, agg


def test_fig8_workload_e(benchmark, bench_carp, bench_carp_sub4,
                         bench_sorted):
    rows, agg = benchmark.pedantic(
        lambda: run_batches(bench_carp["dir"], bench_carp_sub4, bench_sorted),
        rounds=1, iterations=1,
    )
    headers = ["timestep", "width(SSTs)", "matched", "CARP batch",
               "CARP 4-way batch", "TritonSort batch", "CARP4/sorted"]
    text = banner(
        "Fig 8", f"YCSB Workload E batches ({QUERIES_PER_BATCH} queries/batch, "
        "Zipfian starts, fnv-scrambled order)"
    ) + "\n" + render_table(headers, rows)
    emit("fig8_ycsb", text)

    for ts in (EARLY_TS, LATE_TS):
        widths = sorted({w for t, w in agg["carp"] if t == ts})
        ratio = lambda w: agg["carp"][(ts, w)] / agg["sorted"][(ts, w)]
        ratio4 = lambda w: agg["carp4"][(ts, w)] / agg["sorted"][(ts, w)]
        # narrow scans: CARP pays its partition floor
        assert ratio(widths[0]) > 1.0
        # wide scans close the gap (paper: "comparable/better for
        # larger queries despite the sorting overhead")
        assert ratio(widths[-1]) < ratio(widths[0])
        assert ratio(widths[-1]) < 4.0
        # subpartitioning's fundamental effect: smaller SSTs mean fewer
        # *bytes* fetched for the narrowest scans (the paper ran this
        # suite with 4-way subpartitioning; at our scale the saved
        # bytes trade against extra read requests, so latency parity is
        # the realistic expectation, not a win)
        assert (agg["carp4_bytes"][(ts, widths[0])]
                < agg["carp_bytes"][(ts, widths[0])])
        assert ratio4(widths[0]) < 1.5 * ratio(widths[0])
        assert ratio4(widths[-1]) < 4.0


def test_fig8_single_scan_speed(benchmark, bench_carp, bench_sorted):
    """Timed kernel: one width-20 Workload E scan on CARP output."""
    bounds = sorted_sst_boundaries(bench_sorted[LATE_TS])
    n_ssts = len(bounds) - 1
    q = workload_e_batch(n_ssts, min(20, n_ssts), 1, seed=9)[0]
    lo, hi = sst_query_to_key_range(q, bounds)
    with PartitionedStore(bench_carp["dir"]) as store:
        res = benchmark(lambda: store.query(LATE_TS, lo, hi))
    assert len(res) >= 0
