"""Shared fixtures for the benchmark harness.

The benchmark workload is a scaled-down analogue of the paper's: a
synthetic 16-rank VPIC trace standing in for the 512-rank, 188 GB/
timestep production trace.  Ingests and layouts are built once per
session and shared across benchmark files.

Every benchmark prints the paper table it regenerates AND persists it
under ``results/`` (see :mod:`repro.bench.results`), so the series
survive pytest's output capture.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.carp import CarpRun
from repro.core.config import CarpOptions
from repro.storage.compactor import compact_epoch
from repro.traces.vpic import VpicTraceSpec, generate_timestep, timestep_keys

#: Benchmark scale: 16 ranks x 6000 particles x 12 timesteps.
BENCH_SPEC = VpicTraceSpec(nranks=16, particles_per_rank=6000, seed=2024,
                           value_size=8)

BENCH_OPTIONS = CarpOptions(
    pivot_count=256,
    oob_capacity=128,
    renegotiations_per_epoch=6,
    memtable_records=1024,
    round_records=512,
    value_size=8,
    subpartitions=1,
)

#: Timestep indices used where a single "early" and "late" epoch suffice.
EARLY_TS = 2
LATE_TS = 10


@pytest.fixture(scope="session")
def bench_spec() -> VpicTraceSpec:
    return BENCH_SPEC


@pytest.fixture(scope="session")
def bench_streams():
    return {ts: generate_timestep(BENCH_SPEC, ts) for ts in (EARLY_TS, LATE_TS)}


@pytest.fixture(scope="session")
def bench_keys(bench_streams):
    return {
        ts: np.concatenate([s.keys for s in streams])
        for ts, streams in bench_streams.items()
    }


@pytest.fixture(scope="session")
def bench_all_timestep_keys():
    """Full keys of every timestep (for the Fig. 1/9/10b studies)."""
    return [timestep_keys(BENCH_SPEC, i) for i in range(BENCH_SPEC.ntimesteps)]


@pytest.fixture(scope="session")
def bench_carp(tmp_path_factory, bench_streams):
    """CARP-partitioned output of the early and late timesteps."""
    out = tmp_path_factory.mktemp("bench_carp")
    stats = {}
    with CarpRun(BENCH_SPEC.nranks, out, BENCH_OPTIONS) as run:
        for epoch, streams in bench_streams.items():
            stats[epoch] = run.ingest_epoch(epoch, streams)
    return {"dir": out, "stats": stats}


@pytest.fixture(scope="session")
def bench_sorted(tmp_path_factory, bench_carp):
    """Fully sorted (TritonSort-equivalent) layouts per epoch."""
    out = tmp_path_factory.mktemp("bench_sorted")
    return {
        epoch: compact_epoch(bench_carp["dir"], out, epoch, sst_records=1024)
        for epoch in (EARLY_TS, LATE_TS)
    }
