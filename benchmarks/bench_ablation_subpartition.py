"""Ablation (§VII-C3) — KoiDB subpartitioning.

Paper: "2-way and 4-way subpartitioning improve average latencies for
highly selective queries by 28% and 43% respectively with no observable
runtime overhead."

CARP ingests the same epoch at subpartitioning factors 1/2/4; highly
selective queries (below the per-partition floor) are answered against
each layout.  Smaller SSTs let such queries retrieve fewer bytes.
"""

import numpy as np

from repro.bench.results import emit
from repro.bench.tables import banner, fmt_bytes, fmt_seconds, render_table
from repro.core.carp import CarpRun
from repro.query.engine import PartitionedStore
from repro.traces.vpic import generate_timestep
from repro.workloads.queries import build_query_suite
from benchmarks.conftest import BENCH_OPTIONS, BENCH_SPEC, LATE_TS

FACTORS = (1, 2, 4)


def build_layouts(tmp_path):
    streams = generate_timestep(BENCH_SPEC, LATE_TS)
    dirs = {}
    for s in FACTORS:
        out = tmp_path / f"sub{s}"
        opts = BENCH_OPTIONS.with_(subpartitions=s, memtable_records=2048)
        with CarpRun(BENCH_SPEC.nranks, out, opts) as run:
            run.ingest_epoch(0, streams)
        dirs[s] = out
    keys = np.concatenate([b.keys for b in streams])
    return dirs, keys


def measure(tmp_path):
    dirs, keys = build_layouts(tmp_path)
    # highly selective queries: the regime subpartitioning targets
    suite = [q for q in build_query_suite(keys) if q.target_selectivity <= 1e-3]
    rows = []
    latency = {}
    for s in FACTORS:
        with PartitionedStore(dirs[s]) as store:
            total_lat = 0.0
            total_bytes = 0
            total_ssts = 0
            for spec in suite:
                res = store.query(0, spec.lo, spec.hi)
                total_lat += res.cost.latency
                total_bytes += res.cost.bytes_read
                total_ssts += res.cost.ssts_read
            n_ssts = len(store.entries(0))
        latency[s] = total_lat / len(suite)
        rows.append([
            f"{s}-way", n_ssts,
            fmt_bytes(total_bytes / len(suite)),
            total_ssts // len(suite),
            fmt_seconds(latency[s]),
            f"{1 - latency[s] / latency[1]:.0%}" if s > 1 else "-",
        ])
    return rows, latency


def test_ablation_subpartitioning(benchmark, tmp_path):
    rows, latency = benchmark.pedantic(lambda: measure(tmp_path), rounds=1,
                                       iterations=1)
    headers = ["subpartitioning", "total SSTs", "avg bytes/query",
               "avg SSTs/query", "avg latency", "improvement"]
    text = banner(
        "§VII-C3 ablation", "KoiDB subpartitioning vs selective-query latency"
    ) + "\n" + render_table(headers, rows)
    emit("ablation_subpartition", text)

    # subpartitioning monotonically improves selective queries
    assert latency[2] < latency[1]
    assert latency[4] < latency[2]
    # magnitude in the paper's ballpark (28%/43%); accept a wide band
    assert 0.10 < 1 - latency[4] / latency[1] < 0.75
