"""§VIII extension benchmarks: columnar interop, incremental sorting,
multi-attribute auxiliary indexes.

Three discussion-section claims, made measurable:

1. *Storage formats*: "CARP-partitioned rowgroups would have a tighter
   range and require less I/O at query time" — the columnar bench
   writes the same records in CARP-partitioned and arrival order and
   compares rowgroup-stat pruning.
2. *Indexing techniques*: "CARP's approximately sorted output can be
   incrementally converted into a fully sorted layout on the query
   path" — the incremental-sort bench replays a query workload and
   tracks how merge cost decays as merged intervals accumulate.
3. *Multi-attribute queries*: auxiliary attributes get sorted-index
   lookup but pay random-read retrieval — the multi-attribute bench
   compares per-row query cost on the primary vs an auxiliary
   attribute.
"""

import numpy as np

from repro.bench.results import emit
from repro.bench.tables import banner, fmt_bytes, fmt_seconds, render_table
from repro.extensions.columnar import ColumnarReader, write_columnar
from repro.extensions.incremental_sort import IncrementalSorter
from repro.extensions.multi_attribute import (
    AuxiliaryIndexReader,
    MultiAttributeIngest,
)
from repro.storage.log import LogReader, list_logs
from repro.traces.vpic import generate_timestep
from benchmarks.conftest import BENCH_OPTIONS, BENCH_SPEC, LATE_TS


def test_ext_columnar_pruning(benchmark, bench_carp, bench_streams, tmp_path):
    """CARP-partitioned vs arrival-order rowgroups (1-2 orders claim)."""

    def measure():
        partitioned = []
        for path in list_logs(bench_carp["dir"]):
            with LogReader(path) as reader:
                for entry in reader.entries_for(epoch=LATE_TS):
                    partitioned.append(reader.read_sst(entry))
        write_columnar(tmp_path / "carp.col", partitioned, 1024)
        write_columnar(tmp_path / "raw.col", bench_streams[LATE_TS], 1024)
        keys = np.concatenate([b.keys for b in bench_streams[LATE_TS]])
        rows = []
        ratios = []
        for q_lo, q_hi in [(0.45, 0.55), (0.25, 0.30), (0.90, 0.99)]:
            lo, hi = map(float, np.quantile(keys.astype(np.float64),
                                            [q_lo, q_hi]))
            with ColumnarReader(tmp_path / "carp.col") as c, \
                 ColumnarReader(tmp_path / "raw.col") as r:
                kc, _ = c.query(lo, hi)
                kr, _ = r.query(lo, hi)
                assert len(kc) == len(kr)
                ratios.append(r.bytes_read / max(c.bytes_read, 1))
                rows.append([
                    f"q[{q_lo:.2f},{q_hi:.2f}]", len(kc),
                    fmt_bytes(c.bytes_read), fmt_bytes(r.bytes_read),
                    f"{ratios[-1]:.1f}x",
                ])
        return rows, ratios

    rows, ratios = benchmark.pedantic(measure, rounds=1, iterations=1)
    headers = ["query (quantiles)", "matched", "CARP rowgroups read",
               "arrival-order read", "pruning gain"]
    text = banner(
        "§VIII ext", "columnar rowgroup-stat pruning: CARP vs arrival order"
    ) + "\n" + render_table(headers, rows)
    emit("ext_columnar", text)
    # partitioned rowgroups prune at least several-fold on every query
    assert min(ratios) > 3.0


def test_ext_incremental_sort_convergence(benchmark, bench_carp, bench_keys,
                                          tmp_path):
    """Merge cost decays as query-path write-back covers the keyspace."""
    keys = np.sort(bench_keys[LATE_TS].astype(np.float64))
    rng = np.random.default_rng(12)

    def measure():
        rows = []
        with IncrementalSorter(bench_carp["dir"], tmp_path / "side") as inc:
            merge_series = []
            for i in range(30):
                a, b = np.sort(rng.choice(keys, 2, replace=False))
                res = inc.query(LATE_TS, float(a), float(b))
                merge_series.append(res.cost.merge_bytes)
                if i % 6 == 5:
                    rows.append([
                        i + 1, inc.served_from_side, inc.served_from_base,
                        fmt_bytes(inc.writeback_bytes),
                        fmt_bytes(int(np.mean(merge_series[-6:]))),
                    ])
            return rows, inc.served_from_side, merge_series

    rows, served_side, merge_series = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    headers = ["queries", "from side log", "from base", "written back",
               "avg merge bytes (last 6)"]
    text = banner(
        "§VIII ext", "incremental query-path sorting: convergence to sorted"
    ) + "\n" + render_table(headers, rows)
    emit("ext_incremental_sort", text)
    # some queries end up served mergeless from the side log
    assert served_side > 0
    # late queries pay less merge than early ones on average
    assert np.mean(merge_series[-10:]) < np.mean(merge_series[:10])


def test_ext_multi_attribute_costs(benchmark, tmp_path):
    """Auxiliary sorted index vs the clustered primary (per-row cost)."""
    spec = BENCH_SPEC
    streams = generate_timestep(spec, LATE_TS)
    rng = np.random.default_rng(3)
    vx = [rng.normal(size=len(s)).astype(np.float32) for s in streams]

    def measure():
        with MultiAttributeIngest(spec.nranks, tmp_path / "multi", ("vx",),
                                  BENCH_OPTIONS) as mi:
            mi.ingest_epoch(0, streams, {"vx": vx})
        with AuxiliaryIndexReader(tmp_path / "multi") as reader:
            aux = reader.query("vx", 0, -0.25, 0.25)
            from repro.extensions.multi_attribute import PRIMARY_SUBDIR
            from repro.query.engine import PartitionedStore

            all_keys = np.concatenate([s.keys for s in streams])
            lo, hi = map(float, np.quantile(all_keys.astype(np.float64),
                                            [0.40, 0.60]))
            with PartitionedStore(tmp_path / "multi" / PRIMARY_SUBDIR) as ps:
                prim = ps.query(0, lo, hi)
        return aux, prim

    aux, prim = benchmark.pedantic(measure, rounds=1, iterations=1)
    per_aux = aux.latency / max(len(aux), 1)
    per_prim = prim.cost.latency / max(len(prim), 1)
    rows = [
        ["primary (energy, clustered)", len(prim),
         fmt_seconds(prim.cost.latency), fmt_seconds(per_prim)],
        ["auxiliary (vx, pointer + random reads)", len(aux),
         fmt_seconds(aux.latency), fmt_seconds(per_aux)],
    ]
    headers = ["index", "rows", "query latency", "latency/row"]
    text = banner(
        "§VIII ext", "multi-attribute indexing: clustered vs auxiliary cost"
    ) + "\n" + render_table(headers, rows)
    emit("ext_multi_attribute", text)
    # auxiliary retrieval pays random reads: costlier per row
    assert per_aux > 3 * per_prim
