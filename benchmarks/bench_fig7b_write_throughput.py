"""Fig. 7b — effective write throughput vs scale (32-1024 ranks).

For each rank count the harness reports the effective I/O throughput
(application data volume / total runtime, 188 GB per timestep held
constant across scales as in the paper) of:

* Storage Bound / Network Bound — the cluster envelope,
* DeltaFS — in-situ hash partitioning (min of the two bounds),
* CARP/ShuffleOnly — CARP with receivers dropping data (network path
  plus renegotiation pauses),
* CARP — the full pipeline,
* FastQuery, TritonSort — post-processing approaches.

Renegotiation pauses are priced with the TRP latency model at the
target scale and the *count* of renegotiations measured from a real
logical CARP run.

Expected shape (paper Observation 3): CARP tracks DeltaFS and the
min(network, storage) envelope — no overhead over unpartitioned I/O
once the network bound exceeds storage — while FastQuery sits ~2.8x
and TritonSort ~4.9x below the storage bound.
"""

import pytest

from repro.baselines import fastquery, tritonsort
from repro.bench.results import emit
from repro.bench.tables import banner, fmt_si, render_table
from repro.core.renegotiation import synthetic_reneg_stats
from repro.sim.cluster import GB, PAPER_CLUSTER
from repro.sim.engine import simulate_ingestion
from repro.sim.netmodel import NetModel

DATA_BYTES = 188 * GB
SCALES = (32, 64, 128, 256, 512, 1024)


def carp_reneg_pauses(nranks: int, count: int, pivot_width: int = 512):
    net = NetModel.from_cluster(PAPER_CLUSTER)
    stats = synthetic_reneg_stats(nranks, pivot_width)
    return [net.renegotiation_time(stats)] * count


def compute_series(reneg_count: int):
    series = {}
    for n in SCALES:
        storage = PAPER_CLUSTER.storage_bound(n)
        network = PAPER_CLUSTER.network_bound(n)
        pauses = carp_reneg_pauses(n, reneg_count)
        buffers = n * 2.0 * 12 * 1024 * 1024
        carp = simulate_ingestion(DATA_BYTES, network, storage,
                                  reneg_pauses=pauses,
                                  receiver_buffer_bytes=buffers)
        shuffle_only = simulate_ingestion(DATA_BYTES, network, None,
                                          reneg_pauses=pauses)
        deltafs = simulate_ingestion(DATA_BYTES, network, storage)
        series[n] = {
            "storage_bound": storage,
            "network_bound": network,
            "deltafs": deltafs.effective_throughput,
            "carp_shuffle_only": shuffle_only.effective_throughput,
            "carp": carp.effective_throughput,
            "fastquery": fastquery.ingestion_throughput(DATA_BYTES, storage),
            "tritonsort": tritonsort.ingestion_throughput(DATA_BYTES, n),
        }
    return series


def test_fig7b_effective_throughput(benchmark, bench_carp):
    reneg_count = max(
        stats.renegotiations for stats in bench_carp["stats"].values()
    )
    series = benchmark.pedantic(
        lambda: compute_series(reneg_count), rounds=1, iterations=1
    )
    headers = ["ranks", "StorageBound", "NetworkBound", "DeltaFS",
               "CARP/ShuffleOnly", "CARP", "FastQuery", "TritonSort"]
    rows = [
        [n] + [fmt_si(series[n][k], "B/s") for k in (
            "storage_bound", "network_bound", "deltafs",
            "carp_shuffle_only", "carp", "fastquery", "tritonsort")]
        for n in SCALES
    ]
    text = banner(
        "Fig 7b", f"effective write throughput, 188 GB/timestep, "
        f"{reneg_count} renegotiations/epoch"
    ) + "\n" + render_table(headers, rows)
    json_rows = [{"ranks": n, **series[n]} for n in SCALES]
    emit("fig7b_write_throughput", text, rows=json_rows,
         units={k: "B/s" for k in json_rows[0] if k != "ranks"})

    s512 = series[512]
    # CARP saturates storage at large scale (no overhead vs raw I/O)
    assert s512["carp"] == pytest.approx(s512["storage_bound"], rel=0.05)
    # post-processing slowdowns land near the paper's 2.8x / 4.9x
    assert s512["storage_bound"] / s512["fastquery"] == pytest.approx(2.8, rel=0.15)
    assert s512["storage_bound"] / s512["tritonsort"] == pytest.approx(4.9, rel=0.15)
    # CARP is 2.8-4.9x faster than post-processing (Observation 3)
    assert 2.3 < s512["carp"] / s512["fastquery"] < 3.3
    assert 4.2 < s512["carp"] / s512["tritonsort"] < 5.5
    # at small scale both in-situ systems are network-bound
    s32 = series[32]
    assert s32["carp"] < s32["storage_bound"]
    assert s32["carp"] == pytest.approx(s32["deltafs"], rel=0.1)
    # ShuffleOnly scales with the network, beyond storage at high ranks
    assert series[1024]["carp_shuffle_only"] > series[1024]["storage_bound"]


def test_fig7b_pipeline_simulation_speed(benchmark):
    """Timed kernel: one pipeline simulation at 512 ranks."""
    pauses = carp_reneg_pauses(512, 8)

    def run():
        return simulate_ingestion(
            DATA_BYTES,
            PAPER_CLUSTER.network_bound(512),
            PAPER_CLUSTER.storage_bound(512),
            reneg_pauses=pauses,
            receiver_buffer_bytes=512 * 24e6,
        )

    res = benchmark(run)
    assert res.effective_throughput > 0
