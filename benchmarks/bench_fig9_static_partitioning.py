"""Fig. 9 — static vs adaptive partitioning across timestep drift.

Builds oracle partition tables from perfect knowledge of a timestep and
measures how balanced they keep the load (normalized load std-dev) when
applied across the run:

* ``from first``   — static: computed once from timestep 0,
* ``from previous``— recomputed each timestep from the one before,
* ``from current`` — the (unachievable online) lower bound.

Expected shape: from-first degrades monotonically as the distribution
drifts; from-previous does better but spikes where the simulation is
most active (the high-entropy phase around timestep ~3800); from-
current is near zero everywhere, limited only by summary-statistics
lossiness.
"""

import numpy as np

from repro.baselines.static_partition import static_partitioning_study
from repro.bench.results import emit
from repro.bench.tables import banner, fmt_pct, render_table
from repro.traces.stats import distribution_drift
from benchmarks.conftest import BENCH_SPEC

NPARTS = 512  # partitions per the paper's 512-rank runs


def test_fig9_static_partitioning(benchmark, bench_all_timestep_keys):
    keys = bench_all_timestep_keys
    study = benchmark.pedantic(
        lambda: static_partitioning_study(keys, nparts=NPARTS, pivot_count=512),
        rounds=1, iterations=1,
    )
    drifts = [0.0] + [
        distribution_drift(a, b) for a, b in zip(keys, keys[1:])
    ]
    rows = [
        [
            BENCH_SPEC.timesteps[i],
            fmt_pct(study["from_first"][i]),
            fmt_pct(study["from_previous"][i]),
            fmt_pct(study["from_current"][i]),
            f"{drifts[i]:.2f}",
        ]
        for i in range(len(keys))
    ]
    headers = ["timestep", "from first", "from previous", "from current",
               "drift"]
    text = banner(
        "Fig 9", f"load std-dev of static partitioning schemes ({NPARTS} "
        "partitions, oracle tables)"
    ) + "\n" + render_table(headers, rows)
    emit("fig9_static_partitioning", text)

    first = np.array(study["from_first"])
    prev = np.array(study["from_previous"])
    cur = np.array(study["from_current"])

    # static partitioning devolves as the distribution drifts
    assert first[-1] > 5 * first[:3].mean()
    # previous-timestep tables beat static late in the run
    assert prev[6:].mean() < first[6:].mean()
    # from-previous peaks during the high-drift phase, then recovers
    peak = int(np.argmax(prev))
    assert 4 <= peak <= len(prev) - 2
    assert prev[-1] < prev[peak] / 2
    # current-timestep tables fit nearly perfectly (lossiness only)
    assert cur.max() < 0.08
    # lower bound by definition
    assert np.all(cur <= first + 1e-9)
    assert np.all(cur <= prev + 1e-9)
