"""Ablation (§VI) — naive all-to-root renegotiation vs TRP.

TRP trades a little accuracy (intermediate pivot resampling loses
information) for logarithmic scaling.  This ablation quantifies both
sides:

* accuracy — partition tables computed by the naive protocol and by
  TRP from identical per-rank pivot sets, scored by the load balance
  each achieves on the underlying keys;
* cost — modeled round latency and per-receiver fan-in at scale.

Expected shape: TRP's accuracy penalty is negligible (the paper:
"estimation errors result in negligible imbalance"), while the naive
protocol's root fan-in and latency grow linearly with ranks.
"""

import numpy as np

from repro.bench.results import emit
from repro.bench.tables import banner, fmt_pct, fmt_seconds, render_table
from repro.core.partition import PartitionTable, load_stddev
from repro.core.pivots import pivots_from_histogram
from repro.core.renegotiation import negotiate_naive, negotiate_trp
from repro.sim.netmodel import NetModel
from repro.traces.vpic import VpicTraceSpec, generate_timestep

SCALES = (16, 64, 256, 1024)
PIVOT_WIDTH = 256


def per_rank_pivots(nranks, per_rank=1500):
    spec = VpicTraceSpec(nranks=nranks, particles_per_rank=per_rank,
                         seed=7, value_size=8)
    streams = generate_timestep(spec, 9)
    pivots = [
        pivots_from_histogram(None, None, PIVOT_WIDTH, oob_keys=s.keys)
        for s in streams
    ]
    keys = np.concatenate([s.keys for s in streams])
    return pivots, keys


def compare(nranks):
    pivots, keys = per_rank_pivots(nranks)
    net = NetModel()
    nb, ns = negotiate_naive(pivots, nranks, PIVOT_WIDTH)
    tb, ts = negotiate_trp(pivots, nranks, PIVOT_WIDTH, fanout=64)
    fit = lambda bounds: load_stddev(
        PartitionTable.from_quantile_points(bounds).load_counts(
            np.clip(keys, bounds[0], bounds[-1])
        )
    )
    return {
        "naive_fit": fit(nb),
        "trp_fit": fit(tb),
        "naive_latency": net.renegotiation_time(ns),
        "trp_latency": net.renegotiation_time(ts),
        "naive_fanin": max(f for _, f, _ in ns.levels),
        "trp_fanin": max(f for _, f, _ in ts.levels),
    }


def test_ablation_naive_vs_trp(benchmark, tmp_path):
    results = benchmark.pedantic(
        lambda: {n: compare(n) for n in SCALES}, rounds=1, iterations=1
    )
    rows = [
        [
            n,
            fmt_pct(r["naive_fit"]), fmt_pct(r["trp_fit"]),
            fmt_seconds(r["naive_latency"]), fmt_seconds(r["trp_latency"]),
            r["naive_fanin"], r["trp_fanin"],
        ]
        for n, r in results.items()
    ]
    headers = ["ranks", "naive balance", "TRP balance", "naive latency",
               "TRP latency", "naive fan-in", "TRP fan-in"]
    text = banner(
        "§VI ablation", "naive all-to-root vs tree-based renegotiation (TRP)"
    ) + "\n" + render_table(headers, rows)
    emit("ablation_trp", text)

    for n, r in results.items():
        # TRP's lossiness penalty on balance is negligible
        assert r["trp_fit"] < r["naive_fit"] + 0.05
        # TRP bounds fan-in by the fanout; naive's grows with ranks
        assert r["trp_fanin"] <= 64
    assert results[1024]["naive_fanin"] == 1023
    # at scale, TRP's round is much faster than naive's
    assert results[1024]["trp_latency"] < 0.5 * results[1024]["naive_latency"]
    # and TRP latency grows sublinearly while naive grows ~linearly
    naive_growth = results[1024]["naive_latency"] / results[16]["naive_latency"]
    trp_growth = results[1024]["trp_latency"] / results[16]["trp_latency"]
    assert trp_growth < naive_growth / 4
