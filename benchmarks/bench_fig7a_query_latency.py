"""Fig. 7a — query latency vs selectivity: CARP vs TritonSort vs
FastQuery vs full scan.

Eight range queries spanning 0.01%-10% selectivity are answered by all
four systems over the same (late, heavy-tailed) timestep.  Latencies
combine bytes/requests measured on the real on-disk layouts with the
paper-calibrated I/O cost model.

Expected shape (paper Observations 1-2): CARP matches TritonSort for
selectivity >= ~0.05% and is slower only for extremely selective
queries (it must read whole partitions); FastQuery is 1-2 orders of
magnitude slower everywhere (auxiliary random reads); full scan is the
flat worst case for selective queries.
"""

import numpy as np
import pytest

from repro.baselines.fastquery import BitmapIndex
from repro.baselines.fullscan import write_unpartitioned
from repro.bench.results import emit
from repro.bench.tables import banner, fmt_seconds, render_table
from repro.query.engine import PartitionedStore
from repro.workloads.queries import achieved_selectivity, build_query_suite
from benchmarks.conftest import LATE_TS


@pytest.fixture(scope="module")
def setups(bench_carp, bench_sorted, bench_streams, bench_keys,
           tmp_path_factory):
    raw_dir = tmp_path_factory.mktemp("fig7a_raw")
    write_unpartitioned(raw_dir, LATE_TS, bench_streams[LATE_TS],
                        sst_records=1024)
    index = BitmapIndex.from_streams(bench_streams[LATE_TS], nbins=512,
                                     record_size=12)
    return {
        "carp": PartitionedStore(bench_carp["dir"]),
        "sorted": PartitionedStore(bench_sorted[LATE_TS]),
        "raw": PartitionedStore(raw_dir),
        "fastquery": index,
        "keys": bench_keys[LATE_TS],
    }


def run_suite(setups):
    keys = setups["keys"]
    suite = build_query_suite(keys)
    rows = []
    series = {"carp": [], "sorted": [], "fastquery": [], "scan": []}
    for spec in suite:
        carp = setups["carp"].query(LATE_TS, spec.lo, spec.hi)
        tsort = setups["sorted"].query(LATE_TS, spec.lo, spec.hi)
        _, _, fq = setups["fastquery"].query(spec.lo, spec.hi)
        scan = setups["raw"].scan(LATE_TS)
        sel = achieved_selectivity(keys, spec)
        series["carp"].append(carp.cost.latency)
        series["sorted"].append(tsort.cost.latency)
        series["fastquery"].append(fq.latency)
        series["scan"].append(scan.cost.latency)
        rows.append([
            f"{100 * sel:.3f}%",
            len(carp),
            fmt_seconds(carp.cost.latency),
            fmt_seconds(tsort.cost.latency),
            fmt_seconds(fq.latency),
            fmt_seconds(scan.cost.latency),
        ])
    return rows, series, suite


def test_fig7a_latency_vs_selectivity(benchmark, setups):
    rows, series, suite = benchmark.pedantic(
        lambda: run_suite(setups), rounds=1, iterations=1
    )
    headers = ["selectivity", "matched", "CARP", "TritonSort", "FastQuery",
               "FullScan"]
    text = banner(
        "Fig 7a", "query latency vs selectivity (modeled on real layouts)"
    ) + "\n" + render_table(headers, rows)
    emit("fig7a_query_latency", text)

    carp = np.array(series["carp"])
    tsort = np.array(series["sorted"])
    fq = np.array(series["fastquery"])

    # Observation 1: FastQuery 1-2 orders of magnitude slower than CARP
    assert np.all(fq >= 5 * carp)
    assert np.median(fq / carp) > 20

    # Observation 2: CARP ~ TritonSort once query selectivity exceeds
    # the per-partition floor.  The paper's floor is 1/512 = 0.18%; at
    # this benchmark's 16 ranks the floor is 1/16 ~ 6%, so the
    # crossover shifts accordingly (same shape, scaled).
    floor = 1.0 / 16
    moderate = [i for i, s in enumerate(suite) if s.target_selectivity >= floor * 0.8]
    assert moderate, "suite must include queries above the partition floor"
    assert np.all(carp[moderate] < 4 * tsort[moderate])

    # the CARP/sorted gap shrinks as selectivity grows
    ratios = carp / tsort
    assert ratios[-1] < ratios[0]

    # highly selective queries: CARP pays the full-partition floor
    assert carp[0] > tsort[0]


def test_fig7a_carp_query_execution_speed(benchmark, setups):
    """Timed kernel: an actual mid-selectivity CARP range query
    (manifest -> SST reads -> filter -> merge) on real files."""
    keys = setups["keys"]
    spec = build_query_suite(keys)[4]  # 1% selectivity

    result = benchmark(lambda: setups["carp"].query(LATE_TS, spec.lo, spec.hi))
    assert len(result) > 0


def test_fig7a_sorted_query_execution_speed(benchmark, setups):
    keys = setups["keys"]
    spec = build_query_suite(keys)[4]
    result = benchmark(lambda: setups["sorted"].query(LATE_TS, spec.lo, spec.hi))
    assert len(result) > 0
