"""Library microbenchmarks: the hot paths of this implementation.

Not a paper figure — these pytest-benchmark kernels track the Python
implementation's own performance on its hot paths, so regressions in
the vectorized routines (routing, pivot math, SST codec, query merge)
are visible.  Grouped so ``--benchmark-group-by=group`` reads well.
"""

import numpy as np
import pytest

from repro.core.partition import PartitionTable
from repro.core.pivots import pivot_union, pivots_from_histogram
from repro.core.records import RecordBatch
from repro.shuffle.router import hash_route, range_route, split_by_destination
from repro.storage.sstable import build_sstable, parse_sstable

N = 100_000


@pytest.fixture(scope="module")
def batch():
    rng = np.random.default_rng(0)
    return RecordBatch.from_keys(
        rng.lognormal(size=N).astype(np.float32), value_size=8
    )


@pytest.fixture(scope="module")
def table(batch):
    bounds = np.quantile(batch.keys.astype(np.float64),
                         np.linspace(0, 1, 65))
    return PartitionTable.from_quantile_points(bounds)


@pytest.mark.benchmark(group="routing")
def test_perf_range_route(benchmark, batch, table):
    dests = benchmark(lambda: range_route(batch, table))
    assert len(dests) == N


@pytest.mark.benchmark(group="routing")
def test_perf_hash_route(benchmark, batch):
    dests = benchmark(lambda: hash_route(batch, 64))
    assert len(dests) == N


@pytest.mark.benchmark(group="routing")
def test_perf_split_by_destination(benchmark, batch, table):
    dests = range_route(batch, table)
    per_dest, oob = benchmark(lambda: split_by_destination(batch, dests))
    assert sum(len(b) for b in per_dest.values()) + len(oob) == N


@pytest.mark.benchmark(group="pivots")
def test_perf_pivots_from_samples(benchmark, batch):
    piv = benchmark(
        lambda: pivots_from_histogram(None, None, 512, oob_keys=batch.keys)
    )
    assert piv is not None


@pytest.mark.benchmark(group="pivots")
def test_perf_pivot_union_64_ranks(benchmark):
    rng = np.random.default_rng(1)
    sets = [
        pivots_from_histogram(None, None, 512,
                              oob_keys=rng.lognormal(size=2000))
        for _ in range(64)
    ]
    merged = benchmark(lambda: pivot_union(sets, 512))
    assert merged.width == 512


@pytest.mark.benchmark(group="storage")
def test_perf_sstable_build(benchmark, batch):
    data, info = benchmark(lambda: build_sstable(batch, epoch=0))
    assert info.count == N


@pytest.mark.benchmark(group="storage")
def test_perf_sstable_parse(benchmark, batch):
    data, _ = build_sstable(batch, epoch=0)
    info, parsed = benchmark(lambda: parse_sstable(data))
    assert len(parsed) == N


@pytest.mark.benchmark(group="query")
def test_perf_sort_merge(benchmark, batch):
    runs = [batch.select(np.arange(i, N, 8)) for i in range(8)]

    def merge():
        return RecordBatch.concat(runs).sorted_by_key()

    merged = benchmark(merge)
    assert len(merged) == N
