"""Observability overhead — the disabled path must be provably free.

Runs the carp-perf ``obs-overhead`` workload: the same seeded ingest
once under the shared ``NULL_OBS`` stack and once fully recording with
a streaming telemetry sink.  The null run's zero-side-effect metrics
are *exact* gates — no instruments registered, no virtual time
accumulated, no telemetry lines written — while the wall-clock
overhead ratio is reported for trend visibility only (runner noise is
not a regression; the committed baseline in ``results/baselines/``
gates the deterministic rows on every push).
"""

from __future__ import annotations

from repro.bench.results import emit
from repro.bench.tables import banner, render_table
from repro.perf.harness import run_workload
from repro.perf.workloads import WORKLOADS


def test_obs_overhead(benchmark):
    spec = WORKLOADS["obs-overhead"]
    metrics = benchmark.pedantic(
        lambda: run_workload(spec), rounds=1, iterations=1
    )
    by_name = {m.name: m for m in metrics}

    headers = ["metric", "value", "unit", "kind"]
    rows = [[m.name, f"{m.value:.6g}", m.unit,
             m.kind + (" (advisory)" if m.kind == "wall" else "")]
            for m in metrics]
    text = banner(
        "observability overhead",
        f"{spec.nranks} ranks x {spec.records_per_rank} records x "
        f"{spec.epochs} epochs, {spec.backend} backend; null path must "
        "leave zero side effects",
    ) + "\n" + render_table(headers, rows)
    emit("bench_obs_overhead", text, rows=[m.to_row() for m in metrics],
         units={m.name: m.unit for m in metrics})

    # the null path is free: nothing registered, no time, no output
    assert by_name["null_side_effects"].value == 0
    # and the recording path actually recorded something to compare to
    assert by_name["telemetry_lines"].value > 0
    assert by_name["recording_instruments"].value > 0
    assert by_name["ingest_virtual_ticks"].value > 0
