"""Fig. 2 — the logical view: partition boundaries tracking the data.

Fig. 2 illustrates CARP's data layout: incoming data is partitioned
into SSTables and "partition boundaries shift with key distribution
changes".  This benchmark makes that picture quantitative for a
drifting epoch: at every renegotiation it records selected partition
boundaries plus the boundary-drift metric, showing the table walking
after the distribution.
"""


from repro.bench.results import emit
from repro.bench.tables import banner, render_table
from repro.core.carp import CarpRun
from repro.core.records import RecordBatch
from repro.traces.vpic import generate_timestep
from benchmarks.conftest import BENCH_OPTIONS, BENCH_SPEC


def drifting_epoch():
    a = generate_timestep(BENCH_SPEC, 1)
    b = generate_timestep(BENCH_SPEC, 10)
    return [RecordBatch.concat([x, y]) for x, y in zip(a, b)]


def test_fig2_boundary_evolution(benchmark, tmp_path):
    opts = BENCH_OPTIONS.with_(renegotiations_per_epoch=8, round_records=512)

    def run():
        with CarpRun(BENCH_SPEC.nranks, tmp_path / "carp", opts) as run_:
            return run_.ingest_epoch(0, drifting_epoch())

    stats = benchmark.pedantic(run, rounds=1, iterations=1)

    drift = stats.boundary_drift()
    rows = []
    probe_parts = (4, 8, 12)  # boundaries to display (of 16)
    for i, table in enumerate(stats.table_history):
        rows.append(
            [f"v{table.version}"]
            + [f"{table.bounds[p]:.4g}" for p in probe_parts]
            + [f"{table.hi:.4g}",
               f"{drift[i - 1]:.1%}" if i > 0 else "-"]
        )
    headers = ["table"] + [f"bound[{p}]" for p in probe_parts] + [
        "upper bound", "drift vs prev"]
    text = banner(
        "Fig 2", "partition boundaries shifting with key-distribution drift"
    ) + "\n" + render_table(headers, rows)
    emit("fig2_boundary_evolution", text)

    # boundaries must actually move over the drifting epoch
    first, last = stats.table_history[0], stats.table_history[-1]
    assert last.hi > 2 * first.hi or drift.max() > 0.05
    # every record still lands somewhere (conservation, belt-and-braces)
    assert stats.partition_loads.sum() == stats.records
    # versions increase monotonically
    versions = [t.version for t in stats.table_history]
    assert versions == sorted(versions)
