"""The :class:`repro.api.Session` facade: wiring, views, lifecycle."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import Session
from repro.core.carp import CarpRun
from repro.core.config import CarpOptions
from repro.exec import SERIAL_EXEC, ThreadExecutor
from repro.query.engine import PartitionedStore
from repro.traces.vpic import VpicTraceSpec, generate_timestep

OPTIONS = CarpOptions(
    pivot_count=32,
    oob_capacity=32,
    renegotiations_per_epoch=3,
    memtable_records=256,
    round_records=128,
    value_size=8,
)

SPEC = VpicTraceSpec(nranks=4, particles_per_rank=500, value_size=8, seed=3)


def _streams(epoch: int):
    return generate_timestep(SPEC, epoch)


def test_session_matches_manual_wiring(tmp_path):
    manual_dir = tmp_path / "manual"
    with CarpRun(SPEC.nranks, manual_dir, OPTIONS) as run:
        run.ingest_epoch(0, _streams(0))
    with PartitionedStore(manual_dir) as store:
        expect = store.query(0, 0.5, 2.0)

    with Session(SPEC.nranks, tmp_path / "facade", OPTIONS) as session:
        session.ingest_epoch(0, _streams(0))
        got = session.query(0, 0.5, 2.0)

    assert np.array_equal(got.keys, expect.keys)
    assert np.array_equal(got.rids, expect.rids)
    assert got.cost == expect.cost


def test_store_view_is_cached_until_next_ingest(tmp_path):
    with Session(SPEC.nranks, tmp_path, OPTIONS) as session:
        session.ingest_epoch(0, _streams(0))
        first = session.store()
        assert session.store() is first
        session.ingest_epoch(1, _streams(1))
        second = session.store()
        assert second is not first
        # the fresh view sees both epochs
        assert list(second.epochs()) == [0, 1]


def test_reader_wraps_session_store(tmp_path):
    with Session(SPEC.nranks, tmp_path, OPTIONS) as session:
        session.ingest_epoch(0, _streams(0))
        reader = session.reader()
        # one set of file handles: the reader wraps the session's store
        assert reader.store is session.store()
        assert not reader._owns_store
        assert reader.analyze(epoch=0).total_records > 0


def test_views_share_session_executor(tmp_path):
    executor = ThreadExecutor(2)
    try:
        with Session(
            SPEC.nranks, tmp_path, OPTIONS, executor=executor
        ) as session:
            assert session.executor is executor
            session.ingest_epoch(0, _streams(0))
            assert session.store()._executor is executor
        # caller-injected executor survives session close
        assert executor.map(lambda s: 1, []) == []  # still usable
    finally:
        executor.close()


def test_session_owns_env_created_executor(tmp_path, monkeypatch):
    monkeypatch.setenv("CARP_EXECUTOR", "thread")
    monkeypatch.setenv("CARP_WORKERS", "2")
    session = Session(SPEC.nranks, tmp_path, OPTIONS)
    assert isinstance(session.executor, ThreadExecutor)
    session.ingest_epoch(0, _streams(0))
    assert len(session.query(0, -10.0, 10.0)) > 0
    session.close()
    with pytest.raises(Exception):
        session.executor.submit(0, print)


def test_default_session_is_serial_and_unrecorded(tmp_path, monkeypatch):
    monkeypatch.delenv("CARP_EXECUTOR", raising=False)
    with Session(SPEC.nranks, tmp_path, OPTIONS) as session:
        assert session.executor is SERIAL_EXEC
        assert not session.obs.enabled


def test_record_builds_metrics_stack(tmp_path):
    with Session(SPEC.nranks, tmp_path, OPTIONS, record=True) as session:
        assert session.obs.enabled
        session.ingest_epoch(0, _streams(0))
        target = session.write_metrics()
    assert target == tmp_path / "metrics.json"
    payload = json.loads(target.read_text())
    assert payload["counters"]  # ingest actually recorded something


def test_closed_session_refuses_views(tmp_path):
    session = Session(SPEC.nranks, tmp_path, OPTIONS)
    session.ingest_epoch(0, _streams(0))
    session.close()
    session.close()  # idempotent
    with pytest.raises(RuntimeError, match="closed"):
        session.store()


def test_session_close_releases_log_handles(tmp_path):
    session = Session(SPEC.nranks, tmp_path, OPTIONS)
    session.ingest_epoch(0, _streams(0))
    store = session.store()
    session.close()
    # the attached view was closed with the session
    assert session._store is None
    with pytest.raises(Exception):
        store.query(0, 0.0, 1.0)
