"""Benchmark result persistence: text tables + JSON companions."""

import json

from repro.bench.results import emit, git_sha, results_dir


class TestResultsDir:
    def test_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "r"))
        assert results_dir() == tmp_path / "r"
        assert (tmp_path / "r").is_dir()


class TestEmit:
    def test_text_only(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        path = emit("figX", "hello table")
        assert path.read_text() == "hello table\n"
        assert "hello table" in capsys.readouterr().out
        assert not (tmp_path / "figX.json").exists()

    def test_rows_write_json_companion(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        rows = [{"ranks": 32, "carp": 1.5e9}, {"ranks": 64, "carp": 3.0e9}]
        emit("figX", "table", rows=rows, units={"carp": "B/s"})
        capsys.readouterr()
        doc = json.loads((tmp_path / "figX.json").read_text())
        assert doc["figure"] == "figX"
        assert doc["rows"] == rows
        assert doc["units"] == {"carp": "B/s"}
        # measured inside this repo: the SHA must resolve
        assert isinstance(doc["git_sha"], str)
        assert len(doc["git_sha"]) == 40

    def test_json_round_trips_exactly(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        rows = [{"epoch": 0, "raf_p50": 1.25, "repartitioning": True}]
        emit("figY", "t", rows=rows, units={})
        capsys.readouterr()
        doc = json.loads((tmp_path / "figY.json").read_text())
        assert doc["rows"][0]["repartitioning"] is True
        assert doc["rows"][0]["raf_p50"] == 1.25


class TestGitSha:
    def test_resolves_head_in_this_repo(self):
        sha = git_sha()
        assert sha is not None
        assert len(sha) == 40
        assert all(c in "0123456789abcdef" for c in sha)
