"""Tests for the benchmark-harness formatting/persistence helpers."""

import pytest

from repro.bench.results import emit, results_dir
from repro.bench.tables import (
    banner,
    fmt_bytes,
    fmt_pct,
    fmt_seconds,
    fmt_si,
    render_table,
)


class TestFormatting:
    def test_si_scales(self):
        assert fmt_si(3e9, "B/s") == "3 GB/s"
        assert fmt_si(1.5e6) == "1.5 M"
        assert fmt_si(0.002, "s") == "2 ms"
        assert fmt_si(42) == "42"

    def test_si_zero(self):
        assert fmt_si(0, "B") == "0 B"

    def test_bytes_and_seconds(self):
        assert fmt_bytes(1024) == "1.02 KB"
        assert fmt_seconds(0.15) == "150 ms"

    def test_pct(self):
        assert fmt_pct(0.051) == "5.10%"
        assert fmt_pct(1.2, digits=0) == "120%"


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["a", "bb"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "333" in lines[3]
        # all rows same width
        assert len({len(line) for line in lines[1:]}) <= 2

    def test_title(self):
        text = render_table(["x"], [[1]], title="T")
        assert text.splitlines()[0] == "T"

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_banner(self):
        text = banner("Fig 1", "something")
        assert "[Fig 1] something" in text


class TestEmit:
    def test_writes_results_file(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        path = emit("unit_test_fig", "hello table")
        assert path.read_text() == "hello table\n"
        assert "hello table" in capsys.readouterr().out

    def test_results_dir_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "r"))
        assert results_dir() == tmp_path / "r"
        assert (tmp_path / "r").is_dir()
