"""Crash → recover → append: the writer-side recovery contract.

The corpus tests (``test_corpus.py``) cover classification of
hand-broken bytes; these tests drive the *live* path: a fault plan
tears a real write mid-flight, and ``LogWriter(recover=True)`` /
``KoiDB.open`` must truncate back to the commit point and keep
appending on top of the surviving prefix.
"""

import numpy as np
import pytest

from repro.core.config import CarpOptions
from repro.core.records import RecordBatch
from repro.faults.plan import (
    SITE_MANIFEST_WRITE,
    SITE_SST_WRITE,
    FaultInjector,
    FaultSpec,
    InjectedCrashError,
)
from repro.storage.fsck import fsck
from repro.storage.koidb import KoiDB
from repro.storage.log import QUARANTINE_DIR, LogReader, LogWriter, log_name
from repro.storage.manifest import ManifestCorruptionError
from repro.storage.recovery import walk_manifest_chain

OPTS = CarpOptions(memtable_records=64, value_size=8)


def _batch(epoch: int, n: int = 32, rank: int = 0) -> RecordBatch:
    rng = np.random.default_rng(epoch + 1)
    keys = rng.uniform(0.0, 1.0, n).astype(np.float32)
    return RecordBatch.from_keys(
        keys, rank=rank, start_seq=epoch * 1000, value_size=8
    )


def _write_epoch(writer: LogWriter, epoch: int) -> None:
    writer.append_batch(_batch(epoch), epoch)
    writer.flush_epoch(epoch)


# ------------------------------------------------------- injected tears


def test_sst_crash_writes_exact_prefix(tmp_path):
    path = tmp_path / log_name(0)
    injector = FaultInjector([FaultSpec(SITE_SST_WRITE, 0, 1, arg=0.5)])
    with LogWriter(path, injector=injector) as writer:
        _write_epoch(writer, 0)
        committed = writer.offset
        with pytest.raises(InjectedCrashError) as exc_info:
            writer.append_batch(_batch(1), 1)
        assert exc_info.value.site == SITE_SST_WRITE
        # exactly the declared fraction of the payload hit the file
        assert writer.offset > committed
    size = path.stat().st_size
    assert committed < size  # a genuine torn tail is on disk


def test_crashed_writer_refuses_further_appends(tmp_path):
    path = tmp_path / log_name(0)
    injector = FaultInjector([FaultSpec(SITE_SST_WRITE, 0, 0, arg=0.25)])
    writer = LogWriter(path, injector=injector)
    with pytest.raises(InjectedCrashError):
        writer.append_batch(_batch(0), 0)
    with pytest.raises(RuntimeError, match="already crashed"):
        writer.append_batch(_batch(0), 0)
    with pytest.raises(RuntimeError, match="already crashed"):
        writer.flush_epoch(0)
    writer.close()  # close stays legal


@pytest.mark.parametrize("cut", [0.0, 0.3, 0.7, 1.0])
def test_recover_after_torn_sst(tmp_path, cut):
    path = tmp_path / log_name(0)
    injector = FaultInjector([FaultSpec(SITE_SST_WRITE, 0, 1, arg=cut)])
    with LogWriter(path, injector=injector) as writer:
        _write_epoch(writer, 0)
        committed = writer.offset
        with pytest.raises(InjectedCrashError):
            writer.append_batch(_batch(1), 1)

    with LogWriter(path, recover=True) as writer:
        assert writer.recovery is not None
        assert writer.recovery.changed == (cut > 0.0)
        assert writer.offset == committed  # truncated to the commit point
        _write_epoch(writer, 1)

    with LogReader(path) as reader:
        assert sorted({e.epoch for e in reader.entries}) == [0, 1]


@pytest.mark.parametrize("cut", [0.0, 0.4, 0.9])
def test_recover_after_torn_manifest(tmp_path, cut):
    # the manifest block and footer are one payload: any cut leaves a
    # complete SST with its committing manifest torn — the whole epoch
    # must disappear
    path = tmp_path / log_name(0)
    injector = FaultInjector([FaultSpec(SITE_MANIFEST_WRITE, 0, 1, arg=cut)])
    with LogWriter(path, injector=injector) as writer:
        _write_epoch(writer, 0)
        committed = writer.offset
        writer.append_batch(_batch(1), 1)
        with pytest.raises(InjectedCrashError):
            writer.flush_epoch(1)

    with LogWriter(path, recover=True) as writer:
        assert writer.offset == committed
        _write_epoch(writer, 2)

    with LogReader(path) as reader:
        epochs = sorted({e.epoch for e in reader.entries})
    assert epochs == [0, 2]  # epoch 1 tore; epochs 0 and 2 survive


def test_recover_quarantines_rather_than_deletes(tmp_path):
    path = tmp_path / log_name(0)
    injector = FaultInjector([FaultSpec(SITE_SST_WRITE, 0, 1, arg=0.5)])
    with LogWriter(path, injector=injector) as writer:
        _write_epoch(writer, 0)
        with pytest.raises(InjectedCrashError):
            writer.append_batch(_batch(1), 1)
    before = path.read_bytes()

    with LogWriter(path, recover=True) as writer:
        action = writer.recovery
    assert action is not None and action.quarantined_bytes > 0
    quarantined = (tmp_path / QUARANTINE_DIR).glob("*")
    blobs = {p.name: p.read_bytes() for p in quarantined}
    assert len(blobs) == 1
    tail = next(iter(blobs.values()))
    assert path.read_bytes() + tail == before  # every byte accounted for


def test_recover_on_fresh_path_starts_empty(tmp_path):
    path = tmp_path / log_name(0)
    with LogWriter(path, recover=True) as writer:
        assert writer.recovery is None
        assert writer.offset == 0
        _write_epoch(writer, 0)
    with LogReader(path) as reader:
        assert sorted({e.epoch for e in reader.entries}) == [0]


# ------------------------------------------------------------ KoiDB.open


def _koidb_epoch(db: KoiDB, epoch: int) -> None:
    db.begin_epoch(epoch)
    db.ingest(_batch(epoch, n=96))
    db.finish_epoch()


def test_koidb_open_recovers_and_appends(tmp_path):
    faults = [FaultSpec(SITE_MANIFEST_WRITE, 0, 1, arg=0.6)]
    db = KoiDB(0, tmp_path, OPTS, faults=faults)
    _koidb_epoch(db, 0)
    db.begin_epoch(1)
    db.ingest(_batch(1, n=96))
    with pytest.raises(InjectedCrashError):
        db.finish_epoch()
    db.close()
    assert not fsck(tmp_path, deep=True).ok  # torn tail on disk

    db = KoiDB.open(0, tmp_path, OPTS)
    assert db.recovery is not None and db.recovery.changed
    _koidb_epoch(db, 1)
    db.close()

    report = fsck(tmp_path, deep=True)
    assert report.ok, report.errors
    assert sorted(report.epochs) == [0, 1]


def test_koidb_open_is_idempotent_on_clean_logs(tmp_path):
    db = KoiDB(0, tmp_path, OPTS)
    _koidb_epoch(db, 0)
    db.close()
    before = (tmp_path / log_name(0)).read_bytes()

    db = KoiDB.open(0, tmp_path, OPTS)
    assert db.recovery is not None and not db.recovery.changed
    db.close()
    assert (tmp_path / log_name(0)).read_bytes() == before


# ------------------------------------------------ footer scan coverage


def test_long_uncommitted_tail_keeps_commit_point(tmp_path, monkeypatch):
    """A crash can leave more uncommitted bytes than one scan window
    (a large epoch's worth of flushed SSTs): the footer scan must walk
    the whole file instead of classifying the log as footer-less and
    quarantining committed data."""
    from repro.storage import recovery

    monkeypatch.setattr(recovery, "SCAN_WINDOW", 4096)
    path = tmp_path / log_name(0)
    with LogWriter(path) as writer:
        _write_epoch(writer, 0)
        committed = writer.offset
    with open(path, "ab") as fh:
        fh.write(b"\xaa" * (5 * 4096))  # tail spanning many scan windows
    diag = recovery.classify_log(path)
    assert diag.kind == recovery.KIND_TORN_TAIL
    assert diag.footer_end == committed

    with LogWriter(path, recover=True) as writer:
        assert writer.offset == committed
        _write_epoch(writer, 1)
    with LogReader(path) as reader:
        assert sorted({e.epoch for e in reader.entries}) == [0, 1]


@pytest.mark.parametrize("pad", range(0, 64, 7))
def test_footer_found_at_any_window_alignment(tmp_path, monkeypatch, pad):
    # sweep the tail length so the committed footer lands at every
    # alignment relative to the scan-window boundaries, including
    # straddling one
    from repro.storage import recovery

    monkeypatch.setattr(recovery, "SCAN_WINDOW", 64)
    path = tmp_path / log_name(0)
    with LogWriter(path) as writer:
        _write_epoch(writer, 0)
        committed = writer.offset
    with open(path, "ab") as fh:
        fh.write(b"\xaa" * (200 + pad))
    diag = recovery.classify_log(path)
    assert diag.kind == recovery.KIND_TORN_TAIL
    assert diag.footer_end == committed


def test_tail_with_footer_and_trailing_garbage_diagnosed(tmp_path):
    """A tail holding a parseable manifest block, its decodable footer,
    and further garbage must not be reported as 'footer missing/short
    (N of 16 bytes)' with N larger than a footer."""
    from repro.storage.manifest import encode_footer, encode_manifest_block
    from repro.storage.recovery import KIND_TORN_MANIFEST, classify_log

    path = tmp_path / log_name(0)
    with LogWriter(path) as writer:
        _write_epoch(writer, 0)
        committed = writer.offset
    # a block whose chain cannot validate (prev offset outside the
    # file), the footer pointing at it, then trailing garbage
    block = encode_manifest_block([], epoch=1, prev_offset=1 << 40)
    with open(path, "ab") as fh:
        fh.write(block + encode_footer(committed) + b"\xbb" * 7)

    diag = classify_log(path)
    assert diag.kind == KIND_TORN_MANIFEST
    assert diag.footer_end == committed
    assert "7 trailing byte(s)" in diag.detail
    assert "missing/short" not in diag.detail


# --------------------------------------------------------- typed errors


def test_manifest_corruption_error_carries_location(tmp_path):
    path = tmp_path / log_name(0)
    with LogWriter(path) as writer:
        _write_epoch(writer, 0)
        size = writer.offset
    # clip the newest manifest block's header mid-way
    data = path.read_bytes()
    with open(path, "rb") as fh:
        fh.seek(size - 16)
        from repro.storage.manifest import decode_footer

        manifest_offset = decode_footer(fh.read(16))
    torn = data[: manifest_offset + 4]
    path.write_bytes(torn)

    with open(path, "rb") as fh:
        with pytest.raises(ManifestCorruptionError) as exc_info:
            walk_manifest_chain(fh, len(torn), manifest_offset, path)
    err = exc_info.value
    assert err.path == str(path)
    assert err.offset == manifest_offset
    assert err.entry_index == 0  # newest block in the chain walk
    assert "truncated" in err.detail
    assert str(path) in str(err) and f"@{manifest_offset}" in str(err)


def test_reader_rejects_tiny_file_with_typed_error(tmp_path):
    path = tmp_path / log_name(0)
    path.write_bytes(b"KF")
    with pytest.raises(ManifestCorruptionError) as exc_info:
        LogReader(path)
    assert exc_info.value.offset == 0
