"""mmap-backed LogReader lifetimes: maps and descriptors never leak.

The reader contract (docs/PERFORMANCE.md): the opening descriptor is
closed before ``__init__`` returns — even when ``__init__`` fails
mid-way — and the map is released by ``close()``/``__exit__``, which
the L1001/L1002 lint rules track statically and these tests exercise
dynamically, including through the ``Session.snapshot()`` /
``release()`` / close lifecycle.
"""

from __future__ import annotations

import gc
import warnings

import numpy as np
import pytest

from repro.api import Session
from repro.core.carp import CarpRun
from repro.core.config import CarpOptions
from repro.core.records import RecordBatch
from repro.exec.work import probe_log
from repro.query.request import QueryRequest
from repro.storage.log import LogReader, list_logs
from repro.storage.manifest import ManifestCorruptionError
from repro.storage.recovery import CommittedState
from repro.storage.snapshot import pin_snapshot

OPTIONS = CarpOptions(
    pivot_count=16,
    oob_capacity=32,
    renegotiations_per_epoch=2,
    memtable_records=64,
    round_records=32,
    value_size=8,
)

NRANKS = 2


def _ingest(out_dir, epochs: int = 2):
    with CarpRun(NRANKS, out_dir, OPTIONS) as run:
        for epoch in range(epochs):
            streams = [
                RecordBatch(
                    np.linspace(rank, 100.0 + rank, 200, dtype="<f4"),
                    np.arange(200, dtype="<u8")
                    + np.uint64(rank) * np.uint64(1 << 32),
                    OPTIONS.value_size,
                )
                for rank in range(NRANKS)
            ]
            run.ingest_epoch(epoch, streams)
    return list_logs(out_dir)


@pytest.fixture(scope="module")
def log_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("mmap_logs")
    _ingest(out)
    return out


def test_close_releases_map(log_dir):
    reader = LogReader(list_logs(log_dir)[0])
    entry = reader.entries[0]
    assert len(reader.read_sst(entry)) == entry.count
    assert reader._map is not None and not reader._map.closed
    reader.close()
    assert reader._map.closed
    # double close is safe
    reader.close()
    with pytest.raises(ValueError):
        reader.read_sst(entry)


def test_context_manager_releases_map(log_dir):
    with LogReader(list_logs(log_dir)[0]) as reader:
        reader.read_sst(reader.entries[0])
    assert reader._map is not None and reader._map.closed


def test_no_resource_warning_on_lifecycle(log_dir):
    """Neither the opening fd nor the map leaks a ResourceWarning."""
    with warnings.catch_warnings():
        warnings.simplefilter("error", ResourceWarning)
        with LogReader(list_logs(log_dir)[0]) as reader:
            for entry in reader.entries:
                reader.read_sst(entry)
        del reader
        gc.collect()


def test_mid_init_failure_closes_descriptor(tmp_path):
    """A reader that fails during entry loading must close its fd.

    The map is created *after* the entries parse, so the failure path
    has only the descriptor to clean up; an unclosed one surfaces as a
    ResourceWarning at collection.
    """
    bad = tmp_path / "RDB-00000000.tbl"
    bad.write_bytes(b"no footer here")
    with warnings.catch_warnings():
        warnings.simplefilter("error", ResourceWarning)
        with pytest.raises(ManifestCorruptionError):
            LogReader(bad)
        gc.collect()


def test_zero_length_pinned_log(tmp_path):
    """An empty pinned state over a zero-length file holds no map."""
    empty = tmp_path / "RDB-00000000.tbl"
    empty.touch()
    pin = CommittedState(footer_end=0, manifest_offset=0, entries=())
    with LogReader(empty, pin=pin) as reader:
        assert reader._map is None
        assert reader.entries == []
        with pytest.raises(ValueError, match="holds no data"):
            reader._span(0, 1)
    # close on a map-less reader is a no-op
    reader.close()


def test_pinned_open_ignores_bytes_past_the_pin(log_dir, tmp_path):
    """A pinned reader never consults bytes after its commit point.

    Garbage appended after the pin (a concurrent writer's in-flight
    tail, torn by a crash) breaks a plain footer-parsing open but must
    not affect a pinned one — no footer parse, no backward scan.
    """
    src = list_logs(log_dir)[0]
    torn = tmp_path / src.name
    torn.write_bytes(src.read_bytes())
    snap = pin_snapshot(log_dir)
    state = next(p.state for p in snap.logs if p.path == str(src))
    assert state is not None
    with torn.open("ab") as fh:
        fh.write(b"\xde\xad" * 512)
    with pytest.raises(ManifestCorruptionError):
        LogReader(torn)
    with LogReader(torn, pin=state) as reader:
        assert [e.offset for e in reader.entries] == [
            e.offset for e in state.entries
        ]
        batch = reader.read_sst(reader.entries[0])
        assert len(batch) == reader.entries[0].count
    # the worker task takes the same pinned path through its cache
    worker_state: dict = {}
    result = probe_log(
        worker_state, str(torn), False,
        list(state.entries), 0.0, 1e9, False, pin=state,
    )
    assert result.scanned == sum(e.count for e in state.entries)
    for reader in worker_state["readers"].values():
        reader.close()


def test_session_release_and_close_release_maps(tmp_path):
    _ingest(tmp_path)
    with warnings.catch_warnings():
        warnings.simplefilter("error", ResourceWarning)
        session = Session(NRANKS, tmp_path, options=OPTIONS, record=True)
        # a session over an existing directory re-ingests; give it data
        for epoch in range(2):
            session.ingest_epoch(
                epoch,
                [
                    RecordBatch(
                        np.linspace(rank, 100.0 + rank, 200, dtype="<f4"),
                        np.arange(200, dtype="<u8")
                        + np.uint64(rank) * np.uint64(1 << 32),
                        OPTIONS.value_size,
                    )
                    for rank in range(NRANKS)
                ],
            )
        snap = session.snapshot()
        pinned_store = session.store(snap)
        resp = session.query(
            QueryRequest(lo=0.0, hi=50.0, epoch=0), snapshot=snap
        )
        assert resp.ok
        pinned_maps = [r._map for r in pinned_store._readers]
        assert all(m is not None and not m.closed for m in pinned_maps)
        session.release(snap)
        assert all(m.closed for m in pinned_maps)
        live_store = session.store()
        live_resp = session.query(QueryRequest(lo=0.0, hi=50.0, epoch=0))
        assert live_resp.ok and live_resp.digest() == resp.digest()
        live_maps = [r._map for r in live_store._readers]
        assert all(m is not None and not m.closed for m in live_maps)
        session.close()
        assert all(m.closed for m in live_maps)
        gc.collect()
