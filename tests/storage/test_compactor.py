"""Unit tests for the compactor (sorted clustered layout builder)."""

import numpy as np
import pytest

from repro.storage.compactor import (
    compact_all_epochs,
    compact_epoch,
    read_epoch,
    sorted_sst_boundaries,
)
from repro.storage.log import LogReader, LogWriter, list_logs, log_name


def write_carp_like(tmp_path, epochs=(0,), ranks=2, n=50, seed=0):
    """A small fake CARP output: per-rank logs with unsorted-ish data."""
    rng = np.random.default_rng(seed)
    from repro.core.records import RecordBatch, make_rids

    for r in range(ranks):
        with LogWriter(tmp_path / log_name(r)) as w:
            for ep in epochs:
                keys = rng.random(n).astype(np.float32) + r
                w.append_batch(
                    RecordBatch(keys, make_rids(r, ep * n, n), 8), ep, sort=True
                )
                w.flush_epoch(ep)


class TestReadEpoch:
    def test_reads_everything(self, tmp_path):
        write_carp_like(tmp_path, ranks=3, n=40)
        batch = read_epoch(tmp_path, 0)
        assert len(batch) == 120

    def test_missing_dir(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_epoch(tmp_path / "nope", 0)

    def test_missing_epoch(self, tmp_path):
        write_carp_like(tmp_path)
        with pytest.raises(ValueError, match="no data"):
            read_epoch(tmp_path, 99)


class TestCompactEpoch:
    def test_output_fully_sorted(self, tmp_path):
        write_carp_like(tmp_path / "in", ranks=3, n=64)
        out = compact_epoch(tmp_path / "in", tmp_path / "out", 0, sst_records=32)
        logs = list_logs(out)
        assert len(logs) == 1
        with LogReader(logs[0]) as r:
            prev_max = -np.inf
            total = 0
            for e in sorted(r.entries, key=lambda e: e.offset):
                b = r.read_sst(e)
                assert np.all(np.diff(b.keys) >= 0)
                assert b.keys[0] >= prev_max  # globally sorted across SSTs
                prev_max = b.keys[-1]
                total += len(b)
            assert total == 192

    def test_sst_sizing(self, tmp_path):
        write_carp_like(tmp_path / "in", ranks=1, n=100)
        out = compact_epoch(tmp_path / "in", tmp_path / "out", 0, sst_records=30)
        with LogReader(list_logs(out)[0]) as r:
            counts = [e.count for e in r.entries]
        assert counts == [30, 30, 30, 10]

    def test_epoch_dir_layout(self, tmp_path):
        write_carp_like(tmp_path / "in", epochs=(0, 1))
        d0 = compact_epoch(tmp_path / "in", tmp_path / "out", 0)
        d1 = compact_epoch(tmp_path / "in", tmp_path / "out", 1)
        assert d0.name == "0" and d1.name == "1"

    def test_validation(self, tmp_path):
        write_carp_like(tmp_path / "in")
        with pytest.raises(ValueError):
            compact_epoch(tmp_path / "in", tmp_path / "out", 0, sst_records=0)

    def test_no_records_lost(self, tmp_path):
        write_carp_like(tmp_path / "in", ranks=2, n=33)
        src = read_epoch(tmp_path / "in", 0)
        out = compact_epoch(tmp_path / "in", tmp_path / "out", 0, sst_records=7)
        dst = read_epoch(out, 0)
        assert sorted(dst.rids.tolist()) == sorted(src.rids.tolist())


class TestCompactAll:
    def test_all_epochs(self, tmp_path):
        write_carp_like(tmp_path / "in", epochs=(0, 1, 2))
        dirs = compact_all_epochs(tmp_path / "in", tmp_path / "out")
        assert [d.name for d in dirs] == ["0", "1", "2"]

    def test_missing_input(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            compact_all_epochs(tmp_path / "in", tmp_path / "out")


class TestSortedBoundaries:
    def test_boundaries_monotone(self, tmp_path):
        write_carp_like(tmp_path / "in", ranks=2, n=64)
        out = compact_epoch(tmp_path / "in", tmp_path / "out", 0, sst_records=16)
        bounds = sorted_sst_boundaries(out)
        assert len(bounds) == 9  # 128 records / 16 per SST + 1
        assert np.all(np.diff(bounds) >= 0)

    def test_rejects_multi_log_dirs(self, tmp_path):
        write_carp_like(tmp_path, ranks=2)
        with pytest.raises(ValueError, match="exactly one"):
            sorted_sst_boundaries(tmp_path)
