"""Tests for KoiDB integrity checking (fsck)."""

import numpy as np
import pytest

from repro.core.carp import CarpRun
from repro.core.config import CarpOptions
from repro.core.records import RecordBatch
from repro.storage.fsck import fsck
from repro.storage.log import LogWriter, list_logs, log_name
from repro.tools.fsck_cli import main as fsck_main

OPTS = CarpOptions(
    pivot_count=32, oob_capacity=32, renegotiations_per_epoch=2,
    memtable_records=128, round_records=128, value_size=8,
)


@pytest.fixture()
def clean_output(tmp_path):
    rng = np.random.default_rng(0)
    streams = [
        RecordBatch.from_keys(rng.random(400).astype(np.float32), rank=r,
                              value_size=8)
        for r in range(4)
    ]
    with CarpRun(4, tmp_path, OPTS) as run:
        run.ingest_epoch(0, streams)
    return tmp_path


class TestFsck:
    def test_clean_output_passes(self, clean_output):
        report = fsck(clean_output)
        assert report.ok, report.errors
        assert report.logs_checked == 4
        assert report.records_checked == 1600
        assert report.epochs == {0}

    def test_fast_mode_skips_bodies(self, clean_output):
        report = fsck(clean_output, deep=False)
        assert report.ok
        assert report.records_checked == 0
        assert report.ssts_checked > 0

    def test_missing_dir(self, tmp_path):
        report = fsck(tmp_path / "nope")
        assert not report.ok

    def test_detects_body_corruption(self, clean_output):
        path = list_logs(clean_output)[1]
        data = bytearray(path.read_bytes())
        data[90] ^= 0xFF  # somewhere inside the first SST's blocks
        path.write_bytes(bytes(data))
        report = fsck(clean_output)
        assert not report.ok
        assert any("corrupt SST" in e for e in report.errors)

    def test_detects_torn_log(self, clean_output):
        path = list_logs(clean_output)[0]
        with open(path, "ab") as fh:
            fh.write(b"\x00" * 32)  # writer crashed mid-append
        report = fsck(clean_output)
        assert not report.ok
        report2 = fsck(clean_output, recover=True)
        assert report2.ok

    def test_detects_duplicate_rids(self, tmp_path):
        b = RecordBatch.from_keys(np.array([1.0, 2.0], np.float32),
                                  value_size=8)
        for r in range(2):
            with LogWriter(tmp_path / log_name(r)) as w:
                w.append_batch(b, 0)  # same rids in both logs
                w.flush_epoch(0)
        report = fsck(tmp_path)
        assert not report.ok
        assert any("duplicate" in e for e in report.errors)

    def test_detects_sorted_flag_violation(self, tmp_path):
        """An SST claiming SORTED with unsorted keys is reported."""
        from repro.storage import sstable

        b = RecordBatch.from_keys(np.array([5.0, 1.0], np.float32),
                                  value_size=8)
        # build an SST that lies about being sorted
        original = sstable.build_sstable

        data, info = original(b, 0, sort=False)
        # patch the flags byte: set FLAG_SORTED and re-CRC the header
        import struct
        import zlib

        fields = list(struct.unpack(sstable._HEADER_FMT,
                                    data[: sstable.HEADER_SIZE]))
        fields[2] |= sstable.FLAG_SORTED
        hdr = struct.pack(sstable._HEADER_FMT, *fields)[:-4]
        crc = zlib.crc32(hdr) & 0xFFFFFFFF
        forged = hdr + crc.to_bytes(4, "little") + data[sstable.HEADER_SIZE:]

        from repro.storage.manifest import (
            ManifestEntry,
            encode_footer,
            encode_manifest_block,
        )

        path = tmp_path / log_name(0)
        entry = ManifestEntry(0, len(forged), 2, 1.0, 5.0, 0,
                              sstable.FLAG_SORTED, 0)
        block = encode_manifest_block([entry], 0, None)
        path.write_bytes(forged + block + encode_footer(len(forged)))
        report = fsck(tmp_path)
        assert not report.ok
        assert any("SORTED flag" in e for e in report.errors)


class TestFsckCli:
    def test_clean_exit_zero(self, clean_output, capsys):
        assert fsck_main(["-i", str(clean_output)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_corrupt_exit_one(self, clean_output, capsys):
        path = list_logs(clean_output)[0]
        data = bytearray(path.read_bytes())
        data[90] ^= 0xFF
        path.write_bytes(bytes(data))
        assert fsck_main(["-i", str(clean_output)]) == 1

    def test_recover_flag(self, clean_output):
        path = list_logs(clean_output)[0]
        with open(path, "ab") as fh:
            fh.write(b"\x00" * 16)
        assert fsck_main(["-i", str(clean_output)]) == 1
        assert fsck_main(["-i", str(clean_output), "--recover"]) == 0
