"""Unit tests for memtables and double buffering."""

import numpy as np
import pytest

from repro.core.records import RecordBatch
from repro.storage.memtable import DoubleBuffer, Memtable


def batch(n, value_size=8):
    return RecordBatch.from_keys(np.arange(n, dtype=np.float32),
                                 value_size=value_size)


class TestMemtable:
    def test_validation(self):
        with pytest.raises(ValueError):
            Memtable(0, 8)

    def test_add_and_len(self):
        m = Memtable(10, 8)
        m.add(batch(3))
        m.add(batch(2))
        assert len(m) == 5

    def test_is_full(self):
        m = Memtable(4, 8)
        m.add(batch(3))
        assert not m.is_full
        m.add(batch(1))
        assert m.is_full

    def test_can_exceed_capacity_transiently(self):
        m = Memtable(2, 8)
        m.add(batch(10))
        assert len(m) == 10
        assert m.is_full

    def test_drain(self):
        m = Memtable(10, 8)
        m.add(batch(4))
        out = m.drain()
        assert len(out) == 4
        assert len(m) == 0
        assert not m.is_full

    def test_drain_empty(self):
        m = Memtable(10, 16)
        out = m.drain()
        assert len(out) == 0
        assert out.value_size == 16

    def test_value_size_enforced(self):
        m = Memtable(10, 8)
        with pytest.raises(ValueError):
            m.add(batch(1, value_size=16))

    def test_empty_add_ignored(self):
        m = Memtable(10, 8)
        m.add(RecordBatch.empty(8))
        assert len(m) == 0

    def test_nbytes(self):
        m = Memtable(10, 8)
        m.add(batch(5))
        assert m.nbytes == 5 * 12  # 4B key + 8B value


class TestDoubleBuffer:
    def test_swap_returns_contents(self):
        db = DoubleBuffer(4, 8)
        db.add(batch(4))
        assert db.should_flush
        out = db.swap()
        assert len(out) == 4
        assert not db.should_flush
        assert db.flush_swaps == 1

    def test_swap_alternates_buffers(self):
        db = DoubleBuffer(2, 8)
        db.add(batch(2))
        first = db.active
        db.swap()
        assert db.active is not first

    def test_drain_all(self):
        db = DoubleBuffer(4, 8)
        db.add(batch(3))
        db.swap()  # 3 records now in the spare (conceptually flushing)
        # swap drains, so spare is empty; add more and drain everything
        db.add(batch(2))
        out = db.drain_all()
        assert len(out) == 2

    def test_drain_all_empty(self):
        assert len(DoubleBuffer(4, 8).drain_all()) == 0

    def test_drain_all_empty_preserves_value_size(self):
        # regression: concat of zero parts used to fall back to the
        # paper default (56B), breaking a later add() of the drained
        # batch into a same-sized memtable
        db = DoubleBuffer(4, 16)
        out = db.drain_all()
        assert out.value_size == 16
        sink = Memtable(4, 16)
        sink.add(out)  # must not raise

    def test_drain_all_after_partial_fill_preserves_value_size(self):
        db = DoubleBuffer(4, 16)
        db.add(batch(2, value_size=16))
        assert db.drain_all().value_size == 16
