"""Golden corrupted-log corpus: classification, repair, no byte loss.

Each ``tests/storage/corpus/<name>.bin`` is one hand-broken KoiDB log
(see ``generate.py`` there); ``expected.json`` records the damage
class the recovery scanner must diagnose and the epochs that must
survive.  Repair is additionally held to the R701 discipline: every
byte it takes out of a log must land in ``quarantine/``.
"""

import json
import sys
from pathlib import Path

import pytest

from repro.storage.fsck import fsck
from repro.storage.log import QUARANTINE_DIR, LogReader, log_name
from repro.storage.manifest import ManifestCorruptionError
from repro.storage.recovery import (
    KIND_CLEAN,
    KIND_CORRUPT_SST,
    classify_log,
    repair_log,
)

CORPUS_DIR = Path(__file__).parent / "corpus"
EXPECTED = json.loads((CORPUS_DIR / "expected.json").read_text())
CASES = sorted(EXPECTED)


def _install(tmp_path: Path, name: str) -> Path:
    target = tmp_path / log_name(0)
    target.write_bytes((CORPUS_DIR / f"{name}.bin").read_bytes())
    return target


@pytest.mark.parametrize("name", CASES)
def test_classification(tmp_path, name):
    path = _install(tmp_path, name)
    diag = classify_log(path, deep=True)
    assert diag.kind == EXPECTED[name]["kind"]
    assert list(diag.committed_epochs) == EXPECTED[name]["committed_epochs"]


@pytest.mark.parametrize("name", CASES)
def test_repair_preserves_every_byte(tmp_path, name):
    path = _install(tmp_path, name)
    original = path.read_bytes()
    quarantine = tmp_path / QUARANTINE_DIR
    action = repair_log(path, quarantine, deep=True)
    assert action.kind == EXPECTED[name]["kind"]

    if action.removed:
        # the whole file moved aside; its bytes are intact in quarantine
        assert not path.exists()
        assert Path(action.quarantine_path).read_bytes() == original
        return
    if action.quarantined_bytes:
        kept = path.read_bytes()
        tail = Path(action.quarantine_path).read_bytes()
        assert kept + tail == original
        assert len(tail) == action.quarantined_bytes
    else:
        # clean or corrupt-committed-sst: repair must not touch the file
        assert path.read_bytes() == original


@pytest.mark.parametrize("name", CASES)
def test_repaired_log_is_consistent(tmp_path, name):
    path = _install(tmp_path, name)
    action = repair_log(path, tmp_path / QUARANTINE_DIR, deep=True)
    if action.removed:
        return
    diag = classify_log(path, deep=True)
    if EXPECTED[name]["kind"] == KIND_CORRUPT_SST:
        assert diag.kind == KIND_CORRUPT_SST  # inside the durable prefix
        return
    assert diag.kind == KIND_CLEAN
    with LogReader(path) as reader:
        epochs = sorted({e.epoch for e in reader.entries})
    assert epochs == EXPECTED[name]["committed_epochs"]


@pytest.mark.parametrize("name", CASES)
def test_reader_recover_matches_expected_epochs(tmp_path, name):
    path = _install(tmp_path, name)
    committed = EXPECTED[name]["committed_epochs"]
    if not committed:
        with pytest.raises(ManifestCorruptionError):
            LogReader(path, recover=True)
        return
    with LogReader(path, recover=True) as reader:
        assert sorted({e.epoch for e in reader.entries}) == committed
        if EXPECTED[name]["kind"] in (KIND_CLEAN, KIND_CORRUPT_SST):
            # damage (if any) is inside the committed prefix; the
            # commit point is still end-of-file
            assert reader.recovered_bytes_dropped == 0
        else:
            assert reader.recovered_bytes_dropped > 0


@pytest.mark.parametrize("name", CASES)
def test_fsck_repair_round_trip(tmp_path, name):
    _install(tmp_path, name)
    report = fsck(tmp_path, deep=True, repair=True)
    committed = EXPECTED[name]["committed_epochs"]
    kind = EXPECTED[name]["kind"]
    assert report.classifications == {log_name(0): kind}
    if kind == KIND_CORRUPT_SST:
        assert not report.ok  # unrepairable: inside the committed prefix
        return
    if not committed:
        # nothing durable: the log was quarantined whole and the
        # directory is now (correctly) log-free
        assert [e for e in report.errors if "no KoiDB logs" in e]
        return
    assert report.ok, report.errors
    assert sorted(report.epochs) == committed
    if kind != KIND_CLEAN:
        assert report.repaired
        assert report.errors_before


def test_corpus_matches_generator(tmp_path):
    """The checked-in corpus is exactly what generate.py produces."""
    sys.path.insert(0, str(CORPUS_DIR))
    try:
        from generate import build_cases
    finally:
        sys.path.pop(0)
    cases = build_cases(tmp_path)
    assert sorted(cases) == CASES
    for name, (blob, meta) in cases.items():
        assert (CORPUS_DIR / f"{name}.bin").read_bytes() == blob, name
        assert EXPECTED[name] == meta
