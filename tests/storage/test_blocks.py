"""Unit tests for key/value block encoding."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.records import make_rids
from repro.storage.blocks import (
    BlockCorruptionError,
    decode_key_block,
    decode_value_block,
    encode_key_block,
    encode_value_block,
    key_block_size,
    make_filler,
    value_block_size,
)


class TestKeyBlocks:
    def test_roundtrip(self):
        keys = np.array([1.5, -2.0, 3.25], dtype=np.float32)
        assert np.array_equal(decode_key_block(encode_key_block(keys)), keys)

    def test_empty(self):
        assert len(decode_key_block(encode_key_block(np.array([], np.float32)))) == 0

    def test_size_accounting(self):
        keys = np.zeros(10, np.float32)
        assert len(encode_key_block(keys)) == key_block_size(10)

    def test_crc_detects_corruption(self):
        data = bytearray(encode_key_block(np.array([1.0, 2.0], np.float32)))
        data[0] ^= 0xFF
        with pytest.raises(BlockCorruptionError, match="CRC"):
            decode_key_block(bytes(data))

    def test_truncation_detected(self):
        data = encode_key_block(np.array([1.0, 2.0], np.float32))
        with pytest.raises(BlockCorruptionError):
            decode_key_block(data[:-1])

    def test_misaligned_payload_detected(self):
        from repro.storage.blocks import _crc

        bad = b"abc"  # 3 bytes, not a multiple of 4
        with pytest.raises(BlockCorruptionError, match="multiple"):
            decode_key_block(bad + _crc(bad))

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False, width=32),
                    max_size=100))
    @settings(max_examples=50)
    def test_roundtrip_property(self, values):
        keys = np.array(values, dtype=np.float32)
        assert np.array_equal(decode_key_block(encode_key_block(keys)), keys)


class TestValueBlocks:
    def test_roundtrip(self):
        rids = make_rids(3, 100, 5)
        data = encode_value_block(rids, value_size=16)
        assert np.array_equal(decode_value_block(data, 16), rids)

    def test_size_accounting(self):
        rids = make_rids(0, 0, 7)
        assert len(encode_value_block(rids, 60)) == value_block_size(7, 60)

    def test_paper_value_size(self):
        rids = make_rids(1, 0, 3)
        data = encode_value_block(rids, value_size=56)
        assert np.array_equal(decode_value_block(data, 56, verify_filler=True), rids)

    def test_minimal_value_size(self):
        rids = make_rids(0, 0, 4)
        data = encode_value_block(rids, value_size=8)
        assert np.array_equal(decode_value_block(data, 8), rids)

    def test_too_small_value_size(self):
        with pytest.raises(ValueError):
            encode_value_block(make_rids(0, 0, 1), value_size=4)

    def test_filler_is_deterministic(self):
        rids = make_rids(2, 5, 3)
        assert np.array_equal(make_filler(rids, 10), make_filler(rids, 10))

    def test_filler_verification_catches_tamper(self):
        rids = make_rids(0, 0, 2)
        data = bytearray(encode_value_block(rids, 16))
        # flip a filler byte and fix up nothing: CRC catches it first
        data[10] ^= 0x01
        with pytest.raises(BlockCorruptionError):
            decode_value_block(bytes(data), 16, verify_filler=True)

    def test_crc_detects_corruption(self):
        data = bytearray(encode_value_block(make_rids(0, 0, 2), 8))
        data[3] ^= 0x80
        with pytest.raises(BlockCorruptionError, match="CRC"):
            decode_value_block(bytes(data), 8)

    def test_wrong_value_size_detected(self):
        data = encode_value_block(make_rids(0, 0, 3), 8)
        with pytest.raises(BlockCorruptionError):
            decode_value_block(data, 16)

    @given(rank=st.integers(0, 100), count=st.integers(0, 50),
           vsize=st.sampled_from([8, 12, 56, 60]))
    @settings(max_examples=50)
    def test_roundtrip_property(self, rank, count, vsize):
        rids = make_rids(rank, 0, count)
        data = encode_value_block(rids, vsize)
        assert np.array_equal(
            decode_value_block(data, vsize, verify_filler=True), rids
        )
