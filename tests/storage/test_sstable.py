"""Unit tests for SSTable build/parse."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.records import RecordBatch
from repro.storage.blocks import BlockCorruptionError
from repro.storage.sstable import (
    FLAG_SORTED,
    FLAG_STRAY,
    HEADER_SIZE,
    build_sstable,
    parse_header,
    parse_keys_only,
    parse_sstable,
)


def batch(*keys, value_size=8):
    return RecordBatch.from_keys(np.array(keys, np.float32), value_size=value_size)


class TestBuild:
    def test_roundtrip(self):
        b = batch(3.0, 1.0, 2.0)
        data, info = build_sstable(b, epoch=5)
        parsed_info, parsed = parse_sstable(data)
        assert parsed_info.epoch == 5
        assert parsed.keys.tolist() == [1.0, 2.0, 3.0]  # sorted
        assert sorted(parsed.rids.tolist()) == sorted(b.rids.tolist())

    def test_unsorted_preserves_order(self):
        b = batch(3.0, 1.0, 2.0)
        data, info = build_sstable(b, epoch=0, sort=False)
        assert not info.is_sorted
        _, parsed = parse_sstable(data)
        assert parsed.keys.tolist() == [3.0, 1.0, 2.0]

    def test_key_range_in_header(self):
        data, info = build_sstable(batch(5.0, 1.0, 9.0), epoch=0)
        assert info.kmin == 1.0 and info.kmax == 9.0

    def test_flags(self):
        _, info = build_sstable(batch(1.0), 0, sort=True, stray=True)
        assert info.flags == (FLAG_SORTED | FLAG_STRAY)
        assert info.is_stray and info.is_sorted

    def test_sub_id(self):
        _, info = build_sstable(batch(1.0), 0, sub_id=3)
        assert info.sub_id == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            build_sstable(RecordBatch.empty(8), 0)

    def test_value_size_preserved(self):
        data, info = build_sstable(batch(1.0, value_size=56), 0)
        assert info.value_size == 56
        _, parsed = parse_sstable(data)
        assert parsed.value_size == 56

    def test_total_len_matches(self):
        data, info = build_sstable(batch(1.0, 2.0), 0)
        assert len(data) == info.total_len


class TestParse:
    def test_header_only(self):
        data, _ = build_sstable(batch(1.0, 2.0), epoch=3)
        info = parse_header(data[:HEADER_SIZE])
        assert info.count == 2 and info.epoch == 3

    def test_keys_only(self):
        data, _ = build_sstable(batch(2.0, 1.0), 0)
        info, keys = parse_keys_only(data)
        assert keys.tolist() == [1.0, 2.0]

    def test_keys_only_without_value_block(self):
        data, info = build_sstable(batch(1.0, 2.0), 0)
        truncated = data[: HEADER_SIZE + info.key_block_len]
        _, keys = parse_keys_only(truncated)
        assert len(keys) == 2

    def test_bad_magic(self):
        data, _ = build_sstable(batch(1.0), 0)
        with pytest.raises(BlockCorruptionError, match="magic"):
            parse_header(b"XXXX" + data[4:])

    def test_header_crc(self):
        data = bytearray(build_sstable(batch(1.0), 0)[0])
        data[10] ^= 0xFF
        with pytest.raises(BlockCorruptionError):
            parse_header(bytes(data))

    def test_truncated_header(self):
        with pytest.raises(BlockCorruptionError, match="truncated"):
            parse_header(b"KS")

    def test_truncated_body(self):
        data, _ = build_sstable(batch(1.0, 2.0), 0)
        with pytest.raises(BlockCorruptionError):
            parse_sstable(data[:-3])

    def test_key_block_corruption(self):
        data = bytearray(build_sstable(batch(1.0, 2.0), 0)[0])
        data[HEADER_SIZE] ^= 0xFF
        with pytest.raises(BlockCorruptionError):
            parse_sstable(bytes(data))

    @given(st.lists(st.floats(0, 1e6, width=32), min_size=1, max_size=50),
           st.integers(0, 100))
    @settings(max_examples=40)
    def test_roundtrip_property(self, values, epoch):
        b = RecordBatch.from_keys(np.array(values, np.float32), value_size=8)
        data, info = build_sstable(b, epoch)
        parsed_info, parsed = parse_sstable(data)
        assert parsed_info == info
        assert sorted(parsed.rids.tolist()) == sorted(b.rids.tolist())
        assert np.all(np.diff(parsed.keys) >= 0)
        assert parsed.keys.min() == info.kmin
        assert parsed.keys.max() == info.kmax
