"""Unit tests for the KoiDB storage backend."""

import numpy as np
import pytest

from repro.core.config import CarpOptions
from repro.core.records import RecordBatch
from repro.storage.koidb import KoiDB
from repro.storage.log import LogReader, log_name
from repro.storage.sstable import FLAG_STRAY

OPTS = CarpOptions(memtable_records=8, value_size=8, subpartitions=1)


def batch(*keys):
    return RecordBatch.from_keys(np.array(keys, np.float32), value_size=8)


def read_entries(tmp_path, rank=0):
    with LogReader(tmp_path / log_name(rank)) as r:
        return list(r.entries)


def read_all(tmp_path, rank=0):
    out = []
    with LogReader(tmp_path / log_name(rank)) as r:
        for e in r.entries:
            out.append((e, r.read_sst(e)))
    return out


class TestLifecycle:
    def test_epoch_required(self, tmp_path):
        db = KoiDB(0, tmp_path, OPTS)
        with pytest.raises(RuntimeError, match="outside an epoch"):
            db.ingest(batch(1.0))
        db.close()

    def test_double_begin_rejected(self, tmp_path):
        db = KoiDB(0, tmp_path, OPTS)
        db.begin_epoch(0)
        with pytest.raises(RuntimeError):
            db.begin_epoch(1)
        db.close()

    def test_finish_without_begin_rejected(self, tmp_path):
        db = KoiDB(0, tmp_path, OPTS)
        with pytest.raises(RuntimeError):
            db.finish_epoch()
        db.close()

    def test_basic_roundtrip(self, tmp_path):
        db = KoiDB(0, tmp_path, OPTS)
        db.begin_epoch(0)
        db.ingest(batch(2.0, 1.0, 3.0))
        db.finish_epoch()
        db.close()
        entries = read_entries(tmp_path)
        assert sum(e.count for e in entries) == 3

    def test_memtable_flush_threshold(self, tmp_path):
        db = KoiDB(0, tmp_path, OPTS)
        db.begin_epoch(0)
        db.ingest(batch(*range(20)))  # capacity 8 -> at least 2 flushes
        db.finish_epoch()
        db.close()
        assert db.stats.memtable_flushes >= 2
        assert sum(e.count for e in read_entries(tmp_path)) == 20

    def test_sorted_ssts(self, tmp_path):
        db = KoiDB(0, tmp_path, OPTS)
        db.begin_epoch(0)
        db.ingest(batch(5.0, 1.0, 3.0))
        db.finish_epoch()
        db.close()
        for _e, b in read_all(tmp_path):
            assert np.all(np.diff(b.keys) >= 0)

    def test_unsorted_option(self, tmp_path):
        db = KoiDB(0, tmp_path, OPTS.with_(sort_ssts=False))
        db.begin_epoch(0)
        db.ingest(batch(5.0, 1.0, 3.0))
        db.finish_epoch()
        db.close()
        (_, b), = read_all(tmp_path)
        assert b.keys.tolist() == [5.0, 1.0, 3.0]


class TestStraySeparation:
    def test_strays_detected(self, tmp_path):
        db = KoiDB(0, tmp_path, OPTS)
        db.begin_epoch(0)
        db.set_owned_range(0.0, 1.0, inclusive_hi=False)
        db.ingest(batch(0.5, 2.0, 0.7))
        db.finish_epoch()
        db.close()
        assert db.stats.stray_records == 1

    def test_strays_in_separate_ssts(self, tmp_path):
        db = KoiDB(0, tmp_path, OPTS)
        db.begin_epoch(0)
        db.set_owned_range(0.0, 1.0, inclusive_hi=False)
        db.ingest(batch(0.5, 2.0, 0.7))
        db.finish_epoch()
        db.close()
        entries = read_entries(tmp_path)
        stray = [e for e in entries if e.flags & FLAG_STRAY]
        main = [e for e in entries if not (e.flags & FLAG_STRAY)]
        assert sum(e.count for e in stray) == 1
        assert sum(e.count for e in main) == 2
        # main SSTs keep tight ranges
        assert all(e.kmax < 1.0 for e in main)

    def test_separation_disabled_pollutes_main(self, tmp_path):
        db = KoiDB(0, tmp_path, OPTS.with_(separate_strays=False))
        db.begin_epoch(0)
        db.set_owned_range(0.0, 1.0, inclusive_hi=False)
        db.ingest(batch(0.5, 20.0, 0.7))
        db.finish_epoch()
        db.close()
        entries = read_entries(tmp_path)
        assert all(not (e.flags & FLAG_STRAY) for e in entries)
        assert max(e.kmax for e in entries) == 20.0
        # strays still counted for stats even when not separated
        assert db.stats.stray_records == 1

    def test_inclusive_hi_boundary(self, tmp_path):
        db = KoiDB(0, tmp_path, OPTS)
        db.begin_epoch(0)
        db.set_owned_range(0.0, 1.0, inclusive_hi=True)
        db.ingest(batch(1.0))
        db.finish_epoch()
        db.close()
        assert db.stats.stray_records == 0

    def test_exclusive_hi_boundary(self, tmp_path):
        db = KoiDB(0, tmp_path, OPTS)
        db.begin_epoch(0)
        db.set_owned_range(0.0, 1.0, inclusive_hi=False)
        db.ingest(batch(1.0))
        db.finish_epoch()
        db.close()
        assert db.stats.stray_records == 1

    def test_no_owned_range_means_no_strays(self, tmp_path):
        db = KoiDB(0, tmp_path, OPTS)
        db.begin_epoch(0)
        db.ingest(batch(-100.0, 100.0))
        db.finish_epoch()
        db.close()
        assert db.stats.stray_records == 0


class TestSubpartitioning:
    def test_split_into_key_disjoint_ssts(self, tmp_path):
        opts = OPTS.with_(subpartitions=4, memtable_records=64)
        db = KoiDB(0, tmp_path, opts)
        db.begin_epoch(0)
        rng = np.random.default_rng(0)
        db.ingest(RecordBatch.from_keys(
            rng.random(64).astype(np.float32), value_size=8))
        db.finish_epoch()
        db.close()
        entries = sorted(read_entries(tmp_path), key=lambda e: e.kmin)
        assert len(entries) == 4
        for a, b in zip(entries, entries[1:]):
            assert a.kmax <= b.kmin
        assert {e.sub_id for e in entries} == {0, 1, 2, 3}

    def test_small_flush_fewer_subparts(self, tmp_path):
        opts = OPTS.with_(subpartitions=4)
        db = KoiDB(0, tmp_path, opts)
        db.begin_epoch(0)
        db.ingest(batch(1.0, 2.0))  # fewer records than subpartitions
        db.finish_epoch()
        db.close()
        entries = read_entries(tmp_path)
        assert sum(e.count for e in entries) == 2
        assert len(entries) <= 2

    def test_smaller_ssts_than_unsplit(self, tmp_path):
        rng = np.random.default_rng(1)
        keys = rng.random(128).astype(np.float32)
        sizes = {}
        for sub in (1, 4):
            d = tmp_path / f"sub{sub}"
            db = KoiDB(0, d, OPTS.with_(subpartitions=sub, memtable_records=128))
            db.begin_epoch(0)
            db.ingest(RecordBatch.from_keys(keys, value_size=8))
            db.finish_epoch()
            db.close()
            entries = read_entries(d)
            sizes[sub] = max(e.length for e in entries)
        assert sizes[4] < sizes[1]


class TestStats:
    def test_bytes_written_matches_manifest(self, tmp_path):
        db = KoiDB(0, tmp_path, OPTS)
        db.begin_epoch(0)
        db.ingest(batch(*range(30)))
        db.finish_epoch()
        db.close()
        assert db.stats.bytes_written == sum(e.length for e in read_entries(tmp_path))

    def test_records_in(self, tmp_path):
        db = KoiDB(0, tmp_path, OPTS)
        db.begin_epoch(0)
        db.ingest(batch(1.0))
        db.ingest(batch(2.0, 3.0))
        db.finish_epoch()
        db.close()
        assert db.stats.records_in == 3
