"""Generator for the golden corrupted-log corpus.

Builds one clean two-epoch KoiDB log deterministically, then derives
~a dozen hand-broken variants — one per damage class the recovery
scanner (:mod:`repro.storage.recovery`) must diagnose.  Each case is a
``<name>.bin`` file next to this script plus an entry in
``expected.json`` recording the expected classification and the epochs
that must survive recovery.

Regenerate (idempotent — same bytes every run)::

    PYTHONPATH=src python tests/storage/corpus/generate.py

``tests/storage/test_corpus.py`` parametrizes over ``expected.json``
and also re-runs this builder to prove the checked-in bytes match.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.records import RecordBatch
from repro.storage.log import LogWriter
from repro.storage.manifest import FOOTER_SIZE
from repro.storage.recovery import (
    KIND_CLEAN,
    KIND_CORRUPT_SST,
    KIND_EMPTY,
    KIND_NO_FOOTER,
    KIND_ORPHAN_SST,
    KIND_TORN_FOOTER,
    KIND_TORN_MANIFEST,
    KIND_TORN_TAIL,
)

CORPUS_DIR = Path(__file__).parent
EXPECTED_FILE = CORPUS_DIR / "expected.json"


def _flip(data: bytes, offset: int) -> bytes:
    return data[:offset] + bytes([data[offset] ^ 0xFF]) + data[offset + 1 :]


def build_cases(tmp_dir: Path) -> dict[str, tuple[bytes, dict[str, object]]]:
    """All corpus cases: name -> (log bytes, expected classification)."""
    # --- one clean 2-epoch log, with every structure offset recorded
    log_path = tmp_dir / "clean.tbl"
    rng = np.random.default_rng(12345)
    ssts: dict[int, list[tuple[int, int]]] = {0: [], 1: []}
    manifests: dict[int, tuple[int, int]] = {}
    with LogWriter(log_path) as writer:
        for epoch in range(2):
            for sub in range(2):
                batch = RecordBatch.from_keys(
                    rng.uniform(0.0, 1.0, 64).astype(np.float32),
                    rank=0,
                    start_seq=epoch * 1000 + sub * 100,
                    value_size=8,
                )
                entry = writer.append_batch(batch, epoch)
                ssts[epoch].append((entry.offset, entry.length))
            start = writer.offset
            writer.flush_epoch(epoch)
            manifests[epoch] = (start, writer.offset)
    data = log_path.read_bytes()

    epoch0_end = manifests[0][1]  # commit point of epoch 0
    m1_start, m1_end = manifests[1]
    sst1_first = ssts[1][0]

    def expect(kind: str, epochs: list[int]) -> dict[str, object]:
        return {"kind": kind, "committed_epochs": epochs}

    return {
        "clean": (data, expect(KIND_CLEAN, [0, 1])),
        "empty": (b"", expect(KIND_EMPTY, [])),
        # cut before the first manifest: SSTs only, nothing committed
        "no-footer": (
            data[: manifests[0][0]], expect(KIND_NO_FOOTER, [])
        ),
        # epoch 1's first SST torn mid-write
        "torn-sst": (
            data[: sst1_first[0] + sst1_first[1] // 2],
            expect(KIND_TORN_TAIL, [0]),
        ),
        # both epoch-1 SSTs complete, but the committing manifest never
        # started
        "orphan-sst": (data[:m1_start], expect(KIND_ORPHAN_SST, [0])),
        # epoch-1 manifest block header torn after 6 bytes
        "torn-manifest-header": (
            data[: m1_start + 6], expect(KIND_TORN_MANIFEST, [0])
        ),
        # epoch-1 manifest block body torn (footer never written)
        "torn-manifest-body": (
            data[: m1_end - FOOTER_SIZE - 4],
            expect(KIND_TORN_MANIFEST, [0]),
        ),
        # complete manifest block, footer half-written
        "torn-footer": (
            data[: m1_end - FOOTER_SIZE // 2],
            expect(KIND_TORN_FOOTER, [0]),
        ),
        # complete manifest block, footer present but bit-flipped
        "corrupt-footer": (
            _flip(data, len(data) - 1), expect(KIND_TORN_FOOTER, [0])
        ),
        # fully committed log with garbage appended after the footer
        "garbage-tail": (
            data + b"\xde\xad\xbe\xef" * 8, expect(KIND_TORN_TAIL, [0, 1])
        ),
        # a bit flip inside the epoch-1 manifest block: its own footer
        # CRC-decodes but the chain fails, so recovery must fall back
        # to epoch 0's footer
        "bitflip-manifest": (
            _flip(data, m1_start + 20), expect(KIND_TORN_MANIFEST, [0])
        ),
        # a bit flip inside a *committed* SST: outside the single-crash
        # model — diagnosed (deep) but never "repaired"
        "corrupt-committed-sst": (
            _flip(data, ssts[0][0][0] + 40),
            expect(KIND_CORRUPT_SST, [0, 1]),
        ),
    }


def main() -> None:
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        cases = build_cases(Path(tmp))
    expected: dict[str, dict[str, object]] = {}
    for name, (blob, meta) in sorted(cases.items()):
        (CORPUS_DIR / f"{name}.bin").write_bytes(blob)
        expected[name] = meta
    EXPECTED_FILE.write_text(json.dumps(expected, indent=2) + "\n")
    print(f"wrote {len(cases)} corpus cases to {CORPUS_DIR}")


if __name__ == "__main__":
    main()
