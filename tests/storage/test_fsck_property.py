"""Property test: fsck passes on any freshly written KoiDB directory.

For every trace generator and a hypothesis-drawn combination of rank
count, records per rank, and seed, a full ingest through ``CarpRun``
must produce a directory that ``fsck`` certifies clean with exactly
the records that went in.  This is the end-to-end counterpart of the
per-format invariants enforced by carp-lint's F-rules (see
docs/INVARIANTS.md).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.carp import CarpRun
from repro.core.config import CarpOptions
from repro.storage.fsck import fsck
from repro.traces import amr, vpic

GENERATORS = {
    "vpic": (vpic.VpicTraceSpec, vpic.generate_timestep),
    "amr": (amr.AmrTraceSpec, amr.generate_timestep),
}

OPTS = CarpOptions(
    pivot_count=16, oob_capacity=64, renegotiations_per_epoch=2,
    memtable_records=128, round_records=128, value_size=56,
)


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    trace=st.sampled_from(sorted(GENERATORS)),
    nranks=st.integers(min_value=1, max_value=4),
    per_rank=st.integers(min_value=32, max_value=256),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_fresh_koidb_dir_is_fsck_clean(tmp_path, trace, nranks, per_rank, seed):
    spec_cls, generate = GENERATORS[trace]
    kw = (
        {"particles_per_rank": per_rank}
        if trace == "vpic"
        else {"cells_per_rank": per_rank}
    )
    spec = spec_cls(nranks=nranks, timesteps=(0,), seed=seed, **kw)
    streams = generate(spec, 0)

    out = tmp_path / f"{trace}-{nranks}-{per_rank}-{seed}"
    with CarpRun(nranks, out, OPTS) as run:
        run.ingest_epoch(0, streams)

    report = fsck(out)
    assert report.ok, report.errors
    assert report.logs_checked == nranks
    assert report.records_checked == nranks * per_rank
    assert report.epochs == {0}


# --------------------------------------------------------- crash points
#
# Recovery's core property (paper §V-A): whatever byte a crash stops
# the log at, repair yields a *prefix* of the committed epochs — never
# a superset, never invented entries — cut exactly at an epoch
# boundary.

import numpy as np  # noqa: E402

from repro.core.records import RecordBatch  # noqa: E402
from repro.storage.log import QUARANTINE_DIR, LogReader, LogWriter, log_name  # noqa: E402
from repro.storage.recovery import (  # noqa: E402
    KIND_CLEAN,
    KIND_CORRUPT_SST,
    classify_log,
    repair_log,
)

_CRASH_EPOCHS = 3


def _build_reference_log(directory, seed: int):
    """A 3-epoch log plus its per-epoch commit-point offsets."""
    rng = np.random.default_rng(seed)
    path = directory / log_name(0)
    boundaries = [0]
    entries_per_epoch = []
    with LogWriter(path) as writer:
        for epoch in range(_CRASH_EPOCHS):
            epoch_entries = []
            for sub in range(2):
                batch = RecordBatch.from_keys(
                    rng.uniform(0.0, 1.0, 48).astype(np.float32),
                    rank=0,
                    start_seq=epoch * 1000 + sub * 100,
                    value_size=8,
                )
                epoch_entries.append(writer.append_batch(batch, epoch))
            writer.flush_epoch(epoch)
            boundaries.append(writer.offset)
            entries_per_epoch.append(tuple(epoch_entries))
    return path, path.read_bytes(), boundaries, entries_per_epoch


@settings(
    max_examples=24,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    cut_fraction=st.floats(min_value=0.0, max_value=1.0),
)
def test_any_crash_point_recovers_to_an_epoch_prefix(
    tmp_path, seed, cut_fraction
):
    workdir = tmp_path / f"cut-{seed}-{cut_fraction}"
    workdir.mkdir()
    path, data, boundaries, entries_per_epoch = _build_reference_log(
        workdir, seed
    )
    cut = int(len(data) * cut_fraction)
    path.write_bytes(data[:cut])

    repair_log(path, workdir / QUARANTINE_DIR, deep=True)

    # the crash landed between boundary k and k+1: exactly epochs 0..k-1
    # survive, as the byte-identical prefix of the original log
    k = max(i for i, b in enumerate(boundaries) if b <= cut)
    if k == 0:
        assert not path.exists()  # nothing committed: quarantined whole
        return
    assert path.read_bytes() == data[: boundaries[k]]
    assert classify_log(path, deep=True).kind == KIND_CLEAN
    with LogReader(path) as reader:
        recovered = tuple(reader.entries)
    expected = tuple(e for epoch in entries_per_epoch[:k] for e in epoch)
    assert recovered == expected  # a prefix — never a superset


@settings(
    max_examples=24,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    flip_fraction=st.floats(min_value=0.0, max_value=1.0, exclude_max=True),
)
def test_any_bitflip_never_yields_a_superset(tmp_path, seed, flip_fraction):
    workdir = tmp_path / f"flip-{seed}-{flip_fraction}"
    workdir.mkdir()
    path, data, boundaries, entries_per_epoch = _build_reference_log(
        workdir, seed
    )
    offset = int(len(data) * flip_fraction)
    path.write_bytes(
        data[:offset] + bytes([data[offset] ^ 0xFF]) + data[offset + 1 :]
    )

    repair_log(path, workdir / QUARANTINE_DIR, deep=True)

    all_entries = [e for epoch in entries_per_epoch for e in epoch]
    if not path.exists():
        return  # the flip destroyed every commit point: empty prefix
    diag = classify_log(path, deep=True)
    # either fully repaired to a clean epoch prefix, or the flip landed
    # inside a committed SST (unrepairable, chain intact)
    assert diag.kind in (KIND_CLEAN, KIND_CORRUPT_SST)
    assert len(path.read_bytes()) in boundaries
    with LogReader(path) as reader:
        recovered = list(reader.entries)
    assert len(recovered) <= len(all_entries)
    for got, want in zip(recovered, all_entries):
        assert got == want  # entry-by-entry prefix, nothing invented
