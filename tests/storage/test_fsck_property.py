"""Property test: fsck passes on any freshly written KoiDB directory.

For every trace generator and a hypothesis-drawn combination of rank
count, records per rank, and seed, a full ingest through ``CarpRun``
must produce a directory that ``fsck`` certifies clean with exactly
the records that went in.  This is the end-to-end counterpart of the
per-format invariants enforced by carp-lint's F-rules (see
docs/INVARIANTS.md).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.carp import CarpRun
from repro.core.config import CarpOptions
from repro.storage.fsck import fsck
from repro.traces import amr, vpic

GENERATORS = {
    "vpic": (vpic.VpicTraceSpec, vpic.generate_timestep),
    "amr": (amr.AmrTraceSpec, amr.generate_timestep),
}

OPTS = CarpOptions(
    pivot_count=16, oob_capacity=64, renegotiations_per_epoch=2,
    memtable_records=128, round_records=128, value_size=56,
)


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    trace=st.sampled_from(sorted(GENERATORS)),
    nranks=st.integers(min_value=1, max_value=4),
    per_rank=st.integers(min_value=32, max_value=256),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_fresh_koidb_dir_is_fsck_clean(tmp_path, trace, nranks, per_rank, seed):
    spec_cls, generate = GENERATORS[trace]
    kw = (
        {"particles_per_rank": per_rank}
        if trace == "vpic"
        else {"cells_per_rank": per_rank}
    )
    spec = spec_cls(nranks=nranks, timesteps=(0,), seed=seed, **kw)
    streams = generate(spec, 0)

    out = tmp_path / f"{trace}-{nranks}-{per_rank}-{seed}"
    with CarpRun(nranks, out, OPTS) as run:
        run.ingest_epoch(0, streams)

    report = fsck(out)
    assert report.ok, report.errors
    assert report.logs_checked == nranks
    assert report.records_checked == nranks * per_rank
    assert report.epochs == {0}
