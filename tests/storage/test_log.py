"""Unit tests for per-rank append-only logs."""

import numpy as np
import pytest

from repro.core.records import RecordBatch
from repro.storage.log import LogReader, LogWriter, list_logs, log_name, log_rank
from repro.storage.manifest import ManifestError


def batch(*keys):
    return RecordBatch.from_keys(np.array(keys, np.float32), value_size=8)


class TestNaming:
    def test_log_name(self):
        assert log_name(7) == "RDB-00000007.tbl"

    def test_log_rank_roundtrip(self):
        assert log_rank(log_name(123)) == 123

    def test_log_rank_rejects_other_files(self):
        with pytest.raises(ValueError):
            log_rank("notalog.txt")

    def test_list_logs_sorted_by_rank(self, tmp_path):
        for r in (3, 0, 11):
            with LogWriter(tmp_path / log_name(r)) as w:
                w.append_batch(batch(1.0), 0)
                w.flush_epoch(0)
        (tmp_path / "unrelated.dat").write_bytes(b"x")
        assert [log_rank(p) for p in list_logs(tmp_path)] == [0, 3, 11]


class TestWriteRead:
    def test_single_epoch_roundtrip(self, tmp_path):
        path = tmp_path / log_name(0)
        with LogWriter(path) as w:
            w.append_batch(batch(1.0, 2.0), epoch=0)
            w.append_batch(batch(3.0), epoch=0)
            w.flush_epoch(0)
        with LogReader(path) as r:
            assert len(r.entries) == 2
            assert r.read_sst(r.entries[0]).keys.tolist() == [1.0, 2.0]
            assert r.read_sst(r.entries[1]).keys.tolist() == [3.0]

    def test_multi_epoch_chain(self, tmp_path):
        path = tmp_path / log_name(0)
        with LogWriter(path) as w:
            w.append_batch(batch(1.0), 0)
            w.flush_epoch(0)
            w.append_batch(batch(2.0), 1)
            w.append_batch(batch(3.0), 1)
            w.flush_epoch(1)
        with LogReader(path) as r:
            assert len(r.entries) == 3
            assert [e.epoch for e in r.entries] == [0, 1, 1]
            assert len(r.entries_for(epoch=1)) == 2

    def test_entries_for_range_filter(self, tmp_path):
        path = tmp_path / log_name(0)
        with LogWriter(path) as w:
            w.append_batch(batch(1.0, 2.0), 0)
            w.append_batch(batch(10.0, 11.0), 0)
            w.flush_epoch(0)
        with LogReader(path) as r:
            hits = r.entries_for(epoch=0, lo=9.0, hi=12.0)
            assert len(hits) == 1
            assert hits[0].kmin == 10.0

    def test_empty_epoch_manifest(self, tmp_path):
        path = tmp_path / log_name(0)
        with LogWriter(path) as w:
            w.flush_epoch(0)
            w.append_batch(batch(5.0), 1)
            w.flush_epoch(1)
        with LogReader(path) as r:
            assert len(r.entries_for(epoch=0)) == 0
            assert len(r.entries_for(epoch=1)) == 1

    def test_read_keys_only_cheaper(self, tmp_path):
        path = tmp_path / log_name(0)
        with LogWriter(path) as w:
            w.append_batch(batch(*np.arange(100, dtype=float)), 0)
            w.flush_epoch(0)
        with LogReader(path) as r:
            entry = r.entries[0]
            info, keys = r.read_sst_keys(entry)
            assert len(keys) == 100
            assert r.bytes_read < entry.length

    def test_io_accounting(self, tmp_path):
        path = tmp_path / log_name(0)
        with LogWriter(path) as w:
            w.append_batch(batch(1.0), 0)
            w.append_batch(batch(2.0), 0)
            w.flush_epoch(0)
        with LogReader(path) as r:
            r.read_sst(r.entries[0])
            r.read_sst(r.entries[1])
            assert r.read_requests == 2
            assert r.bytes_read == sum(e.length for e in r.entries)

    def test_pending_entries_visible(self, tmp_path):
        with LogWriter(tmp_path / log_name(0)) as w:
            w.append_batch(batch(1.0), 0)
            assert w.pending_entries == 1
            w.flush_epoch(0)
            assert w.pending_entries == 0

    def test_stray_flag_in_manifest(self, tmp_path):
        from repro.storage.sstable import FLAG_STRAY

        path = tmp_path / log_name(0)
        with LogWriter(path) as w:
            w.append_batch(batch(1.0), 0, stray=True)
            w.flush_epoch(0)
        with LogReader(path) as r:
            assert r.entries[0].flags & FLAG_STRAY


class TestCorruption:
    def test_truncated_file(self, tmp_path):
        path = tmp_path / log_name(0)
        with LogWriter(path) as w:
            w.append_batch(batch(1.0), 0)
            w.flush_epoch(0)
        data = path.read_bytes()
        path.write_bytes(data[:-5])
        with pytest.raises(ManifestError):
            LogReader(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / log_name(0)
        path.write_bytes(b"")
        with pytest.raises(ManifestError, match="footer"):
            LogReader(path)

    def test_garbage_file(self, tmp_path):
        path = tmp_path / log_name(0)
        path.write_bytes(b"\x00" * 64)
        with pytest.raises(ManifestError):
            LogReader(path)

    def test_corrupt_sst_body_detected_on_read(self, tmp_path):
        from repro.storage.blocks import BlockCorruptionError

        path = tmp_path / log_name(0)
        with LogWriter(path) as w:
            entry = w.append_batch(batch(1.0, 2.0), 0)
            w.flush_epoch(0)
        data = bytearray(path.read_bytes())
        data[entry.offset + 70] ^= 0xFF  # inside key/value blocks
        path.write_bytes(bytes(data))
        with LogReader(path) as r:
            with pytest.raises(BlockCorruptionError):
                r.read_sst(r.entries[0])

    def test_unflushed_ssts_unreachable(self, tmp_path):
        """SSTs appended after the last flush are invisible (and the log
        still parses from the previous footer if one exists... it does
        not: the footer is no longer at EOF, so the log is detectably
        incomplete)."""
        path = tmp_path / log_name(0)
        w = LogWriter(path)
        w.append_batch(batch(1.0), 0)
        w.flush_epoch(0)
        w.append_batch(batch(2.0), 1)  # never flushed
        w.close()
        with pytest.raises(ManifestError):
            LogReader(path)


class TestRecovery:
    """Epoch-aligned crash recovery (paper §V-A semantics)."""

    def _torn_log(self, tmp_path):
        path = tmp_path / log_name(0)
        w = LogWriter(path)
        w.append_batch(batch(1.0, 2.0), 0)
        w.flush_epoch(0)
        w.append_batch(batch(3.0), 1)  # crash before flush_epoch(1)
        w.close()
        return path

    def test_recover_reopens_at_last_epoch(self, tmp_path):
        path = self._torn_log(tmp_path)
        with LogReader(path, recover=True) as r:
            assert [e.epoch for e in r.entries] == [0]
            assert r.read_sst(r.entries[0]).keys.tolist() == [1.0, 2.0]
            assert r.recovered_bytes_dropped > 0

    def test_without_recover_fails(self, tmp_path):
        path = self._torn_log(tmp_path)
        with pytest.raises(ManifestError):
            LogReader(path)

    def test_recover_noop_on_clean_log(self, tmp_path):
        path = tmp_path / log_name(0)
        with LogWriter(path) as w:
            w.append_batch(batch(1.0), 0)
            w.flush_epoch(0)
        with LogReader(path, recover=True) as r:
            assert len(r.entries) == 1
            assert r.recovered_bytes_dropped == 0

    def test_recover_multi_epoch_keeps_complete_ones(self, tmp_path):
        path = tmp_path / log_name(0)
        w = LogWriter(path)
        w.append_batch(batch(1.0), 0)
        w.flush_epoch(0)
        w.append_batch(batch(2.0), 1)
        w.flush_epoch(1)
        w.append_batch(batch(3.0), 2)  # torn epoch 2
        w.close()
        with LogReader(path, recover=True) as r:
            assert sorted({e.epoch for e in r.entries}) == [0, 1]

    def test_unrecoverable_garbage(self, tmp_path):
        path = tmp_path / log_name(0)
        path.write_bytes(b"\x01" * 256)
        with pytest.raises(ManifestError, match="no valid footer"):
            LogReader(path, recover=True)
