"""Unit tests for manifest blocks and footers."""

import pytest

from repro.storage.manifest import (
    ENTRY_SIZE,
    FOOTER_SIZE,
    ManifestEntry,
    ManifestError,
    decode_footer,
    decode_manifest_block,
    encode_footer,
    encode_manifest_block,
    manifest_block_size,
)


def entry(offset=0, kmin=0.0, kmax=1.0, epoch=0, flags=0, sub_id=0):
    return ManifestEntry(
        offset=offset, length=100, count=10,
        kmin=kmin, kmax=kmax, epoch=epoch, flags=flags, sub_id=sub_id,
    )


class TestManifestEntry:
    def test_pack_unpack(self):
        e = entry(offset=42, kmin=1.5, kmax=2.5, epoch=3, flags=1, sub_id=2)
        assert ManifestEntry.unpack(e.pack()) == e

    def test_pack_size(self):
        assert len(entry().pack()) == ENTRY_SIZE

    def test_overlaps(self):
        e = entry(kmin=1.0, kmax=2.0)
        assert e.overlaps(1.5, 3.0)
        assert e.overlaps(0.0, 1.0)   # touching counts
        assert e.overlaps(2.0, 5.0)
        assert not e.overlaps(2.1, 5.0)
        assert not e.overlaps(-1.0, 0.9)

    def test_point_overlap(self):
        assert entry(kmin=1.0, kmax=2.0).overlaps(1.5, 1.5)


class TestManifestBlock:
    def test_roundtrip(self):
        entries = [entry(offset=i * 100) for i in range(5)]
        block = encode_manifest_block(entries, epoch=2, prev_offset=7)
        got, prev, epoch = decode_manifest_block(block)
        assert got == entries
        assert prev == 7
        assert epoch == 2

    def test_first_block_has_no_prev(self):
        block = encode_manifest_block([entry()], 0, None)
        _, prev, _ = decode_manifest_block(block)
        assert prev is None

    def test_empty_block(self):
        block = encode_manifest_block([], 1, None)
        got, _, epoch = decode_manifest_block(block)
        assert got == [] and epoch == 1

    def test_size_accounting(self):
        block = encode_manifest_block([entry()] * 3, 0, None)
        assert len(block) == manifest_block_size(3)

    def test_crc_detects_corruption(self):
        block = bytearray(encode_manifest_block([entry()], 0, None))
        block[-6] ^= 0x01
        with pytest.raises(ManifestError, match="CRC"):
            decode_manifest_block(bytes(block))

    def test_bad_magic(self):
        block = encode_manifest_block([entry()], 0, None)
        with pytest.raises(ManifestError, match="magic"):
            decode_manifest_block(b"XXXX" + block[4:])

    def test_truncation(self):
        block = encode_manifest_block([entry()] * 2, 0, None)
        with pytest.raises(ManifestError):
            decode_manifest_block(block[: len(block) // 2])


class TestFooter:
    def test_roundtrip(self):
        assert decode_footer(encode_footer(12345)) == 12345

    def test_size(self):
        assert len(encode_footer(0)) == FOOTER_SIZE

    def test_crc(self):
        f = bytearray(encode_footer(99))
        f[5] ^= 0xFF
        with pytest.raises(ManifestError, match="CRC"):
            decode_footer(bytes(f))

    def test_bad_magic(self):
        f = encode_footer(99)
        with pytest.raises(ManifestError, match="magic"):
            decode_footer(b"ZZZZ" + f[4:])

    def test_wrong_size(self):
        with pytest.raises(ManifestError):
            decode_footer(b"short")
