"""Tests for the carp-perf baseline-gated benchmark harness."""
