"""carp-perf: deterministic workloads, baseline gating, CLI exit codes.

The regression gate's contract is exercised end-to-end through the CLI
against a redirected ``REPRO_RESULTS_DIR``: a fresh baseline compares
clean (exit 0), a tampered baseline injecting a >=10% virtual-time
regression fails (exit nonzero), and wall-clock rows never block.
"""

from __future__ import annotations

import json

import pytest

from repro.perf.cli import main as perf_main
from repro.perf.harness import (
    VIRTUAL_TOLERANCE,
    Metric,
    _compare_metric,
    baseline_path,
    profile_baseline_path,
    run_workload,
)
from repro.perf.workloads import WORKLOADS


@pytest.fixture()
def results_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    return tmp_path


def _tamper(name: str, metric: str, scale: float = 1.0,
            shift: float = 0.0) -> None:
    path = baseline_path(name)
    doc = json.loads(path.read_text())
    for row in doc["rows"]:
        if row["metric"] == metric:
            row["value"] = row["value"] * scale + shift
            break
    else:  # pragma: no cover - guards test typos
        raise AssertionError(f"no row {metric} in {path}")
    path.write_text(json.dumps(doc))


class TestRunWorkload:
    def test_virtual_and_exact_metrics_deterministic(self):
        spec = WORKLOADS["ingest-serial"]
        first = {m.name: m for m in run_workload(spec).metrics}
        second = {m.name: m for m in run_workload(spec).metrics}
        for name, metric in first.items():
            if metric.kind == "wall":
                continue
            assert second[name].value == metric.value, name
        assert first["records_ingested"].value > 0
        assert first["ingest_virtual_ticks"].value > 0

    def test_unknown_kind_rejected(self):
        spec = WORKLOADS["ingest-serial"]
        bad = type(spec)(name="x", kind="nope", backend="serial")
        with pytest.raises(ValueError, match="unknown workload kind"):
            run_workload(bad)


class TestCompareMetric:
    ROW = {"metric": "m", "kind": "virtual", "unit": "ticks",
           "value": 100.0, "tolerance": VIRTUAL_TOLERANCE}

    def _current(self, value: float, kind: str = "virtual") -> Metric:
        return Metric("m", value, "ticks", kind, VIRTUAL_TOLERANCE)

    def test_within_tolerance_ok(self):
        c = _compare_metric(self.ROW, self._current(101.0))
        assert c.status == "ok" and not c.blocking

    def test_regression_blocks(self):
        c = _compare_metric(self.ROW, self._current(111.0))
        assert c.status == "regressed" and c.blocking

    def test_improvement_surfaces_without_blocking(self):
        c = _compare_metric(self.ROW, self._current(80.0))
        assert c.status == "improved" and not c.blocking

    def test_exact_change_blocks(self):
        row = dict(self.ROW, kind="exact", tolerance=0.0)
        c = _compare_metric(row, self._current(100.5, kind="exact"))
        assert c.status == "changed" and c.blocking

    def test_wall_never_blocks(self):
        row = dict(self.ROW, kind="wall")
        c = _compare_metric(row, self._current(1000.0, kind="wall"))
        assert c.status == "ok" and not c.blocking

    def test_missing_current_blocks(self):
        c = _compare_metric(self.ROW, None)
        assert c.status == "missing" and c.blocking


class TestCli:
    def test_list(self, capsys):
        assert perf_main(["list"]) == 0
        out = capsys.readouterr().out
        for name in WORKLOADS:
            assert name in out

    def test_unknown_workload_exits_2(self, results_dir):
        assert perf_main(["run", "no-such-workload"]) == 2

    def test_fresh_baseline_compares_clean(self, results_dir, capsys):
        assert perf_main(["run", "ingest-serial"]) == 0
        assert baseline_path("ingest-serial").is_file()
        assert perf_main(["compare", "ingest-serial"]) == 0
        out = capsys.readouterr().out
        assert "ingest_virtual_ticks" in out

    def test_injected_regression_fails_gate(self, results_dir, capsys):
        assert perf_main(["run", "ingest-serial"]) == 0
        # lowering the baseline 10% makes the unchanged current run
        # read as a +11% virtual-time regression
        _tamper("ingest-serial", "ingest_virtual_ticks", scale=0.9)
        json_out = results_dir / "cmp.json"
        rc = perf_main(["compare", "ingest-serial",
                        "--json", str(json_out)])
        assert rc == 1
        err = capsys.readouterr().err
        assert "perf regression gate failed" in err
        assert "ingest_virtual_ticks" in err
        doc = json.loads(json_out.read_text())
        assert doc["blocking"] is True
        status = {
            m["metric"]: m["status"]
            for m in doc["workloads"][0]["metrics"]
        }
        assert status["ingest_virtual_ticks"] == "regressed"

    def test_exact_output_change_fails_gate(self, results_dir):
        assert perf_main(["run", "ingest-serial"]) == 0
        _tamper("ingest-serial", "records_ingested", shift=1.0)
        assert perf_main(["compare", "ingest-serial"]) == 1

    def test_wall_noise_does_not_fail_gate(self, results_dir):
        assert perf_main(["run", "ingest-serial"]) == 0
        _tamper("ingest-serial", "wall_seconds", scale=100.0)
        assert perf_main(["compare", "ingest-serial"]) == 0

    def test_missing_baseline_fails(self, results_dir, capsys):
        assert perf_main(["compare", "ingest-serial"]) == 1
        assert "no baseline" in capsys.readouterr().err


class TestProfileIntegration:
    def test_run_commits_profile_baseline(self, results_dir, capsys):
        assert perf_main(["run", "ingest-serial"]) == 0
        path = profile_baseline_path("ingest-serial")
        assert path.is_file()
        assert path.with_suffix(".folded").is_file()
        doc = json.loads(path.read_text())
        assert doc["schema"] == "carp-profile-v1"
        assert doc["totals"]["records"] > 0
        # the run reconciled exactly, and the gate metric records that
        baseline = json.loads(baseline_path("ingest-serial").read_text())
        reconcile = next(
            r for r in baseline["rows"]
            if r["metric"] == "profile_reconcile_errors"
        )
        assert reconcile["value"] == 0.0 and reconcile["kind"] == "exact"

    def test_profile_subcommand_writes_fresh_profiles(self, results_dir,
                                                      capsys):
        out = results_dir / "fresh"
        assert perf_main(["profile", "ingest-serial",
                          "--out", str(out)]) == 0
        assert (out / "ingest-serial.json").is_file()
        assert (out / "ingest-serial.folded").is_file()

    def test_gate_failure_blames_injected_hot_span(self, results_dir,
                                                   capsys):
        """A tripped gate names the diff artifact and the hot path.

        Tampering the committed baseline profile at its hottest frame
        simulates a regression localized to one span path; the compare
        failure output must name the diff-profile artifact and put
        that path first in the inline blame lines.
        """
        assert perf_main(["run", "ingest-serial"]) == 0
        _tamper("ingest-serial", "ingest_virtual_ticks", scale=0.9)
        path = profile_baseline_path("ingest-serial")
        doc = json.loads(path.read_text())
        hot = max(doc["frames"], key=lambda f: f["self_ns"])
        hot["self_ns"] -= 500_000_000
        hot["total_ns"] -= 500_000_000
        path.write_text(json.dumps(doc))
        capsys.readouterr()
        assert perf_main(["compare", "ingest-serial"]) == 1
        err = capsys.readouterr().err
        diff_path = (results_dir / "profile-diffs"
                     / "ingest-serial.profile-diff.json")
        assert f"diff profile: {diff_path}" in err
        blame = [line for line in err.splitlines()
                 if "regressed span path" in line]
        assert blame and ";".join(hot["stack"]) in blame[0]
        assert "+500000000 ns self" in blame[0]
        diff_doc = json.loads(diff_path.read_text())
        assert diff_doc["schema"] == "carp-profile-diff-v1"
        assert diff_doc["entries"][0]["stack"] == hot["stack"]
        assert diff_doc["entries"][0]["self_delta_ns"] == 500_000_000

    def test_gate_failure_without_profile_baseline_notes_it(
            self, results_dir, capsys):
        assert perf_main(["run", "ingest-serial"]) == 0
        _tamper("ingest-serial", "ingest_virtual_ticks", scale=0.9)
        profile_baseline_path("ingest-serial").unlink()
        capsys.readouterr()
        assert perf_main(["compare", "ingest-serial"]) == 1
        err = capsys.readouterr().err
        assert "no baseline profile" in err
