"""FaultPlan generation, serialization, and injector semantics."""

import pytest

from repro.faults.plan import (
    ACTION_CRASH,
    ACTION_DELAY,
    ACTION_DROP,
    ALL_SITES,
    RANK_SITES,
    SITE_MANIFEST_WRITE,
    SITE_SHUFFLE_SEND,
    SITE_SST_WRITE,
    SITE_TASK,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)


def test_generate_is_deterministic():
    a = FaultPlan.generate(7, nranks=4)
    b = FaultPlan.generate(7, nranks=4)
    assert a == b


def test_different_seeds_differ_somewhere():
    plans = {FaultPlan.generate(s, nranks=4).specs for s in range(20)}
    assert len(plans) > 1


def test_generate_respects_bounds():
    for seed in range(50):
        plan = FaultPlan.generate(seed, nranks=3, max_faults=4, epochs=2)
        assert 1 <= len(plan.specs) <= 4
        for spec in plan.specs:
            assert spec.site in ALL_SITES
            assert 0 <= spec.rank < 3
            assert spec.index >= 0
            if spec.site == SITE_SHUFFLE_SEND:
                assert spec.action in (ACTION_DELAY, ACTION_DROP)
            else:
                assert spec.action == ACTION_CRASH
                assert 0.0 <= spec.arg <= 1.0


def test_generate_never_duplicates_injector_keys():
    # duplicate (site, index) keys would be rejected by FaultInjector
    for seed in range(100):
        plan = FaultPlan.generate(seed, nranks=3, max_faults=6)
        FaultInjector(plan.shuffle_specs())
        for rank in range(3):
            FaultInjector(plan.specs_for_rank(rank))


def test_json_round_trip():
    plan = FaultPlan.generate(11, nranks=3, max_faults=5)
    assert FaultPlan.from_json(plan.to_json()) == plan


def test_site_slicing():
    specs = (
        FaultSpec(SITE_SST_WRITE, 1, 0),
        FaultSpec(SITE_TASK, 0, 2),
        FaultSpec(SITE_SHUFFLE_SEND, 0, 5, 2.0, ACTION_DELAY),
    )
    plan = FaultPlan(seed=0, specs=specs)
    assert plan.only(SITE_SHUFFLE_SEND).specs == (specs[2],)
    assert plan.without(SITE_SHUFFLE_SEND).specs == specs[:2]
    assert plan.specs_for_rank(1) == (specs[0],)
    assert plan.specs_for_rank(0) == (specs[1],)
    assert plan.shuffle_specs() == (specs[2],)
    assert all(s.site in RANK_SITES for s in plan.specs_for_rank(0))


def test_spec_validation():
    with pytest.raises(ValueError):
        FaultSpec("storage.nonsense", 0, 0)
    with pytest.raises(ValueError):
        FaultSpec(SITE_SST_WRITE, 0, -1)
    with pytest.raises(ValueError):
        FaultSpec(SITE_SST_WRITE, 0, 0, action="explode")


def test_injector_fires_at_exact_occurrence():
    spec = FaultSpec(SITE_MANIFEST_WRITE, 0, 2)
    injector = FaultInjector([spec])
    assert injector.check(SITE_MANIFEST_WRITE) is None  # occurrence 0
    assert injector.check(SITE_MANIFEST_WRITE) is None  # occurrence 1
    assert injector.check(SITE_MANIFEST_WRITE) is spec  # occurrence 2
    assert injector.check(SITE_MANIFEST_WRITE) is None  # past it
    assert injector.occurrences(SITE_MANIFEST_WRITE) == 4
    assert injector.fired == [spec]


def test_injector_counters_are_per_site():
    injector = FaultInjector([FaultSpec(SITE_SST_WRITE, 0, 1)])
    assert injector.check(SITE_MANIFEST_WRITE) is None
    assert injector.check(SITE_SST_WRITE) is None
    assert injector.check(SITE_SST_WRITE) is not None


def test_injector_rejects_duplicate_keys():
    with pytest.raises(ValueError, match="duplicate"):
        FaultInjector(
            [FaultSpec(SITE_SST_WRITE, 0, 1), FaultSpec(SITE_SST_WRITE, 2, 1)]
        )


def test_plan_is_picklable():
    import pickle

    plan = FaultPlan.generate(3, nranks=2)
    assert pickle.loads(pickle.dumps(plan)) == plan
