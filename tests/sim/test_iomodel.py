"""Unit tests for the I/O cost model."""

import pytest

from repro.sim.iomodel import IOModel


class TestIOModel:
    def test_read_time_components(self):
        io = IOModel(read_bandwidth=1e9, request_latency=1e-3, parallelism=1)
        # 1 GB at 1 GB/s + 10 requests x 1 ms
        assert io.read_time(10**9, 10) == pytest.approx(1.0 + 0.01)

    def test_parallelism_amortizes_requests(self):
        serial = IOModel(parallelism=1)
        parallel = IOModel(parallelism=16)
        assert parallel.read_time(0, 160) == pytest.approx(
            serial.read_time(0, 160) / 16
        )

    def test_random_reads_expensive_per_byte(self):
        """The auxiliary-index pathology: same bytes, many more requests."""
        io = IOModel()
        seq = io.read_time(10**8, 10)
        rand = io.random_read_time(10**8, 100_000)
        assert rand > 10 * seq

    def test_merge_and_scan_costs(self):
        io = IOModel(merge_bandwidth=1e9, scan_bandwidth=2e9)
        assert io.merge_time(10**9) == pytest.approx(1.0)
        assert io.scan_time(10**9) == pytest.approx(0.5)

    def test_zero_work_is_free(self):
        io = IOModel()
        assert io.read_time(0, 0) == 0.0
        assert io.merge_time(0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            IOModel(parallelism=0)
        with pytest.raises(ValueError):
            IOModel().read_time(-1, 0)

    def test_merge_cheaper_than_io_for_same_bytes(self):
        """Paper: query-time merging "is cheap compared to the I/O cost
        of retrieving data" for request-heavy reads."""
        io = IOModel()
        nbytes = 10**8
        assert io.merge_time(nbytes) < io.read_time(nbytes, 10_000)


class TestSourceAwareReads:
    def test_few_sources_throttle_bandwidth(self):
        io = IOModel(parallelism=16)
        spread = io.read_time(10**9, 10, sources=16)
        concentrated = io.read_time(10**9, 10, sources=1)
        assert concentrated > 10 * spread

    def test_sources_capped_by_parallelism(self):
        io = IOModel(parallelism=16)
        assert io.read_time(10**8, 4, sources=64) == pytest.approx(
            io.read_time(10**8, 4, sources=16)
        )

    def test_default_is_fully_spread(self):
        io = IOModel(parallelism=16)
        assert io.read_time(10**8, 4) == pytest.approx(
            io.read_time(10**8, 4, sources=16)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            IOModel().read_time(1, 1, sources=0)
