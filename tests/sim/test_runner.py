"""Unit tests for the experiment runner (logic + cost model bridge)."""

import numpy as np
import pytest

from repro.core.config import CarpOptions
from repro.core.records import RecordBatch
from repro.sim.cluster import GB, PAPER_CLUSTER
from repro.sim.runner import run_and_time_epochs, time_epoch

OPTS = CarpOptions(
    pivot_count=32, oob_capacity=32, renegotiations_per_epoch=3,
    memtable_records=256, round_records=128, value_size=8,
)


def streams(nranks=4, n=500, seed=0):
    rng = np.random.default_rng(seed)
    return [
        RecordBatch.from_keys(rng.random(n).astype(np.float32), rank=r,
                              value_size=8)
        for r in range(nranks)
    ]


class TestRunner:
    def test_timing_produced_per_epoch(self, tmp_path):
        stats, timings = run_and_time_epochs(
            4, tmp_path, [(0, streams(seed=0)), (1, streams(seed=1))], OPTS
        )
        assert len(stats) == len(timings) == 2
        assert all(t.runtime > 0 for t in timings)

    def test_reneg_latencies_priced(self, tmp_path):
        stats, timings = run_and_time_epochs(4, tmp_path, [(0, streams())], OPTS)
        assert len(timings[0].reneg_times) == stats[0].renegotiations
        assert timings[0].total_reneg_time > 0

    def test_scale_to_bytes(self, tmp_path):
        stats, timings = run_and_time_epochs(
            4, tmp_path, [(0, streams())], OPTS, scale_to_bytes=188 * GB
        )
        assert timings[0].data_bytes == 188 * GB

    def test_effective_throughput_bounded_by_cluster(self, tmp_path):
        stats, timings = run_and_time_epochs(
            32, tmp_path,
            [(0, streams(nranks=32, n=200))], OPTS, scale_to_bytes=10 * GB,
        )
        limit = min(PAPER_CLUSTER.storage_bound(32), PAPER_CLUSTER.network_bound(32))
        assert timings[0].effective_throughput <= limit * 1.001

    def test_time_epoch_default_volume(self, tmp_path):
        stats, _ = run_and_time_epochs(4, tmp_path, [(0, streams())], OPTS)
        timing = time_epoch(stats[0], nranks=4, record_size=60)
        assert timing.data_bytes == stats[0].records * 60


class TestAsyncRenegotiation:
    def test_async_removes_pause_cost_when_network_bound(self, tmp_path):
        """§VI: routing through the old table during renegotiation
        keeps the (network-bound) pipeline busy."""
        from repro.sim.cluster import ClusterSpec

        slow_net = ClusterSpec(shuffle_goodput_per_rank=1e6)  # network-bound
        stats, _ = run_and_time_epochs(4, tmp_path, [(0, streams())], OPTS)
        paused = time_epoch(stats[0], nranks=4, cluster=slow_net,
                            scale_to_bytes=1e9)
        asynchronous = time_epoch(stats[0], nranks=4, cluster=slow_net,
                                  scale_to_bytes=1e9,
                                  async_renegotiation=True)
        assert asynchronous.runtime < paused.runtime
        assert asynchronous.runtime == pytest.approx(
            1e9 / slow_net.network_bound(4), rel=0.02
        )

    def test_async_is_noop_when_storage_bound(self, tmp_path):
        """When storage is the bottleneck, pauses were already masked."""
        stats, _ = run_and_time_epochs(4, tmp_path, [(0, streams())], OPTS)
        paused = time_epoch(stats[0], nranks=512, scale_to_bytes=50e9)
        asynchronous = time_epoch(stats[0], nranks=512, scale_to_bytes=50e9,
                                  async_renegotiation=True)
        assert asynchronous.runtime == pytest.approx(paused.runtime, rel=0.02)
