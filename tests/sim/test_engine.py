"""Unit tests for the write-path pipeline simulator."""

import pytest

from repro.sim.engine import (
    post_processing_throughput,
    simulate_ingestion,
)

GB = 1e9


class TestSimulateIngestion:
    def test_storage_only(self):
        res = simulate_ingestion(10 * GB, shuffle_bandwidth=None,
                                 storage_bandwidth=1 * GB)
        assert res.duration == pytest.approx(10.0)
        assert res.effective_throughput == pytest.approx(1 * GB)

    def test_network_bottleneck(self):
        res = simulate_ingestion(10 * GB, shuffle_bandwidth=0.5 * GB,
                                 storage_bandwidth=5 * GB)
        assert res.duration == pytest.approx(20.0, rel=0.01)

    def test_storage_bottleneck(self):
        res = simulate_ingestion(10 * GB, shuffle_bandwidth=5 * GB,
                                 storage_bandwidth=1 * GB)
        assert res.duration == pytest.approx(10.0, rel=0.01)

    def test_shuffle_only_drops_data(self):
        res = simulate_ingestion(10 * GB, shuffle_bandwidth=2 * GB,
                                 storage_bandwidth=None)
        assert res.duration == pytest.approx(5.0, rel=0.01)

    def test_reneg_pauses_masked_by_buffers(self):
        """With deep receiver buffers and storage as the bottleneck,
        renegotiation pauses hide behind queued data (paper §VI)."""
        base = simulate_ingestion(10 * GB, 5 * GB, 1 * GB)
        paused = simulate_ingestion(
            10 * GB, 5 * GB, 1 * GB,
            reneg_pauses=[0.15] * 6,
            receiver_buffer_bytes=float("inf"),
        )
        assert paused.duration == pytest.approx(base.duration, rel=0.02)

    def test_reneg_pauses_hurt_when_network_bound(self):
        """When the shuffle is the bottleneck, pauses add directly."""
        base = simulate_ingestion(10 * GB, 1 * GB, 5 * GB)
        paused = simulate_ingestion(10 * GB, 1 * GB, 5 * GB,
                                    reneg_pauses=[0.5] * 4)
        assert paused.duration > base.duration + 1.5

    def test_tiny_buffers_expose_pauses(self):
        masked = simulate_ingestion(
            10 * GB, 5 * GB, 1 * GB, reneg_pauses=[1.0] * 3,
            receiver_buffer_bytes=float("inf"),
        )
        exposed = simulate_ingestion(
            10 * GB, 5 * GB, 1 * GB, reneg_pauses=[1.0] * 3,
            receiver_buffer_bytes=0.01 * GB,
        )
        assert exposed.duration > masked.duration

    def test_back_pressure_limits_queue(self):
        res = simulate_ingestion(
            10 * GB, 100 * GB, 1 * GB, receiver_buffer_bytes=0.1 * GB
        )
        # still completes in storage-bound time
        assert res.duration == pytest.approx(10.0, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_ingestion(0, 1 * GB, 1 * GB)
        with pytest.raises(ValueError):
            simulate_ingestion(1 * GB, None, None)

    def test_stall_accounting(self):
        res = simulate_ingestion(10 * GB, 1 * GB, 5 * GB,
                                 reneg_pauses=[1.0])
        assert res.shuffle_stall_time > 0.5


class TestPostProcessing:
    def test_no_post_processing_is_raw(self):
        t = post_processing_throughput(10 * GB, 1 * GB, 0, 0)
        assert t == pytest.approx(1 * GB)

    def test_four_pass_sort_slowdown(self):
        t = post_processing_throughput(10 * GB, 1 * GB, 2, 2)
        assert 1 * GB / t == pytest.approx(5.0)

    def test_cpu_time_added(self):
        t = post_processing_throughput(10 * GB, 1 * GB, 0, 0, cpu_time=10.0)
        assert 1 * GB / t == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            post_processing_throughput(0, 1, 0, 0)


class TestSimulationInvariants:
    from hypothesis import given, settings, strategies as st

    @given(
        data=st.floats(1e6, 1e12),
        s_bw=st.floats(1e6, 1e11),
        t_bw=st.floats(1e6, 1e11),
        n_pauses=st.integers(0, 8),
        pause=st.floats(0.0, 10.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_duration_bounds(self, data, s_bw, t_bw, n_pauses, pause):
        """The pipeline can never beat its bottleneck, and never does
        worse than fully serializing both stages plus every pause."""
        res = simulate_ingestion(data, s_bw, t_bw,
                                 reneg_pauses=[pause] * n_pauses)
        lower = data / min(s_bw, t_bw)
        upper = data / s_bw + data / t_bw + n_pauses * pause
        # the fixed-step integrator has ~1/20000 resolution
        assert res.duration >= lower * 0.999
        assert res.duration <= upper * 1.02 + 1e-6

    @given(data=st.floats(1e6, 1e12), s_bw=st.floats(1e6, 1e11))
    @settings(max_examples=30, deadline=None)
    def test_shuffle_only_exact(self, data, s_bw):
        res = simulate_ingestion(data, s_bw, None)
        assert res.duration == pytest.approx(data / s_bw, rel=0.01)

    @given(
        data=st.floats(1e8, 1e11),
        buffers=st.floats(1e6, 1e12),
    )
    @settings(max_examples=30, deadline=None)
    def test_buffer_size_never_loses_data(self, data, buffers):
        res = simulate_ingestion(data, 2e9, 1e9,
                                 receiver_buffer_bytes=buffers)
        assert res.effective_throughput <= 1e9 * 1.001
        assert res.duration >= data / 1e9 * 0.999
