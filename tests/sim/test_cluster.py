"""Unit tests for the cluster spec / cost-model substrate."""

import pytest

from repro.sim.cluster import GB, MB, PAPER_CLUSTER, ClusterSpec


class TestStorageBound:
    def test_paper_calibration_points(self):
        assert PAPER_CLUSTER.storage_bound(32) == pytest.approx(1.6 * GB)
        assert PAPER_CLUSTER.storage_bound(512) == pytest.approx(3.0 * GB)

    def test_contention_dip_at_1024(self):
        assert PAPER_CLUSTER.storage_bound(1024) < PAPER_CLUSTER.storage_bound(512)

    def test_monotone_up_to_saturation(self):
        prev = 0.0
        for n in (32, 64, 128, 256, 512):
            cur = PAPER_CLUSTER.storage_bound(n)
            assert cur > prev
            prev = cur

    def test_interpolation_between_points(self):
        mid = PAPER_CLUSTER.storage_bound(48)
        assert 1.6 * GB < mid < 2.0 * GB

    def test_validation(self):
        with pytest.raises(ValueError):
            PAPER_CLUSTER.storage_bound(0)


class TestNetworkBound:
    def test_linear_in_ranks(self):
        assert PAPER_CLUSTER.network_bound(64) == pytest.approx(
            2 * PAPER_CLUSTER.network_bound(32)
        )

    def test_crosses_storage_bound(self):
        """Fig. 7b: network-bound at small scale, storage-bound at large."""
        assert PAPER_CLUSTER.network_bound(32) < PAPER_CLUSTER.storage_bound(32)
        assert PAPER_CLUSTER.network_bound(512) > PAPER_CLUSTER.storage_bound(512)

    def test_validation(self):
        with pytest.raises(ValueError):
            PAPER_CLUSTER.network_bound(-1)


class TestMemoryFootprint:
    def test_paper_example(self):
        """§VI: 4096 ranks, default parameters -> ~27 MB per rank."""
        mem = PAPER_CLUSTER.memory_per_rank(4096)
        assert 26 * MB < mem < 28 * MB

    def test_scales_weakly_with_ranks(self):
        small = PAPER_CLUSTER.memory_per_rank(32)
        large = PAPER_CLUSTER.memory_per_rank(131072)
        # dominated by memtables, not by per-rank tables
        assert large < 2 * small

    def test_custom_spec(self):
        spec = ClusterSpec(shuffle_goodput_per_rank=1.0)
        assert spec.network_bound(10) == 10.0
