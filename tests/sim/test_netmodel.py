"""Unit tests for the network latency model."""

import numpy as np
import pytest

from repro.core.pivots import pivots_from_histogram
from repro.core.renegotiation import negotiate_trp
from repro.sim.netmodel import NetModel


def reneg_stats(nranks, pivot_width=512, fanout=64, seed=0):
    rng = np.random.default_rng(seed)
    pivots = [
        pivots_from_histogram(None, None, pivot_width,
                              oob_keys=rng.lognormal(size=200))
        for _ in range(nranks)
    ]
    _, stats = negotiate_trp(pivots, nranks, pivot_width, fanout)
    return stats


class TestMessageTime:
    def test_latency_plus_bandwidth(self):
        net = NetModel(rpc_latency=1e-3, bandwidth=1e6)
        assert net.message_time(1000) == pytest.approx(1e-3 + 1e-3)

    def test_zero_bytes(self):
        net = NetModel(rpc_latency=1e-3)
        assert net.message_time(0) == pytest.approx(1e-3)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            NetModel().message_time(-1)


class TestBroadcast:
    def test_log_depth(self):
        net = NetModel(rpc_latency=1e-3, bandwidth=1e12)
        t8 = net.broadcast_time(8, 100)
        t64 = net.broadcast_time(64, 100)
        assert t64 == pytest.approx(2 * t8)

    def test_single_rank_free(self):
        assert NetModel().broadcast_time(1, 100) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            NetModel().broadcast_time(0, 10)


class TestRenegotiationTime:
    def test_logarithmic_scaling_in_ranks(self):
        """Fig. 10a: round latency grows ~log(nranks), not linearly."""
        net = NetModel()
        t16 = net.renegotiation_time(reneg_stats(16))
        t256 = net.renegotiation_time(reneg_stats(256))
        t2048 = net.renegotiation_time(reneg_stats(2048))
        assert t16 < t256 < t2048
        # 128x more ranks costs far less than 128x more time
        assert t2048 < 20 * t16

    def test_pivot_count_increases_latency(self):
        """Fig. 10a: more pivots -> proportionally larger messages."""
        net = NetModel()
        t64 = net.renegotiation_time(reneg_stats(64, pivot_width=64))
        t2048p = net.renegotiation_time(reneg_stats(64, pivot_width=2048))
        assert t2048p > t64

    def test_paper_ballpark_at_2048_ranks(self):
        """Paper: ~150 ms for 512 pivots at 2048 ranks on IPoIB.

        We accept the right order of magnitude (tens to hundreds of
        milliseconds)."""
        net = NetModel()
        t = net.renegotiation_time(reneg_stats(2048, pivot_width=512))
        assert 0.02 < t < 0.5

    def test_larger_fanout_fewer_levels(self):
        net = NetModel(rpc_latency=1e-3, bandwidth=1e12)
        deep = net.renegotiation_time(reneg_stats(256, fanout=4))
        shallow = net.renegotiation_time(reneg_stats(256, fanout=64))
        # fanout trades per-receiver fan-in against tree depth; with
        # tiny messages the shallow tree pays more serialized receives
        assert deep != shallow
