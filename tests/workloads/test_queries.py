"""Tests for the Fig. 7a query-suite construction."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.queries import (
    DEFAULT_SELECTIVITIES,
    achieved_selectivity,
    build_query_suite,
    query_for_selectivity,
)


@pytest.fixture(scope="module")
def keys():
    rng = np.random.default_rng(0)
    return rng.lognormal(0, 1.5, 50_000)


class TestQueryForSelectivity:
    def test_hits_target(self, keys):
        for s in (0.001, 0.01, 0.1):
            spec = query_for_selectivity(keys, s)
            assert achieved_selectivity(keys, spec) == pytest.approx(s, rel=0.25)

    def test_anchor_positions_query(self, keys):
        low = query_for_selectivity(keys, 0.01, anchor=0.1)
        high = query_for_selectivity(keys, 0.01, anchor=0.9)
        assert low.hi < high.lo

    def test_anchor_clamped_at_edges(self, keys):
        spec = query_for_selectivity(keys, 0.2, anchor=0.0)
        assert achieved_selectivity(keys, spec) == pytest.approx(0.2, rel=0.25)
        spec = query_for_selectivity(keys, 0.2, anchor=1.0)
        assert achieved_selectivity(keys, spec) == pytest.approx(0.2, rel=0.25)

    def test_validation(self, keys):
        with pytest.raises(ValueError):
            query_for_selectivity(keys, 0.0)
        with pytest.raises(ValueError):
            query_for_selectivity(keys, 0.5, anchor=2.0)
        with pytest.raises(ValueError):
            query_for_selectivity(np.array([]), 0.1)

    @given(sel=st.floats(0.001, 1.0), anchor=st.floats(0, 1))
    @settings(max_examples=40)
    def test_bounds_ordered(self, sel, anchor):
        rng = np.random.default_rng(1)
        ks = rng.random(2000)
        spec = query_for_selectivity(ks, sel, anchor)
        assert spec.lo <= spec.hi


class TestBuildSuite:
    def test_eight_queries_by_default(self, keys):
        suite = build_query_suite(keys)
        assert len(suite) == len(DEFAULT_SELECTIVITIES) == 8

    def test_selectivity_ladder(self, keys):
        suite = build_query_suite(keys)
        assert [q.target_selectivity for q in suite] == list(DEFAULT_SELECTIVITIES)

    def test_spans_selectivity_decades(self):
        """The paper's ladder covers 0.01% to 10%."""
        assert min(DEFAULT_SELECTIVITIES) == pytest.approx(1e-4)
        assert max(DEFAULT_SELECTIVITIES) == pytest.approx(0.10)

    def test_anchors_vary(self, keys):
        suite = build_query_suite(keys)
        assert len({q.anchor for q in suite}) > 1
