"""Tests for the YCSB workload primitives."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.ycsb import (
    ScrambledZipfianGenerator,
    SSTRangeQuery,
    ZipfianGenerator,
    fnvhash64,
    sst_query_to_key_range,
    workload_e_batch,
)


class TestFnvHash:
    def test_deterministic(self):
        assert np.array_equal(fnvhash64(np.arange(10)), fnvhash64(np.arange(10)))

    def test_known_values_differ(self):
        h = fnvhash64(np.array([0, 1, 2]))
        assert len(set(h.tolist())) == 3

    def test_avalanche(self):
        """Adjacent inputs produce far-apart hashes."""
        h = fnvhash64(np.array([100, 101]))
        assert abs(int(h[0]) - int(h[1])) > 2**32

    def test_matches_scalar_reference(self):
        """Cross-check vectorized FNV against a direct reimplementation."""

        def ref(v):
            h = 0xCBF29CE484222325
            for shift in range(0, 64, 8):
                h ^= (v >> shift) & 0xFF
                h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
            return h

        vals = [0, 1, 255, 256, 12345678901234]
        got = fnvhash64(np.array(vals, dtype=np.uint64))
        assert got.tolist() == [ref(v) for v in vals]


class TestZipfian:
    def test_range(self):
        gen = ZipfianGenerator(1000, seed=0)
        samples = gen.sample(5000)
        assert samples.min() >= 0
        assert samples.max() < 1000

    def test_item_zero_most_popular(self):
        gen = ZipfianGenerator(1000, seed=0)
        counts = np.bincount(gen.sample(50_000), minlength=1000)
        assert counts[0] == counts.max()
        assert counts[0] > 10 * counts[500:].mean()

    def test_zipf_law_roughly(self):
        """frequency(rank k) ~ 1/k^theta."""
        gen = ZipfianGenerator(10_000, theta=0.99, seed=1)
        counts = np.bincount(gen.sample(200_000), minlength=10_000)
        # ratio of item 0 to item 9 ~ 10^0.99 ~ 9.8, allow slack
        ratio = counts[0] / max(counts[9], 1)
        assert 4 < ratio < 25

    def test_deterministic_with_seed(self):
        a = ZipfianGenerator(100, seed=5).sample(50)
        b = ZipfianGenerator(100, seed=5).sample(50)
        assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(0)
        with pytest.raises(ValueError):
            ZipfianGenerator(10, theta=1.5)

    @given(n=st.integers(2, 5000), seed=st.integers(0, 100))
    @settings(max_examples=30)
    def test_samples_always_in_range(self, n, seed):
        samples = ZipfianGenerator(n, seed=seed).sample(200)
        assert np.all((samples >= 0) & (samples < n))


class TestScrambledZipfian:
    def test_spreads_hot_items(self):
        """Scrambling moves popularity off the low ids."""
        gen = ScrambledZipfianGenerator(1000, seed=0)
        samples = gen.sample(20_000)
        # the most popular item can be anywhere; low ids are not special
        counts = np.bincount(samples, minlength=1000)
        low_mass = counts[:10].sum() / counts.sum()
        assert low_mass < 0.5

    def test_still_skewed(self):
        gen = ScrambledZipfianGenerator(1000, seed=0)
        counts = np.bincount(gen.sample(50_000), minlength=1000)
        assert counts.max() > 20 * np.median(counts[counts > 0])

    def test_range(self):
        samples = ScrambledZipfianGenerator(50, seed=1).sample(1000)
        assert np.all((samples >= 0) & (samples < 50))


class TestWorkloadE:
    def test_batch_size_and_width(self):
        batch = workload_e_batch(n_ssts=1000, width=20, count=100, seed=0)
        assert len(batch) == 100
        assert all(q.width == 20 for q in batch)

    def test_scans_stay_in_range(self):
        batch = workload_e_batch(500, 50, 200, seed=1)
        assert all(0 <= q.start_sst and q.end_sst < 500 for q in batch)

    def test_order_scrambled(self):
        """Batch order is FNV-randomized, not sorted by popularity."""
        batch = workload_e_batch(1000, 5, 200, seed=2)
        starts = [q.start_sst for q in batch]
        assert starts != sorted(starts)

    def test_starts_zipfian_skewed(self):
        batch = workload_e_batch(10_000, 5, 2000, seed=3)
        starts = np.array([q.start_sst for q in batch])
        assert np.median(starts) < 10_000 / 10

    def test_validation(self):
        with pytest.raises(ValueError):
            workload_e_batch(10, 11, 5)
        with pytest.raises(ValueError):
            workload_e_batch(10, 5, 0)

    def test_deterministic(self):
        a = workload_e_batch(100, 5, 20, seed=7)
        b = workload_e_batch(100, 5, 20, seed=7)
        assert a == b


class TestSSTToKeyRange:
    def test_translation(self):
        bounds = np.array([0.0, 1.0, 2.0, 3.0, 4.0])
        lo, hi = sst_query_to_key_range(SSTRangeQuery(1, 2), bounds)
        assert (lo, hi) == (1.0, 3.0)

    def test_full_span(self):
        bounds = np.array([0.0, 1.0, 2.0])
        lo, hi = sst_query_to_key_range(SSTRangeQuery(0, 1), bounds)
        assert (lo, hi) == (0.0, 2.0)

    def test_out_of_range_rejected(self):
        bounds = np.array([0.0, 1.0, 2.0])
        with pytest.raises(ValueError):
            sst_query_to_key_range(SSTRangeQuery(1, 2), bounds)
