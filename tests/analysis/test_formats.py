"""F-family rules: struct drift, unpaired formats, CRC-less readers."""

from pathlib import Path

from repro.analysis import lint_paths, select_rules
from repro.analysis.core import FileContext
from repro.analysis.formats import (
    FORMAT_RULES,
    format_field_count,
    module_string_constants,
)


def _rule(rule_id: str):
    return next(r for r in FORMAT_RULES if r.id == rule_id)


def test_format_field_count():
    assert format_field_count("<4sHHIIQddQQII") == 12
    assert format_field_count("<QQQddIHH") == 8
    assert format_field_count("<4sQI") == 3
    assert format_field_count("<4x") == 0
    assert format_field_count("3I") == 3
    assert format_field_count("<10s2H") == 3


def test_module_string_constants():
    src = '_FMT = "<QQ"\nOTHER = 3\nNAME = "plain"\n'
    consts = module_string_constants(
        FileContext.from_source(src, Path("m.py")).tree
    )
    assert consts == {"_FMT": "<QQ", "NAME": "plain"}


def test_fixture_triggers_every_f_rule(fixtures_dir):
    result = lint_paths(
        [fixtures_dir / "bad_format.py"], rules=select_rules(["F"])
    )
    by_rule = result.by_rule()
    # pack arity (3 vs 4) and unpack arity (5 vs 4)
    assert len(by_rule.get("F201", [])) == 2
    # _ORPHAN_FMT and NATIVE_FMT packed, never unpacked
    assert len(by_rule.get("F202", [])) == 2
    assert len(by_rule.get("F203", [])) == 1
    # encode_record_block (no CRC) + decode_index_block (unchecked)
    assert len(by_rule.get("F204", [])) == 2


def test_paired_crc_checked_roundtrip_is_clean(tmp_path):
    src = '''
import struct
import zlib

_FMT = "<4sQ"


def encode_thing(magic: bytes, value: int) -> bytes:
    body = struct.pack(_FMT, magic, value)
    return body + (zlib.crc32(body) & 0xFFFFFFFF).to_bytes(4, "little")


def decode_thing(data: bytes) -> tuple:
    body, crc = data[:-4], data[-4:]
    if (zlib.crc32(body) & 0xFFFFFFFF).to_bytes(4, "little") != crc:
        raise ValueError("CRC mismatch")
    magic, value = struct.unpack(_FMT, body)
    return magic, value
'''
    path = tmp_path / "roundtrip.py"
    path.write_text(src)
    result = lint_paths([path], rules=select_rules(["F"]))
    assert result.violations == []


def test_transitive_crc_verification_passes(tmp_path):
    # a reader that delegates CRC checking to a helper is still checked
    src = '''
import struct
import zlib

_FMT = "<QQ"


def _check_crc(data: bytes) -> bytes:
    body, crc = data[:-4], data[-4:]
    if (zlib.crc32(body) & 0xFFFFFFFF).to_bytes(4, "little") != crc:
        raise ValueError("bad")
    return body


def encode_pair(a: int, b: int) -> bytes:
    body = struct.pack(_FMT, a, b)
    return body + (zlib.crc32(body) & 0xFFFFFFFF).to_bytes(4, "little")


def decode_pair(data: bytes) -> tuple:
    a, b = struct.unpack(_FMT, _check_crc(data))
    return a, b
'''
    path = tmp_path / "delegated.py"
    path.write_text(src)
    result = lint_paths([path], rules=select_rules(["F204"]))
    assert result.violations == []


def test_repo_storage_layer_is_format_clean(repo_src):
    result = lint_paths([repo_src / "storage"], rules=select_rules(["F"]))
    assert result.violations == [], [str(v.format()) for v in result.violations]
