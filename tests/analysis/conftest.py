from pathlib import Path

import pytest

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def fixtures_dir() -> Path:
    return FIXTURES


@pytest.fixture
def repo_src() -> Path:
    return REPO_ROOT / "src" / "repro"
