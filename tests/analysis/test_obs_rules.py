"""O-family rules: clock discipline and injected instrumentation."""

from pathlib import Path

from repro.analysis import lint_paths, select_rules
from repro.analysis.core import FileContext
from repro.analysis.obs_rules import OBS_RULES


def _rule(rule_id: str):
    return next(r for r in OBS_RULES if r.id == rule_id)


def _check(rule_id: str, source: str, path: str = "snippet.py"):
    ctx = FileContext.from_source(source, Path(path))
    rule = _rule(rule_id)
    return rule.check(ctx) if rule.applies(ctx) else []


def test_fixture_triggers_every_o_rule(fixtures_dir):
    result = lint_paths(
        [fixtures_dir / "bad_obs.py"], rules=select_rules(["O"])
    )
    by_rule = result.by_rule()
    # import time, from datetime import, time.perf_counter(), datetime.now()
    assert len(by_rule.get("O501", [])) == 4
    # VirtualClock, ChromeTracer, MetricsRegistry, Obs(...), Obs.recording()
    assert len(by_rule.get("O502", [])) == 5
    # counter concat, gauge f-string, complete .format()
    assert len(by_rule.get("O503", [])) == 3


def test_wall_clock_import_flagged_in_obs_package():
    src = "import time\n"
    ctx = FileContext.from_source(src, Path("src/repro/obs/clock.py"))
    assert len(_rule("O501").check(ctx)) == 1


def test_wall_clock_call_flagged_through_alias():
    src = "import time as t\nnow = t.monotonic()\n"
    violations = _check("O501", src)
    # the import and the call are each one finding
    assert len(violations) == 2


def test_tools_package_is_exempt_from_o501():
    src = "import time\nt0 = time.perf_counter()\n"
    ctx = FileContext.from_source(src, Path("src/repro/tools/trace_cli.py"))
    rule = _rule("O501")
    assert not rule.applies(ctx)


def test_recording_constructor_flagged_in_data_plane():
    src = (
        "from repro.obs import MetricsRegistry\n"
        "reg = MetricsRegistry()\n"
    )
    ctx = FileContext.from_source(src, Path("src/repro/core/carp_extra.py"))
    assert len(_rule("O502").check(ctx)) == 1


def test_recording_classmethod_flagged():
    src = "from repro.obs import Obs\nobs = Obs.recording()\n"
    violations = _check("O502", src)
    assert len(violations) == 1


def test_null_obs_constant_not_flagged():
    # the sanctioned pattern: import the shared null stack, no construction
    src = (
        "from repro.obs import NULL_OBS, Obs\n"
        "def f(obs=None):\n"
        "    return obs if obs is not None else NULL_OBS\n"
    )
    assert _check("O502", src) == []


def test_obs_package_may_construct_its_own_classes():
    # repro.obs itself defines/wires the stack; O502 scope excludes it
    src = "from repro.obs.clock import VirtualClock\nc = VirtualClock()\n"
    ctx = FileContext.from_source(src, Path("src/repro/obs/__init__.py"))
    assert not _rule("O502").applies(ctx)


def test_drivers_outside_scope_may_record():
    src = "from repro.obs import Obs\nobs = Obs.recording()\n"
    ctx = FileContext.from_source(src, Path("src/repro/tools/trace_cli.py"))
    assert not _rule("O502").applies(ctx)


def test_dynamic_metric_name_flagged():
    src = (
        "def f(obs, rank):\n"
        "    obs.metrics.counter(f'koidb.bytes.r{rank}').add(1)\n"
    )
    violations = _check("O503", src)
    assert len(violations) == 1
    assert "f-string" in violations[0].message


def test_dynamic_span_name_flagged_at_tracer_position():
    # tracer.complete carries the name in argument position 1
    src = (
        "def f(obs, track, level):\n"
        "    obs.tracer.complete(track, 'lvl ' + str(level), 0.0, 1.0)\n"
    )
    assert len(_check("O503", src)) == 1


def test_tracer_counter_arity_disambiguates():
    # tracer.counter(track, name, ts, values): name is arg 1, and the
    # dynamic *track* expression in arg 0 must not be misread as a name
    src = (
        "def f(obs, track, rank):\n"
        "    obs.tracer.counter(track, f'load.r{rank}', 0.0, {'v': 1})\n"
        "    obs.tracer.counter(track, 'load', 0.0, {'v': 1})\n"
    )
    assert len(_check("O503", src)) == 1


def test_static_names_and_variables_not_flagged():
    src = (
        "NAME = 'koidb.flushes'\n"
        "def f(obs):\n"
        "    obs.metrics.counter('koidb.bytes_written').add(1)\n"
        "    obs.metrics.counter(NAME).add(1)\n"
        "    obs.tracer.begin(obs.track('flush', 'rank 0'), 'flush', 0.0)\n"
    )
    assert _check("O503", src) == []


def test_obs_package_exempt_from_o503():
    # the tracer plumbing forwards names it did not originate
    src = "def replay(self, track, name, ts):\n    self.begin(track, str(name), ts)\n"
    ctx = FileContext.from_source(src, Path("src/repro/obs/tracer.py"))
    assert not _rule("O503").applies(ctx)


def test_bad_telemetry_fixture_triggers_o504(fixtures_dir):
    result = lint_paths(
        [fixtures_dir / "bad_telemetry.py"], rules=select_rules(["O"])
    )
    by_rule = result.by_rule()
    # module open, module time.time, class-body read_text,
    # constructor open, constructor time.monotonic
    assert len(by_rule.get("O504", [])) == 5
    # everything else in the fixture is either clean or suppressed
    assert set(by_rule) == {"O504"}


def test_good_telemetry_fixture_is_o504_clean(fixtures_dir):
    result = lint_paths(
        [fixtures_dir / "good_telemetry.py"], rules=select_rules(["O"])
    )
    assert result.by_rule().get("O504", []) == []


def test_o504_flags_module_scope_open():
    violations = _check("O504", "SINK = open('t.jsonl', 'a')\n")
    assert len(violations) == 1
    assert "module scope" in violations[0].message


def test_o504_flags_constructor_wall_clock():
    src = (
        "import time\n"
        "class Exporter:\n"
        "    def __init__(self):\n"
        "        self.t0 = time.monotonic()\n"
    )
    violations = _check("O504", src)
    assert len(violations) == 1
    assert "constructor scope" in violations[0].message


def test_o504_injected_constructor_is_clean():
    src = (
        "class Stream:\n"
        "    def __init__(self, metrics, clock, sink):\n"
        "        self.sink = sink\n"
        "        self.next_due = clock.now() + 10.0\n"
    )
    assert _check("O504", src) == []


def test_o504_method_bodies_may_persist():
    # an explicit persist call (ChromeTracer.write-style) is sanctioned
    src = (
        "class Tracer:\n"
        "    def write(self, path):\n"
        "        with open(path, 'w') as fh:\n"
        "            fh.write('{}')\n"
    )
    assert _check("O504", src) == []


def test_o504_deferred_bodies_are_exempt():
    # defining a closure at import time is fine; only executing the
    # acquiring call is not
    src = (
        "def make_sink(path):\n"
        "    return open(path, 'a')\n"
        "FACTORY = lambda p: open(p, 'a')\n"
    )
    assert _check("O504", src) == []


def test_o504_applies_inside_obs_package_only():
    src = "SINK = open('t.jsonl', 'a')\n"
    rule = _rule("O504")
    obs_ctx = FileContext.from_source(
        src, Path("src/repro/obs/telemetry.py")
    )
    core_ctx = FileContext.from_source(src, Path("src/repro/core/carp.py"))
    assert rule.applies(obs_ctx)
    assert not rule.applies(core_ctx)


def test_bad_profile_fixture_triggers_o505(fixtures_dir):
    result = lint_paths(
        [fixtures_dir / "bad_profile.py"], rules=select_rules(["O"])
    )
    by_rule = result.by_rule()
    # import repro.obs.tracer, from repro.obs import Obs, `obs` param,
    # Obs.recording(), Obs-annotated param
    assert len(by_rule.get("O505", [])) == 5
    # everything else in the fixture is either clean or suppressed
    assert set(by_rule) == {"O505"}


def test_good_profile_fixture_is_o505_clean(fixtures_dir):
    result = lint_paths(
        [fixtures_dir / "good_profile.py"], rules=select_rules(["O"])
    )
    assert result.violations == []


def test_o505_flags_live_stack_import():
    src = "from repro.obs import Obs\n"
    violations = _check("O505", src, path="profile_snippet.py")
    assert len(violations) == 1
    assert "live observability stack" in violations[0].message


def test_o505_allows_profile_submodule_import():
    src = "from repro.obs.profile import fold\n"
    assert _check("O505", src, path="profile_snippet.py") == []


def test_o505_flags_obs_parameter_and_annotation():
    src = (
        "def fold(obs, events):\n"
        "    return events\n"
        "def join(events, source: 'Obs'):\n"
        "    return events\n"
    )
    violations = _check("O505", src, path="profile_snippet.py")
    assert len(violations) == 2


def test_o505_flags_null_obs_borrowing():
    # even the null stack is a run handle, not an artifact
    src = (
        "from repro.obs import Obs\n"
        "def fold(events):\n"
        "    return Obs.null()\n"
    )
    violations = _check("O505", src, path="profile_snippet.py")
    # the import and the factory call are each one finding
    assert len(violations) == 2


def test_o505_keys_fixtures_on_profile_stem():
    # the contract is profile-specific: other fixture files (e.g.
    # bad_telemetry.py) must not start tripping it
    src = "from repro.obs import Obs\n"
    rule = _rule("O505")
    assert rule.applies(FileContext.from_source(src, Path("my_profile.py")))
    assert not rule.applies(
        FileContext.from_source(src, Path("bad_telemetry.py"))
    )
    assert rule.applies(
        FileContext.from_source(src, Path("src/repro/obs/profile.py"))
    )
    assert not rule.applies(
        FileContext.from_source(src, Path("src/repro/obs/report.py"))
    )


def test_repo_is_o_clean(repo_src):
    result = lint_paths([repo_src], rules=select_rules(["O"]))
    assert result.violations == []
