"""X/W/L rule families: the CFG-dataflow rules behave path-sensitively."""

from pathlib import Path

import pytest

from repro.analysis import lint_paths, select_rules
from repro.analysis.core import FileContext
from repro.analysis.runner import rules_by_id

_STORAGE = "src/repro/storage/snippet.py"
_QUERY = "src/repro/query/snippet.py"


def _check(rule_id: str, source: str, path: str = _STORAGE):
    ctx = FileContext.from_source(source, Path(path))
    rule = rules_by_id()[rule_id]
    out = list(rule.check(ctx)) if rule.applies(ctx) else []
    out.extend(rule.check_project([ctx]))
    return [v for v in out if v.rule == rule_id]


# ------------------------------------------------------------------ fixtures


@pytest.mark.parametrize(
    ("fixture", "expected"),
    [
        ("bad_concurrency.py", {"X801": 2, "X802": 3, "X803": 1}),
        ("bad_writepath.py", {"W901": 1, "W902": 1, "W903": 1}),
        ("bad_lifetime.py", {"L1001": 1, "L1002": 1, "L1003": 1}),
    ],
)
def test_fixture_fires_expected_rules(fixtures_dir, fixture, expected):
    prefixes = sorted({rule_id[0] for rule_id in expected})
    result = lint_paths(
        [fixtures_dir / fixture], rules=select_rules(prefixes)
    )
    counts = {rid: len(vs) for rid, vs in result.by_rule().items()}
    assert counts == expected


def test_repo_is_xwl_clean(repo_src):
    result = lint_paths([repo_src], rules=select_rules(["X", "W", "L1"]))
    assert result.violations == []


# ----------------------------------------------------------------- X family


def test_x801_thread_target_mutation():
    src = (
        "import threading\n"
        "_reg = {}\n"
        "def body(x):\n"
        "    _reg[x] = 1\n"
        "def run():\n"
        "    threading.Thread(target=body).start()\n"
    )
    assert len(_check("X801", src, "src/repro/exec/snippet.py")) == 1


def test_x801_quiet_without_thread_roots():
    src = "_reg = {}\ndef body(x):\n    _reg[x] = 1\n"
    assert _check("X801", src, "src/repro/exec/snippet.py") == []


def test_x801_lock_guard_is_sanctioned():
    src = (
        "import threading\n"
        "_reg = {}\n"
        "_lock = threading.Lock()\n"
        "def body(x):\n"
        "    with _lock:\n"
        "        _reg[x] = 1\n"
        "def run():\n"
        "    threading.Thread(target=body).start()\n"
    )
    assert _check("X801", src, "src/repro/exec/snippet.py") == []


def test_x801_follows_submit_through_helpers():
    src = (
        "_reg = {}\n"
        "def helper(x):\n"
        "    _reg[x] = 1\n"
        "def task(x):\n"
        "    helper(x)\n"
        "def run(pool):\n"
        "    pool.submit(task)\n"
    )
    assert len(_check("X801", src, "src/repro/exec/snippet.py")) == 1


def test_x802_release_in_finally_clears_the_lock():
    src = (
        "def f(pool, lock):\n"
        "    lock.acquire()\n"
        "    try:\n"
        "        pass\n"
        "    finally:\n"
        "        lock.release()\n"
        "    pool.submit(1)\n"
    )
    assert _check("X802", src) == []


def test_x802_lock_held_on_one_branch():
    src = (
        "def f(pool, lock, cond):\n"
        "    if cond:\n"
        "        lock.acquire()\n"
        "    pool.submit(1)\n"
    )
    assert len(_check("X802", src)) == 1


def test_x802_block_name_is_not_a_lock():
    src = (
        "def f(pool, key_block):\n"
        "    with key_block:\n"
        "        pool.submit(1)\n"
    )
    assert _check("X802", src) == []


def test_x803_popen_under_lock():
    src = (
        "import subprocess\n"
        "def f(lock, cmd):\n"
        "    with lock:\n"
        "        subprocess.Popen(cmd)\n"
    )
    assert len(_check("X803", src)) == 1


# ----------------------------------------------------------------- W family


def test_w901_unsynced_write_reaches_replace():
    src = (
        "import os\n"
        "def commit(tmp, dst, data):\n"
        "    with open(tmp, 'wb') as fh:\n"
        "        fh.write(data)\n"
        "    os.replace(tmp, dst)\n"
    )
    assert len(_check("W901", src)) == 1


def test_w901_fsync_before_commit_is_clean():
    src = (
        "import os\n"
        "def commit(tmp, dst, data):\n"
        "    with open(tmp, 'wb') as fh:\n"
        "        fh.write(data)\n"
        "        fh.flush()\n"
        "        os.fsync(fh.fileno())\n"
        "    os.replace(tmp, dst)\n"
    )
    assert _check("W901", src) == []


def test_w901_branch_that_skips_fsync_still_fires():
    src = (
        "import os\n"
        "def commit(tmp, dst, data, fast):\n"
        "    with open(tmp, 'wb') as fh:\n"
        "        fh.write(data)\n"
        "        fh.flush()\n"
        "        if not fast:\n"
        "            os.fsync(fh.fileno())\n"
        "    os.replace(tmp, dst)\n"
    )
    assert len(_check("W901", src)) == 1


def test_w902_footer_write_through_helper():
    src = (
        "class W:\n"
        "    def _emit(self, payload):\n"
        "        self._fh.write(payload)\n"
        "    def flush_epoch(self, block, footer):\n"
        "        self._emit(block + footer)\n"
        "        self._fh.flush()\n"
    )
    assert len(_check("W902", src)) == 1


def test_w902_fsync_through_self_handle_is_clean():
    src = (
        "import os\n"
        "class W:\n"
        "    def _emit(self, payload):\n"
        "        self._fh.write(payload)\n"
        "    def flush_epoch(self, block, footer):\n"
        "        self._emit(block + footer)\n"
        "        self._fh.flush()\n"
        "        os.fsync(self._fh.fileno())\n"
    )
    assert _check("W902", src) == []


def test_w903_requires_flush_before_fsync():
    src = (
        "import os\n"
        "def f(path, data):\n"
        "    fh = open(path, 'wb')\n"
        "    fh.write(data)\n"
        "    os.fsync(fh.fileno())\n"
        "    fh.close()\n"
    )
    assert len(_check("W903", src)) == 1


def test_w903_flushed_fsync_is_clean():
    src = (
        "import os\n"
        "def f(path, data):\n"
        "    fh = open(path, 'wb')\n"
        "    fh.write(data)\n"
        "    fh.flush()\n"
        "    os.fsync(fh.fileno())\n"
        "    fh.close()\n"
    )
    assert _check("W903", src) == []


def test_w_rules_scoped_to_storage():
    src = (
        "import os\n"
        "def commit(tmp, dst, data):\n"
        "    with open(tmp, 'wb') as fh:\n"
        "        fh.write(data)\n"
        "    os.replace(tmp, dst)\n"
    )
    ctx = FileContext.from_source(src, Path("src/repro/tools/snippet.py"))
    assert not rules_by_id()["W901"].applies(ctx)


# ----------------------------------------------------------------- L family


def test_l1001_early_return_leak():
    src = (
        "def f(path, cond):\n"
        "    fh = open(path)\n"
        "    if cond:\n"
        "        return None\n"
        "    fh.close()\n"
        "    return 1\n"
    )
    assert len(_check("L1001", src, _QUERY)) == 1


def test_l1001_closed_on_all_paths_is_clean():
    src = (
        "def f(path, cond):\n"
        "    fh = open(path)\n"
        "    try:\n"
        "        if cond:\n"
        "            return None\n"
        "        return fh.read()\n"
        "    finally:\n"
        "        fh.close()\n"
    )
    assert _check("L1001", src, _QUERY) == []


def test_l1001_exception_during_open_binds_nothing():
    # pre-state exceptional semantics: open() raising leaves no handle
    src = (
        "def f(path):\n"
        "    try:\n"
        "        fh = open(path)\n"
        "    except OSError:\n"
        "        return None\n"
        "    data = fh.read()\n"
        "    fh.close()\n"
        "    return data\n"
    )
    assert _check("L1001", src, _QUERY) == []


def test_l1001_escape_by_return_is_ownership_transfer():
    src = "def f(path):\n    fh = open(path)\n    return fh\n"
    assert _check("L1001", src, _QUERY) == []


def test_l1001_escape_into_attribute_is_ownership_transfer():
    src = (
        "class C:\n"
        "    def attach(self, path):\n"
        "        fh = open(path)\n"
        "        self._fh = fh\n"
    )
    assert _check("L1001", src, _QUERY) == []


def test_l1002_resource_attribute_without_close():
    src = (
        "class C:\n"
        "    def __init__(self, path):\n"
        "        self.fh = open(path)\n"
    )
    assert len(_check("L1002", src, _QUERY)) == 1


def test_l1002_close_method_is_clean():
    src = (
        "class C:\n"
        "    def __init__(self, path):\n"
        "        self.fh = open(path)\n"
        "    def close(self):\n"
        "        self.fh.close()\n"
    )
    assert _check("L1002", src, _QUERY) == []


def test_l1003_orphan_open():
    src = "def f(path):\n    return open(path).read()\n"
    assert len(_check("L1003", src, _QUERY)) == 1


def test_l1003_with_open_is_clean():
    src = (
        "def f(path):\n"
        "    with open(path) as fh:\n"
        "        return fh.read()\n"
    )
    assert _check("L1003", src, _QUERY) == []
