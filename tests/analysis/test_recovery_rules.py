"""R-family rules: recovery quarantines, it never deletes."""

from pathlib import Path

from repro.analysis import lint_paths, select_rules
from repro.analysis.core import FileContext
from repro.analysis.recovery_rules import RECOVERY_RULES


def _rule(rule_id: str):
    return next(r for r in RECOVERY_RULES if r.id == rule_id)


def _check(rule_id: str, source: str, path: str = "src/repro/storage/snippet.py"):
    ctx = FileContext.from_source(source, Path(path))
    rule = _rule(rule_id)
    return rule.check(ctx) if rule.applies(ctx) else []


def test_fixture_triggers_every_r_rule(fixtures_dir):
    result = lint_paths(
        [fixtures_dir / "bad_recovery.py"], rules=select_rules(["R"])
    )
    by_rule = result.by_rule()
    # os.remove, os.unlink, os.rmdir, shutil.rmtree, Path.unlink
    assert len(by_rule.get("R701", [])) == 5


def test_os_remove_flagged_in_storage_package():
    src = "import os\n\ndef gc(path):\n    os.remove(path)\n"
    assert len(_check("R701", src)) == 1


def test_path_unlink_method_flagged():
    src = "def gc(path):\n    path.unlink(missing_ok=True)\n"
    assert len(_check("R701", src)) == 1


def test_shutil_rmtree_flagged_through_alias():
    src = "import shutil as sh\n\ndef gc(d):\n    sh.rmtree(d)\n"
    assert len(_check("R701", src)) == 1


def test_quarantine_helpers_exempt():
    src = (
        "import os\n"
        "def quarantine_tail(path):\n"
        "    os.remove(path)\n"
        "def quarantine_whole_file(path):\n"
        "    def move():\n"
        "        path.unlink()\n"
        "    move()\n"
    )
    assert _check("R701", src) == []


def test_rename_and_replace_are_sanctioned():
    # quarantine moves files aside; os.replace/rename never destroy bytes
    src = (
        "import os\n"
        "def repair(path, target):\n"
        "    os.replace(path, target)\n"
        "    os.rename(path, target)\n"
    )
    assert _check("R701", src) == []


def test_list_remove_is_not_a_file_deletion():
    src = "def prune(entries, bad):\n    entries.remove(bad)\n"
    assert _check("R701", src) == []


def test_rule_scoped_to_storage_package():
    src = "import os\n\ndef gc(path):\n    os.remove(path)\n"
    ctx = FileContext.from_source(src, Path("src/repro/tools/some_cli.py"))
    assert not _rule("R701").applies(ctx)


def test_repo_is_r_clean(repo_src):
    result = lint_paths([repo_src], rules=select_rules(["R"]))
    assert result.violations == []
