"""Line-scoped suppressions: disable-next=, disable-line=, precedence."""

from pathlib import Path

from repro.analysis import lint_paths
from repro.analysis.core import FileContext, parse_line_suppressions


def _lint_source(tmp_path, source, name="snippet.py"):
    path = tmp_path / name
    path.write_text(source)
    return lint_paths([path])


def test_parse_line_suppressions_forms():
    src = (
        "# carp-lint: disable-next=D101\n"
        "x = 1\n"
        "y = 2  # carp-lint: disable-line=D101, F202\n"
        "# carp-lint: disable-next=all\n"
        "z = 3\n"
    )
    parsed = parse_line_suppressions(src)
    assert parsed == {
        2: {"D101"},
        3: {"D101", "F202"},
        5: {"all"},
    }


def test_disable_next_skips_blank_and_comment_lines():
    src = (
        "# carp-lint: disable-next=D101\n"
        "\n"
        "# an unrelated comment\n"
        "x = 1\n"
    )
    assert parse_line_suppressions(src) == {4: {"D101"}}


def test_file_wide_disable_is_not_a_line_form():
    # the narrower forms must not be swallowed by the disable= regex,
    # nor vice versa
    src = "# carp-lint: disable=D101\nx = 1\n"
    assert parse_line_suppressions(src) == {}


def test_is_suppressed_precedence():
    src = (
        "# carp-lint: disable=F202\n"
        "# carp-lint: disable-next=D101\n"
        "x = 1\n"
        "y = 2  # carp-lint: disable-line=all\n"
    )
    ctx = FileContext.from_source(src, Path("m.py"))
    # file-wide applies on every line
    assert ctx.is_suppressed("F202", line=3)
    assert ctx.is_suppressed("F202")
    # line forms only on their line
    assert ctx.is_suppressed("D101", line=3)
    assert not ctx.is_suppressed("D101", line=2)
    # disable-line=all silences everything on that one line only
    assert ctx.is_suppressed("X999", line=4)
    assert not ctx.is_suppressed("X999", line=3)


def test_disable_line_silences_one_finding(tmp_path):
    noisy = "import time\n\n\ndef f():\n    return time.time()\n"
    result = _lint_source(tmp_path, noisy)
    fired = {v.rule for v in result.violations}
    assert "D101" in fired

    line = noisy.splitlines()[4] + "  # carp-lint: disable-line=D101\n"
    fixed = "\n".join(noisy.splitlines()[:4]) + "\n" + line
    result = _lint_source(tmp_path, fixed)
    assert "D101" not in {v.rule for v in result.violations}


def test_disable_next_silences_the_following_line(tmp_path):
    src = (
        "import time\n"
        "\n"
        "\n"
        "def f():\n"
        "    # carp-lint: disable-next=D101\n"
        "    return time.time()\n"
    )
    result = _lint_source(tmp_path, src)
    assert "D101" not in {v.rule for v in result.violations}


def test_line_suppression_does_not_leak_to_other_lines(tmp_path):
    src = (
        "import time\n"
        "\n"
        "\n"
        "def f():\n"
        "    # carp-lint: disable-next=D101\n"
        "    a = time.time()\n"
        "    b = time.time()\n"
        "    return a, b\n"
    )
    result = _lint_source(tmp_path, src)
    d101_lines = {v.line for v in result.violations if v.rule == "D101"}
    assert 6 not in d101_lines
    assert 7 in d101_lines
