"""Drift detector: docs, rule registry, and fixture corpus stay in sync.

Three-way consistency, failing with the exact missing ids:

* every rule id mentioned in ``docs/INVARIANTS.md`` is implemented;
* every implemented rule is documented there;
* every implemented rule appears in the fixture corpus (a bad-example
  file demonstrates what it catches).
"""

import re
from pathlib import Path

from repro.analysis.runner import ALL_RULES

_REPO = Path(__file__).resolve().parents[2]
_INVARIANTS = _REPO / "docs" / "INVARIANTS.md"

# rule ids are one family letter plus 3-4 digits (D101 ... L1001)
_RULE_ID_RE = re.compile(r"\b([A-Z]\d{3,4})\b")


def _documented_ids() -> set[str]:
    return set(_RULE_ID_RE.findall(_INVARIANTS.read_text()))


def _implemented_ids() -> set[str]:
    return {rule.id for rule in ALL_RULES}


def test_every_implemented_rule_is_documented():
    missing = _implemented_ids() - _documented_ids()
    assert not missing, (
        f"rules implemented but absent from docs/INVARIANTS.md: "
        f"{sorted(missing)}"
    )


def test_every_documented_rule_is_implemented():
    phantom = _documented_ids() - _implemented_ids()
    assert not phantom, (
        f"rule ids documented in docs/INVARIANTS.md but not registered "
        f"in ALL_RULES: {sorted(phantom)}"
    )


def test_every_rule_appears_in_the_fixture_corpus(fixtures_dir):
    corpus = "\n".join(
        path.read_text() for path in sorted(fixtures_dir.glob("*.py"))
    )
    uncovered = {
        rule_id for rule_id in _implemented_ids() if rule_id not in corpus
    }
    assert not uncovered, (
        f"rules with no fixture under tests/analysis/fixtures/: "
        f"{sorted(uncovered)}"
    )


def test_rule_descriptions_are_nonempty():
    for rule in ALL_RULES:
        assert rule.id and rule.name and rule.description, rule
