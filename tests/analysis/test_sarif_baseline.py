"""SARIF output shape and the baseline ratchet workflow."""

import json

import pytest

from repro.analysis import lint_paths
from repro.analysis.baseline import (
    BaselineError,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.cli import main
from repro.analysis.runner import rules_by_id
from repro.analysis.sarif import SARIF_SCHEMA, to_sarif

# ----------------------------------------------------------------- SARIF


def _bad_result(fixtures_dir):
    return lint_paths([fixtures_dir / "bad_hygiene.py"])


def test_sarif_document_shape(fixtures_dir):
    result = _bad_result(fixtures_dir)
    doc = to_sarif(result, rules_by_id().values())
    assert doc["$schema"] == SARIF_SCHEMA
    assert doc["version"] == "2.1.0"
    (run,) = doc["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "carp-lint"
    rule_ids = [r["id"] for r in driver["rules"]]
    assert len(rule_ids) == len(set(rule_ids))
    assert run["results"], "bad fixture must produce results"
    assert run["invocations"][0]["executionSuccessful"] is True


def test_sarif_results_reference_the_rule_catalogue(fixtures_dir):
    result = _bad_result(fixtures_dir)
    doc = to_sarif(result, rules_by_id().values())
    run = doc["runs"][0]
    rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
    for res in run["results"]:
        assert rule_ids[res["ruleIndex"]] == res["ruleId"]
        loc = res["locations"][0]["physicalLocation"]
        region = loc["region"]
        assert region["startLine"] >= 1
        assert region["startColumn"] >= 1
        assert not loc["artifactLocation"]["uri"].startswith("/")


def test_sarif_cli_output_is_valid_json(fixtures_dir, capsys):
    code = main(
        [str(fixtures_dir / "bad_hygiene.py"), "--format", "sarif"]
    )
    assert code == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == "2.1.0"
    assert doc["runs"][0]["results"]


# -------------------------------------------------------------- baseline


def test_write_then_apply_baseline_is_clean(fixtures_dir, tmp_path):
    result = _bad_result(fixtures_dir)
    assert result.violations
    baseline = tmp_path / "baseline.json"
    count = write_baseline(result, baseline)
    assert count == len(result.violations)

    remaining = apply_baseline(result, load_baseline(baseline))
    assert remaining.ok
    assert remaining.violations == []


def test_baseline_is_count_aware(tmp_path):
    # keys match on (rule, path, message) but respect multiplicity: a
    # second identical finding added after the baseline still fires
    path = tmp_path / "m.py"
    path.write_text("import time\n\n\ndef f():\n    return time.time()\n")
    baseline = tmp_path / "baseline.json"
    write_baseline(lint_paths([path]), baseline)

    path.write_text(
        "import time\n"
        "\n"
        "\n"
        "def f():\n"
        "    return time.time()\n"
        "\n"
        "\n"
        "def g():\n"
        "    return time.time()\n"
    )
    remaining = apply_baseline(lint_paths([path]), load_baseline(baseline))
    d101 = [v for v in remaining.violations if v.rule == "D101"]
    assert len(d101) == 1


def test_new_findings_survive_the_baseline(fixtures_dir, tmp_path):
    hygiene = lint_paths([fixtures_dir / "bad_hygiene.py"])
    baseline = tmp_path / "baseline.json"
    write_baseline(hygiene, baseline)
    both = lint_paths(
        [fixtures_dir / "bad_hygiene.py", fixtures_dir / "bad_obs.py"]
    )
    remaining = apply_baseline(both, load_baseline(baseline))
    assert remaining.violations
    assert all("bad_obs.py" in v.path for v in remaining.violations)


def test_malformed_baseline_raises(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text("{not json")
    with pytest.raises(BaselineError):
        load_baseline(bad)
    with pytest.raises(BaselineError):
        load_baseline(tmp_path / "missing.json")


def test_cli_baseline_roundtrip(fixtures_dir, tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    fixture = str(fixtures_dir / "bad_hygiene.py")
    assert main([fixture, "--write-baseline", str(baseline)]) == 0
    assert "baseline written" in capsys.readouterr().out
    assert main([fixture, "--baseline", str(baseline)]) == 0
    capsys.readouterr()


def test_cli_baseline_flags_are_mutually_exclusive(tmp_path, capsys):
    path = tmp_path / "f.py"
    path.write_text("x = 1\n")
    code = main(
        [
            str(path),
            "--baseline",
            str(tmp_path / "a.json"),
            "--write-baseline",
            str(tmp_path / "b.json"),
        ]
    )
    assert code == 2
    assert "mutually exclusive" in capsys.readouterr().err


def test_cli_missing_baseline_is_usage_error(tmp_path, capsys):
    path = tmp_path / "f.py"
    path.write_text("x = 1\n")
    code = main([str(path), "--baseline", str(tmp_path / "nope.json")])
    assert code == 2
    capsys.readouterr()
