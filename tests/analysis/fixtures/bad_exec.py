"""Fixture: every P-rule violation in one file.

Outside any ``repro`` package the module path is unknown, which
carp-lint treats as in-scope — exactly what lets this corpus exercise
the scoped rules.
"""
# carp-lint: disable=T401,T402,O502

from collections import deque

from repro.obs import Obs, VirtualClock

CACHE = {}  # P601
pending: list = []  # P601 (annotated assignment)
RECENT = deque()  # P601 (mutable constructor call)
SEEN = set(x for x in range(4))  # P601 (comprehension)

WORKERS = 4  # fine: immutable
KINDS = ("serial", "thread")  # fine: tuple

__all__ = ["task_with_global"]  # fine: dunder metadata


def task_with_global(state, shard):
    global CACHE  # P601
    CACHE[shard] = state
    return shard


def task_builds_recording_obs(state, shard):
    obs = Obs.recording()  # P602
    clock = VirtualClock()  # P602
    return obs, clock, shard


def task_uses_state_correctly(state, shard):
    # the sanctioned pattern: mutable state lives in the per-shard dict
    state.setdefault("count", 0)
    state["count"] += 1
    return state["count"]
