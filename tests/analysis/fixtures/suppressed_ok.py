"""Fixture: violations silenced by per-file suppressions."""
# carp-lint: disable=D101,D103

import random
import time


def timed_draw():
    return time.time(), random.random()  # both suppressed file-wide
