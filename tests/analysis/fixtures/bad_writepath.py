"""Fixture: every W-family rule must fire on this file.

Broken storage commit protocols: an fsync-free footer write, a rename
commit over unsynced bytes, and an fsync on an unflushed buffer — with
a fully durable counterpart proving the clean protocol stays quiet.
"""
# carp-lint: disable=T401,T402

import os


def fsync_free_footer(path, payload, footer_bytes):
    fh = open(path, "r+b")
    fh.write(payload)
    fh.write(footer_bytes)  # W902: footer never fsynced on any path
    fh.flush()
    fh.close()


def unsynced_commit(tmp, final, data):
    with open(tmp, "wb") as fh:
        fh.write(data)
    os.replace(tmp, final)  # W901: data still volatile at the commit


def fsync_unflushed(path, data):
    fh = open(path, "wb")
    fh.write(data)
    os.fsync(fh.fileno())  # W903: userspace buffer not flushed
    fh.close()


def durable_commit(tmp, final, data, footer_bytes):
    # ok: the full write -> flush -> fsync -> commit protocol
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.write(footer_bytes)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, final)
