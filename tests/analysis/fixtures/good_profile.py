"""Fixture: the sanctioned profile-builder shape (O505-clean).

Pure functions over already-decoded artifacts: a list of trace events
in, an aggregate out.  No ``repro.obs`` import, no ``obs`` parameter,
no clocks — rerunning the fold over the same archive is byte-identical
by construction.
"""
# carp-lint: disable=D101,L1001,L1002,L1003,T401,T402


def fold_events(events):
    totals = {}
    for event in events:
        if event.get("ph") != "X":
            continue
        name = str(event.get("name"))
        totals[name] = totals.get(name, 0.0) + float(event.get("dur", 0.0))
    return totals


def join_counters(profile, snapshot):
    counters = snapshot.get("counters", {})
    return {
        name: (profile.get(name, 0.0), counters.get(name, 0.0))
        for name in sorted(set(profile) | set(counters))
    }
