"""Fixture: every D-rule violation in one file.

Outside any ``repro`` package the module path is unknown, which
carp-lint treats as in-scope — exactly what lets this corpus exercise
the scoped rules.
"""
# carp-lint: disable=T401,T402

import random
import time
from datetime import datetime

import numpy as np


def wall_clock_timestamp():
    started = time.time()  # D101
    now = datetime.now()  # D101
    return started, now


def unseeded_generators():
    gen = np.random.default_rng()  # D102
    legacy = random.Random()  # D102
    return gen, legacy


def global_state_draws(n):
    a = random.random()  # D103
    b = np.random.rand(n)  # D103
    np.random.shuffle(b)  # D103
    return a, b


def salted_bucket(key, nbuckets):
    return hash(key) % nbuckets  # D104


def seeded_is_fine(seed):
    # properly seeded RNGs must NOT be flagged
    gen = np.random.default_rng(seed)
    kw = np.random.default_rng(seed=seed)
    return gen, kw
