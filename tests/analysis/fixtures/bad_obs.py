"""Fixture: every O-rule violation in one file.

Outside any ``repro`` package the module path is unknown, which
carp-lint treats as in-scope — exactly what lets this corpus exercise
the scoped rules.
"""
# carp-lint: disable=T401,T402,D101

import time
from datetime import datetime

from repro.obs import ChromeTracer, MetricsRegistry, Obs, VirtualClock


def stamp_with_host_clock():
    started = time.perf_counter()  # O501 (import already flagged too)
    when = datetime.now()  # O501
    return started, when


def data_plane_builds_its_own_stack():
    clock = VirtualClock()  # O502
    tracer = ChromeTracer()  # O502
    metrics = MetricsRegistry()  # O502
    return Obs(clock, metrics, tracer)  # O502


def recording_classmethod():
    return Obs.recording()  # O502


def dynamic_instrument_names(obs, rank):
    obs.metrics.counter("koidb.bytes.r" + str(rank)).add(1)  # O503
    obs.metrics.gauge(f"occupancy.r{rank}").set(0.5)  # O503
    track = obs.track("flush", "rank 0")
    obs.tracer.complete(track, "phase {}".format(rank), 0.0, 1.0)  # O503


def injected_is_fine(obs):
    # accepting an injected stack must NOT be flagged
    obs.metrics.counter("ok").add(1)
    # a static name and a variable holding one must NOT be flagged
    name = "koidb.flushes"
    obs.metrics.counter(name).add(1)
    obs.tracer.instant(obs.track("flush", "rank 0"), "flush", 0.0)
    return obs.clock.now()
