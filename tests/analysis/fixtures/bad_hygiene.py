"""Fixture: one of every H-rule violation."""
# carp-lint: disable=T401,T402

import json  # H006: never used
import os


def append_item(item, bucket=[]):  # H001
    bucket.append(item)
    return bucket


def swallow_everything(fn):
    try:
        return fn()
    except:  # H002
        return None


def is_unset(value):
    return value == None  # H003


def check_invariant(flag):
    assert (flag, "flag must be set")  # H004


def run_snippet(snippet):
    return eval(snippet)  # H005


def cwd():
    return os.getcwd()
