"""Fixture: every X-family rule must fire on this file.

A deliberately broken thread-pool module: a shared module-level dict
mutated from a worker body without a lock, blocking calls and process
spawns under a held lock — plus locked/clean counterparts proving the
rules stay quiet on the sanctioned patterns.
"""
# carp-lint: disable=T401,T402,O501,P601

import subprocess
import threading
import time

_shared_counts: dict[str, int] = {}
_results: list[str] = []
_lock = threading.Lock()


def worker_body(task):
    _shared_counts[task] = _shared_counts.get(task, 0) + 1  # X801
    _results.append(task)  # X801


def worker_locked(task):
    # ok: the sanctioned pattern — mutation under the module lock
    with _lock:
        _shared_counts[task] = 0


def run_all(tasks):
    threads = [
        threading.Thread(target=worker_body, args=(t,)) for t in tasks
    ]
    threads.append(threading.Thread(target=worker_locked, args=(tasks[0],)))
    for t in threads:
        t.start()
    for t in threads:
        t.join()


def blocking_under_with_lock(pool, item):
    with _lock:
        time.sleep(0.1)  # X802
        pool.submit(0, item)  # X802


def spawn_under_lock(cmd):
    with _lock:
        subprocess.Popen(cmd)  # X803


def blocking_under_acquired_lock(pool, item):
    _lock.acquire()
    try:
        pool.submit(0, item)  # X802 (dataflow: lock held here)
    finally:
        _lock.release()
    # ok: the lock is released on every path before this submit
    pool.submit(1, item)
