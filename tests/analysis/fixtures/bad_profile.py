"""Fixture: every O505 shape — live observability in a profile builder.

Profile builders fold *archived artifacts* (decoded ``trace.json``
events and ``metrics.json`` snapshots); importing the live stack,
borrowing a recording ``Obs``, or taking one as a parameter wires the
profile to a run and breaks bit-identical replay.
"""
# carp-lint: disable=O501,O502,D101,L1001,L1002,L1003,T401,T402

import repro.obs.tracer  # O505: live-stack import

from repro.obs import Obs  # O505: live-stack import


def fold_live(obs, events):  # O505: `obs` parameter injects a live stack
    stack = Obs.recording()  # O505: recording-stack construction
    for event in events:
        stack.metrics.counter("profile.events").add(1)
    return {"events": len(events), "obs": obs}


def fold_typed(events, source: "Obs"):  # O505: Obs-annotated parameter
    return {"events": len(events), "source": source}
