"""Fixture: every L-family rule must fire on this file.

Leaked handles: an early return that skips close, a class that can
never release its handle, and an orphan ``open(...).read()`` — with
closed/context-managed counterparts proving the clean shapes stay
quiet.
"""
# O504 is the obs-package sink-injection rule; these constructors open
# files on purpose to exercise the L-family, not to model telemetry.
# carp-lint: disable=T401,T402,O504


def leak_on_early_return(path, check):
    fh = open(path, "rb")  # L1001: open at exit via the early return
    if check:
        return None
    data = fh.read()
    fh.close()
    return data


class HoldsForever:
    def __init__(self, path):
        self.fh = open(path, "rb")  # L1002: no close()/__exit__


def orphan_read(path):
    return open(path, "rb").read()  # L1003: nothing can close this


def closed_on_every_path(path, check):
    # ok: the finally closes on the early return and the fall-through
    fh = open(path, "rb")
    try:
        if check:
            return None
        return fh.read()
    finally:
        fh.close()


def context_managed(path):
    # ok: with-managed handles never leak
    with open(path, "rb") as fh:
        return fh.read()


class ClosesProperly:
    # ok: the resource attribute has a release path
    def __init__(self, path):
        self.fh = open(path, "rb")

    def close(self):
        self.fh.close()
