"""Fixture: the sanctioned injection shapes — O504 must stay quiet."""
# carp-lint: disable=T401,T402,D101


class InjectedExporter:
    def __init__(self, metrics, clock, sink):
        # ok: clock and sink arrive by injection; nothing is acquired
        self.metrics = metrics
        self.clock = clock
        self.sink = sink
        self.next_due = clock.now() + 10.0

    def sample(self):
        # ok: method bodies may persist through the injected sink
        self.sink.write("{}\n")
        return self.clock.now()


def export_to(path, snapshot):
    # ok: an explicit export helper opening on demand is not wiring
    with open(path, "w") as fh:
        fh.write(snapshot)
