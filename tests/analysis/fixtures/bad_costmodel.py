"""Fixture: C301 — simulated I/O that escapes cost-model accounting."""


class LeakySimulator:
    """Ships bytes through the overlay without charging the netmodel."""

    def __init__(self, flow, koidb, netmodel):
        self.flow = flow
        self.koidb = koidb
        self.net = netmodel
        self.clock = 0.0

    def push_round(self, dest, batch, version):
        # C301: sends over the overlay, charges nothing, and no caller
        # in this module charges either
        self.flow.send(dest, batch, version)

    def flush_to_disk(self, batch, epoch):
        # C301: appends to the log, no iomodel charge anywhere
        self.koidb.log.append_batch(batch, epoch)

    def charged_push(self, dest, batch, version, nbytes):
        # properly charged I/O must NOT be flagged
        self.flow.send(dest, batch, version)
        self.clock += self.net.message_time(nbytes)

    def _raw_send(self, dest, batch, version):
        # helper does raw I/O, but its only caller charges: not flagged
        self.flow.send(dest, batch, version)

    def charged_via_caller(self, dest, batch, version, nbytes):
        self._raw_send(dest, batch, version)
        self.clock += self.net.message_time(nbytes)
