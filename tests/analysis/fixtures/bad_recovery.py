"""Fixture: every R-family rule must fire on this file."""

import os
import shutil
from pathlib import Path


def drop_log(path):
    os.remove(path)  # R701
    os.unlink(path)  # R701
    os.rmdir(os.path.dirname(path))  # R701


def clear_directory(directory: Path):
    shutil.rmtree(directory)  # R701
    (directory / "log.bin").unlink()  # R701


def quarantine_orphan(path: Path):
    # sanctioned: quarantine helpers may remove what they relocated
    path.unlink()
