"""Fixture: F-rule violations — drifting struct formats, CRC-less IO."""

import struct

_HEADER_FMT = "<4sHHI"  # 4 fields
_ORPHAN_FMT = "<QQd"  # packed below, never unpacked anywhere (F202)
NATIVE_FMT = "IHH"  # no byte-order prefix (F203)


def pack_header(magic, version, flags):
    # F201: 4-field format, 3 values
    return struct.pack(_HEADER_FMT, magic, version, flags)


def unpack_header(data):
    # F201: 4-field format, 5 target names
    magic, version, flags, count, extra = struct.unpack(_HEADER_FMT, data)
    return magic, version, flags, count, extra


def pack_orphan(a, b, c):
    return struct.pack(_ORPHAN_FMT, a, b, c)  # F202: no unpack anywhere


def pack_native(a, b, c):
    return struct.pack(NATIVE_FMT, a, b, c)  # F203 (+F202)


def encode_record_block(payload: bytes) -> bytes:
    # F204: a writer that emits no CRC at all
    return len(payload).to_bytes(4, "little") + payload


def encode_index_block(entries: list) -> bytes:
    import zlib

    body = b"".join(entries)
    return body + (zlib.crc32(body) & 0xFFFFFFFF).to_bytes(4, "little")


def decode_index_block(data: bytes) -> bytes:
    # F204: reader exists but never verifies the trailing CRC
    return data[:-4]
