"""Fixture: T-rule violations — the strict-typing surface with holes."""


def unannotated_return(x: int):  # T401
    return x * 2


def unannotated_param(x) -> int:  # T402
    return x + 1


class PublicThing:
    def method(self, count):  # T401 + T402
        return count

    def _private_ok(self, anything):
        # private methods are outside the enforced surface
        return anything
