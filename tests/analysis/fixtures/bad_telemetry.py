"""Fixture: every O504 shape — sinks and clocks grabbed eagerly.

Telemetry/export code must take its clock and output sink by
injection (the ``TelemetryStream(metrics, clock, sink)`` shape);
acquiring either at import time or inside a constructor hard-wires
the host environment into the recording.
"""
# carp-lint: disable=O501,D101,L1001,L1002,L1003,T401,T402

import time
from pathlib import Path

LOG = open("telemetry.jsonl", "a")  # O504: module-scope sink
STARTED = time.time()  # O504: module-scope wall clock


class EagerExporter:
    BANNER = Path("banner.txt").read_text()  # O504: class body runs at import

    def __init__(self, path):
        self.sink = open(path, "a")  # O504: constructor-scope sink
        self.t0 = time.monotonic()  # O504: constructor-scope clock

    def write(self, doc):
        # ok: a method body is an explicit persist call, not wiring
        self.sink.write(doc)


def make_sink(path):
    # ok: plain function bodies may open — they run on demand
    return open(path, "a")


FACTORY = lambda p: open(p, "a")  # noqa: E731  # ok: lambda body is deferred
