"""C301: call-graph detection of uncharged simulated I/O."""

from repro.analysis import lint_paths, select_rules


def test_fixture_flags_only_uncharged_methods(fixtures_dir):
    result = lint_paths(
        [fixtures_dir / "bad_costmodel.py"], rules=select_rules(["C"])
    )
    assert len(result.violations) == 2
    flagged = {v.message.split("(")[0] for v in result.violations}
    assert any("push_round" in m for m in flagged)
    assert any("flush_to_disk" in m for m in flagged)
    # charged_push / charged_via_caller / _raw_send must not be flagged
    assert not any("charged" in m for m in flagged)
    assert not any("_raw_send" in m for m in flagged)


def test_charge_in_descendant_counts(tmp_path):
    src = '''
class Sim:
    def ship(self, flow, net, dest, batch, nbytes):
        flow.send(dest, batch, 0)
        self._account(net, nbytes)

    def _account(self, net, nbytes):
        self.clock += net.message_time(nbytes)
'''
    path = tmp_path / "sim_ok.py"
    path.write_text(src)
    result = lint_paths([path], rules=select_rules(["C"]))
    assert result.violations == []


def test_io_with_no_charge_anywhere_is_flagged(tmp_path):
    src = '''
class Sim:
    def ship(self, flow, dest, batch):
        flow.send(dest, batch, 0)
'''
    path = tmp_path / "sim_bad.py"
    path.write_text(src)
    result = lint_paths([path], rules=select_rules(["C"]))
    assert len(result.violations) == 1
    assert result.violations[0].rule == "C301"


def test_repo_sim_layer_is_charge_clean(repo_src):
    result = lint_paths([repo_src / "sim"], rules=select_rules(["C"]))
    assert result.violations == [], [str(v.format()) for v in result.violations]
