"""CFG builder and dataflow engine: totality and path-exactness.

Two property suites back the whole X/W/L machinery:

* the CFG builder must accept *every* statement form Python can parse
  (hypothesis generates nested programs from a grammar of all
  statement templates) without crashing, and produce structurally
  sound graphs (edges in range, every element reachable);
* on loop-free functions, the may-/must-dataflow fixpoint must agree
  *exactly* with brute-force path enumeration — union respectively
  intersection of folding the transfer function along every simple
  entry→exit path.
"""

import ast

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cfg import EXC, NORMAL, build_cfg, enumerate_paths
from repro.analysis.dataflow import (
    MAY,
    MUST,
    GenKillAnalysis,
    facts_along_path,
    solve,
)

# ----------------------------------------------------- program generation

_SIMPLE = [
    "x = {i}",
    "y += 1",
    "call({i})",
    "pass",
    "del z",
    "global g",
    "import os",
    "from os import path",
    "assert cond, 'msg'",
    "x: int = {i}",
    "(w := {i})",
    "async_done = True",
]

_EXITS = ["return x", "return", "raise ValueError('e')", "break", "continue"]


def _indent(lines: list[str]) -> list[str]:
    return ["    " + line for line in lines]


@st.composite
def _block(draw, depth: int) -> list[str]:
    """A list of statement lines at one indentation level."""
    lines: list[str] = []
    n = draw(st.integers(min_value=1, max_value=3))
    for _ in range(n):
        kind = draw(
            st.sampled_from(
                ["simple", "if", "while", "for", "try", "with", "match",
                 "def", "exit"]
                if depth > 0
                else ["simple", "exit"]
            )
        )
        i = draw(st.integers(min_value=0, max_value=9))
        if kind == "simple":
            lines.append(draw(st.sampled_from(_SIMPLE)).format(i=i))
        elif kind == "exit":
            lines.append(draw(st.sampled_from(_EXITS)))
        elif kind == "if":
            lines.append(f"if cond{i}:")
            lines.extend(_indent(draw(_block(depth - 1))))
            if draw(st.booleans()):
                lines.append("else:")
                lines.extend(_indent(draw(_block(depth - 1))))
        elif kind == "while":
            lines.append(f"while cond{i}:")
            lines.extend(_indent(draw(_block(depth - 1))))
            if draw(st.booleans()):
                lines.append("else:")
                lines.extend(_indent(draw(_block(depth - 1))))
        elif kind == "for":
            lines.append(f"for it{i} in seq:")
            lines.extend(_indent(draw(_block(depth - 1))))
        elif kind == "try":
            lines.append("try:")
            lines.extend(_indent(draw(_block(depth - 1))))
            handlers = draw(st.integers(min_value=0, max_value=2))
            for h in range(handlers):
                lines.append(f"except Exc{h}:")
                lines.extend(_indent(draw(_block(depth - 1))))
            if handlers == 0 or draw(st.booleans()):
                lines.append("finally:")
                lines.extend(_indent(draw(_block(depth - 1))))
        elif kind == "with":
            lines.append(f"with ctx({i}) as c:")
            lines.extend(_indent(draw(_block(depth - 1))))
        elif kind == "match":
            lines.append(f"match subj{i}:")
            lines.append("    case 0:")
            lines.extend(_indent(_indent(draw(_block(depth - 1)))))
            lines.append("    case _:")
            lines.extend(_indent(_indent(draw(_block(depth - 1)))))
        elif kind == "def":
            lines.append(f"def nested{i}():")
            lines.extend(_indent(draw(_block(depth - 1))))
    return lines


@st.composite
def _function_source(draw, depth: int = 3) -> str:
    body = draw(_block(depth))
    return "def f(cond, seq):\n" + "\n".join(_indent(body)) + "\n"


def _parse_fn(source: str) -> ast.FunctionDef:
    # break/continue outside a loop is a syntax error; wrap and retry
    # inside a loop so the grammar may emit them anywhere
    try:
        tree = ast.parse(source)
    except SyntaxError:
        inner = "\n".join(
            "    " + line for line in source.splitlines()[1:]
        )
        source = "def f(cond, seq):\n  while cond:\n" + inner + "\n"
        tree = ast.parse(source)
    fn = tree.body[0]
    assert isinstance(fn, ast.FunctionDef)
    return fn


@settings(max_examples=120, deadline=None)
@given(_function_source())
def test_cfg_builder_total_over_statement_forms(source):
    fn = _parse_fn(source)
    cfg = build_cfg(fn)
    indices = {b.index for b in cfg.blocks}
    assert cfg.entry in indices and cfg.exit in indices
    for block in cfg.blocks:
        for target, kind in block.succs:
            assert target in indices
            assert kind in (NORMAL, EXC)
    # exit has no successors: nothing runs after the function returns
    assert cfg.blocks[cfg.exit].succs == []


# --------------------------------------------- dataflow vs. brute force

_LOOPFREE = ["simple", "if", "try", "with", "exit"]


@st.composite
def _loopfree_block(draw, depth: int) -> list[str]:
    lines: list[str] = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        kind = draw(
            st.sampled_from(_LOOPFREE if depth > 0 else ["simple", "exit"])
        )
        i = draw(st.integers(min_value=0, max_value=9))
        if kind == "simple":
            lines.append(
                draw(
                    st.sampled_from(
                        ["x{i} = 1", "y{i} = 2", "use(x{i})", "pass"]
                    )
                ).format(i=i)
            )
        elif kind == "exit":
            lines.append(draw(st.sampled_from(["return", "raise E()"])))
        elif kind == "if":
            lines.append(f"if cond{i}:")
            lines.extend(_indent(draw(_loopfree_block(depth - 1))))
            if draw(st.booleans()):
                lines.append("else:")
                lines.extend(_indent(draw(_loopfree_block(depth - 1))))
        elif kind == "try":
            lines.append("try:")
            lines.extend(_indent(draw(_loopfree_block(depth - 1))))
            lines.append("except E:")
            lines.extend(_indent(draw(_loopfree_block(depth - 1))))
            if draw(st.booleans()):
                lines.append("finally:")
                lines.extend(_indent(draw(_loopfree_block(depth - 1))))
        elif kind == "with":
            lines.append(f"with ctx({i}):")
            lines.extend(_indent(draw(_loopfree_block(depth - 1))))
    return lines


def _stores_loads_analysis(mode: str) -> GenKillAnalysis:
    """Facts: 'names with a pending store, not yet observed by a load'."""

    def gen(elem: ast.AST) -> list[str]:
        return [
            n.id
            for n in ast.walk(elem)
            if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Store)
        ]

    def kill(elem: ast.AST) -> list[str]:
        return [
            n.id
            for n in ast.walk(elem)
            if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
        ]

    return GenKillAnalysis(gen=gen, kill=kill, mode=mode)


@settings(max_examples=120, deadline=None)
@given(st.data())
def test_dataflow_matches_path_enumeration_on_loopfree(data):
    body = data.draw(_loopfree_block(2))
    source = "def f(cond, seq):\n" + "\n".join(_indent(body)) + "\n"
    fn = _parse_fn(source)
    cfg = build_cfg(fn)
    paths = enumerate_paths(cfg, max_paths=20000, max_edge_visits=1)
    assert paths, "a loop-free CFG must have at least one entry->exit path"

    for mode in (MAY, MUST):
        analysis = _stores_loads_analysis(mode)
        solved = solve(analysis, cfg).facts_at_exit()
        folded = [facts_along_path(analysis, p) for p in paths]
        brute = folded[0]
        for facts in folded[1:]:
            brute = brute | facts if mode == MAY else brute & facts
        assert solved == brute, (
            f"{mode}-dataflow disagrees with brute force on:\n{source}"
        )


def test_loop_fixpoint_reaches_loop_carried_facts():
    source = (
        "def f(cond, seq):\n"
        "    for item in seq:\n"
        "        x = 1\n"
        "    return x\n"
    )
    fn = _parse_fn(source)
    cfg = build_cfg(fn)

    def facts_before_return(mode):
        solved = solve(_stores_loads_analysis(mode), cfg)
        for elem, facts in solved.iter_elements():
            if isinstance(elem, ast.Return):
                return facts
        raise AssertionError("no return element in the CFG")

    # 'x' may be stored (loop taken) or not (zero iterations): the
    # may-fixpoint carries it around the back edge, the must-join
    # drops it at the zero-iteration merge
    assert "x" in facts_before_return(MAY)
    assert "x" not in facts_before_return(MUST)
