"""H- and T-family rules on their fixtures, plus suppression semantics."""

from pathlib import Path

from repro.analysis import lint_paths, select_rules
from repro.analysis.core import FileContext, parse_suppressions


def test_fixture_triggers_every_h_rule(fixtures_dir):
    result = lint_paths(
        [fixtures_dir / "bad_hygiene.py"], rules=select_rules(["H"])
    )
    by_rule = result.by_rule()
    for rule_id in ("H001", "H002", "H003", "H004", "H005", "H006"):
        assert len(by_rule.get(rule_id, [])) == 1, rule_id
    # the used import (os) is not flagged
    assert all("'os'" not in v.message for v in by_rule["H006"])


def test_fixture_triggers_t_rules(fixtures_dir):
    result = lint_paths(
        [fixtures_dir / "bad_typing.py"], rules=select_rules(["T"])
    )
    by_rule = result.by_rule()
    assert len(by_rule.get("T401", [])) == 2  # unannotated_return, method
    assert len(by_rule.get("T402", [])) == 2  # unannotated_param, method
    assert not any(
        "_private_ok" in v.message for v in result.violations
    )


def test_suppression_comment_parsing():
    assert parse_suppressions("# carp-lint: disable=D101\n") == {"D101"}
    assert parse_suppressions("# carp-lint: disable=D101, F202\n") == {
        "D101", "F202",
    }
    assert parse_suppressions("x = 1  # carp-lint: disable=all\n") == {"all"}
    assert parse_suppressions("# unrelated comment\n") == set()


def test_suppressed_fixture_is_clean_for_suppressed_rules(fixtures_dir):
    result = lint_paths(
        [fixtures_dir / "suppressed_ok.py"], rules=select_rules(["D"])
    )
    assert result.violations == []


def test_suppression_does_not_leak_to_other_rules(tmp_path):
    src = (
        "# carp-lint: disable=D101\n"
        "import time\n"
        "import random\n"
        "t = time.time()\n"
        "r = random.random()\n"
    )
    path = tmp_path / "partial.py"
    path.write_text(src)
    result = lint_paths([path], rules=select_rules(["D"]))
    rules = {v.rule for v in result.violations}
    assert rules == {"D103"}  # D101 suppressed, D103 still fires


def test_unused_import_skips_init_modules(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("from os import getcwd\n")
    result = lint_paths([pkg], rules=select_rules(["H006"]))
    assert result.violations == []


def test_annotation_only_import_is_used(tmp_path):
    src = (
        "from __future__ import annotations\n"
        "from pathlib import Path\n"
        "def f(p: Path) -> Path:\n"
        "    return p\n"
    )
    path = tmp_path / "ann.py"
    path.write_text(src)
    result = lint_paths([path], rules=select_rules(["H006"]))
    assert result.violations == []


def test_file_context_module_inference():
    ctx = FileContext.from_source(
        "x = 1\n", Path("src/repro/sim/engine.py")
    )
    assert ctx.module == "repro.sim.engine"
    ctx2 = FileContext.from_source("x = 1\n", Path("tests/foo.py"))
    assert ctx2.module is None
    ctx3 = FileContext.from_source(
        "x = 1\n", Path("src/repro/storage/__init__.py")
    )
    assert ctx3.module == "repro.storage"
