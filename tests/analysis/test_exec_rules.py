"""P-family rules: shared-nothing worker state and worker-side obs."""

from pathlib import Path

from repro.analysis import lint_paths, select_rules
from repro.analysis.core import FileContext
from repro.analysis.exec_rules import EXEC_RULES


def _rule(rule_id: str):
    return next(r for r in EXEC_RULES if r.id == rule_id)


def _check(rule_id: str, source: str, path: str = "src/repro/exec/snippet.py"):
    ctx = FileContext.from_source(source, Path(path))
    rule = _rule(rule_id)
    return rule.check(ctx) if rule.applies(ctx) else []


def test_fixture_triggers_every_p_rule(fixtures_dir):
    result = lint_paths(
        [fixtures_dir / "bad_exec.py"], rules=select_rules(["P"])
    )
    by_rule = result.by_rule()
    # dict literal, annotated list, deque(), set comp, `global` stmt
    assert len(by_rule.get("P601", [])) == 5
    # Obs.recording(), VirtualClock()
    assert len(by_rule.get("P602", [])) == 2


def test_module_mutable_dict_flagged_in_exec_package():
    assert len(_check("P601", "STATE = {}\n")) == 1


def test_mutable_constructor_call_flagged():
    src = "from collections import defaultdict\nHITS = defaultdict(int)\n"
    assert len(_check("P601", src)) == 1


def test_immutable_module_constants_allowed():
    src = (
        "TIMEOUT = 0.1\n"
        "KINDS = ('serial', 'thread', 'process')\n"
        "NAMES = frozenset({'a', 'b'})\n"
    )
    assert _check("P601", src) == []


def test_dunder_metadata_exempt():
    # __all__ is interpreter-read metadata, not task-visible state
    assert _check("P601", "__all__ = ['Executor']\n") == []


def test_function_local_mutables_allowed():
    src = "def task(state, shard):\n    seen = {}\n    return seen\n"
    assert _check("P601", src) == []


def test_class_attributes_allowed():
    # class bodies are not module scope; Executor subclasses keep
    # per-instance state initialized in __init__
    src = "class Pool:\n    defaults = {}\n"
    assert _check("P601", src) == []


def test_global_statement_flagged_anywhere():
    src = "N = 0\ndef bump():\n    global N\n    N += 1\n"
    # the `global` statement is the finding (N = 0 itself is immutable)
    assert len(_check("P601", src)) == 1


def test_recording_obs_flagged_in_exec():
    src = "from repro.obs import Obs\n\ndef t(state):\n    return Obs.recording()\n"
    assert len(_check("P602", src)) == 1


def test_deltas_stack_is_sanctioned():
    # the worker-side pattern: metrics-only stack, no clock, no tracer
    src = (
        "from repro.obs import Obs\n"
        "def t(state):\n"
        "    state['obs'] = Obs.deltas()\n"
        "    return state['obs']\n"
    )
    assert _check("P602", src) == []


def test_rules_scoped_to_exec_package():
    src = "STATE = {}\nfrom repro.obs import VirtualClock\nc = VirtualClock()\n"
    ctx = FileContext.from_source(src, Path("src/repro/tools/some_cli.py"))
    assert not _rule("P601").applies(ctx)
    assert not _rule("P602").applies(ctx)


def test_repo_is_p_clean(repo_src):
    result = lint_paths([repo_src], rules=select_rules(["P"]))
    assert result.violations == []
