"""Tier-1 gate: the repo's own source must satisfy every carp-lint rule.

This is the enforcement point for the invariants in docs/INVARIANTS.md —
determinism under repro.sim/core/shuffle/storage, struct-format pairing
and CRC-checked readers in repro.storage, cost-model charging in
repro.sim, and annotation coverage on the typed packages.
"""

from repro.analysis import lint_paths


def test_src_repro_is_lint_clean(repo_src):
    result = lint_paths([repo_src])
    assert result.parse_errors == []
    assert result.ok, "\n" + "\n".join(v.format() for v in result.violations)


def test_scripts_are_parseable_and_hygiene_clean(repo_src):
    # scripts/ are entry points, not part of the scoped packages; only
    # the unscoped hygiene family applies, and it must hold there too.
    scripts = repo_src.parents[1] / "scripts"
    result = lint_paths([scripts])
    assert result.parse_errors == []
    hygiene = [v for v in result.violations if v.rule.startswith("H")]
    assert hygiene == [], "\n".join(v.format() for v in hygiene)
