"""Exit codes, JSON output shape, and rule selection for carp-lint."""

import json

import pytest

from repro.analysis.cli import main


def test_clean_repo_exits_zero(repo_src, capsys):
    assert main([str(repo_src)]) == 0
    out = capsys.readouterr().out
    assert "OK" in out


@pytest.mark.parametrize(
    "fixture",
    [
        "bad_determinism.py",
        "bad_format.py",
        "bad_costmodel.py",
        "bad_hygiene.py",
        "bad_typing.py",
        "bad_obs.py",
        "bad_exec.py",
        "bad_concurrency.py",
        "bad_writepath.py",
        "bad_lifetime.py",
    ],
)
def test_each_bad_fixture_exits_nonzero(fixtures_dir, fixture, capsys):
    assert main([str(fixtures_dir / fixture)]) == 1
    out = capsys.readouterr().out
    assert fixture in out


def test_json_output_shape(fixtures_dir, capsys):
    code = main([str(fixtures_dir / "bad_hygiene.py"), "--format", "json"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert payload["files_checked"] == 1
    assert payload["violations"]
    v = payload["violations"][0]
    assert set(v) >= {"rule", "message", "path", "line", "col"}
    assert isinstance(v["line"], int)


def test_select_restricts_rules(fixtures_dir, capsys):
    # only T rules requested: determinism fixture is then clean
    code = main(
        [str(fixtures_dir / "bad_determinism.py"), "--select", "T"]
    )
    assert code == 0
    capsys.readouterr()


def test_ignore_drops_family(fixtures_dir, capsys):
    code = main(
        [
            str(fixtures_dir / "bad_hygiene.py"),
            "--ignore",
            "H001,H002,H003,H004,H005,H006",
        ]
    )
    assert code == 0
    capsys.readouterr()


def test_unknown_selector_is_usage_error(capsys):
    assert main(["--select", "Z999", "src"]) == 2
    err = capsys.readouterr().err
    assert "Z999" in err


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("D101", "F201", "C301", "H001", "T401"):
        assert rule_id in out


def test_missing_path_is_usage_error(tmp_path, capsys):
    assert main([str(tmp_path / "nope.py")]) == 2
    capsys.readouterr()
