"""D-family rules on the bad-determinism fixture and scoping behavior."""

from pathlib import Path

from repro.analysis import lint_paths, select_rules
from repro.analysis.core import FileContext
from repro.analysis.determinism import DETERMINISM_RULES


def _rule(rule_id: str):
    return next(r for r in DETERMINISM_RULES if r.id == rule_id)


def _check(rule_id: str, source: str, path: str = "snippet.py"):
    ctx = FileContext.from_source(source, Path(path))
    rule = _rule(rule_id)
    return rule.check(ctx) if rule.applies(ctx) else []


def test_fixture_triggers_every_d_rule(fixtures_dir):
    result = lint_paths(
        [fixtures_dir / "bad_determinism.py"], rules=select_rules(["D"])
    )
    by_rule = result.by_rule()
    assert len(by_rule.get("D101", [])) == 2
    assert len(by_rule.get("D102", [])) == 2
    assert len(by_rule.get("D103", [])) == 3
    assert len(by_rule.get("D104", [])) == 1


def test_seeded_rng_not_flagged():
    src = "import numpy as np\nrng = np.random.default_rng(42)\n"
    assert _check("D102", src) == []
    src_kw = "import numpy as np\nrng = np.random.default_rng(seed=7)\n"
    assert _check("D102", src_kw) == []


def test_unseeded_rng_flagged_through_alias():
    src = (
        "from numpy.random import default_rng as mk\n"
        "rng = mk()\n"
    )
    violations = _check("D102", src)
    assert len(violations) == 1
    assert violations[0].rule == "D102"


def test_wall_clock_flagged_through_from_import():
    src = "from time import time\nt = time()\n"
    violations = _check("D101", src)
    assert len(violations) == 1


def test_out_of_scope_module_is_exempt():
    # repro.traces is outside the determinism scope: generators are
    # seeded by spec, so global-looking calls there are not checked
    src = "import time\nt = time.time()\n"
    ctx = FileContext.from_source(
        src, Path("src/repro/traces/synthetic_extra.py")
    )
    rule = _rule("D101")
    assert not rule.applies(ctx)


def test_in_scope_module_is_checked():
    src = "import time\nt = time.time()\n"
    ctx = FileContext.from_source(src, Path("src/repro/sim/newmodel.py"))
    rule = _rule("D101")
    assert rule.applies(ctx)
    assert len(rule.check(ctx)) == 1


def test_hash_shadowed_by_local_function_calls_still_flagged():
    violations = _check("D104", "x = hash('energy-band')\n")
    assert len(violations) == 1
