"""Tests for the multi-attribute auxiliary index extension (§VIII)."""

import numpy as np
import pytest

from repro.core.config import CarpOptions
from repro.extensions.multi_attribute import (
    AuxiliaryIndexReader,
    MultiAttributeIngest,
    RowLocator,
)
from repro.traces.vpic import VpicTraceSpec, generate_timestep

OPTS = CarpOptions(
    pivot_count=32, oob_capacity=32, renegotiations_per_epoch=3,
    memtable_records=256, round_records=128, value_size=8,
)
SPEC = VpicTraceSpec(nranks=4, particles_per_rank=800, seed=21, value_size=8)


@pytest.fixture(scope="module")
def ingested(tmp_path_factory):
    out = tmp_path_factory.mktemp("multi")
    streams = generate_timestep(SPEC, 4)
    rng = np.random.default_rng(0)
    aux = {"vx": [rng.normal(size=len(s)).astype(np.float32) for s in streams]}
    with MultiAttributeIngest(4, out, ("vx",), OPTS) as mi:
        result = mi.ingest_epoch(0, streams, aux)
    return {
        "dir": out,
        "streams": streams,
        "aux": aux,
        "result": result,
        "keys": np.concatenate([s.keys for s in streams]),
        "rids": np.concatenate([s.rids for s in streams]),
        "vx": np.concatenate(aux["vx"]),
    }


class TestRowLocator:
    def test_lookup(self):
        loc = RowLocator(np.array([5, 1, 9], np.uint64),
                         np.array([2, 0, 1], np.int32))
        assert loc.lookup(np.array([1, 9, 5], np.uint64)).tolist() == [0, 1, 2]

    def test_unknown_rid(self):
        loc = RowLocator(np.array([1], np.uint64), np.array([0], np.int32))
        with pytest.raises(KeyError):
            loc.lookup(np.array([2], np.uint64))

    def test_duplicate_rids_rejected(self):
        with pytest.raises(ValueError):
            RowLocator(np.array([1, 1], np.uint64), np.array([0, 1], np.int32))

    def test_save_load_roundtrip(self, tmp_path):
        loc = RowLocator(np.array([3, 7], np.uint64), np.array([1, 0], np.int32))
        loc.save(tmp_path / "loc")
        back = RowLocator.load(tmp_path / "loc")
        assert np.array_equal(back.rids, loc.rids)
        assert np.array_equal(back.partitions, loc.partitions)


class TestIngest:
    def test_primary_and_aux_stats(self, ingested):
        res = ingested["result"]
        assert res.primary.records == 3200
        assert res.auxiliary["vx"].records == 3200

    def test_attribute_validation(self, tmp_path):
        streams = generate_timestep(SPEC, 0)
        with MultiAttributeIngest(4, tmp_path, ("vx",), OPTS) as mi:
            with pytest.raises(ValueError, match="exactly"):
                mi.ingest_epoch(0, streams, {})
            with pytest.raises(ValueError, match="length mismatch"):
                mi.ingest_epoch(
                    0, streams,
                    {"vx": [np.zeros(1, np.float32) for _ in streams]},
                )


class TestAuxQuery:
    def test_pointer_equivalence(self, ingested):
        with AuxiliaryIndexReader(ingested["dir"]) as reader:
            res = reader.query("vx", 0, -0.5, 0.5)
        mask = (ingested["vx"] >= -0.5) & (ingested["vx"] <= 0.5)
        assert set(res.rids.tolist()) == set(ingested["rids"][mask].tolist())

    def test_primary_rows_retrieved_correctly(self, ingested):
        with AuxiliaryIndexReader(ingested["dir"]) as reader:
            res = reader.query("vx", 0, 0.0, 1.0)
        want = dict(zip(ingested["rids"].tolist(), ingested["keys"].tolist()))
        got = dict(zip(res.rids.tolist(), res.primary_keys.tolist()))
        for rid, key in got.items():
            assert key == pytest.approx(want[rid], rel=1e-6)

    def test_latency_composition(self, ingested):
        with AuxiliaryIndexReader(ingested["dir"]) as reader:
            res = reader.query("vx", 0, -1.0, 1.0)
        assert res.latency == pytest.approx(
            res.index_latency + res.retrieval_latency
        )
        # auxiliary retrieval pays random reads: costlier per record
        assert res.retrieval_latency > 0

    def test_aux_slower_than_primary_for_same_rows(self, ingested):
        """§VIII: auxiliary attributes don't match primary-attribute
        query performance (random-read retrieval)."""
        from repro.query.engine import PartitionedStore
        from repro.extensions.multi_attribute import PRIMARY_SUBDIR

        with AuxiliaryIndexReader(ingested["dir"]) as reader:
            aux_res = reader.query("vx", 0, -0.3, 0.3)
            with PartitionedStore(ingested["dir"] / PRIMARY_SUBDIR) as primary:
                lo, hi = np.quantile(ingested["keys"], [0.4, 0.6])
                prim_res = primary.query(0, float(lo), float(hi))
        per_row_aux = aux_res.latency / max(len(aux_res), 1)
        per_row_prim = prim_res.cost.latency / max(len(prim_res), 1)
        assert per_row_aux > per_row_prim
