"""Tests for query-path incremental sorting (§VIII)."""

import numpy as np
import pytest

from repro.extensions.incremental_sort import IncrementalSorter, IntervalSet


class TestIntervalSet:
    def test_covering(self):
        s = IntervalSet()
        s.add(0.0, 1.0)
        assert s.covering(0.2, 0.8) is not None
        assert s.covering(0.5, 1.5) is None

    def test_coalescing(self):
        s = IntervalSet()
        s.add(0.0, 1.0)
        s.add(0.5, 2.0)
        assert len(s) == 1
        assert s.covering(0.0, 2.0) is not None

    def test_disjoint_intervals_kept_separate(self):
        s = IntervalSet()
        s.add(0.0, 1.0)
        s.add(5.0, 6.0)
        assert len(s) == 2
        assert s.covering(1.5, 4.0) is None

    def test_coverage_fraction(self):
        s = IntervalSet()
        s.add(0.0, 1.0)
        assert s.coverage_fraction(0.0, 2.0) == pytest.approx(0.5)
        assert s.coverage_fraction(0.0, 1.0) == pytest.approx(1.0)
        assert s.coverage_fraction(3.0, 4.0) == 0.0

    def test_triple_merge(self):
        s = IntervalSet()
        s.add(0.0, 1.0)
        s.add(2.0, 3.0)
        s.add(0.5, 2.5)
        assert len(s) == 1


class TestIncrementalSorter:
    @pytest.fixture()
    def sorter(self, carp_output, tmp_path):
        with IncrementalSorter(carp_output["dir"], tmp_path / "side") as s:
            yield s

    def test_first_query_from_base(self, sorter):
        res = sorter.query(0, 0.5, 2.0)
        assert sorter.served_from_base == 1
        assert sorter.served_from_side == 0
        assert len(res) > 0

    def test_covered_query_from_side(self, sorter, trace_keys, trace_rids):
        first = sorter.query(0, 0.5, 2.0)
        second = sorter.query(0, 0.8, 1.5)
        assert sorter.served_from_side == 1
        keys, rids = trace_keys[0], trace_rids[0]
        mask = (keys >= 0.8) & (keys <= 1.5)
        assert set(second.rids.tolist()) == set(rids[mask].tolist())

    def test_side_queries_pay_no_merge(self, sorter):
        sorter.query(0, 0.5, 2.0)
        res = sorter.query(0, 0.6, 1.0)
        assert res.cost.merge_bytes == 0

    def test_no_duplicates_after_overlapping_writebacks(
        self, sorter, trace_keys, trace_rids
    ):
        sorter.query(0, 0.5, 1.5)
        sorter.query(0, 1.0, 2.5)  # overlaps the first writeback
        res = sorter.query(0, 0.7, 2.0)  # covered by coalesced interval
        assert sorter.served_from_side == 1
        keys, rids = trace_keys[0], trace_rids[0]
        mask = (keys >= 0.7) & (keys <= 2.0)
        assert sorted(res.rids.tolist()) == sorted(rids[mask].tolist())

    def test_writeback_accounted(self, sorter):
        sorter.query(0, 0.5, 2.0)
        assert sorter.writeback_bytes > 0

    def test_merge_cost_saved_flag(self, sorter):
        assert not sorter.merge_cost_saved(0, 0.5, 1.0)
        sorter.query(0, 0.0, 2.0)
        assert sorter.merge_cost_saved(0, 0.5, 1.0)

    def test_empty_result_not_written_back(self, sorter, trace_keys):
        hi = float(trace_keys[0].max())
        sorter.query(0, hi + 10, hi + 20)
        assert sorter.writeback_bytes == 0

    def test_epochs_tracked_independently(self, sorter):
        sorter.query(0, 0.5, 2.0)
        assert not sorter.merge_cost_saved(1, 0.5, 2.0)
