"""Tests for the columnar rowgroup-stats format (§VIII)."""

import numpy as np
import pytest

from repro.core.records import RecordBatch
from repro.extensions.columnar import (
    ColumnarFormatError,
    ColumnarReader,
    write_columnar,
)


def batches(sorted_layout: bool, n=2000, seed=0):
    rng = np.random.default_rng(seed)
    keys = rng.lognormal(size=n).astype(np.float32)
    if sorted_layout:
        keys = np.sort(keys)
    return [RecordBatch.from_keys(keys, value_size=8)], keys


class TestWrite:
    def test_rowgroup_stats(self, tmp_path):
        bs, keys = batches(True)
        stats = write_columnar(tmp_path / "f.col", bs, rowgroup_records=500)
        assert len(stats) == 4
        assert sum(s.count for s in stats) == 2000
        for s in stats:
            assert s.kmin <= s.kmax

    def test_validation(self, tmp_path):
        bs, _ = batches(True)
        with pytest.raises(ValueError):
            write_columnar(tmp_path / "f.col", bs, rowgroup_records=0)
        with pytest.raises(ValueError):
            write_columnar(tmp_path / "f.col", [])


class TestRead:
    def test_query_equivalence(self, tmp_path):
        bs, keys = batches(False)
        write_columnar(tmp_path / "f.col", bs, rowgroup_records=128)
        with ColumnarReader(tmp_path / "f.col") as r:
            got, rids = r.query(0.5, 2.0)
        mask = (keys >= 0.5) & (keys <= 2.0)
        assert len(got) == mask.sum()
        assert np.all(np.diff(got) >= 0)

    def test_sorted_input_prunes(self, tmp_path):
        bs, keys = batches(True)
        write_columnar(tmp_path / "sorted.col", bs, rowgroup_records=100)
        with ColumnarReader(tmp_path / "sorted.col") as r:
            lo, hi = np.quantile(keys, [0.45, 0.55])
            r.query(float(lo), float(hi))
            assert r.bytes_read < r.total_bytes * 0.25

    def test_unsorted_input_cannot_prune(self, tmp_path):
        bs, keys = batches(False)
        write_columnar(tmp_path / "raw.col", bs, rowgroup_records=100)
        with ColumnarReader(tmp_path / "raw.col") as r:
            lo, hi = np.quantile(keys, [0.45, 0.55])
            r.query(float(lo), float(hi))
            assert r.bytes_read > r.total_bytes * 0.9

    def test_partitioned_beats_arrival_order(self, tmp_path):
        """The §VIII claim: CARP-partitioned rowgroups have tighter
        ranges and need far less I/O at query time."""
        rng = np.random.default_rng(3)
        keys = rng.lognormal(size=4000).astype(np.float32)
        raw = [RecordBatch.from_keys(keys, value_size=8)]
        partitioned = [RecordBatch.from_keys(np.sort(keys), value_size=8)]
        write_columnar(tmp_path / "raw.col", raw, 128)
        write_columnar(tmp_path / "part.col", partitioned, 128)
        lo, hi = map(float, np.quantile(keys, [0.48, 0.52]))
        with ColumnarReader(tmp_path / "raw.col") as r1, \
             ColumnarReader(tmp_path / "part.col") as r2:
            k1, _ = r1.query(lo, hi)
            k2, _ = r2.query(lo, hi)
            assert len(k1) == len(k2)
            assert r2.bytes_read * 5 < r1.bytes_read

    def test_empty_result(self, tmp_path):
        bs, keys = batches(True)
        write_columnar(tmp_path / "f.col", bs, 100)
        with ColumnarReader(tmp_path / "f.col") as r:
            got, rids = r.query(keys.max() + 100, keys.max() + 200)
        assert len(got) == 0

    def test_invalid_range(self, tmp_path):
        bs, _ = batches(True)
        write_columnar(tmp_path / "f.col", bs, 100)
        with ColumnarReader(tmp_path / "f.col") as r:
            with pytest.raises(ValueError):
                r.query(2.0, 1.0)


class TestCorruption:
    def test_bad_magic(self, tmp_path):
        bs, _ = batches(True)
        path = tmp_path / "f.col"
        write_columnar(path, bs, 100)
        data = bytearray(path.read_bytes())
        data[-16:-12] = b"XXXX"
        path.write_bytes(bytes(data))
        with pytest.raises(ColumnarFormatError):
            ColumnarReader(path)

    def test_truncated(self, tmp_path):
        bs, _ = batches(True)
        path = tmp_path / "f.col"
        write_columnar(path, bs, 100)
        path.write_bytes(path.read_bytes()[:10])
        with pytest.raises(ColumnarFormatError):
            ColumnarReader(path)

    def test_footer_crc(self, tmp_path):
        bs, _ = batches(True)
        path = tmp_path / "f.col"
        write_columnar(path, bs, 100)
        data = bytearray(path.read_bytes())
        data[-6] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(ColumnarFormatError, match="CRC"):
            ColumnarReader(path)
