"""Tests for the cost-based query planner (§VIII analysis engine)."""

import numpy as np
import pytest

from repro.baselines.fastquery import BitmapIndex
from repro.core.config import CarpOptions
from repro.extensions.multi_attribute import (
    PRIMARY_SUBDIR,
    AuxiliaryIndexReader,
    MultiAttributeIngest,
)
from repro.extensions.planner import QueryPlanner
from repro.query.engine import PartitionedStore
from repro.traces.vpic import VpicTraceSpec, generate_timestep

OPTS = CarpOptions(
    pivot_count=32, oob_capacity=32, renegotiations_per_epoch=3,
    memtable_records=256, round_records=128, value_size=8,
)
SPEC = VpicTraceSpec(nranks=4, particles_per_rank=1200, seed=41, value_size=8)


@pytest.fixture(scope="module")
def dataset(tmp_path_factory):
    out = tmp_path_factory.mktemp("planner")
    streams = generate_timestep(SPEC, 6)
    rng = np.random.default_rng(0)
    vx = [rng.normal(size=len(s)).astype(np.float32) for s in streams]
    with MultiAttributeIngest(4, out, ("vx",), OPTS) as mi:
        mi.ingest_epoch(0, streams, {"vx": vx})
    bitmap = BitmapIndex(
        np.concatenate(vx),
        np.concatenate([s.rids for s in streams]),
        nbins=64, record_size=12,
    )
    return {
        "dir": out,
        "keys": np.concatenate([s.keys for s in streams]),
        "vx": np.concatenate(vx),
        "rids": np.concatenate([s.rids for s in streams]),
        "bitmap": bitmap,
    }


@pytest.fixture()
def planner(dataset):
    primary = PartitionedStore(dataset["dir"] / PRIMARY_SUBDIR)
    aux = AuxiliaryIndexReader(dataset["dir"])
    p = QueryPlanner(
        primary_store=primary,
        primary_attribute="energy",
        aux_reader=aux,
        aux_attributes=("vx",),
        bitmap_indexes={"vx": dataset["bitmap"]},
    )
    yield p
    primary.close()
    aux.close()


class TestPlanSelection:
    def test_primary_attribute_uses_clustered(self, planner, dataset):
        lo, hi = np.quantile(dataset["keys"].astype(np.float64), [0.4, 0.6])
        choice = planner.plan("energy", 0, float(lo), float(hi))
        assert choice.plan == "clustered"

    def test_clustered_beats_scan_estimate(self, planner, dataset):
        lo, hi = np.quantile(dataset["keys"].astype(np.float64), [0.4, 0.5])
        cands = planner.candidates("energy", 0, float(lo), float(hi))
        plans = {c.plan: c.estimated_latency for c in cands}
        assert plans["clustered"] < plans["scan"]

    def test_aux_attribute_uses_an_index(self, planner):
        choice = planner.plan("vx", 0, -0.2, 0.2)
        assert choice.plan in ("aux", "bitmap")

    def test_unknown_attribute_rejected(self, planner):
        with pytest.raises(ValueError, match="no index"):
            planner.plan("pressure", 0, 0.0, 1.0)

    def test_candidates_sorted_by_estimate(self, planner, dataset):
        lo, hi = np.quantile(dataset["keys"].astype(np.float64), [0.3, 0.7])
        cands = planner.candidates("energy", 0, float(lo), float(hi))
        ests = [c.estimated_latency for c in cands]
        assert ests == sorted(ests)

    def test_validation(self, dataset):
        with PartitionedStore(dataset["dir"] / PRIMARY_SUBDIR) as primary:
            with pytest.raises(ValueError, match="aux_reader"):
                QueryPlanner(primary, "energy", aux_attributes=("vx",))


class TestExecution:
    def test_primary_results_correct(self, planner, dataset):
        keys, rids = dataset["keys"], dataset["rids"]
        lo, hi = map(float, np.quantile(keys.astype(np.float64), [0.3, 0.6]))
        res = planner.execute("energy", 0, lo, hi)
        from repro.core.records import range_mask

        expect = set(rids[range_mask(keys, lo, hi)].tolist())
        assert set(res.rids.tolist()) == expect
        assert res.choice.plan == "clustered"

    def test_aux_results_correct(self, planner, dataset):
        vx, rids = dataset["vx"], dataset["rids"]
        res = planner.execute("vx", 0, -0.5, 0.5)
        from repro.core.records import range_mask

        expect = set(rids[range_mask(vx, -0.5, 0.5)].tolist())
        assert set(res.rids.tolist()) == expect

    def test_alternatives_reported(self, planner, dataset):
        lo, hi = map(float, np.quantile(
            dataset["keys"].astype(np.float64), [0.4, 0.5]
        ))
        res = planner.execute("energy", 0, lo, hi)
        assert len(res.alternatives) >= 1
        assert all(
            a.estimated_latency >= res.choice.estimated_latency
            for a in res.alternatives
        )

    def test_actual_latency_positive(self, planner, dataset):
        lo, hi = map(float, np.quantile(
            dataset["keys"].astype(np.float64), [0.45, 0.55]
        ))
        res = planner.execute("energy", 0, lo, hi)
        assert res.actual_latency > 0

    def test_estimate_sane_vs_actual(self, planner, dataset):
        """Metadata-only estimates land within an order of magnitude of
        the executed plan's modeled latency."""
        lo, hi = map(float, np.quantile(
            dataset["keys"].astype(np.float64), [0.3, 0.7]
        ))
        res = planner.execute("energy", 0, lo, hi)
        ratio = res.choice.estimated_latency / res.actual_latency
        assert 0.1 < ratio < 10
