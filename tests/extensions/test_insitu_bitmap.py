"""Tests for in-situ auxiliary-node bitmap indexing (§VIII/§IX)."""

import numpy as np
import pytest

from repro.core.records import RecordBatch, range_mask
from repro.extensions.insitu_bitmap import InSituBitmapBuilder


def batches(n=10_000, chunk=500, seed=0, drift=False):
    rng = np.random.default_rng(seed)
    keys = rng.lognormal(size=n).astype(np.float32)
    if drift:
        keys = keys * np.linspace(1.0, 20.0, n).astype(np.float32)
    out = []
    for i in range(0, n, chunk):
        k = keys[i : i + chunk]
        from repro.core.records import make_rids

        out.append(RecordBatch(k, make_rids(0, i, len(k)), 8))
    return out, keys


def build(n=10_000, nbins=64, calibration=2000, drift=False, seed=0):
    builder = InSituBitmapBuilder(nbins=nbins, calibration_records=calibration,
                                  record_size=12)
    chunks, keys = batches(n, seed=seed, drift=drift)
    for b in chunks:
        builder.observe(b)
    return builder.finish_epoch(), keys


class TestBuilder:
    def test_validation(self):
        with pytest.raises(ValueError):
            InSituBitmapBuilder(nbins=1)
        with pytest.raises(ValueError):
            InSituBitmapBuilder(nbins=64, calibration_records=10)

    def test_all_records_indexed(self):
        index, keys = build()
        assert index.stats.records_indexed == len(keys)

    def test_calibration_sample_recorded(self):
        index, _ = build(calibration=2000)
        assert index.stats.calibration_records >= 2000

    def test_finish_with_tiny_epoch(self):
        """Fewer records than the calibration target still produce an
        index at epoch end."""
        builder = InSituBitmapBuilder(nbins=8, calibration_records=1000,
                                      record_size=12)
        chunks, keys = batches(n=100, chunk=40)
        for b in chunks:
            builder.observe(b)
        index = builder.finish_epoch()
        assert index.stats.records_indexed == 100

    def test_no_records_rejected(self):
        with pytest.raises(ValueError, match="no records"):
            InSituBitmapBuilder(nbins=8, calibration_records=8).finish_epoch()

    def test_frozen_after_finish(self):
        index, _ = build(n=500, nbins=8, calibration=100)
        builder = InSituBitmapBuilder(nbins=8, calibration_records=100)
        chunks, _ = batches(500)
        for b in chunks:
            builder.observe(b)
        builder.finish_epoch()
        with pytest.raises(RuntimeError):
            builder.observe(chunks[0])

    def test_space_overhead_measured(self):
        index, _ = build()
        assert index.stats.index_bytes > 0
        assert 0 < index.stats.space_overhead(12) < 1.5


class TestQueries:
    def test_equivalence_with_brute_force(self):
        index, keys = build()
        from repro.core.records import make_rids

        rids = make_rids(0, 0, 0)  # rids are chunk-local; compare counts+keys
        for lo, hi in [(0.5, 1.5), (0.0, 1000.0), (2.0, 2.05)]:
            got_keys, got_rids, _ = index.query(lo, hi)
            expect = int(np.count_nonzero(range_mask(keys, lo, hi)))
            assert len(got_rids) == expect
            assert np.all(np.diff(got_keys) >= 0)

    def test_cost_has_random_read_character(self):
        index, keys = build()
        lo, hi = map(float, np.quantile(keys.astype(np.float64), [0.4, 0.6]))
        _, rids, cost = index.query(lo, hi)
        assert cost.rows_retrieved == len(rids)
        assert cost.latency > 0

    def test_invalid_range(self):
        index, _ = build(n=500, nbins=8, calibration=100)
        with pytest.raises(ValueError):
            index.query(2.0, 1.0)


class TestCalibrationDrift:
    def test_stationary_bins_balanced(self):
        index, _ = build(drift=False)
        assert index.bin_balance() < 0.5

    def test_drifting_bins_imbalanced(self):
        """Early-sample calibration goes stale under drift — the
        streaming-vs-post-hoc trade the §IX discussion implies."""
        stationary, _ = build(drift=False, seed=3)
        drifting, _ = build(drift=True, seed=3)
        assert drifting.bin_balance() > 2 * stationary.bin_balance()
