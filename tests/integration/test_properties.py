"""Property-based integration tests over the whole pipeline."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.carp import CarpRun
from repro.core.config import CarpOptions
from repro.core.records import RecordBatch, make_rids, range_mask
from repro.query.engine import PartitionedStore
from repro.storage.log import LogReader, list_logs

FAST = CarpOptions(
    pivot_count=16, oob_capacity=16, renegotiations_per_epoch=2,
    memtable_records=64, round_records=64, value_size=8,
)


@st.composite
def rank_streams(draw):
    """1-4 ranks, each with 1-120 finite float32 keys of any scale."""
    nranks = draw(st.integers(1, 4))
    streams = []
    for r in range(nranks):
        keys = draw(
            st.lists(
                st.floats(-1e6, 1e6, allow_nan=False, width=32),
                min_size=1, max_size=120,
            )
        )
        arr = np.array(keys, dtype=np.float32)
        streams.append(RecordBatch(arr, make_rids(r, 0, len(arr)), 8))
    return streams


class TestCarpConservation:
    @given(streams=rank_streams(), delay=st.integers(0, 2))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_every_record_stored_exactly_once(self, tmp_path_factory, streams,
                                              delay):
        """The fundamental invariant: CARP is a permutation of its
        input — no record lost, duplicated, or altered — for any key
        distribution, rank count, and fabric delay."""
        tmp = tmp_path_factory.mktemp("prop")
        opts = FAST.with_(shuffle_delay_rounds=delay)
        with CarpRun(len(streams), tmp, opts) as run:
            run.ingest_epoch(0, streams)
        stored: dict[int, float] = {}
        for path in list_logs(tmp):
            with LogReader(path) as reader:
                for entry in reader.entries:
                    batch = reader.read_sst(entry)
                    for rid, key in zip(batch.rids.tolist(),
                                        batch.keys.tolist()):
                        assert rid not in stored, "duplicate record"
                        stored[rid] = key
        expect = {}
        for s in streams:
            expect.update(zip(s.rids.tolist(), s.keys.tolist()))
        assert stored == expect

    @given(streams=rank_streams(),
           bounds=st.tuples(st.floats(-1e6, 1e6), st.floats(-1e6, 1e6)))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_any_query_matches_brute_force(self, tmp_path_factory, streams,
                                           bounds):
        tmp = tmp_path_factory.mktemp("propq")
        with CarpRun(len(streams), tmp, FAST) as run:
            run.ingest_epoch(0, streams)
        lo, hi = sorted(bounds)
        all_keys = np.concatenate([s.keys for s in streams])
        all_rids = np.concatenate([s.rids for s in streams])
        with PartitionedStore(tmp) as store:
            res = store.query(0, lo, hi)
        expect = set(all_rids[range_mask(all_keys, lo, hi)].tolist())
        assert set(res.rids.tolist()) == expect
        assert np.all(np.diff(res.keys) >= 0)


class TestManifestConsistency:
    @given(streams=rank_streams())
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_manifest_ranges_cover_contents(self, tmp_path_factory, streams):
        """Every SST's manifest [kmin, kmax] exactly brackets its keys —
        the property all query pruning relies on."""
        tmp = tmp_path_factory.mktemp("propm")
        with CarpRun(len(streams), tmp, FAST) as run:
            run.ingest_epoch(0, streams)
        for path in list_logs(tmp):
            with LogReader(path) as reader:
                for entry in reader.entries:
                    batch = reader.read_sst(entry)
                    assert float(batch.keys.min()) == entry.kmin
                    assert float(batch.keys.max()) == entry.kmax
                    assert len(batch) == entry.count


class TestCompactorProperty:
    @given(streams=rank_streams())
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_compaction_is_sorted_permutation(self, tmp_path_factory, streams):
        from repro.storage.compactor import compact_epoch, read_epoch

        tmp = tmp_path_factory.mktemp("propc")
        with CarpRun(len(streams), tmp / "carp", FAST) as run:
            run.ingest_epoch(0, streams)
        out = compact_epoch(tmp / "carp", tmp / "sorted", 0, sst_records=32)
        merged = read_epoch(out, 0)
        expect_rids = sorted(
            np.concatenate([s.rids for s in streams]).tolist()
        )
        assert sorted(merged.rids.tolist()) == expect_rids
        # globally sorted across SST boundaries
        with LogReader(list_logs(out)[0]) as reader:
            prev = -np.inf
            for entry in sorted(reader.entries, key=lambda e: e.offset):
                assert entry.kmin >= prev
                prev = entry.kmax
