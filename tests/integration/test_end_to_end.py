"""End-to-end integration: the full paper pipeline on real files.

trace -> CARP ingest -> (a) direct range queries, (b) compactor ->
sorted queries, (c) FastQuery index, (d) full scan — all answering the
same queries, all agreeing with a brute-force filter of the input.
"""

import numpy as np
import pytest

from repro.baselines.fastquery import BitmapIndex
from repro.baselines.fullscan import full_scan_query, write_unpartitioned
from repro.query.engine import PartitionedStore
from repro.workloads.queries import build_query_suite


@pytest.fixture(scope="module")
def ground_truth(trace_keys, trace_rids):
    def answer(epoch, lo, hi):
        keys, rids = trace_keys[epoch], trace_rids[epoch]
        mask = (keys >= lo) & (keys <= hi)
        return set(rids[mask].tolist())

    return answer


class TestAllPathsAgree:
    def test_carp_vs_ground_truth_suite(self, carp_output, trace_keys,
                                        ground_truth):
        with PartitionedStore(carp_output["dir"]) as store:
            for spec in build_query_suite(trace_keys[0]):
                res = store.query(0, spec.lo, spec.hi)
                assert set(res.rids.tolist()) == ground_truth(0, spec.lo, spec.hi)

    def test_sorted_vs_ground_truth_suite(self, sorted_output, trace_keys,
                                          ground_truth):
        with PartitionedStore(sorted_output) as store:
            for spec in build_query_suite(trace_keys[0]):
                res = store.query(0, spec.lo, spec.hi)
                assert set(res.rids.tolist()) == ground_truth(0, spec.lo, spec.hi)

    def test_fastquery_vs_ground_truth(self, trace_streams, trace_keys,
                                       ground_truth):
        idx = BitmapIndex.from_streams(trace_streams[0], nbins=64, record_size=12)
        for spec in build_query_suite(trace_keys[0])[:4]:
            _, rids, _ = idx.query(spec.lo, spec.hi)
            assert set(rids.tolist()) == ground_truth(0, spec.lo, spec.hi)

    def test_full_scan_vs_ground_truth(self, tmp_path, trace_streams,
                                       ground_truth):
        write_unpartitioned(tmp_path, 0, trace_streams[0])
        res = full_scan_query(tmp_path, 0, 0.5, 4.0)
        assert set(res.rids.tolist()) == ground_truth(0, 0.5, 4.0)


class TestPaperClaims:
    """Qualitative reproduction of headline claims at test scale."""

    def test_carp_reads_less_than_full_scan(self, carp_output, trace_keys):
        """Partition pruning: selective queries touch a fraction of data."""
        with PartitionedStore(carp_output["dir"]) as store:
            keys = np.sort(trace_keys[0])
            lo, hi = float(keys[50]), float(keys[250])
            res = store.query(0, lo, hi)
            assert res.cost.bytes_read < 0.6 * store.total_bytes(0)

    def test_carp_latency_close_to_sorted(self, carp_output, sorted_output,
                                          trace_keys):
        """Observation 2: CARP ~ sorted for moderate selectivity."""
        keys = np.sort(trace_keys[0])
        lo, hi = float(np.quantile(keys, 0.3)), float(np.quantile(keys, 0.4))
        with PartitionedStore(carp_output["dir"]) as carp, \
             PartitionedStore(sorted_output) as sorted_store:
            c = carp.query(0, lo, hi).cost.latency
            s = sorted_store.query(0, lo, hi).cost.latency
        assert c < 10 * s

    def test_fastquery_much_slower_than_carp(self, carp_output, trace_streams,
                                             trace_keys):
        """Observation 1: auxiliary indexes are 1-2 orders of magnitude
        slower at query time."""
        idx = BitmapIndex.from_streams(trace_streams[0], nbins=64,
                                       record_size=12)
        keys = np.sort(trace_keys[0])
        lo, hi = float(np.quantile(keys, 0.3)), float(np.quantile(keys, 0.5))
        _, _, fq_cost = idx.query(lo, hi)
        with PartitionedStore(carp_output["dir"]) as store:
            carp_cost = store.query(0, lo, hi).cost
        assert fq_cost.latency > 10 * carp_cost.latency

    def test_partition_balance_at_test_scale(self, carp_output):
        """Partitions stay within a sane imbalance envelope."""
        for stats in carp_output["stats"].values():
            assert stats.load_stddev < 0.35

    def test_later_epoch_heavier_tail_still_stored(self, carp_output,
                                                   trace_keys):
        with PartitionedStore(carp_output["dir"]) as store:
            assert store.total_records(1) == len(trace_keys[1])

    def test_write_amplification_is_one(self, carp_output, trace_keys):
        """CARP's core constraint: each record is written exactly once
        (WAF 1x, modulo metadata)."""
        with PartitionedStore(carp_output["dir"]) as store:
            stored = store.total_bytes(None)
        record_bytes = (4 + 8) * (len(trace_keys[0]) + len(trace_keys[1]))
        # on-disk bytes = records + headers/manifests; well under 2x
        assert record_bytes <= stored < 1.25 * record_bytes


class TestPropertyBasedIntegration:
    def test_random_queries_match_brute_force(self, carp_output, trace_keys,
                                              trace_rids):
        rng = np.random.default_rng(77)
        keys, rids = trace_keys[0], trace_rids[0]
        kmin, kmax = float(keys.min()), float(keys.max())
        with PartitionedStore(carp_output["dir"]) as store:
            for _ in range(25):
                a, b = sorted(rng.uniform(kmin, kmax, 2).tolist())
                res = store.query(0, a, b)
                mask = (keys >= a) & (keys <= b)
                assert set(res.rids.tolist()) == set(rids[mask].tolist())
                assert np.all(np.diff(res.keys) >= 0)

    def test_point_queries_match(self, carp_output, trace_keys, trace_rids):
        rng = np.random.default_rng(78)
        keys, rids = trace_keys[0], trace_rids[0]
        with PartitionedStore(carp_output["dir"]) as store:
            for k in rng.choice(keys, 10, replace=False):
                k = float(k)
                res = store.query(0, k, k)
                mask = keys == np.float32(k)
                assert set(res.rids.tolist()) == set(rids[mask].tolist())
