"""Executor contract tests, run against all three backends.

Task functions live at module level so :class:`ProcessExecutor` can
pickle them by reference — the same constraint real worker tasks
(``repro.exec.work``) obey.
"""

from __future__ import annotations

import argparse
import os
import time

import pytest

from repro.exec import (
    SERIAL_EXEC,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    WorkerCrashError,
    WorkerTaskError,
    default_executor,
    executor_from_args,
    make_executor,
    resolve_executor,
    worker_of,
)
from repro.exec.factory import add_executor_args

# ------------------------------------------------------------ task fns


def add_task(state, a, b):
    return a + b


def count_task(state):
    state["n"] = state.get("n", 0) + 1
    return state["n"]


def state_id_task(state):
    # stamp the state dict on first touch so later tasks can prove
    # they saw the same mapping
    state.setdefault("stamp", (os.getpid(), id(state)))
    return state["stamp"]


def slow_echo_task(state, delay, value):
    time.sleep(delay)
    return value


def boom_task(state):
    raise ValueError("kaboom")


def exit_task(state):
    os._exit(3)


# ------------------------------------------------------------ fixtures

BACKENDS = {
    "serial": SerialExecutor,
    "thread": lambda: ThreadExecutor(3),
    "process": lambda: ProcessExecutor(2),
}


@pytest.fixture(params=sorted(BACKENDS))
def executor(request):
    exec_ = BACKENDS[request.param]()
    yield exec_
    exec_.close()


# ------------------------------------------------------------ worker_of


def test_worker_of_is_sticky_modulo():
    assert [worker_of(s, 3) for s in range(7)] == [0, 1, 2, 0, 1, 2, 0]


def test_worker_of_validates():
    with pytest.raises(ValueError):
        worker_of(0, 0)
    with pytest.raises(ValueError):
        worker_of(-1, 2)


# ------------------------------------------------------- contract tests


def test_drain_returns_submission_order(executor):
    # later-submitted tasks finish *first* on the pools (zero delay vs
    # a long one on a different worker); drain must reorder anyway
    executor.submit(0, slow_echo_task, 0.2, "first")
    executor.submit(1, slow_echo_task, 0.0, "second")
    executor.submit(2, slow_echo_task, 0.0, "third")
    assert executor.drain() == ["first", "second", "third"]


def test_empty_drain(executor):
    assert executor.drain() == []


def test_state_is_sticky_across_drains(executor):
    executor.submit(5, count_task)
    executor.submit(5, count_task)
    assert executor.drain() == [1, 2]
    executor.submit(5, count_task)
    assert executor.drain() == [3]


def test_state_is_per_shard(executor):
    executor.submit(0, state_id_task)
    executor.submit(1, state_id_task)
    executor.submit(0, state_id_task)
    a1, b, a2 = executor.drain()
    assert a1 == a2  # same shard, same mapping
    assert a1 != b  # different shard, different mapping


def test_map_preserves_argument_order(executor):
    out = executor.map(add_task, [(i, 10 * i) for i in range(8)])
    assert out == [11 * i for i in range(8)]


def test_map_rejects_mismatched_shards(executor):
    with pytest.raises(ValueError):
        executor.map(add_task, [(1, 2), (3, 4)], shards=[0])


def test_task_error_carries_worker_traceback(executor):
    executor.submit(0, add_task, 1, 2)
    executor.submit(1, boom_task)
    executor.submit(2, add_task, 3, 4)
    with pytest.raises(WorkerTaskError) as exc_info:
        executor.drain()
    err = exc_info.value
    assert err.shard == 1
    assert "kaboom" in str(err)
    assert "boom_task" in err.traceback_text


def test_executor_usable_after_task_error(executor):
    executor.submit(0, boom_task)
    with pytest.raises(WorkerTaskError):
        executor.drain()
    executor.submit(0, add_task, 2, 2)
    assert executor.drain() == [4]


def test_first_failure_in_submission_order_wins(executor):
    executor.submit(1, boom_task)
    executor.submit(0, boom_task)
    with pytest.raises(WorkerTaskError) as exc_info:
        executor.drain()
    assert exc_info.value.shard == 1


def test_context_manager_closes(tmp_path):
    with ThreadExecutor(2) as exec_:
        assert exec_.map(add_task, [(1, 1)]) == [2]
    with pytest.raises(Exception):
        exec_.submit(0, add_task, 1, 1)


def test_close_is_idempotent(executor):
    executor.close()
    executor.close()


def test_worker_crash_detected():
    exec_ = ProcessExecutor(1)
    try:
        exec_.submit(0, exit_task)
        with pytest.raises(WorkerCrashError):
            exec_.drain()
    finally:
        exec_.close()


def test_lazy_spawn_makes_unused_pools_free():
    exec_ = ProcessExecutor(4)
    assert exec_._procs == []  # nothing spawned yet
    exec_.close()


# ----------------------------------------------------- factory / config


def test_make_executor_kinds():
    assert make_executor("serial").is_serial
    assert isinstance(make_executor("thread", 2), ThreadExecutor)
    assert isinstance(make_executor("process", 2), ProcessExecutor)
    with pytest.raises(ValueError):
        make_executor("gpu")


def test_default_executor_without_env(monkeypatch):
    monkeypatch.delenv("CARP_EXECUTOR", raising=False)
    assert default_executor() is SERIAL_EXEC


def test_default_executor_from_env(monkeypatch):
    monkeypatch.setenv("CARP_EXECUTOR", "thread")
    monkeypatch.setenv("CARP_WORKERS", "2")
    exec_ = default_executor()
    assert isinstance(exec_, ThreadExecutor)
    assert exec_.workers == 2
    exec_.close()


def test_resolve_executor_ownership(monkeypatch):
    monkeypatch.delenv("CARP_EXECUTOR", raising=False)
    # no env: the shared serial singleton, not owned
    exec_, owned = resolve_executor(None)
    assert exec_ is SERIAL_EXEC and not owned
    # explicit injection: caller keeps ownership
    mine = ThreadExecutor(2)
    exec_, owned = resolve_executor(mine)
    assert exec_ is mine and not owned
    mine.close()
    # env-created: the consumer must close it
    monkeypatch.setenv("CARP_EXECUTOR", "thread")
    exec_, owned = resolve_executor(None)
    assert isinstance(exec_, ThreadExecutor) and owned
    exec_.close()


def test_executor_from_args_flags_win(monkeypatch):
    monkeypatch.setenv("CARP_EXECUTOR", "process")
    parser = argparse.ArgumentParser()
    add_executor_args(parser)
    args = parser.parse_args(["--executor", "thread", "--workers", "2"])
    exec_, owned = executor_from_args(args)
    assert isinstance(exec_, ThreadExecutor) and exec_.workers == 2 and owned
    exec_.close()


def test_executor_from_args_defaults_to_env_resolution(monkeypatch):
    monkeypatch.delenv("CARP_EXECUTOR", raising=False)
    parser = argparse.ArgumentParser()
    add_executor_args(parser)
    exec_, owned = executor_from_args(parser.parse_args([]))
    assert exec_ is SERIAL_EXEC and not owned
