"""Cross-executor determinism: serial, thread, and process runs must be
bit-identical.

This is the contract ``docs/PARALLELISM.md`` promises: for a fixed
seeded trace, every backend produces byte-identical KoiDB logs, equal
query results (keys, rids, and the full measured/modeled cost), and an
identical ``metrics.json`` snapshot.  ``trace.json`` is covered by the
same contract — worker spans are recorded rank-locally and replayed in
rank order — and is asserted separately in
``test_trace_determinism.py``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.carp import CarpRun
from repro.core.config import CarpOptions
from repro.exec import ProcessExecutor, SerialExecutor, ThreadExecutor
from repro.obs import Obs
from repro.query.engine import PartitionedStore
from repro.storage.compactor import compact_all_epochs
from repro.storage.log import list_logs
from repro.traces.vpic import VpicTraceSpec, generate_timestep

OPTIONS = CarpOptions(
    pivot_count=32,
    oob_capacity=32,
    renegotiations_per_epoch=3,
    memtable_records=256,
    round_records=128,
    value_size=8,
)

EPOCHS = 2

QUERIES = (
    (0, 0.5, 2.0, False),
    (0, -1.0, 0.25, True),
    (1, 1.0, 8.0, False),
)

BACKENDS = {
    "serial": SerialExecutor,
    "thread": lambda: ThreadExecutor(3),
    "process": lambda: ProcessExecutor(2),
}


def _digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _plain(obj):
    """Recursively turn stats tuples into ==-comparable plain data."""
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (tuple, list)):
        return [_plain(x) for x in obj]
    return obj


def _run_pipeline(out_dir, make_exec, seed: int) -> dict[str, object]:
    """Ingest + query one seeded trace; return everything comparable."""
    spec = VpicTraceSpec(
        nranks=6, particles_per_rank=600, value_size=8, seed=seed
    )
    obs = Obs.recording()
    with make_exec() as executor:
        with CarpRun(
            spec.nranks, out_dir, OPTIONS, obs=obs, executor=executor
        ) as run:
            epoch_stats = [
                _plain(dataclasses.astuple(
                    run.ingest_epoch(ep, generate_timestep(spec, ep))
                ))
                for ep in range(EPOCHS)
            ]
        logs = {
            p.name: _digest(p.read_bytes()) for p in list_logs(out_dir)
        }
        queries = []
        with PartitionedStore(out_dir, obs=obs, executor=executor) as store:
            for epoch, lo, hi, keys_only in QUERIES:
                res = store.query(epoch, lo, hi, keys_only=keys_only)
                queries.append(
                    (
                        _digest(res.keys.tobytes()),
                        _digest(res.rids.tobytes()),
                        dataclasses.astuple(res.cost),
                    )
                )
    metrics = json.dumps(obs.metrics.snapshot(), sort_keys=True)
    return {
        "stats": epoch_stats,
        "logs": logs,
        "queries": queries,
        "metrics": metrics,
    }


def _assert_identical(outcomes: dict[str, dict[str, object]]) -> None:
    baseline_name, baseline = next(iter(outcomes.items()))
    for name, outcome in outcomes.items():
        for field in ("stats", "logs", "queries", "metrics"):
            assert outcome[field] == baseline[field], (
                f"{field} diverged: {name} vs {baseline_name}"
            )


@given(seed=st.integers(0, 2**16))
@settings(
    max_examples=3,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_pipeline_bit_identical_across_executors(tmp_path_factory, seed):
    outcomes = {}
    for name, make_exec in BACKENDS.items():
        out = tmp_path_factory.mktemp(f"det_{name}")
        outcomes[name] = _run_pipeline(out, make_exec, seed)
    # every log must actually exist and carry data on every backend
    assert all(o["logs"] for o in outcomes.values())
    _assert_identical(outcomes)


@pytest.mark.parametrize("workers", [1, 2, 5])
def test_worker_count_does_not_change_output(tmp_path_factory, workers):
    """Determinism must hold for any pool width, not just the tested one."""
    serial = _run_pipeline(
        tmp_path_factory.mktemp("width_serial"), SerialExecutor, seed=99
    )
    pooled = _run_pipeline(
        tmp_path_factory.mktemp(f"width_{workers}"),
        lambda: ProcessExecutor(workers),
        seed=99,
    )
    _assert_identical({"serial": serial, f"process[{workers}]": pooled})


def test_compaction_bit_identical_across_executors(tmp_path_factory):
    spec = VpicTraceSpec(nranks=4, particles_per_rank=800, value_size=8, seed=5)
    src = tmp_path_factory.mktemp("compact_src")
    with CarpRun(spec.nranks, src, OPTIONS) as run:
        for ep in range(EPOCHS):
            run.ingest_epoch(ep, generate_timestep(spec, ep))
    hashes = {}
    for name, make_exec in BACKENDS.items():
        out = tmp_path_factory.mktemp(f"compact_{name}")
        with make_exec() as executor:
            dirs = compact_all_epochs(src, out, sst_records=512,
                                      executor=executor)
        assert [d.name for d in dirs] == [str(e) for e in range(EPOCHS)]
        hashes[name] = {
            f"{d.name}/{p.name}": _digest(p.read_bytes())
            for d in dirs
            for p in list_logs(d)
        }
    assert hashes["thread"] == hashes["serial"]
    assert hashes["process"] == hashes["serial"]
