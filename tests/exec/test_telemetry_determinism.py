"""Cross-executor telemetry determinism: the stream is in the contract.

``telemetry.jsonl`` is sampled at barrier-aligned points (epoch end,
post-query, session close) where every backend's registry state has
converged, and its interval ticks are restricted to driver-scoped
prefixes, so the *entire* stream — bytes, request-id assignment, and
the per-request span attribution that rides on worker ``Obs.deltas()``
— must be bit-identical across serial, thread, and process runs of the
same seeded workload (the streaming sibling of
``test_trace_determinism.py``).
"""

from __future__ import annotations

import json

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.api import Session
from repro.core.config import CarpOptions
from repro.exec import ProcessExecutor, SerialExecutor, ThreadExecutor
from repro.obs import Obs
from repro.traces.vpic import VpicTraceSpec, generate_timestep

OPTIONS = CarpOptions(
    pivot_count=32,
    oob_capacity=32,
    renegotiations_per_epoch=3,
    memtable_records=256,
    round_records=128,
    value_size=8,
)

EPOCHS = 2
QUERIES_PER_EPOCH = 2

BACKENDS = {
    "serial": SerialExecutor,
    "thread": lambda: ThreadExecutor(3),
    "process": lambda: ProcessExecutor(2),
}


def _run(out_dir, make_exec, seed: int) -> dict[str, object]:
    spec = VpicTraceSpec(
        nranks=6, particles_per_rank=500, value_size=8, seed=seed
    )
    obs = Obs.recording()
    with make_exec() as executor:
        with Session(spec.nranks, out_dir, OPTIONS, obs=obs,
                     executor=executor, telemetry=True) as session:
            for ep in range(EPOCHS):
                session.ingest_epoch(ep, generate_timestep(spec, ep))
            store = session.store()
            for epoch in store.epochs():
                lo, hi = store.key_range(epoch)
                for q in range(QUERIES_PER_EPOCH):
                    width = (hi - lo) / 8
                    session.query(epoch, lo + q * width, lo + (q + 1) * width)
    telemetry = (out_dir / "telemetry.jsonl").read_bytes()
    exposition = (out_dir / "metrics.om").read_bytes()
    doc = obs.tracer.to_doc()
    events = doc["traceEvents"]
    assert isinstance(events, list)
    # every span's request attribution, in trace order
    attribution = [
        (e.get("name"), e.get("args", {}).get("request"))
        for e in events
        if isinstance(e.get("args"), dict) and "request" in e["args"]
    ]
    return {
        "telemetry": telemetry,
        "exposition": exposition,
        "attribution": attribution,
    }


@given(seed=st.integers(0, 2**16))
@settings(
    max_examples=3,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_telemetry_bit_identical_across_executors(tmp_path_factory, seed):
    outcomes = {
        name: _run(
            tmp_path_factory.mktemp(f"telem_{name}"), make_exec, seed
        )
        for name, make_exec in BACKENDS.items()
    }
    serial = outcomes["serial"]
    for name in ("thread", "process"):
        assert outcomes[name]["telemetry"] == serial["telemetry"], name
        assert outcomes[name]["exposition"] == serial["exposition"], name
        assert outcomes[name]["attribution"] == serial["attribution"], name


def test_request_ids_deterministic_and_attributed(tmp_path):
    """Ids follow mint order and tag worker-side spans on every backend."""
    outcome = _run(tmp_path / "out", BACKENDS["thread"], seed=9)
    lines = [
        json.loads(line)
        for line in outcome["telemetry"].decode().splitlines()
    ]
    full = [d for d in lines if d["kind"] != "tick"]
    assert [d.get("request") for d in full] == [
        "ingest-000001", "ingest-000002",
        "query-000001", "query-000002", "query-000003", "query-000004",
        None,  # the final sample belongs to no single request
    ]
    attributed = {rid for _, rid in outcome["attribution"]}
    assert "ingest-000001" in attributed
    assert "query-000001" in attributed
    # worker-side flush spans carry the ingest id (the ("ctx", rid)
    # command replayed at the same stream position on every backend)
    flush_requests = {
        rid for name, rid in outcome["attribution"] if name == "flush"
    }
    assert flush_requests <= {"ingest-000001", "ingest-000002"}
    assert flush_requests
