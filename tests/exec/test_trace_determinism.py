"""Cross-executor trace determinism: ``trace.json`` is in the contract.

Worker-side spans are recorded into rank-local ``Obs.deltas()``
timelines and merged into the driver's ``ChromeTracer`` in rank order
at the same barrier points on every backend, so the *entire* trace
document — including flush spans that execute on worker processes —
must be bit-identical across serial, thread, and process runs of the
same seeded workload.
"""

from __future__ import annotations

import json

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.carp import CarpRun
from repro.core.config import CarpOptions
from repro.exec import ProcessExecutor, SerialExecutor, ThreadExecutor
from repro.obs import Obs, validate_trace_events
from repro.traces.vpic import VpicTraceSpec, generate_timestep

OPTIONS = CarpOptions(
    pivot_count=32,
    oob_capacity=32,
    renegotiations_per_epoch=3,
    memtable_records=256,
    round_records=128,
    value_size=8,
)

EPOCHS = 2

BACKENDS = {
    "serial": SerialExecutor,
    "thread": lambda: ThreadExecutor(3),
    "process": lambda: ProcessExecutor(2),
}


def _trace_doc(out_dir, make_exec, seed: int) -> dict[str, object]:
    spec = VpicTraceSpec(
        nranks=6, particles_per_rank=500, value_size=8, seed=seed
    )
    obs = Obs.recording()
    with make_exec() as executor:
        with CarpRun(
            spec.nranks, out_dir, OPTIONS, obs=obs, executor=executor
        ) as run:
            for ep in range(EPOCHS):
                run.ingest_epoch(ep, generate_timestep(spec, ep))
    doc = obs.tracer.to_doc()
    assert validate_trace_events(doc) == []
    return doc


@given(seed=st.integers(0, 2**16))
@settings(
    max_examples=3,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_trace_bit_identical_across_executors(tmp_path_factory, seed):
    docs = {
        name: _trace_doc(
            tmp_path_factory.mktemp(f"trace_{name}"), make_exec, seed
        )
        for name, make_exec in BACKENDS.items()
    }
    serialized = {
        name: json.dumps(doc, sort_keys=True) for name, doc in docs.items()
    }
    assert serialized["thread"] == serialized["serial"]
    assert serialized["process"] == serialized["serial"]


def test_worker_flush_spans_present_on_every_backend(tmp_path_factory):
    """The merged trace must contain the rank-local flush spans.

    Guards against the failure mode where backends agree only because
    worker spans were silently dropped everywhere.
    """
    for name, make_exec in BACKENDS.items():
        doc = _trace_doc(
            tmp_path_factory.mktemp(f"flush_{name}"), make_exec, seed=7
        )
        events = doc["traceEvents"]
        assert isinstance(events, list)
        flush_pids = {
            e["pid"] for e in events
            if e.get("ph") == "M" and e.get("name") == "process_name"
            and e.get("args", {}).get("name") == "flush"
        }
        assert flush_pids, f"{name}: no flush track declared"
        spans = [
            e for e in events
            if e.get("pid") in flush_pids and e.get("ph") in ("B", "E", "X")
        ]
        assert spans, f"{name}: no worker flush spans in the merged trace"
