"""Cross-executor profile determinism: the fold inherits bit-identity.

``trace.json`` is bit-identical across serial/thread/process backends
(see ``test_trace_determinism.py``); the profile fold is pure integer
arithmetic over that archive, so the *profile* — json, folded text,
and exact reconciliation against the metrics snapshot — must be
bit-identical too.  This is the determinism contract lint rule O505
protects statically and this test enforces dynamically.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.carp import CarpRun
from repro.core.config import CarpOptions
from repro.exec import ProcessExecutor, SerialExecutor, ThreadExecutor
from repro.obs import Obs, validate_trace_events
from repro.obs.profile import fold_trace_doc
from repro.traces.vpic import VpicTraceSpec, generate_timestep

OPTIONS = CarpOptions(
    pivot_count=32,
    oob_capacity=32,
    renegotiations_per_epoch=3,
    memtable_records=256,
    round_records=128,
    value_size=8,
)

EPOCHS = 2

BACKENDS = {
    "serial": SerialExecutor,
    "thread": lambda: ThreadExecutor(3),
    "process": lambda: ProcessExecutor(2),
}


def _artifacts(out_dir, make_exec, seed: int):
    spec = VpicTraceSpec(
        nranks=6, particles_per_rank=500, value_size=8, seed=seed
    )
    obs = Obs.recording()
    with make_exec() as executor:
        with CarpRun(
            spec.nranks, out_dir, OPTIONS, obs=obs, executor=executor
        ) as run:
            for ep in range(EPOCHS):
                run.ingest_epoch(ep, generate_timestep(spec, ep))
    doc = obs.tracer.to_doc()
    assert validate_trace_events(doc) == []
    return doc, obs.metrics.snapshot()


@given(seed=st.integers(0, 2**16))
@settings(
    max_examples=3,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_profile_bit_identical_across_executors(tmp_path_factory, seed):
    rendered = {}
    for name, make_exec in BACKENDS.items():
        doc, snapshot = _artifacts(
            tmp_path_factory.mktemp(f"prof_{name}"), make_exec, seed
        )
        profile = fold_trace_doc(doc)
        # every backend's profile reconciles exactly against its own
        # metrics snapshot — attribution drift on any backend is a bug
        assert profile.reconcile(snapshot) == [], name
        rendered[name] = (profile.to_json(), profile.to_folded())
    assert rendered["thread"] == rendered["serial"]
    assert rendered["process"] == rendered["serial"]


def test_worker_spans_are_attributed_not_dropped(tmp_path_factory):
    """Backends must agree on a profile that contains real work.

    Guards against bit-identity holding only because worker-side flush
    spans were dropped from every backend's fold.
    """
    doc, snapshot = _artifacts(
        tmp_path_factory.mktemp("prof_content"), BACKENDS["serial"], seed=7
    )
    profile = fold_trace_doc(doc)
    phases = profile.phases()
    assert "flush" in phases and phases["flush"]["total_ns"] > 0
    assert "route" in phases and phases["route"]["total_ns"] > 0
    totals = profile.totals()
    assert totals["records"] > 0 and totals["bytes"] > 0
