"""Fault injection across executor backends.

Two contracts under test:

* **fault determinism** — the same :class:`FaultPlan` produces
  bit-identical logs, metrics, and query results on every backend
  (serial / thread / process), whether the faults are benign (shuffle
  delay/drop), retried away (task crashes under a retry budget), or
  fatal (storage tears, where the *recovered* logs must agree);
* **bounded retry** — crash retries preserve sticky shard state and
  per-shard ordering, and exhaust into :class:`WorkerCrashError`.

Task functions live at module level so :class:`ProcessExecutor` can
pickle them by reference.
"""

from __future__ import annotations

import hashlib
import json
import os

import pytest

from repro.api import Session
from repro.core.config import CarpOptions
from repro.exec import (
    ExecutorError,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    WorkerCrashError,
    is_stateful_task,
    stateful_task,
)
from repro.faults.plan import (
    ACTION_DELAY,
    ACTION_DROP,
    SITE_MANIFEST_WRITE,
    SITE_SHUFFLE_SEND,
    SITE_TASK,
    FaultPlan,
    FaultSpec,
    InjectedCrashError,
)
from repro.obs import Obs
from repro.storage.fsck import fsck
from repro.storage.log import list_logs
from repro.traces.vpic import VpicTraceSpec, generate_timestep

OPTIONS = CarpOptions(
    pivot_count=16,
    oob_capacity=32,
    renegotiations_per_epoch=2,
    memtable_records=128,
    round_records=128,
    value_size=8,
    shuffle_delay_rounds=1,
)

EPOCHS = 2
NRANKS = 4

BACKENDS = {
    "serial": lambda retries: SerialExecutor(task_retries=retries),
    "thread": lambda retries: ThreadExecutor(2, task_retries=retries),
    "process": lambda retries: ProcessExecutor(2, task_retries=retries),
}


def _digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _streams(epoch: int):
    spec = VpicTraceSpec(
        nranks=NRANKS, particles_per_rank=300, value_size=8, seed=7
    )
    return generate_timestep(spec, epoch)


def _run_session(out_dir, make_exec, plan):
    """One faulted ingest+query pipeline; returns comparable outcomes."""
    obs = Obs.recording()
    crashed = None
    executor = make_exec()
    session = Session(
        NRANKS, out_dir, OPTIONS, obs=obs, executor=executor, faults=plan
    )
    try:
        for epoch in range(EPOCHS):
            session.ingest_epoch(epoch, _streams(epoch))
        queries = []
        for epoch in range(EPOCHS):
            res = session.query(epoch, 0.25, 4.0)
            queries.append(
                (_digest(res.keys.tobytes()), _digest(res.rids.tobytes()))
            )
    except (InjectedCrashError, ExecutorError) as exc:
        crashed = repr(exc)
        queries = None
    finally:
        try:
            session.close()
        except (InjectedCrashError, ExecutorError):
            crashed = crashed or "close"
        executor.close()
    return {
        "crashed": crashed is not None,
        "queries": queries,
        "logs": {p.name: _digest(p.read_bytes()) for p in list_logs(out_dir)},
        "metrics": json.dumps(obs.metrics.snapshot(), sort_keys=True),
        "retries": executor.retries_done,
    }


def _assert_identical(outcomes, fields):
    baseline_name, baseline = next(iter(outcomes.items()))
    for name, outcome in outcomes.items():
        for field in fields:
            assert outcome[field] == baseline[field], (
                f"{field} diverged: {name} vs {baseline_name}"
            )


def test_shuffle_faults_identical_everywhere(tmp_path_factory):
    """Delay/drop faults are lossless and fire identically on every
    backend — logs, metrics.json, and queries all match."""
    plan = FaultPlan(
        seed=0,
        specs=(
            FaultSpec(SITE_SHUFFLE_SEND, 0, 3, 2.0, ACTION_DELAY),
            FaultSpec(SITE_SHUFFLE_SEND, 0, 7, 0.0, ACTION_DROP),
            FaultSpec(SITE_SHUFFLE_SEND, 0, 11, 3.0, ACTION_DELAY),
        ),
    )
    outcomes = {}
    for name, make_exec in BACKENDS.items():
        out = tmp_path_factory.mktemp(f"shuf_{name}")
        outcomes[name] = _run_session(out, lambda: make_exec(0), plan)
    assert not any(o["crashed"] for o in outcomes.values())
    assert all(o["logs"] for o in outcomes.values())
    _assert_identical(outcomes, ("crashed", "logs", "queries", "metrics"))


def test_shuffle_faults_change_nothing_durable(tmp_path_factory):
    """Dropped sends are retransmitted at the epoch drain: the logs
    differ from a fault-free run only in SST grouping, never records."""
    plan = FaultPlan(
        seed=0, specs=(FaultSpec(SITE_SHUFFLE_SEND, 0, 2, 0.0, ACTION_DROP),)
    )
    faulted = _run_session(
        tmp_path_factory.mktemp("drop_faulted"),
        lambda: SerialExecutor(),
        plan,
    )
    clean = _run_session(
        tmp_path_factory.mktemp("drop_clean"), lambda: SerialExecutor(), None
    )
    # same queryable contents even though delivery timing changed
    assert faulted["queries"] == clean["queries"]


def test_task_crashes_retried_away_identically(tmp_path_factory):
    """Planned worker crashes under a retry budget: parallel backends
    retry in-place (sticky shard state intact) and converge on the
    serial run's exact logs and query results."""
    plan = FaultPlan(
        seed=0,
        specs=(
            FaultSpec(SITE_TASK, 1, 0),
            FaultSpec(SITE_TASK, 2, 2),
        ),
    )
    outcomes = {}
    for name, make_exec in BACKENDS.items():
        out = tmp_path_factory.mktemp(f"task_{name}")
        outcomes[name] = _run_session(out, lambda: make_exec(3), plan)
    assert not any(o["crashed"] for o in outcomes.values())
    _assert_identical(outcomes, ("crashed", "logs", "queries"))
    # serial runs never dispatch koidb_apply, so the task site never
    # fires there; the pools must have actually exercised the retry path
    assert outcomes["serial"]["retries"] == 0
    assert outcomes["thread"]["retries"] > 0
    assert outcomes["process"]["retries"] > 0


def test_storage_crash_recovers_identically(tmp_path_factory):
    """A torn manifest write kills every backend at the same epoch;
    after ``fsck --repair`` the recovered logs are bit-identical."""
    plan = FaultPlan(
        seed=0, specs=(FaultSpec(SITE_MANIFEST_WRITE, 1, 1, arg=0.5),)
    )
    recovered = {}
    for name, make_exec in BACKENDS.items():
        out = tmp_path_factory.mktemp(f"crash_{name}")
        outcome = _run_session(out, lambda: make_exec(3), plan)
        assert outcome["crashed"], name
        report = fsck(out, deep=True, repair=True)
        assert report.ok, (name, report.errors)
        recovered[name] = {
            p.name: _digest(p.read_bytes()) for p in list_logs(out)
        }
    assert recovered["thread"] == recovered["serial"]
    assert recovered["process"] == recovered["serial"]
    # epoch 0 committed everywhere before the epoch-1 tear
    assert len(recovered["serial"]) == NRANKS


# --------------------------------------------------- raw executor retry


def flaky_task(state, fail_times):
    state["calls"] = state.get("calls", 0) + 1
    if state["calls"] <= fail_times:
        raise WorkerCrashError(f"planned crash {state['calls']}")
    return ("ok", state["calls"])


def always_crash_task(state):
    raise WorkerCrashError("always")


def flag_exit_task(state, flag_path):
    # first attempt: leave a marker and die for real; the respawned
    # worker's resubmission sees the marker and succeeds
    if not os.path.exists(flag_path):
        with open(flag_path, "w") as fh:
            fh.write("died")
        os._exit(11)
    return "revived"


@pytest.mark.parametrize("name", sorted(BACKENDS))
def test_retry_rescues_within_budget(name):
    executor = BACKENDS[name](2)
    try:
        executor.submit(0, flaky_task, 2)
        assert executor.drain() == [("ok", 3)]
        assert executor.retries_done == 2
    finally:
        executor.close()


@pytest.mark.parametrize("name", sorted(BACKENDS))
def test_retry_exhaustion_raises_worker_crash(name):
    executor = BACKENDS[name](1)
    try:
        executor.submit(0, always_crash_task)
        with pytest.raises(WorkerCrashError, match="after 1"):
            executor.drain()
    finally:
        executor.close()


@pytest.mark.parametrize("name", sorted(BACKENDS))
def test_zero_budget_fails_fast(name):
    executor = BACKENDS[name](0)
    try:
        executor.submit(0, flaky_task, 1)
        with pytest.raises(WorkerCrashError):
            executor.drain()
        assert executor.retries_done == 0
    finally:
        executor.close()


def test_process_executor_respawns_dead_worker(tmp_path):
    flag = str(tmp_path / "died.flag")
    executor = ProcessExecutor(2, task_retries=2)
    try:
        executor.submit(0, flag_exit_task, flag)
        assert executor.drain() == ["revived"]
        assert executor.retries_done >= 1
    finally:
        executor.close()


# ------------------------------------------- worker death vs. durability


@stateful_task
def stateful_exit_task(state):
    os._exit(23)


def echo_task(state, value):
    return value


def report_then_die_task(state, flag_path):
    # first run: report a result, then die for real moments later —
    # the driver may see the death before or after consuming the
    # result, and must end up with exactly one outcome either way
    if not os.path.exists(flag_path):
        with open(flag_path, "w") as fh:
            fh.write("died")
        import threading

        threading.Timer(0.05, lambda: os._exit(17)).start()
    return "reported"


def test_koidb_apply_is_marked_stateful():
    from repro.exec.work import koidb_apply, probe_log

    assert is_stateful_task(koidb_apply)
    assert not is_stateful_task(probe_log)


def test_dead_worker_with_stateful_task_fails_drain():
    """A real worker-process death with a stateful task in flight must
    fail the drain — never resubmit to a fresh worker whose empty shard
    state would re-open (and truncate) a rank log."""
    executor = ProcessExecutor(2, task_retries=3)
    try:
        executor.submit(0, stateful_exit_task)
        with pytest.raises(WorkerCrashError, match="stateful"):
            executor.drain()
    finally:
        executor.close()


def test_drain_discards_stale_and_unknown_results():
    """Leftover result messages — an unknown ticket, or a superseded
    attempt of a live ticket — are dropped, not returned or counted."""
    from repro.exec.pools import _OK

    executor = ThreadExecutor(1)
    try:
        executor.submit(0, echo_task, "warm")
        assert executor.drain() == ["warm"]
        # forge leftovers ahead of the next round: queue order puts
        # them in front of the real result
        executor._result_q.put((_OK, 99, 0, "ghost", 0))
        executor._result_q.put((_OK, 1, 7, "stale", 0))
        executor.submit(0, echo_task, "real")  # ticket 1, attempt 0
        assert executor.drain() == ["real"]
        assert executor.retries_done == 0
    finally:
        executor.close()


def test_death_after_report_never_duplicates(tmp_path):
    """A worker that enqueues its result and then dies: whether the
    drain consumes the result before or after noticing the death, each
    ticket yields exactly one outcome and later drains stay clean."""
    flag = str(tmp_path / "died.flag")
    executor = ProcessExecutor(1, task_retries=3)
    try:
        executor.submit(0, report_then_die_task, flag)
        assert executor.drain() == ["reported"]
        executor.submit(0, report_then_die_task, flag)
        assert executor.drain() == ["reported"]
    finally:
        executor.close()
