"""The serve-mixed perf workload and the carp-serve CLI: run-to-run
determinism, the committed baseline, and artifact production."""

from __future__ import annotations

import json

from repro.perf.cli import main as perf_main
from repro.perf.harness import run_workload
from repro.perf.workloads import WORKLOADS
from repro.tools.serve_cli import main as serve_main


class TestServeWorkload:
    def test_non_wall_metrics_deterministic(self):
        spec = WORKLOADS["serve-mixed"]
        first = {m.name: m for m in run_workload(spec).metrics}
        second = {m.name: m for m in run_workload(spec).metrics}
        for name, metric in first.items():
            if metric.kind == "wall":
                continue
            assert second[name].value == metric.value, name
        assert first["serve_requests"].value > 0
        # the mixed phase really exercised both cache outcomes and the
        # deadline phase really timed out
        assert first["serve_cache_hits"].value > 0
        assert first["serve_cache_misses"].value > 0
        assert first["serve_deadline_exceeded"].value > 0
        assert first["serve_rejected"].value == 0

    def test_committed_baseline_matches(self, capsys):
        """The checked-in results/baselines/serve-mixed.json must stay
        in sync with what the workload actually produces."""
        assert perf_main(["compare", "serve-mixed"]) == 0
        out = capsys.readouterr().out
        assert "serve_payload_digest" in out
        assert "serve_latency_p99" in out


class TestServeCli:
    def test_unknown_workload_exits_2(self, capsys):
        assert serve_main(["--workload", "ingest-serial"]) == 2
        assert "unknown serve workload" in capsys.readouterr().err

    def test_run_reports_and_persists_artifacts(self, tmp_path, capsys):
        out_dir = tmp_path / "obs"
        report_path = tmp_path / "serve-report.json"
        rc = serve_main([
            "--out", str(out_dir), "--json", str(report_path)
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "carp-serve: serve-mixed" in out
        assert "latency_p99" in out
        for artifact in ("metrics.json", "trace.json", "telemetry.jsonl"):
            assert (out_dir / artifact).is_file(), artifact
        doc = json.loads(report_path.read_text())
        assert doc["requests"] == doc["ok"] + doc["deadline_exceeded"]
        assert doc["errors"] == 0 and doc["rejected"] == 0
        assert doc["cache_hits"] + doc["cache_misses"] == doc["requests"]
        assert doc["engine_queries"] == doc["cache_misses"]
        assert doc["latency_p99"] >= doc["latency_p50"] > 0
        # the telemetry stream carries the serve histogram the health
        # policy's p99 rule gates on
        lines = [
            json.loads(line)
            for line in (out_dir / "telemetry.jsonl").read_text().splitlines()
        ]
        assert any(
            "serve.latency" in sample.get("histograms", {})
            for sample in lines
        )
