"""Snapshot pinning: tokens, epoch resolution, and survival of pinned
views across concurrent ingest (the ``_invalidate_views`` regression)."""

from __future__ import annotations

import pytest

from repro.api import Session
from repro.query.request import QueryRequest
from repro.storage.snapshot import pin_snapshot

from tests.serve.conftest import OPTIONS, TRACE, WIDE, streams


class TestPinning:
    def test_token_names_committed_bytes(self, db_dir):
        a = pin_snapshot(db_dir)
        b = pin_snapshot(db_dir)
        assert a.token == b.token
        assert a.epochs() == (0, 1)
        assert a.latest_epoch == 1
        assert a.total_records() == 2 * TRACE.nranks * TRACE.particles_per_rank

    def test_no_logs_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            pin_snapshot(tmp_path)

    def test_resolve_epoch(self, db_dir):
        snap = pin_snapshot(db_dir)
        assert snap.resolve_epoch(None) == 1
        assert snap.resolve_epoch(0) == 0
        with pytest.raises(ValueError, match="not committed"):
            snap.resolve_epoch(7)


class TestSessionSnapshots:
    def test_pin_advances_with_commits(self, tmp_path):
        with Session(TRACE.nranks, tmp_path / "db", OPTIONS) as session:
            session.ingest_epoch(0, streams(0))
            first = session.snapshot()
            assert first.epochs() == (0,)
            session.ingest_epoch(1, streams(1))
            second = session.snapshot()
            assert second.token != first.token
            assert second.epochs() == (0, 1)
            # the old pin is plain metadata; it still names epoch 0 only
            assert first.epochs() == (0,)

    def test_pinned_view_survives_ingest(self, tmp_path):
        """The regression ISSUE 8 fixes: ``_invalidate_views`` used to
        tear down every read view on ingest; pinned stores must survive
        and keep answering byte-identically."""
        lo, hi = WIDE
        with Session(TRACE.nranks, tmp_path / "db", OPTIONS) as session:
            session.ingest_epoch(0, streams(0))
            snap = session.snapshot()
            pinned = session.store(snapshot=snap)
            before = session.query(
                QueryRequest(lo=lo, hi=hi), snapshot=snap
            )
            session.ingest_epoch(1, streams(1))  # runs _invalidate_views
            # same object, not a re-opened one: the view was not torn down
            assert session.store(snapshot=snap) is pinned
            after = session.query(
                QueryRequest(lo=lo, hi=hi), snapshot=snap
            )
            assert after.payload() == before.payload()
            assert after.snapshot_token == snap.token

    def test_snapshot_isolation_from_later_epochs(self, tmp_path):
        lo, hi = WIDE
        with Session(TRACE.nranks, tmp_path / "db", OPTIONS) as session:
            session.ingest_epoch(0, streams(0))
            snap = session.snapshot()
            session.ingest_epoch(1, streams(1))
            # epoch-or-latest on the pin resolves to the pinned newest
            resp = session.query(QueryRequest(lo=lo, hi=hi), snapshot=snap)
            assert resp.epoch == 0
            with pytest.raises(ValueError, match="not committed"):
                session.query(
                    QueryRequest(lo=lo, hi=hi, epoch=1), snapshot=snap
                )
            # the live view does see the new epoch
            assert session.query(QueryRequest(lo=lo, hi=hi)).epoch == 1

    def test_release_closes_pinned_view(self, tmp_path):
        lo, hi = WIDE
        with Session(TRACE.nranks, tmp_path / "db", OPTIONS) as session:
            session.ingest_epoch(0, streams(0))
            snap = session.snapshot()
            pinned = session.store(snapshot=snap)
            session.release(snapshot=snap)
            assert session.store(snapshot=snap) is not pinned
            # releasing an unopened snapshot is a no-op
            session.release(snapshot=session.snapshot())
            session.query(QueryRequest(lo=lo, hi=hi), snapshot=snap)
