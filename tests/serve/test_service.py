"""QueryService: admission, fairness, single-flight cache, deadlines,
cross-backend byte-identity under concurrent ingest, and the
deterministic close-time observability merge."""

from __future__ import annotations

import re
import threading

import pytest

from repro.api import Session
from repro.exec import ProcessExecutor, SerialExecutor, ThreadExecutor
from repro.query.engine import LATENCY_BOUNDS
from repro.query.request import (
    STATUS_DEADLINE_EXCEEDED,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_REJECTED,
    QueryRequest,
)
from repro.query.service import QueryService

from tests.serve.conftest import OPTIONS, TRACE, WIDE, streams

CLIENTS = 8


def _window(client: int, q: int, phase: int = 0) -> tuple[float, float]:
    """Distinct (client, q, phase) windows: no accidental cache sharing."""
    lo = 0.1 + client * 0.31 + q * 0.07 + phase * 0.011
    return lo, lo + 0.5


def _run_clients(service, per_client):
    responses = {}
    guard = threading.Lock()

    def loop(name, requests):
        mine = [service.query(r) for r in requests]
        with guard:
            responses[name] = mine

    threads = [
        threading.Thread(target=loop, args=(name, reqs))
        for name, reqs in per_client.items()
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return responses


class TestAdmission:
    def test_submit_and_result(self, db_dir):
        lo, hi = WIDE
        with QueryService(db_dir, workers=2) as service:
            handle = service.submit(QueryRequest(lo=lo, hi=hi))
            assert re.fullmatch(r"query-\d{6}", handle.request_id)
            resp = handle.result()
            assert resp.ok and resp.epoch == 1 and len(resp) > 0
            assert resp.request_id == handle.request_id
            assert resp.snapshot_token == service.snapshot.token

    def test_invalid_request_raises_at_submit(self, db_dir):
        with QueryService(db_dir, workers=1) as service:
            with pytest.raises(ValueError, match="empty query range"):
                service.submit(QueryRequest(lo=2.0, hi=1.0))

    def test_submit_after_close_raises(self, db_dir):
        service = QueryService(db_dir, workers=1)
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.submit(QueryRequest(lo=0.0, hi=1.0))
        service.close()  # idempotent

    def test_overload_rejects_immediately(self, db_dir):
        lo, hi = WIDE
        service = QueryService(
            db_dir, workers=1, max_pending=2, autostart=False
        )
        admitted = [
            service.submit(QueryRequest(lo=lo + i, hi=hi)) for i in range(2)
        ]
        overflow = service.submit(QueryRequest(lo=lo + 9.0, hi=hi))
        # rejected synchronously, while the admitted two are still queued
        assert overflow.done()
        resp = overflow.result()
        assert resp.status == STATUS_REJECTED
        assert resp.epoch == -1 and len(resp) == 0
        assert "admission queue full" in resp.detail
        assert not admitted[0].done()
        service.close()  # a paused service still answers what it admitted
        assert all(h.result().ok for h in admitted)
        stats = service.stats
        assert stats.submitted == 3
        assert stats.rejected == 1 and stats.ok == 2

    def test_result_timeout_on_paused_service(self, db_dir):
        service = QueryService(db_dir, workers=1, autostart=False)
        handle = service.submit(QueryRequest(lo=WIDE[0], hi=WIDE[1]))
        with pytest.raises(TimeoutError):
            handle.result(timeout=0.05)
        service.close()
        assert handle.result().ok

    def test_drain_waits_for_all_admitted(self, db_dir):
        lo, hi = WIDE
        with QueryService(db_dir, workers=2) as service:
            handles = [
                service.submit(QueryRequest(lo=lo + i, hi=hi))
                for i in range(6)
            ]
            service.drain()
            assert all(h.done() for h in handles)


class TestFairness:
    def test_round_robin_interleaves_a_hog(self, db_dir):
        """One victim request behind a 6-deep hog backlog is served
        second, not seventh: dispatch is round-robin per client."""
        lo, hi = WIDE
        service = QueryService(db_dir, workers=1, autostart=False)
        for i in range(6):
            service.submit(
                QueryRequest(lo=lo + i, hi=hi, client="hog")
            )
        victim = service.submit(
            QueryRequest(lo=lo, hi=hi, client="victim")
        )
        service.close()  # drains with the single worker
        assert victim.result().ok
        order = [client for _, client, _ in service.served_log]
        assert order[0] == "hog"
        assert order[1] == "victim"
        assert order[2:] == ["hog"] * 5


class TestCache:
    def test_single_flight_coalesces_duplicates(self, db_dir):
        """Five concurrent identical requests: exactly one engine
        execution, whatever the worker timing."""
        lo, hi = WIDE
        service = QueryService(db_dir, workers=3, autostart=False)
        handles = [
            service.submit(QueryRequest(lo=lo, hi=hi)) for _ in range(5)
        ]
        service.start()
        responses = [h.result() for h in handles]
        service.close()
        assert all(r.ok for r in responses)
        assert len({r.payload() for r in responses}) == 1
        assert sum(1 for r in responses if not r.cached) == 1
        stats = service.stats
        assert stats.cache_misses == 1 and stats.cache_hits == 4
        assert stats.engine_queries == 1

    def test_eviction_keeps_cache_bounded(self, db_dir):
        lo, _ = WIDE
        with QueryService(db_dir, workers=1, cache_capacity=2) as service:
            for i in range(5):
                assert service.query(
                    QueryRequest(lo=lo + i, hi=lo + i + 0.5)
                ).ok
            # re-issuing the newest entry hits; the evicted oldest misses
            assert service.query(
                QueryRequest(lo=lo + 4, hi=lo + 4 + 0.5)
            ).cached
            assert not service.query(
                QueryRequest(lo=lo, hi=lo + 0.5)
            ).cached
            assert service.stats.engine_queries == 6

    def test_uncommitted_epoch_is_an_error_response(self, db_dir):
        with QueryService(db_dir, workers=1) as service:
            resp = service.query(
                QueryRequest(lo=WIDE[0], hi=WIDE[1], epoch=7)
            )
            assert resp.status == STATUS_ERROR
            assert "not committed" in resp.detail
            assert service.stats.errors == 1
            # errors never enter the cache or the hit/miss counters
            assert service.stats.cache_misses == 0


class TestDeadline:
    def test_deadline_exceeded_is_deterministic(self, db_dir):
        with QueryService(db_dir, workers=2) as service:
            timed_out = [
                service.query(
                    QueryRequest(lo=WIDE[0], hi=WIDE[1], deadline=1e-9)
                )
                for _ in range(3)
            ]
            fine = service.query(
                QueryRequest(lo=WIDE[0], hi=WIDE[1], deadline=1e9)
            )
        assert fine.ok and len(fine) > 0
        for resp in timed_out:
            assert resp.status == STATUS_DEADLINE_EXCEEDED
            assert len(resp) == 0
            assert resp.cost is not None and resp.cost.latency > 1e-9
        assert service.stats.deadline_exceeded == 3


class TestInvalidation:
    def test_epoch_commit_advances_the_snapshot(self, tmp_path):
        lo, hi = WIDE
        with Session(TRACE.nranks, tmp_path / "db", OPTIONS) as session:
            session.ingest_epoch(0, streams(0))
            service = session.serve(workers=2)
            before = service.query(QueryRequest(lo=lo, hi=hi))
            assert before.epoch == 0
            token_before = service.snapshot.token
            session.ingest_epoch(1, streams(1))
            after = service.query(QueryRequest(lo=lo, hi=hi))
            assert after.epoch == 1
            assert service.snapshot.token != token_before
            assert after.snapshot_token != before.snapshot_token
            # the same epoch-0 answer is still servable and identical
            # (its cache key carried the old token, so this re-executes)
            again = service.query(QueryRequest(lo=lo, hi=hi, epoch=0))
            assert again.payload() == before.payload()
            assert service.stats.invalidations == 1


class _Backends:
    @staticmethod
    def make(backend: str):
        if backend == "serial":
            return SerialExecutor()
        if backend == "thread":
            return ThreadExecutor(3)
        return ProcessExecutor(2)


class TestConcurrentIngestIdentity:
    """The acceptance criterion: a mixed workload — ingest interleaved
    with >= 8 concurrent clients — returns byte-identical payloads vs
    a serial post-hoc run against the matching committed epochs, on
    all three executor backends."""

    def _mixed_run(self, backend: str, out_dir):
        with _Backends.make(backend) as executor:
            with Session(
                TRACE.nranks, out_dir, OPTIONS, executor=executor
            ) as session:
                session.ingest_epoch(0, streams(0))
                service = session.serve(workers=3)
                ingest = threading.Thread(
                    target=session.ingest_epoch, args=(1, streams(1))
                )
                ingest.start()
                per_client = {
                    f"client-{c}": [
                        QueryRequest(
                            lo=_window(c, q)[0], hi=_window(c, q)[1],
                            epoch=0, client=f"client-{c}",
                        )
                        for q in range(3)
                    ]
                    for c in range(CLIENTS)
                }
                responses = _run_clients(service, per_client)
                ingest.join()
                service.close()
                flat = [r for rs in responses.values() for r in rs]
                assert len(flat) == CLIENTS * 3
                assert all(r.ok for r in flat)
                # serial post-hoc replay through the session (epoch 0
                # bytes are immutable, so "the matching committed
                # snapshot" is simply the epoch itself)
                for resp in flat:
                    replay = session.query(
                        QueryRequest(lo=resp.lo, hi=resp.hi, epoch=0)
                    )
                    assert resp.payload() == replay.payload()
                return sorted(r.digest() for r in flat)

    def test_payloads_identical_across_backends(self, tmp_path):
        digests = {
            backend: self._mixed_run(backend, tmp_path / backend)
            for backend in ("serial", "thread", "process")
        }
        assert digests["serial"] == digests["thread"] == digests["process"]


class TestObservabilityMerge:
    def _served_session(self, out_dir):
        """A deterministic served pattern with a known hit/miss split:
        per client, 2 distinct misses + 1 repeat hit (closed loop)."""
        with Session(
            TRACE.nranks, out_dir, OPTIONS, record=True
        ) as session:
            session.ingest_epoch(0, streams(0))
            service = session.serve(workers=3)
            per_client = {}
            for c in range(CLIENTS):
                reqs = [
                    QueryRequest(
                        lo=_window(c, q)[0], hi=_window(c, q)[1],
                        client=f"client-{c:02d}",
                    )
                    for q in range(2)
                ]
                per_client[f"client-{c:02d}"] = reqs + [reqs[0]]
            responses = _run_clients(service, per_client)
            service.close()
            return session, service, responses

    def test_counters_reconcile_exactly_with_engine_stats(self, tmp_path):
        session, service, _ = self._served_session(tmp_path / "db")
        stats = service.stats
        assert stats.submitted == CLIENTS * 3
        assert stats.ok == CLIENTS * 3
        assert stats.cache_misses == CLIENTS * 2
        assert stats.cache_hits == CLIENTS
        # misses are engine executions, nothing else is
        assert stats.engine_queries == stats.cache_misses
        metrics = session.obs.metrics
        # the merged engine histogram holds exactly one observation per
        # engine execution; the serve histogram one per answered request
        assert metrics.histogram(
            "query.latency", LATENCY_BOUNDS
        ).count == stats.engine_queries
        assert metrics.histogram(
            "serve.latency", LATENCY_BOUNDS
        ).count == stats.ok
        counters = metrics.snapshot()["counters"]
        assert counters["serve.requests"] == stats.submitted
        assert counters["serve.ok"] == stats.ok
        assert counters["serve.cache_hits"] == stats.cache_hits
        assert counters["serve.cache_misses"] == stats.cache_misses
        assert counters["serve.rejected"] == 0
        assert counters["serve.errors"] == 0
        # merged worker counters stay integers (render like serial runs)
        assert isinstance(counters["query.read_requests"], int)

    def test_request_ids_flow_into_the_merged_trace(self, tmp_path):
        session, service, responses = self._served_session(tmp_path / "db")
        ids = {
            r.request_id for rs in responses.values() for r in rs
        }
        assert len(ids) == CLIENTS * 3
        assert all(re.fullmatch(r"query-\d{6}", i) for i in ids)
        events = session.obs.tracer.to_doc()["traceEvents"]
        serve_spans = [
            e for e in events
            if e.get("name") == "serve"
            and isinstance(e.get("args"), dict)
        ]
        assert {e["args"]["request"] for e in serve_spans} == ids
        by_id = {e["args"]["request"]: e["args"] for e in serve_spans}
        for rs in responses.values():
            for r in rs:
                assert by_id[r.request_id]["status"] == STATUS_OK
                assert by_id[r.request_id]["cached"] == r.cached

    def test_merge_is_interleaving_independent(self, tmp_path):
        """Two runs of the same served pattern produce the same merged
        serve spans and counters, whatever the worker timing was.

        Request ids are deliberately left out of the fingerprint: they
        are minted in admission order, which *is* submission-
        interleaving dependent; everything the merge keys on
        ``(client, sequence)`` — timeline, duration, cache flag,
        window — must not be."""

        def fingerprint(out_dir):
            session, service, _ = self._served_session(out_dir)
            events = session.obs.tracer.to_doc()["traceEvents"]
            spans = sorted(
                (e["args"]["client"], e.get("ts"), e.get("dur"),
                 e["args"]["cached"], e["args"]["status"],
                 e["args"]["lo"], e["args"]["hi"])
                for e in events
                if e.get("name") == "serve"
                and isinstance(e.get("args"), dict)
            )
            counters = session.obs.metrics.snapshot()["counters"]
            return spans, {
                k: v for k, v in counters.items()
                if k.startswith(("serve.", "query."))
            }

        assert fingerprint(tmp_path / "a") == fingerprint(tmp_path / "b")


class TestExplainIds:
    def test_explain_mints_traceable_request_ids(self, tmp_path):
        lo, hi = WIDE
        with Session(
            TRACE.nranks, tmp_path / "db", OPTIONS, record=True
        ) as session:
            session.ingest_epoch(0, streams(0))
            report = session.explain(QueryRequest(lo=lo, hi=hi))
            resp = session.query(QueryRequest(lo=lo, hi=hi))
            # EXPLAIN reconciles exactly against the executed cost
            assert resp.cost is not None
            assert report.cost == resp.cost
            events = session.obs.tracer.to_doc()["traceEvents"]
            explain_spans = [
                e for e in events
                if e.get("name") == "explain"
                and isinstance(e.get("args"), dict)
            ]
            assert [e["args"]["request"] for e in explain_spans] == [
                "explain-000001"
            ]

    def test_legacy_positional_spread_still_works(self, tmp_path):
        lo, hi = WIDE
        with Session(TRACE.nranks, tmp_path / "db", OPTIONS) as session:
            session.ingest_epoch(0, streams(0))
            legacy = session.query(0, lo, hi)
            typed = session.query(QueryRequest(lo=lo, hi=hi, epoch=0))
            assert legacy.payload() == typed.payload()
            legacy_explain = session.explain(0, lo, hi)
            assert legacy_explain.cost == legacy.cost
            with pytest.raises(TypeError, match="not both"):
                session.query(QueryRequest(lo=lo, hi=hi), lo=lo, hi=hi)
