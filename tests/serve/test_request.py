"""QueryRequest/QueryResponse value semantics: validation, payload
canonicalisation, and virtual-time deadline application."""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro.query.request import (
    LIVE_TOKEN,
    STATUS_DEADLINE_EXCEEDED,
    STATUS_OK,
    QueryRequest,
    QueryResponse,
    response_from_result,
)


def _result(latency: float = 0.25):
    """A QueryResult stand-in (the wrapper is duck-typed)."""
    return SimpleNamespace(
        epoch=0,
        keys=np.array([1.0, 2.0, 3.0], dtype=np.float32),
        rids=np.array([7, 8, 9], dtype=np.uint64),
        cost=SimpleNamespace(latency=latency),
    )


class TestValidation:
    def test_defaults(self):
        req = QueryRequest(lo=0.0, hi=1.0)
        req.validate()
        assert req.epoch is None
        assert req.client == "default"
        assert req.deadline is None
        assert not req.keys_only

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError, match="empty query range"):
            QueryRequest(lo=2.0, hi=1.0).validate()

    def test_non_numeric_bounds_rejected(self):
        with pytest.raises(ValueError, match="must be numbers"):
            QueryRequest(lo="a", hi=1.0).validate()  # type: ignore[arg-type]

    def test_nonpositive_deadline_rejected(self):
        with pytest.raises(ValueError, match="deadline must be positive"):
            QueryRequest(lo=0.0, hi=1.0, deadline=0.0).validate()

    def test_empty_client_rejected(self):
        with pytest.raises(ValueError, match="client id"):
            QueryRequest(lo=0.0, hi=1.0, client="").validate()


class TestResponse:
    def test_result_compatibility_surface(self):
        resp = response_from_result(
            QueryRequest(lo=0.5, hi=3.5, keys_only=True),
            "query-000001", LIVE_TOKEN, _result(),
        )
        assert resp.ok and resp.status == STATUS_OK
        assert len(resp) == 3
        assert (resp.lo, resp.hi, resp.keys_only) == (0.5, 3.5, True)
        assert resp.epoch == 0
        assert resp.cost is not None and resp.cost.latency == 0.25

    def test_payload_excludes_serving_metadata(self):
        """Same logical answer -> same bytes, whatever the envelope.

        request id, cache flag, snapshot token, and client id all vary
        legitimately between executions of the same query; none may
        leak into the canonical payload (the byte-identity contract).
        """
        base = dict(
            status=STATUS_OK, epoch=1,
            keys=np.array([4.0], dtype=np.float32),
            rids=np.array([11], dtype=np.uint64),
        )
        a = QueryResponse(
            request=QueryRequest(lo=0.0, hi=9.0, client="alice"),
            request_id="query-000001", snapshot_token="aaaa", **base,
        )
        b = QueryResponse(
            request=QueryRequest(lo=0.0, hi=9.0, client="bob"),
            request_id="query-000417", snapshot_token="bbbb",
            cached=True, **base,
        )
        assert a.payload() == b.payload()
        assert a.digest() == b.digest()

    def test_payload_covers_the_answer(self):
        a = response_from_result(
            QueryRequest(lo=0.0, hi=9.0), "q", LIVE_TOKEN, _result()
        )
        other = _result()
        other.keys = np.array([1.0, 2.0, 4.0], dtype=np.float32)
        b = response_from_result(
            QueryRequest(lo=0.0, hi=9.0), "q", LIVE_TOKEN, other
        )
        assert a.payload() != b.payload()


class TestDeadline:
    def test_within_budget_is_ok(self):
        resp = response_from_result(
            QueryRequest(lo=0.0, hi=1.0, deadline=1.0),
            "q", LIVE_TOKEN, _result(latency=0.25),
        )
        assert resp.ok and len(resp) == 3

    def test_exceeded_budget_empties_payload_keeps_cost(self):
        resp = response_from_result(
            QueryRequest(lo=0.0, hi=1.0, deadline=0.1),
            "q", LIVE_TOKEN, _result(latency=0.25),
        )
        assert resp.status == STATUS_DEADLINE_EXCEEDED
        assert not resp.ok
        assert len(resp) == 0 and len(resp.rids) == 0
        # the probe ran; its cost stays visible for the histograms
        assert resp.cost is not None and resp.cost.latency == 0.25
        assert "deadline" in resp.detail
