"""Shared fixtures for the serving-plane tests: one small ingested DB.

The standalone :class:`~repro.query.service.QueryService` tests only
need a directory of committed logs, so it is built once per module;
tests that exercise live ``Session`` behaviour (snapshot pinning
across ingest, the serve plane under a concurrent writer) build their
own sessions from the same trace.
"""

from __future__ import annotations

import pytest

from repro.api import Session
from repro.core.config import CarpOptions
from repro.traces.vpic import VpicTraceSpec, generate_timestep

OPTIONS = CarpOptions(
    pivot_count=32,
    oob_capacity=32,
    renegotiations_per_epoch=3,
    memtable_records=256,
    round_records=128,
    value_size=8,
)

TRACE = VpicTraceSpec(nranks=4, particles_per_rank=300, value_size=8, seed=7)

#: A window wide enough to match every key the trace generates.
WIDE = (0.0, 1.0e9)


def streams(epoch: int):
    return generate_timestep(TRACE, epoch)


@pytest.fixture(scope="module")
def db_dir(tmp_path_factory):
    """Two committed epochs, ingested serially, session closed."""
    out = tmp_path_factory.mktemp("serve-db") / "db"
    with Session(TRACE.nranks, out, OPTIONS) as session:
        session.ingest_epoch(0, streams(0))
        session.ingest_epoch(1, streams(1))
    return out
