"""Tests for the LSM-tree baseline (Table I's "DB indexes" row)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.lsm import LSMTree, ingestion_throughput
from repro.core.records import RecordBatch


def batch(keys, rank=0, seq=0):
    keys = np.asarray(keys, dtype=np.float32)
    from repro.core.records import make_rids

    return RecordBatch(keys, make_rids(rank, seq, len(keys)), 8)


def filled_tree(n=20_000, sst_records=512, seed=0, **kw):
    rng = np.random.default_rng(seed)
    tree = LSMTree(sst_records=sst_records, value_size=8, **kw)
    keys = rng.lognormal(size=n).astype(np.float32)
    step = 1000
    for i in range(0, n, step):
        tree.insert(batch(keys[i : i + step], seq=i))
    tree.flush()
    return tree, keys


class TestStructure:
    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            LSMTree(sst_records=0)
        with pytest.raises(ValueError):
            LSMTree(growth_factor=1)

    def test_no_records_lost(self):
        tree, keys = filled_tree(5000)
        assert tree.total_records == 5000

    def test_levels_key_disjoint(self):
        tree, _ = filled_tree(20_000)
        tree.check_invariants()

    def test_compactions_happen(self):
        tree, _ = filled_tree(20_000)
        assert tree.stats.compactions > 0
        assert len(tree.levels) >= 2
        assert tree.stats.bytes_written > tree.stats.user_bytes

    def test_value_size_enforced(self):
        tree = LSMTree(value_size=8)
        bad = RecordBatch.from_keys(np.ones(1, np.float32), value_size=16)
        with pytest.raises(ValueError):
            tree.insert(bad)

    def test_flush_drains_memtable(self):
        tree = LSMTree(sst_records=1000, value_size=8)
        tree.insert(batch([1.0, 2.0]))
        tree.flush()
        assert tree._mem_count == 0
        assert tree.total_records == 2


class TestWriteAmplification:
    def test_waf_well_above_one(self):
        """The paper's point: online leveled compaction re-writes data
        many times (measured 19-37x for real stores; our compact tree
        with a small growth factor lands lower but clearly > 2x)."""
        tree, _ = filled_tree(40_000, sst_records=256, growth_factor=3)
        waf = tree.stats.write_amplification
        assert waf > 2.0

    def test_waf_grows_with_data(self):
        small, _ = filled_tree(4_000, sst_records=256)
        large, _ = filled_tree(64_000, sst_records=256)
        assert large.stats.write_amplification > small.stats.write_amplification

    def test_waf_at_least_one(self):
        tree, _ = filled_tree(1000, sst_records=512)
        assert tree.stats.write_amplification >= 1.0

    def test_throughput_model(self):
        assert ingestion_throughput(10.0, 3e9) == pytest.approx(3e8)
        with pytest.raises(ValueError):
            ingestion_throughput(0, 1)


class TestQueries:
    def test_equivalence_with_brute_force(self):
        tree, keys = filled_tree(20_000)
        for lo, hi in [(0.5, 1.5), (0.0, 100.0), (2.0, 2.01)]:
            got_keys, got_rids, _ = tree.query(lo, hi)
            expect = np.count_nonzero((keys >= lo) & (keys <= hi))
            assert len(got_rids) == expect
            assert np.all(np.diff(got_keys) >= 0)

    def test_query_includes_memtable(self):
        tree = LSMTree(sst_records=1000, value_size=8)
        tree.insert(batch([5.0]))
        got, _, _ = tree.query(4.0, 6.0)
        assert got.tolist() == [5.0]

    def test_efficient_vs_scan(self):
        """A selective LSM range query reads a small fraction of data."""
        tree, keys = filled_tree(50_000, sst_records=512)
        lo, hi = np.quantile(keys, [0.49, 0.51])
        _, _, latency = tree.query(float(lo), float(hi))
        _, _, scan_latency = tree.query(float(keys.min()), float(keys.max()))
        assert latency < scan_latency / 5

    def test_invalid_range(self):
        tree, _ = filled_tree(1000)
        with pytest.raises(ValueError):
            tree.query(2.0, 1.0)

    @given(st.lists(st.floats(0, 100, width=32), min_size=1, max_size=400),
           st.floats(0, 50), st.floats(0, 50))
    @settings(max_examples=30, deadline=None)
    def test_query_property(self, values, a, b):
        lo, hi = min(a, b), max(a, b)
        tree = LSMTree(sst_records=64, level0_ssts=2, value_size=8)
        keys = np.array(values, dtype=np.float32)
        tree.insert(batch(keys))
        tree.flush()
        tree.check_invariants()
        got_keys, got_rids, _ = tree.query(lo, hi)
        from repro.core.records import range_mask

        expect = int(np.count_nonzero(range_mask(keys, lo, hi)))
        assert len(got_rids) == expect
