"""Tests for the FastQuery bitmap-index baseline."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.fastquery import (
    BitmapIndex,
    RunLengthBitmap,
    ingestion_throughput,
)
from repro.core.records import RecordBatch


class TestRunLengthBitmap:
    def test_single_run(self):
        bm = RunLengthBitmap.from_positions(np.array([3, 4, 5]))
        assert len(bm.starts) == 1
        assert bm.count == 3
        assert bm.positions().tolist() == [3, 4, 5]

    def test_multiple_runs(self):
        bm = RunLengthBitmap.from_positions(np.array([1, 2, 10, 11, 20]))
        assert len(bm.starts) == 3
        assert bm.positions().tolist() == [1, 2, 10, 11, 20]

    def test_empty(self):
        bm = RunLengthBitmap.from_positions(np.array([]))
        assert bm.count == 0
        assert len(bm.positions()) == 0
        assert bm.nbytes == 0

    def test_unsorted_input_handled(self):
        bm = RunLengthBitmap.from_positions(np.array([5, 3, 4]))
        assert bm.positions().tolist() == [3, 4, 5]

    def test_compression_wins_on_runs(self):
        dense = RunLengthBitmap.from_positions(np.arange(10_000))
        assert dense.nbytes == 8  # one run

    def test_scattered_positions_cost_more(self):
        scattered = RunLengthBitmap.from_positions(np.arange(0, 2000, 2))
        assert scattered.nbytes == 8 * 1000

    @given(st.lists(st.integers(0, 500), max_size=200, unique=True))
    @settings(max_examples=50)
    def test_roundtrip_property(self, positions):
        bm = RunLengthBitmap.from_positions(np.array(positions, dtype=np.int64))
        assert bm.positions().tolist() == sorted(positions)
        assert bm.count == len(positions)


def make_index(n=5000, nbins=64, seed=0):
    rng = np.random.default_rng(seed)
    keys = rng.lognormal(size=n).astype(np.float32)
    rids = np.arange(n, dtype=np.uint64)
    return BitmapIndex(keys, rids, nbins=nbins, record_size=60), keys, rids


class TestBitmapIndex:
    def test_query_equivalence(self):
        idx, keys, rids = make_index()
        for lo, hi in [(0.5, 1.5), (0.0, 100.0), (2.0, 2.1)]:
            got_keys, got_rids, _ = idx.query(lo, hi)
            mask = (keys >= lo) & (keys <= hi)
            assert set(got_rids.tolist()) == set(rids[mask].tolist())
            assert np.all(np.diff(got_keys) >= 0)

    def test_empty_result(self):
        idx, keys, _ = make_index()
        _, rids, cost = idx.query(keys.max() + 10, keys.max() + 20)
        assert len(rids) == 0

    def test_invalid_range(self):
        idx, _, _ = make_index()
        with pytest.raises(ValueError):
            idx.query(5.0, 1.0)

    def test_quantile_binning_balances_bins(self):
        idx, _, _ = make_index(nbins=32)
        counts = [bm.count for bm in idx.bitmaps.values()]
        assert max(counts) < 4 * min(counts)

    def test_space_overhead_reasonable(self):
        """Paper: FastQuery takes ~24% extra space for one attribute."""
        idx, _, _ = make_index(n=20_000, nbins=1024)
        assert 0.02 < idx.space_overhead < 0.6

    def test_cost_random_reads_dominate(self):
        idx, keys, _ = make_index()
        lo, hi = np.quantile(keys, [0.4, 0.6])
        _, rids, cost = idx.query(float(lo), float(hi))
        assert cost.rows_retrieved == len(rids)
        assert cost.retrieval_bytes == len(rids) * 60
        assert cost.latency > 0

    def test_edge_bins_checked(self):
        idx, keys, _ = make_index()
        lo = float(np.quantile(keys, 0.31))  # lands inside a bin
        hi = float(np.quantile(keys, 0.52))
        _, _, cost = idx.query(lo, hi)
        assert cost.candidate_checks > 0

    def test_from_streams(self):
        streams = [
            RecordBatch.from_keys(
                np.random.default_rng(r).random(100).astype(np.float32),
                rank=r, value_size=8,
            )
            for r in range(3)
        ]
        idx = BitmapIndex.from_streams(streams, nbins=16)
        assert len(idx.keys) == 300

    def test_validation(self):
        with pytest.raises(ValueError):
            BitmapIndex(np.array([], np.float32), np.array([], np.uint64))
        with pytest.raises(ValueError):
            BitmapIndex(np.ones(3, np.float32), np.arange(3, dtype=np.uint64),
                        nbins=1)

    def test_identical_keys_degenerate(self):
        idx = BitmapIndex(np.full(100, 2.0, np.float32),
                          np.arange(100, dtype=np.uint64), nbins=16)
        _, rids, _ = idx.query(1.0, 3.0)
        assert len(rids) == 100


class TestIngestionModel:
    def test_slowdown_near_paper(self):
        """Paper: FastQuery's effective throughput is ~2.8x below raw."""
        raw = 3e9
        eff = ingestion_throughput(188e9, raw)
        slowdown = raw / eff
        assert 2.0 < slowdown < 3.5

    def test_scales_with_overhead(self):
        lean = ingestion_throughput(1e9, 1e9, space_overhead=0.0)
        fat = ingestion_throughput(1e9, 1e9, space_overhead=1.0)
        assert lean > fat
