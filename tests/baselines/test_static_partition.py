"""Tests for the static/oracle partitioning study (Fig. 9, Fig. 10b)."""

import numpy as np
import pytest

from repro.baselines.static_partition import (
    evaluate_fit,
    exact_partition_table,
    oracle_partition_table,
    pivot_lossiness_study,
    static_partitioning_study,
)
from repro.traces.vpic import VpicTraceSpec, timestep_keys

SPEC = VpicTraceSpec(nranks=4, particles_per_rank=4000, seed=7)


@pytest.fixture(scope="module")
def ts_keys():
    return [timestep_keys(SPEC, i) for i in range(SPEC.ntimesteps)]


class TestOracleTable:
    def test_fits_own_timestep_well(self, ts_keys):
        table = oracle_partition_table(ts_keys[0], nparts=16, pivot_count=512)
        assert evaluate_fit(table, ts_keys[0]) < 0.1

    def test_exact_table_fits_best(self, ts_keys):
        exact = exact_partition_table(ts_keys[0], 16)
        assert evaluate_fit(exact, ts_keys[0]) < 0.02

    def test_oracle_close_to_exact(self, ts_keys):
        oracle = oracle_partition_table(ts_keys[0], 16, pivot_count=1024,
                                        hist_bins=256)
        exact = exact_partition_table(ts_keys[0], 16)
        assert evaluate_fit(oracle, ts_keys[0]) <= evaluate_fit(exact, ts_keys[0]) + 0.15

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            exact_partition_table(np.array([]), 4)


class TestEvaluateFit:
    def test_clamps_out_of_range_keys(self, ts_keys):
        table = oracle_partition_table(ts_keys[0], 8)
        shifted = ts_keys[0] * 100.0  # way outside the table
        fit = evaluate_fit(table, shifted)
        assert np.isfinite(fit)
        assert fit > 0.5  # everything piles into the last partition


class TestFig9Study:
    def test_series_shapes(self, ts_keys):
        study = static_partitioning_study(ts_keys, nparts=16)
        n = len(ts_keys)
        assert len(study["from_first"]) == n
        assert len(study["from_previous"]) == n
        assert len(study["from_current"]) == n

    def test_from_current_is_lower_bound(self, ts_keys):
        """Fig. 9: current-timestep tables fit best (by definition)."""
        study = static_partitioning_study(ts_keys, nparts=16)
        for i in range(len(ts_keys)):
            assert study["from_current"][i] <= study["from_first"][i] + 1e-9
            assert study["from_current"][i] <= study["from_previous"][i] + 1e-9

    def test_static_degrades_over_time(self, ts_keys):
        """Fig. 9: the static (from-first) scheme's balance worsens as
        the distribution drifts."""
        study = static_partitioning_study(ts_keys, nparts=16)
        early = np.mean(study["from_first"][:3])
        late = np.mean(study["from_first"][-3:])
        assert late > 2 * early

    def test_previous_beats_first_late_in_run(self, ts_keys):
        study = static_partitioning_study(ts_keys, nparts=16)
        late = slice(len(ts_keys) // 2, None)
        assert np.mean(np.array(study["from_previous"])[late]) < np.mean(
            np.array(study["from_first"])[late]
        )

    def test_single_timestep(self, ts_keys):
        study = static_partitioning_study(ts_keys[:1], nparts=8)
        assert len(study["from_first"]) == 1


class TestFig10bStudy:
    def test_more_pivots_less_loss(self, ts_keys):
        study = pivot_lossiness_study(ts_keys[:4], nparts=16,
                                      pivot_counts=(16, 256))
        assert np.mean(study[256]) < np.mean(study[16])

    def test_diminishing_returns(self, ts_keys):
        """Fig. 10b: gains diminish beyond ~256 pivots."""
        study = pivot_lossiness_study(ts_keys[:4], nparts=16,
                                      pivot_counts=(16, 256, 2048))
        gain_low = np.mean(study[16]) - np.mean(study[256])
        gain_high = np.mean(study[256]) - np.mean(study[2048])
        assert gain_low > gain_high

    def test_late_timesteps_harder(self, ts_keys):
        """Fig. 10b: extremely skewed late timesteps need more pivots."""
        study = pivot_lossiness_study(ts_keys, nparts=16, pivot_counts=(64,))
        early = np.mean(study[64][:3])
        late = np.mean(study[64][-2:])
        assert late > early
