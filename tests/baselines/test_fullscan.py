"""Tests for the unpartitioned layout and full-scan baseline."""

import numpy as np
import pytest

from repro.baselines.fullscan import full_scan_query, write_unpartitioned
from repro.core.records import RecordBatch
from repro.query.engine import PartitionedStore


def streams(nranks=3, n=400, seed=0):
    rng = np.random.default_rng(seed)
    return [
        RecordBatch.from_keys(rng.random(n).astype(np.float32), rank=r,
                              value_size=8)
        for r in range(nranks)
    ]


class TestWriteUnpartitioned:
    def test_one_log_per_rank(self, tmp_path):
        write_unpartitioned(tmp_path, 0, streams())
        from repro.storage.log import list_logs

        assert len(list_logs(tmp_path)) == 3

    def test_arrival_order_preserved(self, tmp_path):
        s = streams(1, 50)
        write_unpartitioned(tmp_path, 0, s, sst_records=50)
        from repro.storage.log import LogReader, list_logs

        with LogReader(list_logs(tmp_path)[0]) as r:
            batch = r.read_sst(r.entries[0])
        assert np.array_equal(batch.keys, s[0].keys)

    def test_sst_chunking(self, tmp_path):
        write_unpartitioned(tmp_path, 0, streams(1, 100), sst_records=30)
        from repro.storage.log import LogReader, list_logs

        with LogReader(list_logs(tmp_path)[0]) as r:
            assert [e.count for e in r.entries] == [30, 30, 30, 10]


class TestFullScan:
    def test_scan_reads_everything(self, tmp_path):
        s = streams()
        write_unpartitioned(tmp_path, 0, s)
        res = full_scan_query(tmp_path, 0, 0.4, 0.6)
        with PartitionedStore(tmp_path) as store:
            assert res.cost.bytes_read == store.total_bytes(0)

    def test_results_filtered_to_range(self, tmp_path):
        s = streams()
        keys = np.concatenate([x.keys for x in s])
        rids = np.concatenate([x.rids for x in s])
        write_unpartitioned(tmp_path, 0, s)
        res = full_scan_query(tmp_path, 0, 0.4, 0.6)
        mask = (keys >= 0.4) & (keys <= 0.6)
        assert set(res.rids.tolist()) == set(rids[mask].tolist())

    def test_range_outside_data(self, tmp_path):
        write_unpartitioned(tmp_path, 0, streams())
        res = full_scan_query(tmp_path, 0, 100.0, 200.0)
        assert len(res) == 0
        assert res.cost.bytes_read > 0  # still paid the scan
