"""Tests for the DeltaFS hash-partitioning baseline."""

import numpy as np
import pytest

from repro.baselines.deltafs import DeltaFSRun
from repro.core.config import CarpOptions
from repro.core.records import RecordBatch
from repro.query.engine import PartitionedStore

OPTS = CarpOptions(memtable_records=256, round_records=128, value_size=8)


def streams(nranks=4, n=800, seed=0):
    rng = np.random.default_rng(seed)
    return [
        RecordBatch.from_keys(
            rng.lognormal(size=n).astype(np.float32), rank=r, value_size=8
        )
        for r in range(nranks)
    ]


class TestDeltaFS:
    def test_all_records_persisted(self, tmp_path):
        with DeltaFSRun(4, tmp_path, OPTS) as run:
            stats = run.ingest_epoch(0, streams())
        with PartitionedStore(tmp_path) as store:
            assert store.total_records(0) == stats.records == 3200

    def test_hash_partitions_balanced(self, tmp_path):
        """Hash partitioning balances load even under key skew."""
        with DeltaFSRun(8, tmp_path, OPTS) as run:
            stats = run.ingest_epoch(0, streams(8, 2000))
        from repro.core.partition import load_stddev

        assert load_stddev(stats.partition_loads) < 0.05

    def test_no_key_locality(self, tmp_path):
        """Every partition spans (almost) the whole key range — range
        queries cannot prune partitions (Table I)."""
        with DeltaFSRun(4, tmp_path, OPTS) as run:
            run.ingest_epoch(0, streams())
        with PartitionedStore(tmp_path) as store:
            glo, ghi = store.key_range(0)
            for rank_entries in range(4):
                pass
            # a mid-range point query must touch every log's SSTs
            res = store.query(0, np.exp(0.0), np.exp(0.0) + 0.01)
            assert res.cost.bytes_read > store.total_bytes(0) * 0.5

    def test_range_query_reads_almost_everything(self, tmp_path):
        with DeltaFSRun(4, tmp_path, OPTS) as run:
            run.ingest_epoch(0, streams())
        with PartitionedStore(tmp_path) as store:
            res = store.query(0, 0.5, 1.5)
            assert res.cost.bytes_read > 0.8 * store.total_bytes(0)

    def test_correct_results_despite_hash_layout(self, tmp_path):
        s = streams()
        keys = np.concatenate([x.keys for x in s])
        rids = np.concatenate([x.rids for x in s])
        with DeltaFSRun(4, tmp_path, OPTS) as run:
            run.ingest_epoch(0, s)
        with PartitionedStore(tmp_path) as store:
            res = store.query(0, 0.5, 1.5)
            mask = (keys >= 0.5) & (keys <= 1.5)
            assert set(res.rids.tolist()) == set(rids[mask].tolist())

    def test_stream_count_validated(self, tmp_path):
        with DeltaFSRun(4, tmp_path, OPTS) as run:
            with pytest.raises(ValueError):
                run.ingest_epoch(0, streams(3))

    def test_multi_epoch(self, tmp_path):
        with DeltaFSRun(2, tmp_path, OPTS) as run:
            run.ingest_epoch(0, streams(2, 300, seed=0))
            run.ingest_epoch(1, streams(2, 300, seed=1))
        with PartitionedStore(tmp_path) as store:
            assert store.epochs() == [0, 1]


class TestPointQuery:
    def test_finds_record(self, tmp_path):
        from repro.baselines.deltafs import point_query

        s = streams(4, 200)
        with DeltaFSRun(4, tmp_path, OPTS) as run:
            run.ingest_epoch(0, s)
        target = s[2]
        rid = int(target.rids[17])
        res = point_query(tmp_path, 4, rid, epoch=0)
        assert res.found
        assert res.key == pytest.approx(float(target.keys[17]), rel=1e-6)

    def test_reads_single_partition(self, tmp_path):
        from repro.baselines.deltafs import point_query
        from repro.query.engine import PartitionedStore

        s = streams(4, 500)
        with DeltaFSRun(4, tmp_path, OPTS) as run:
            run.ingest_epoch(0, s)
        rid = int(s[0].rids[0])
        res = point_query(tmp_path, 4, rid, epoch=0)
        with PartitionedStore(tmp_path) as store:
            total = store.total_bytes(0)
        # reads at most ~one partition's worth of data (stops early on hit)
        assert res.bytes_read <= total / 4 + 4096

    def test_missing_rid(self, tmp_path):
        from repro.baselines.deltafs import point_query

        with DeltaFSRun(2, tmp_path, OPTS) as run:
            run.ingest_epoch(0, streams(2, 100))
        res = point_query(tmp_path, 2, (1 << 50) + 12345, epoch=0)
        assert not res.found
