"""Tests for the TritonSort baseline (write model + sorted layout)."""

import numpy as np
import pytest

from repro.baselines.tritonsort import (
    build_sorted_layout,
    ingestion_throughput,
    slowdown_vs_raw,
)
from repro.query.engine import PartitionedStore
from repro.sim.cluster import PAPER_CLUSTER


class TestWriteModel:
    def test_slowdown_near_paper(self):
        """Paper Fig. 7b: sort-based indexing is ~4.9x slower than raw."""
        s = slowdown_vs_raw(512)
        assert 4.5 < s < 5.2

    def test_slowdown_volume_independent(self):
        t1 = ingestion_throughput(1e9, 512)
        t2 = ingestion_throughput(100e9, 512)
        raw = PAPER_CLUSTER.storage_bound(512)
        assert raw / t1 == pytest.approx(raw / t2)

    def test_throughput_below_raw_everywhere(self):
        for n in (32, 128, 512, 1024):
            assert ingestion_throughput(1e9, n) < PAPER_CLUSTER.storage_bound(n)

    def test_validation(self):
        with pytest.raises(ValueError):
            ingestion_throughput(0, 32)


class TestSortedLayout:
    def test_build_from_carp_output(self, carp_output, tmp_path):
        epoch_dir = build_sorted_layout(carp_output["dir"], tmp_path, 0,
                                        sst_records=512)
        with PartitionedStore(epoch_dir) as store:
            entries = sorted((e for _, e in store.entries(0)),
                             key=lambda e: e.offset)
            # globally sorted, key-disjoint SSTs
            for a, b in zip(entries, entries[1:]):
                assert a.kmax <= b.kmin

    def test_query_agreement_with_carp(self, carp_output, sorted_output):
        with PartitionedStore(carp_output["dir"]) as carp, \
             PartitionedStore(sorted_output) as sorted_store:
            a = carp.query(0, 0.2, 3.0)
            b = sorted_store.query(0, 0.2, 3.0)
            assert set(a.rids.tolist()) == set(b.rids.tolist())
