"""Scalar/vector kernel differential: observational equivalence.

The ``CARP_KERNELS`` seam (:mod:`repro.kernels`) promises the vector
backend changes throughput, never bytes.  This suite proves it
dynamically, per executor backend: the same seeded ingest run under
``scalar`` and under ``vector`` must leave byte-identical log files,
an identical ``trace.json`` document, an identical metrics snapshot,
and a profile fold that reconciles exactly against that snapshot —
and the same range query against identically-ingested data must
return an equal ``QueryResponse.digest()``.

Patterns follow ``tests/exec/test_profile_determinism.py`` (same
options, backends, hypothesis settings); the axis compared here is
kernels, not executors.
"""

from __future__ import annotations

import json

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.api import Session
from repro.core.carp import CarpRun
from repro.core.config import CarpOptions
from repro.exec import ProcessExecutor, SerialExecutor, ThreadExecutor
from repro.kernels import KERNEL_NAMES, use_kernels
from repro.obs import Obs, validate_trace_events
from repro.obs.profile import fold_trace_doc
from repro.query.request import QueryRequest
from repro.storage.log import list_logs
from repro.traces.vpic import VpicTraceSpec, generate_timestep

OPTIONS = CarpOptions(
    pivot_count=32,
    oob_capacity=32,
    renegotiations_per_epoch=3,
    memtable_records=256,
    round_records=128,
    value_size=8,
)

EPOCHS = 2

BACKENDS = {
    "serial": SerialExecutor,
    "thread": lambda: ThreadExecutor(3),
    "process": lambda: ProcessExecutor(2),
}

#: Query ranges spanning the VPIC energy domain: the full range, a
#: wide mid slice, a narrow slice, and the low-energy bulk.
RANGES = ((0.0, 1e6), (1.0, 40.0), (10.0, 12.0), (0.5, 2.5))


def _spec(seed: int) -> VpicTraceSpec:
    return VpicTraceSpec(
        nranks=4, particles_per_rank=300, value_size=8, seed=seed
    )


def _ingest_artifacts(out_dir, make_exec, kernels: str, seed: int):
    """Run a recorded ingest under one kernel backend.

    Returns ``(log bytes by name, trace doc, metrics snapshot)``.  The
    executor is created *inside* the ``use_kernels`` scope so worker
    processes inherit the selection through the environment.
    """
    spec = _spec(seed)
    obs = Obs.recording()
    with use_kernels(kernels):
        with make_exec() as executor:
            with CarpRun(
                spec.nranks, out_dir, OPTIONS, obs=obs, executor=executor
            ) as run:
                for ep in range(EPOCHS):
                    run.ingest_epoch(ep, generate_timestep(spec, ep))
    doc = obs.tracer.to_doc()
    assert validate_trace_events(doc) == []
    logs = {p.name: p.read_bytes() for p in list_logs(out_dir)}
    return logs, doc, obs.metrics.snapshot()


@given(seed=st.integers(0, 2**16))
@settings(
    max_examples=3,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_ingest_bit_identical_across_kernels(tmp_path_factory, seed):
    for name, make_exec in BACKENDS.items():
        arts = {
            kernels: _ingest_artifacts(
                tmp_path_factory.mktemp(f"diff_{name}_{kernels}"),
                make_exec,
                kernels,
                seed,
            )
            for kernels in KERNEL_NAMES
        }
        scalar_logs, scalar_doc, scalar_snap = arts["scalar"]
        vector_logs, vector_doc, vector_snap = arts["vector"]
        # byte-identical on-disk logs, file by file
        assert sorted(vector_logs) == sorted(scalar_logs), name
        for fname, blob in scalar_logs.items():
            assert vector_logs[fname] == blob, (name, fname)
        # identical trace archive and metrics snapshot
        assert json.dumps(vector_doc, sort_keys=True) == json.dumps(
            scalar_doc, sort_keys=True
        ), name
        assert vector_snap == scalar_snap, name
        # each backend's profile reconciles exactly (zero drift), and
        # the rendered profiles agree across kernels
        profiles = {}
        for kernels, (_logs, doc, snap) in arts.items():
            profile = fold_trace_doc(doc)
            assert profile.reconcile(snap) == [], (name, kernels)
            profiles[kernels] = (profile.to_json(), profile.to_folded())
        assert profiles["vector"] == profiles["scalar"], name


def _query_digests(out_dir, make_exec, kernels: str, seed: int):
    """Ingest then query under one kernel backend; return digests.

    Queries run both against the live store and against a pinned
    snapshot view (the latter exercises the pin-aware worker probe
    path), in values and keys-only modes.
    """
    spec = _spec(seed)
    digests: list[str] = []
    matched = 0
    with use_kernels(kernels):
        with make_exec() as executor:
            with Session(
                spec.nranks,
                out_dir,
                options=OPTIONS,
                record=True,
                executor=executor,
            ) as session:
                for ep in range(EPOCHS):
                    session.ingest_epoch(ep, generate_timestep(spec, ep))
                snapshot = session.snapshot()
                for epoch in range(EPOCHS):
                    for lo, hi in RANGES:
                        for keys_only in (False, True):
                            req = QueryRequest(
                                lo=lo, hi=hi, epoch=epoch, keys_only=keys_only
                            )
                            live = session.query(req)
                            pinned = session.query(req, snapshot=snapshot)
                            assert live.ok and pinned.ok
                            # pinned view covers the same epochs here,
                            # so the payloads must already agree
                            assert pinned.digest() == live.digest()
                            digests.append(live.digest())
                            matched += len(live)
                session.release(snapshot)
    assert matched > 0, "differential queries never matched anything"
    return digests


@given(seed=st.integers(0, 2**16))
@settings(
    max_examples=3,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_query_digests_equal_across_kernels(tmp_path_factory, seed):
    for name, make_exec in BACKENDS.items():
        digests = {
            kernels: _query_digests(
                tmp_path_factory.mktemp(f"qdiff_{name}_{kernels}"),
                make_exec,
                kernels,
                seed,
            )
            for kernels in KERNEL_NAMES
        }
        assert digests["vector"] == digests["scalar"], name
