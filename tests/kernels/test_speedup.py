"""The vector backend must actually be fast, not just equivalent.

The hard ≥5× gate with committed baselines lives in the carp-perf
``ingest-route`` / ``probe`` workloads; this tier-1 test is the smoke
version of the same claim so a silent de-vectorization (e.g. a stray
``.tolist()`` creeping into a hot loop) fails the plain test suite
too, without waiting for the perf job.  Best-of-3 on both sides keeps
it stable on a loaded CI box: both backends are CPU-bound in the same
process, so load slows them together.
"""

from __future__ import annotations

import time

import numpy as np

from repro.kernels import SCALAR_KERNELS, VECTOR_KERNELS

N = 200_000
#: The gate is 5×; measured margins are 8× (route) to 60× (masks).
MIN_SPEEDUP = 5.0


def _keys(n: int) -> np.ndarray:
    # deterministic, well-spread keys (same synthesis as the perf
    # harness): no RNG, range ~[0, 1031]
    raw = (np.arange(n, dtype=np.uint64) * np.uint64(2654435761)) % np.uint64(
        100003
    )
    return (raw.astype(np.float64) / 97.0).astype("<f4")


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _speedup(run) -> float:
    scalar = _best_of(lambda: run(SCALAR_KERNELS))
    vector = _best_of(lambda: run(VECTOR_KERNELS))
    return scalar / max(vector, 1e-9)


def test_route_speedup():
    bounds = np.linspace(50.0, 950.0, 33)
    keys = _keys(N)
    ratio = _speedup(lambda k: k.route(bounds, keys))
    assert ratio >= MIN_SPEEDUP, f"route speedup {ratio:.1f}x < {MIN_SPEEDUP}x"


def test_range_mask_speedup():
    keys = _keys(N)
    ratio = _speedup(lambda k: k.range_mask(keys, 250.0, 260.0))
    assert ratio >= MIN_SPEEDUP, f"mask speedup {ratio:.1f}x < {MIN_SPEEDUP}x"


def test_key_codec_speedup():
    keys = _keys(N)
    payload = VECTOR_KERNELS.encode_keys(keys)
    ratio = _speedup(
        lambda k: (k.encode_keys(keys), k.decode_keys(payload))
    )
    assert ratio >= MIN_SPEEDUP, f"key codec {ratio:.1f}x < {MIN_SPEEDUP}x"


def test_value_codec_speedup():
    rids = np.arange(N, dtype="<u8") * np.uint64(7919)
    payload = VECTOR_KERNELS.encode_values(rids, 24)
    ratio = _speedup(
        lambda k: (k.encode_values(rids, 24), k.decode_values(payload, 24))
    )
    assert ratio >= MIN_SPEEDUP, f"value codec {ratio:.1f}x < {MIN_SPEEDUP}x"
