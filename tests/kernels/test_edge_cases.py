"""Kernel edge cases against the golden corpus, on both backends.

``corpus/cases.json`` pins the exact outputs of every kernel slot on
the inputs most likely to diverge between scalar and vector: empty
arrays, single records, NaN/±inf/±0.0/subnormal float32 bit patterns,
keys exactly on pivot boundaries, and float32→float64 widening traps.
Every case is asserted against *both* backends, and a builder test
proves the checked-in JSON is exactly what ``corpus/generate.py``
produces.  Live ingest edges (empty epochs, single-record batches)
and query ranges straddling SST boundaries are covered end to end.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.carp import CarpRun
from repro.core.config import CarpOptions
from repro.core.partition import OOB_DEST as PARTITION_OOB
from repro.core.records import RecordBatch
from repro.kernels import KERNEL_NAMES, OOB_DEST, get_kernels, use_kernels
from repro.query.engine import PartitionedStore
from repro.storage.log import LogReader, list_logs

CORPUS_DIR = Path(__file__).parent / "corpus"
CASES = json.loads((CORPUS_DIR / "cases.json").read_text())


def _keys(hex_bits: list[str]) -> np.ndarray:
    bits = np.array([int(h, 16) for h in hex_bits], dtype="<u4")
    return bits.view("<f4")


def _by_name(section: str) -> list:
    return [pytest.param(case, id=case["name"]) for case in CASES[section]]


def test_oob_sentinel_consistent():
    # repro.kernels.api redeclares OOB_DEST (importing the partition
    # module would be a cycle); the two must never drift
    assert OOB_DEST == PARTITION_OOB


@pytest.mark.parametrize("kernels_name", KERNEL_NAMES)
@pytest.mark.parametrize("case", _by_name("route"))
def test_route_golden(case, kernels_name):
    kernels = get_kernels(kernels_name)
    dests = kernels.route(
        np.asarray(case["bounds"], dtype=np.float64), _keys(case["keys_hex"])
    )
    assert dests.dtype == np.int64
    assert list(dests) == case["dests"]


@pytest.mark.parametrize("kernels_name", KERNEL_NAMES)
@pytest.mark.parametrize("case", _by_name("range_mask"))
def test_range_mask_golden(case, kernels_name):
    kernels = get_kernels(kernels_name)
    mask = kernels.range_mask(_keys(case["keys_hex"]), case["lo"], case["hi"])
    assert mask.dtype == np.bool_
    assert [bool(m) for m in mask] == case["mask"]


@pytest.mark.parametrize("kernels_name", KERNEL_NAMES)
@pytest.mark.parametrize("case", _by_name("interval_mask"))
def test_interval_mask_golden(case, kernels_name):
    kernels = get_kernels(kernels_name)
    mask = kernels.interval_mask(
        _keys(case["keys_hex"]), case["lo"], case["hi"], case["inclusive_hi"]
    )
    assert [bool(m) for m in mask] == case["mask"]


@pytest.mark.parametrize("kernels_name", KERNEL_NAMES)
@pytest.mark.parametrize("case", _by_name("group_runs"))
def test_group_runs_golden(case, kernels_name):
    kernels = get_kernels(kernels_name)
    groups = kernels.group_runs(np.asarray(case["dests"], dtype=np.int64))
    assert [
        [int(d), [int(i) for i in idx]] for d, idx in groups
    ] == case["groups"]


@pytest.mark.parametrize("kernels_name", KERNEL_NAMES)
@pytest.mark.parametrize("case", _by_name("key_codec"))
def test_key_codec_golden(case, kernels_name):
    kernels = get_kernels(kernels_name)
    keys = _keys(case["keys_hex"])
    payload = kernels.encode_keys(keys)
    assert payload.hex() == case["payload_hex"]
    # bit-exact round trip — NaN payload and sign bits survive — from
    # every buffer type the mmap reader may hand in
    for buf in (payload, bytearray(payload), memoryview(payload)):
        decoded = kernels.decode_keys(buf)
        assert decoded.view("<u4").tolist() == keys.view("<u4").tolist()


@pytest.mark.parametrize("kernels_name", KERNEL_NAMES)
@pytest.mark.parametrize("case", _by_name("value_codec"))
def test_value_codec_golden(case, kernels_name):
    kernels = get_kernels(kernels_name)
    rids = np.asarray(case["rids"], dtype="<u8")
    value_size = case["value_size"]
    payload = kernels.encode_values(rids, value_size)
    assert payload.hex() == case["payload_hex"]
    decoded = kernels.decode_values(memoryview(payload), value_size)
    assert decoded.tolist() == rids.tolist()
    assert kernels.filler_matches(payload, rids, value_size)
    if value_size > 8 and len(rids):
        # a single flipped filler byte must be caught
        tampered = bytearray(payload)
        tampered[-1] ^= 0x01
        assert not kernels.filler_matches(bytes(tampered), rids, value_size)


def test_corpus_matches_generator():
    """The checked-in cases.json is exactly what generate.py produces."""
    # loaded under a unique module name: tests/storage/corpus has its
    # own generate.py and both suites may run in one process
    spec = importlib.util.spec_from_file_location(
        "tests.kernels.corpus.generate", CORPUS_DIR / "generate.py"
    )
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    rebuilt = json.dumps(module.build_cases(), indent=1, sort_keys=True) + "\n"
    assert (CORPUS_DIR / "cases.json").read_text() == rebuilt


# ------------------------------------------------------- live ingest edges

OPTIONS = CarpOptions(
    pivot_count=16,
    oob_capacity=32,
    renegotiations_per_epoch=2,
    memtable_records=64,
    round_records=32,
    value_size=8,
)

NRANKS = 2


def _stream(keys: np.ndarray, rank: int) -> RecordBatch:
    rids = (np.arange(len(keys), dtype="<u8")
            + np.uint64(rank) * np.uint64(1 << 32))
    return RecordBatch(np.asarray(keys, "<f4"), rids, OPTIONS.value_size)


def _edge_epochs() -> list[list[RecordBatch]]:
    """Per-epoch streams: a dense epoch, an epoch with one empty rank
    stream, and an epoch of single-record batches."""
    dense = [
        _stream(np.linspace(0.0, 100.0, 300, dtype="<f4"), 0),
        _stream(np.linspace(2.0, 98.0, 300, dtype="<f4"), 1),
    ]
    one_empty = [
        RecordBatch.empty(OPTIONS.value_size),
        _stream(np.array([12.5, 87.5], "<f4"), 1),
    ]
    single = [
        _stream(np.array([31.25], "<f4"), 0),
        _stream(np.array([68.75], "<f4"), 1),
    ]
    return [dense, one_empty, single]


def _ingest_edges(out_dir) -> dict[str, bytes]:
    with CarpRun(NRANKS, out_dir, OPTIONS) as run:
        for epoch, streams in enumerate(_edge_epochs()):
            run.ingest_epoch(epoch, streams)
    return {p.name: p.read_bytes() for p in list_logs(out_dir)}


def test_empty_and_single_record_epochs_bit_identical(tmp_path):
    logs = {}
    for kernels_name in KERNEL_NAMES:
        with use_kernels(kernels_name):
            logs[kernels_name] = _ingest_edges(tmp_path / kernels_name)
    assert logs["vector"] == logs["scalar"]
    assert logs["vector"], "edge ingest produced no logs"


def test_fully_empty_epoch_rejected_on_both_backends(tmp_path):
    empty = [RecordBatch.empty(OPTIONS.value_size) for _ in range(NRANKS)]
    for kernels_name in KERNEL_NAMES:
        with use_kernels(kernels_name):
            with CarpRun(NRANKS, tmp_path / kernels_name, OPTIONS) as run:
                with pytest.raises(ValueError, match="empty epoch"):
                    run.ingest_epoch(0, empty)


def test_query_straddling_sst_boundaries(tmp_path):
    """A range crossing an SST edge filters identically on both backends.

    The dense epoch flushes several SSTs per rank (memtable_records is
    tiny); the query range is derived from an actual adjacent-SST key
    boundary on disk, so the filter has to split records *within* both
    neighbouring blocks.
    """
    out_dir = tmp_path / "db"
    _ingest_edges(out_dir)
    # find a real SST boundary: consecutive epoch-0 entries in one log
    log_path = list_logs(out_dir)[0]
    with LogReader(log_path) as reader:
        entries = [e for e in reader.entries_for(epoch=0) if e.count]
        assert len(entries) >= 2, "edge ingest must flush multiple SSTs"
        first = reader.read_sst(entries[0])
        second = reader.read_sst(entries[1])
    lo = float(first.keys[len(first) // 2])
    hi = float(second.keys[len(second) // 2])
    if hi < lo:
        lo, hi = hi, lo
    assert lo < hi
    expected = None
    for kernels_name in KERNEL_NAMES:
        with use_kernels(kernels_name):
            with PartitionedStore(out_dir) as store:
                result = store.query(0, lo, hi)
        got = (
            result.keys.view("<u4").tolist(),
            result.rids.tolist(),
        )
        # independent reference: re-filter the generated input in f64
        all_keys = np.concatenate([b.keys for b in _edge_epochs()[0]])
        n_match = int(
            ((all_keys.astype(np.float64) >= lo)
             & (all_keys.astype(np.float64) <= hi)).sum()
        )
        assert len(result.keys) == n_match, kernels_name
        assert n_match > 0, "straddling range matched nothing"
        if expected is None:
            expected = got
        else:
            assert got == expected
