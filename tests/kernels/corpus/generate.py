"""Golden edge-case corpus for the kernel seam.

Pins the exact outputs of every :class:`repro.kernels.api.Kernels`
slot on the inputs most likely to diverge between the scalar and
vector backends: empty arrays, single records, NaN variants
(including payload and sign bits), ±inf, ±0.0, subnormals, keys
exactly on pivot boundaries, and float32-vs-float64 comparison
traps.  Keys travel as float32 *bit patterns* (hex) so the corpus is
exact — no decimal round trip can smudge a NaN payload.

``cases.json`` is checked in; ``test_edge_cases.py`` asserts that
*both* backends reproduce every pinned output and that re-running
this builder reproduces the checked-in file byte for byte.
Regenerate (after an intentional contract change) with::

    PYTHONPATH=src python tests/kernels/corpus/generate.py
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.kernels import VECTOR_KERNELS

CORPUS_DIR = Path(__file__).parent

# float32 bit patterns, named
NAN = "7fc00000"          # canonical quiet NaN
NAN_PAYLOAD = "7fc00123"  # quiet NaN with a mantissa payload
NAN_NEG = "ffc00000"      # sign-flipped quiet NaN
NAN_SIGNALING = "7f800001"
INF = "7f800000"
NEG_INF = "ff800000"
NEG_ZERO = "80000000"
POS_ZERO = "00000000"
SUBNORMAL_MIN = "00000001"
SUBNORMAL_MIN_NEG = "80000001"
MAX_FINITE = "7f7fffff"
ONE = "3f800000"
BELOW_ONE = "3f7fffff"    # np.nextafter(1.0, 0.0) in float32
ABOVE_ONE = "3f800001"
THREE = "40400000"
BELOW_THREE = "403fffff"
ABOVE_THREE = "40400001"
NEG_ONE = "bf800000"

SPECIALS = [
    NAN, NAN_PAYLOAD, NAN_NEG, NAN_SIGNALING, INF, NEG_INF,
    NEG_ZERO, POS_ZERO, NEG_ONE, ONE, THREE,
]


def keys_from_hex(hex_bits: list[str]) -> np.ndarray:
    """float32 key array from uint32 bit-pattern hex strings."""
    bits = np.array([int(h, 16) for h in hex_bits], dtype="<u4")
    return bits.view("<f4")


def hex_from_keys(keys: np.ndarray) -> list[str]:
    return [f"{int(b):08x}" for b in np.asarray(keys, "<f4").view("<u4")]


def _route_case(name: str, bounds: list[float], keys_hex: list[str]) -> dict:
    dests = VECTOR_KERNELS.route(
        np.asarray(bounds, dtype=np.float64), keys_from_hex(keys_hex)
    )
    return {
        "name": name,
        "bounds": bounds,
        "keys_hex": keys_hex,
        "dests": [int(d) for d in dests],
    }


def _mask_case(name: str, keys_hex: list[str], lo: float, hi: float) -> dict:
    mask = VECTOR_KERNELS.range_mask(keys_from_hex(keys_hex), lo, hi)
    return {
        "name": name,
        "keys_hex": keys_hex,
        "lo": lo,
        "hi": hi,
        "mask": [bool(m) for m in mask],
    }


def _interval_case(
    name: str, keys_hex: list[str], lo: float, hi: float, inclusive_hi: bool
) -> dict:
    mask = VECTOR_KERNELS.interval_mask(
        keys_from_hex(keys_hex), lo, hi, inclusive_hi
    )
    return {
        "name": name,
        "keys_hex": keys_hex,
        "lo": lo,
        "hi": hi,
        "inclusive_hi": inclusive_hi,
        "mask": [bool(m) for m in mask],
    }


def _group_case(name: str, dests: list[int]) -> dict:
    groups = VECTOR_KERNELS.group_runs(np.asarray(dests, dtype=np.int64))
    return {
        "name": name,
        "dests": dests,
        "groups": [
            [int(d), [int(i) for i in idx]] for d, idx in groups
        ],
    }


def _key_codec_case(name: str, keys_hex: list[str]) -> dict:
    payload = VECTOR_KERNELS.encode_keys(keys_from_hex(keys_hex))
    return {"name": name, "keys_hex": keys_hex, "payload_hex": payload.hex()}


def _value_codec_case(name: str, rids: list[int], value_size: int) -> dict:
    payload = VECTOR_KERNELS.encode_values(
        np.asarray(rids, dtype="<u8"), value_size
    )
    return {
        "name": name,
        "rids": rids,
        "value_size": value_size,
        "payload_hex": payload.hex(),
    }


def build_cases() -> dict:
    """All golden cases, as one JSON-able document."""
    unit = [0.0, 1.0, 2.0, 3.0]
    # float64 bounds where the float32 key widens to a *different*
    # float64: float32(0.1) > 0.1, while float32(0.3) widens exactly
    # onto the bound below
    f64_trap = [0.1, 0.2, float(np.float32(0.3)), 0.4]
    wide = [float(b) for b in np.linspace(50.0, 950.0, 33)]
    cases = {
        "route": [
            _route_case("empty", unit, []),
            _route_case("single-mid", unit, ["3fc00000"]),  # 1.5 -> 1
            _route_case(
                "specials", unit,
                [NAN, INF, NEG_INF, NEG_ZERO, THREE],
            ),
            _route_case("nan-variants", unit,
                        [NAN, NAN_PAYLOAD, NAN_NEG, NAN_SIGNALING]),
            _route_case("pivot-boundaries", unit,
                        [POS_ZERO, ONE, "40000000", THREE]),
            _route_case(
                "boundary-neighbors", unit,
                [BELOW_ONE, ABOVE_ONE, BELOW_THREE, ABOVE_THREE],
            ),
            _route_case(
                "subnormals", unit,
                [SUBNORMAL_MIN, SUBNORMAL_MIN_NEG, MAX_FINITE, NEG_ONE],
            ),
            _route_case(
                "float64-widening", f64_trap,
                [hex_from_keys(np.array([0.1, 0.2, 0.3], "<f4"))[i]
                 for i in range(3)],
            ),
            _route_case(
                "wide-table", wide,
                hex_from_keys(np.array(
                    [49.999996, 50.0, 500.0, 528.125, 950.0, 950.0001],
                    "<f4",
                )),
            ),
        ],
        "range_mask": [
            _mask_case("empty", [], 0.0, 3.0),
            _mask_case("specials", SPECIALS, 0.0, 3.0),
            _mask_case("closed-endpoints", [POS_ZERO, NEG_ZERO, ONE, THREE,
                                            ABOVE_THREE], 0.0, 3.0),
            _mask_case("point-range", [BELOW_ONE, ONE, ABOVE_ONE], 1.0, 1.0),
            _mask_case("f64-lo", [hex_from_keys(
                np.array([0.1], "<f4"))[0]], 0.1, 1.0),
        ],
        "interval_mask": [
            _interval_case("half-open-hi", [POS_ZERO, ONE, THREE], 0.0, 3.0,
                           False),
            _interval_case("closed-hi", [POS_ZERO, ONE, THREE], 0.0, 3.0,
                           True),
            _interval_case("specials-half-open", SPECIALS, 0.0, 3.0, False),
            _interval_case("neg-zero-lo", [NEG_ZERO, POS_ZERO], 0.0, 1.0,
                           False),
            _interval_case("empty", [], 0.0, 1.0, True),
        ],
        "group_runs": [
            _group_case("empty", []),
            _group_case("single", [2]),
            _group_case("single-oob", [-1]),
            _group_case("interleaved", [2, -1, 0, 2, 0, -1, 1]),
            _group_case("all-same", [3, 3, 3, 3]),
            _group_case("descending", [3, 2, 1, 0, -1]),
        ],
        "key_codec": [
            _key_codec_case("empty", []),
            _key_codec_case("single", [ONE]),
            _key_codec_case("specials", SPECIALS),
            _key_codec_case(
                "subnormals",
                [SUBNORMAL_MIN, SUBNORMAL_MIN_NEG, MAX_FINITE],
            ),
        ],
        "value_codec": [
            _value_codec_case("empty", [], 16),
            _value_codec_case("single-no-filler", [42], 8),
            _value_codec_case(
                "rid-widths",
                [0, 1, 255, 256, 65535, 2**32, 2**64 - 1], 8,
            ),
            _value_codec_case("filler", [3, 7, 255], 24),
            _value_codec_case("filler-wide", [2**63 + 9], 40),
        ],
    }
    _check_semantics(cases)
    return cases


def _check_semantics(cases: dict) -> None:
    """Hand-derived anchors: the builder must never pin a wrong golden."""
    by_name = {c["name"]: c for c in cases["route"]}
    # bounds [0,1,2,3] -> 3 partitions; NaN -> nparts, +/-inf -> OOB,
    # -0.0 -> partition 0, key == bounds[-1] -> last partition
    assert by_name["specials"]["dests"] == [3, -1, -1, 0, 2]
    assert by_name["nan-variants"]["dests"] == [3, 3, 3, 3]
    assert by_name["pivot-boundaries"]["dests"] == [0, 1, 2, 2]
    assert by_name["boundary-neighbors"]["dests"] == [0, 1, 2, -1]
    masks = {c["name"]: c for c in cases["range_mask"]}
    # closed range: both endpoints in; -0.0 == 0.0; NaN never matches
    assert masks["closed-endpoints"]["mask"] == [True, True, True, True, False]
    assert masks["specials"]["mask"][:6] == [False] * 6  # NaNs + infs out
    groups = {c["name"]: c for c in cases["group_runs"]}
    assert groups["interleaved"]["groups"] == [
        [-1, [1, 5]], [0, [2, 4]], [1, [6]], [2, [0, 3]],
    ]


def main() -> None:
    cases = build_cases()
    out = CORPUS_DIR / "cases.json"
    out.write_text(json.dumps(cases, indent=1, sort_keys=True) + "\n")
    n = sum(len(v) for v in cases.values())
    print(f"wrote {out} ({n} cases)")


if __name__ == "__main__":
    main()
