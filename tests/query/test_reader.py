"""Tests for the RangeReader client (analyze / query / batch modes)."""

import csv

import numpy as np
import pytest

from repro.query.reader import (
    BatchQuerySpec,
    RangeReader,
    read_batch_csv,
    write_batch_csv,
)


@pytest.fixture(scope="module")
def reader(carp_output):
    with RangeReader(carp_output["dir"]) as r:
        yield r


class TestAnalyze:
    def test_basic_stats(self, reader, trace_keys):
        analysis = reader.analyze(epoch=0)
        assert analysis.total_records == len(trace_keys[0])
        assert analysis.ssts > 0
        assert analysis.epochs == (0, 1)

    def test_probe_selectivity_positive(self, reader):
        analysis = reader.analyze(epoch=0, probes=5)
        assert len(analysis.probe_selectivity) == 5
        assert all(0 < s <= 1 for s in analysis.probe_selectivity)

    def test_median_selectivity(self, reader):
        analysis = reader.analyze(epoch=0)
        assert 0 < analysis.median_selectivity < 1

    def test_default_epoch_is_first(self, reader):
        assert reader.analyze().total_records == reader.analyze(epoch=0).total_records


class TestQuery:
    def test_single_query(self, reader, trace_keys, trace_rids):
        res = reader.query(0, 0.5, 2.0)
        mask = (trace_keys[0] >= 0.5) & (trace_keys[0] <= 2.0)
        assert set(res.rids.tolist()) == set(trace_rids[0][mask].tolist())


class TestBatch:
    def test_run_batch(self, reader):
        queries = [
            BatchQuerySpec(0, 0.1, 0.5),
            BatchQuerySpec(0, 1.0, 5.0),
            BatchQuerySpec(1, 0.1, 0.5),
        ]
        batch = reader.run_batch(queries)
        assert len(batch.results) == 3
        assert batch.total_latency > 0
        assert batch.total_matched == sum(len(r) for r in batch.results)
        assert batch.total_bytes_read > 0

    def test_query_log_written(self, reader, tmp_path):
        log = tmp_path / "querylog.csv"
        reader.run_batch([BatchQuerySpec(0, 0.1, 0.2)], log_path=log)
        rows = list(csv.reader(log.open()))
        assert rows[0][0] == "epoch"
        assert len(rows) == 2
        assert rows[1][0] == "0"


class TestBatchCSV:
    def test_roundtrip(self, tmp_path):
        queries = [BatchQuerySpec(0, 0.25, 0.75), BatchQuerySpec(3, 1.5, 2.5)]
        path = tmp_path / "batch.csv"
        write_batch_csv(queries, path)
        assert read_batch_csv(path) == queries

    def test_artifact_format(self, tmp_path):
        """The artifact's format: epoch,query_begin,query_end rows."""
        path = tmp_path / "batch.csv"
        path.write_text("0,1.0,2.0\n# comment\n1,3.0,4.0\n")
        queries = read_batch_csv(path)
        assert queries == [BatchQuerySpec(0, 1.0, 2.0), BatchQuerySpec(1, 3.0, 4.0)]

    def test_bad_row_rejected(self, tmp_path):
        path = tmp_path / "batch.csv"
        path.write_text("0,1.0\n")
        with pytest.raises(ValueError, match="bad batch row"):
            read_batch_csv(path)
