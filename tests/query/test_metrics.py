"""Tests for query-quality metrics (selectivity, RAF)."""

import numpy as np
import pytest

from repro.query.engine import PartitionedStore
from repro.query.metrics import (
    raf_percentiles,
    read_amplification_profile,
    selectivity,
    selectivity_profile,
)


@pytest.fixture(scope="module")
def store(carp_output):
    with PartitionedStore(carp_output["dir"]) as s:
        yield s


class TestSelectivity:
    def test_basic(self):
        assert selectivity(5, 100) == 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            selectivity(1, 0)

    def test_profile_bounded(self, store, trace_keys):
        probes = np.quantile(trace_keys[0], [0.1, 0.5, 0.9])
        sel = selectivity_profile(store, 0, probes)
        assert np.all(sel > 0)
        assert np.all(sel <= 1)

    def test_profile_partition_floor(self, store, carp_output):
        """Point selectivity is at least ~one partition's share."""
        probes = np.array([0.2])
        sel = selectivity_profile(store, 0, probes)
        nranks = 8
        assert sel[0] > 0.2 / nranks


class TestRAF:
    def test_ideal_is_one(self, tmp_path):
        """A perfectly balanced disjoint layout has RAF ~ 1."""
        from repro.core.records import RecordBatch
        from repro.storage.log import LogWriter, log_name

        n, parts = 1000, 4
        keys = np.sort(np.random.default_rng(0).random(n).astype(np.float32))
        for p in range(parts):
            with LogWriter(tmp_path / log_name(p)) as w:
                chunk = keys[p * (n // parts) : (p + 1) * (n // parts)]
                w.append_batch(RecordBatch.from_keys(chunk, value_size=8), 0)
                w.flush_epoch(0)
        with PartitionedStore(tmp_path) as store:
            probes = np.quantile(keys, [0.2, 0.5, 0.8])
            raf = read_amplification_profile(store, 0, probes, parts)
        assert np.all(raf < 1.5)

    def test_strays_inflate_raf(self, store, trace_keys, carp_output):
        probes = np.quantile(trace_keys[0], np.linspace(0.05, 0.95, 19))
        with_strays = read_amplification_profile(store, 0, probes, 8)
        main_only = read_amplification_profile(
            store, 0, probes, 8, include_strays=False
        )
        assert with_strays.mean() >= main_only.mean()

    def test_probe_weighting(self, store, trace_keys):
        probes = np.quantile(trace_keys[0], [0.5])
        raf = read_amplification_profile(store, 0, probes, 8)
        assert raf.shape == (1,)
        assert raf[0] > 0

    def test_all_stray_epoch_without_strays_is_an_error(self, tmp_path):
        """Filtering strays out of an all-stray epoch must raise, not
        silently return an all-zero profile."""
        from repro.core.records import RecordBatch
        from repro.storage.log import LogWriter, log_name

        keys = np.random.default_rng(1).random(256).astype(np.float32)
        with LogWriter(tmp_path / log_name(0)) as w:
            w.append_batch(RecordBatch.from_keys(keys, value_size=8), 0,
                           stray=True)
            w.flush_epoch(0)
        with PartitionedStore(tmp_path) as store:
            probes = np.quantile(keys.astype(np.float64), [0.25, 0.75])
            # with strays included the profile works
            raf = read_amplification_profile(store, 0, probes, 4)
            assert np.all(raf > 0)
            with pytest.raises(ValueError, match="only stray"):
                read_amplification_profile(
                    store, 0, probes, 4, include_strays=False
                )

    def test_percentiles(self):
        raf = np.arange(1, 101, dtype=float)
        p50, p99 = raf_percentiles(raf)
        assert p50 == pytest.approx(50.5)
        assert p99 == pytest.approx(99.01)

    def test_percentiles_empty_rejected(self):
        with pytest.raises(ValueError):
            raf_percentiles(np.array([]))
