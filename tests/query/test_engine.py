"""Tests for the range query engine over real CARP/sorted output."""

import numpy as np
import pytest

from repro.query.engine import PartitionedStore, _overlapping_run_bytes


@pytest.fixture(scope="module")
def store(carp_output):
    with PartitionedStore(carp_output["dir"]) as s:
        yield s


@pytest.fixture(scope="module")
def sstore(sorted_output):
    with PartitionedStore(sorted_output) as s:
        yield s


class TestMetadata:
    def test_epochs(self, store):
        assert store.epochs() == [0, 1]

    def test_total_records(self, store, trace_keys):
        assert store.total_records(0) == len(trace_keys[0])
        assert store.total_records(1) == len(trace_keys[1])

    def test_key_range_covers_data(self, store, trace_keys):
        lo, hi = store.key_range(0)
        assert lo <= trace_keys[0].min()
        assert hi >= trace_keys[0].max()

    def test_total_bytes_positive(self, store):
        assert store.total_bytes(0) > 0

    def test_missing_dir(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            PartitionedStore(tmp_path)


class TestQueries:
    def test_equivalence_with_brute_force(self, store, trace_keys, trace_rids):
        keys, rids = trace_keys[0], trace_rids[0]
        for lo, hi in [(0.1, 0.5), (1.0, 10.0), (0.0, 100.0), (30.0, 60.0)]:
            res = store.query(0, lo, hi)
            mask = (keys >= lo) & (keys <= hi)
            assert set(res.rids.tolist()) == set(rids[mask].tolist())

    def test_results_sorted(self, store):
        res = store.query(0, 0.0, 5.0)
        assert np.all(np.diff(res.keys) >= 0)

    def test_boundary_keys_included(self, store, trace_keys):
        k = float(np.sort(trace_keys[0])[100])
        res = store.query(0, k, k)
        assert len(res) >= 1
        assert np.all(res.keys == np.float32(k))

    def test_empty_range_result(self, store, trace_keys):
        hi = float(trace_keys[0].max())
        res = store.query(0, hi + 100, hi + 200)
        assert len(res) == 0
        assert res.cost.ssts_read == 0

    def test_invalid_range_rejected(self, store):
        with pytest.raises(ValueError):
            store.query(0, 5.0, 1.0)

    def test_epoch_isolation(self, store, trace_keys, trace_rids):
        res = store.query(1, 0.0, 1e6)
        assert set(res.rids.tolist()) == set(trace_rids[1].tolist())

    def test_scan_returns_everything(self, store, trace_keys):
        res = store.scan(0)
        assert len(res) == len(trace_keys[0])


class TestCosts:
    def test_selective_query_reads_fraction(self, store, trace_keys):
        keys = np.sort(trace_keys[0])
        lo, hi = float(keys[100]), float(keys[200])
        res = store.query(0, lo, hi)
        assert res.cost.bytes_read < store.total_bytes(0) * 0.7

    def test_bytes_read_matches_entries(self, store):
        res = store.query(0, 0.2, 0.4)
        entries = store.overlapping_entries(0, 0.2, 0.4)
        assert res.cost.bytes_read == sum(e.length for _, e in entries)
        assert res.cost.read_requests == len(entries)

    def test_latency_positive_and_composed(self, store):
        res = store.query(0, 0.1, 1.0)
        assert res.cost.latency == pytest.approx(
            res.cost.read_time + res.cost.merge_time
        )
        assert res.cost.latency > 0

    def test_carp_pays_merge_cost(self, store):
        res = store.query(0, 0.1, 1.0)
        assert res.cost.merge_bytes > 0

    def test_sorted_layout_pays_no_merge(self, sstore):
        res = sstore.query(0, 0.1, 1.0)
        assert res.cost.merge_bytes == 0

    def test_sorted_and_carp_agree(self, store, sstore):
        a = store.query(0, 0.5, 2.0)
        b = sstore.query(0, 0.5, 2.0)
        assert set(a.rids.tolist()) == set(b.rids.tolist())
        assert np.array_equal(np.sort(a.keys), np.sort(b.keys))


class TestOverlappingRunBytes:
    def test_empty(self):
        assert _overlapping_run_bytes([]) == 0

    def test_single(self):
        assert _overlapping_run_bytes([(0.0, 1.0, 100)]) == 0

    def test_disjoint(self):
        spans = [(0.0, 1.0, 100), (2.0, 3.0, 100)]
        assert _overlapping_run_bytes(spans) == 0

    def test_all_overlapping(self):
        spans = [(0.0, 2.0, 100), (1.0, 3.0, 200)]
        assert _overlapping_run_bytes(spans) == 300

    def test_mixed(self):
        spans = [(0.0, 2.0, 100), (1.0, 3.0, 200), (10.0, 11.0, 400)]
        assert _overlapping_run_bytes(spans) == 300

    def test_touching_counts_as_overlap(self):
        spans = [(0.0, 1.0, 100), (1.0, 2.0, 200)]
        assert _overlapping_run_bytes(spans) == 300

    def test_chain_overlap(self):
        spans = [(0.0, 2.0, 1), (1.5, 4.0, 2), (3.5, 6.0, 4)]
        assert _overlapping_run_bytes(spans) == 7


class TestRecovery:
    def test_store_opens_torn_logs_with_recover(self, tmp_path):
        from repro.core.records import RecordBatch
        from repro.storage.log import LogWriter, log_name
        from repro.storage.manifest import ManifestError

        path = tmp_path / log_name(0)
        w = LogWriter(path)
        w.append_batch(
            RecordBatch.from_keys(np.array([1.0, 2.0], np.float32),
                                  value_size=8), 0)
        w.flush_epoch(0)
        w.append_batch(
            RecordBatch.from_keys(np.array([3.0], np.float32), value_size=8),
            1)  # torn epoch
        w.close()
        with pytest.raises(ManifestError):
            PartitionedStore(tmp_path)
        with PartitionedStore(tmp_path, recover=True) as store:
            assert store.epochs() == [0]
            assert store.total_records(0) == 2


class TestMultiEpoch:
    def test_query_all_epochs(self, store, trace_keys, trace_rids):
        results = store.query_all_epochs(0.5, 2.0)
        assert sorted(results) == [0, 1]
        for epoch, res in results.items():
            keys, rids = trace_keys[epoch], trace_rids[epoch]
            mask = (keys >= 0.5) & (keys <= 2.0)
            assert set(res.rids.tolist()) == set(rids[mask].tolist())


class TestKeysOnly:
    def test_same_keys_less_io(self, store, trace_keys):
        full = store.query(0, 0.5, 2.0)
        ko = store.query(0, 0.5, 2.0, keys_only=True)
        assert np.array_equal(np.sort(full.keys), ko.keys)
        assert ko.cost.bytes_read < full.cost.bytes_read
        assert np.all(ko.rids == 0)

    def test_empty_range(self, store, trace_keys):
        hi = float(trace_keys[0].max())
        res = store.query(0, hi + 5, hi + 6, keys_only=True)
        assert len(res) == 0

    def test_counts_match_brute_force(self, store, trace_keys):
        keys = trace_keys[0]
        res = store.query(0, 1.0, 4.0, keys_only=True)
        assert len(res) == int(np.count_nonzero((keys >= 1.0) & (keys <= 4.0)))


class TestConcurrentClients:
    def test_multiple_stores_in_threads(self, carp_output, trace_keys,
                                        trace_rids):
        """Paper §V-D: query clients open logs read-only, so multiple
        concurrent clients are automatically supported — one store per
        client (a store holds per-file cursors and is not itself
        shareable across threads)."""
        from concurrent.futures import ThreadPoolExecutor

        keys, rids = trace_keys[0], trace_rids[0]

        def client(seed):
            rng = np.random.default_rng(seed)
            with PartitionedStore(carp_output["dir"]) as s:
                out = []
                for _ in range(5):
                    a, b = np.sort(rng.uniform(keys.min(), keys.max(), 2))
                    res = s.query(0, float(a), float(b))
                    mask = (keys >= a) & (keys <= b)
                    out.append(set(res.rids.tolist()) ==
                               set(rids[mask].tolist()))
                return all(out)

        with ThreadPoolExecutor(max_workers=4) as pool:
            results = list(pool.map(client, range(4)))
        assert all(results)
