"""Probes touch only in-range SST byte ranges — nothing else.

Before the mmap readers, ``PartitionedStore.query`` re-read whole log
files per probe; this pins the fix.  ``LogReader.touched`` records the
``(offset, length)`` of every span actually consulted, so the test can
assert byte-range containment exactly: every touched span lies inside
a manifest entry that overlaps the query, the totals reconcile with
the cost report ``carp-explain`` renders, and a narrow query reads
strictly less than the file.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.carp import CarpRun
from repro.core.config import CarpOptions
from repro.core.records import RecordBatch
from repro.query.engine import PartitionedStore
from repro.storage.blocks import key_block_size
from repro.storage.log import list_logs
from repro.storage.sstable import HEADER_SIZE

OPTIONS = CarpOptions(
    pivot_count=16,
    oob_capacity=32,
    renegotiations_per_epoch=2,
    memtable_records=64,
    round_records=32,
    value_size=24,
)

NRANKS = 2
EPOCHS = 2

#: A narrow slice of the [0, 100] key domain: overlaps some SSTs per
#: epoch but nowhere near all of them.
LO, HI = 40.0, 45.0


@pytest.fixture(scope="module")
def db_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("attribution")
    with CarpRun(NRANKS, out, OPTIONS) as run:
        for epoch in range(EPOCHS):
            streams = [
                RecordBatch(
                    np.linspace(rank, 100.0 + rank, 400, dtype="<f4"),
                    np.arange(400, dtype="<u8")
                    + np.uint64(rank) * np.uint64(1 << 32),
                    OPTIONS.value_size,
                )
                for rank in range(NRANKS)
            ]
            run.ingest_epoch(epoch, streams)
    return out


def _spans_within(touched, allowed) -> bool:
    """Every touched (offset, length) lies inside one allowed entry."""
    return all(
        any(off >= a_off and off + length <= a_off + a_len
            for a_off, a_len in allowed)
        for off, length in touched
    )


@pytest.mark.parametrize("keys_only", [False, True], ids=["values", "keys"])
def test_probe_touches_only_in_range_entries(db_dir, keys_only):
    with PartitionedStore(db_dir) as store:
        result = store.query(0, LO, HI, keys_only=keys_only)
        assert len(result.keys) > 0
        candidates = store.overlapping_entries(0, LO, HI)
        assert candidates, "narrow query should still overlap some SSTs"
        by_reader: dict[int, list] = {}
        for reader_idx, entry in candidates:
            by_reader.setdefault(reader_idx, []).append(entry)
        total_touched = 0
        for reader_idx, reader in enumerate(store._readers):
            allowed = [
                (e.offset, e.length) for e in by_reader.get(reader_idx, [])
            ]
            assert _spans_within(reader.touched, allowed), (
                f"{reader.path.name}: touched spans escape the in-range "
                f"entries: {reader.touched} vs {allowed}"
            )
            # one span per candidate entry — not one per file
            assert len(reader.touched) == len(allowed)
            total_touched += sum(length for _, length in reader.touched)
        # the touched bytes ARE the accounted bytes (carp-explain
        # reconciles against the same counters)
        assert total_touched == result.cost.bytes_read
        # and strictly less than re-reading the files whole
        file_bytes = sum(p.stat().st_size for p in list_logs(db_dir))
        assert total_touched < file_bytes / 2


def test_keys_only_touches_key_prefix_only(db_dir):
    with PartitionedStore(db_dir) as store:
        store.query(0, LO, HI, keys_only=True)
        candidates = dict(
            ((i, e.offset), e) for i, e in store.overlapping_entries(0, LO, HI)
        )
        for reader_idx, reader in enumerate(store._readers):
            for offset, length in reader.touched:
                entry = candidates[(reader_idx, offset)]
                expected = min(
                    HEADER_SIZE + key_block_size(entry.count), entry.length
                )
                assert length == expected
                # with real value payloads the key prefix is a strict
                # subset of the SST — value blocks stay untouched
                assert length < entry.length


def test_other_epoch_entries_untouched(db_dir):
    with PartitionedStore(db_dir) as store:
        store.query(1, LO, HI)
        epoch0 = {
            (i, e.offset) for i, e in store.entries(epoch=0)
        }
        for reader_idx, reader in enumerate(store._readers):
            for offset, _length in reader.touched:
                assert (reader_idx, offset) not in epoch0
