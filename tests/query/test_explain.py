"""EXPLAIN reports: exact reconciliation with the executed query."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro import Session
from repro.core.config import CarpOptions
from repro.obs import Obs
from repro.query.engine import PartitionedStore
from repro.query.explain import QueryExplain
from repro.traces.vpic import VpicTraceSpec, generate_timestep

RANGES = [
    (0, 0.1, 0.5, False),
    (0, 1.0, 10.0, False),
    (0, 30.0, 60.0, True),
    (1, 0.5, 2.0, False),
    (0, -5.0, -1.0, False),  # empty result
]


@pytest.fixture(scope="module")
def store(carp_output):
    with PartitionedStore(carp_output["dir"]) as s:
        yield s


@pytest.mark.parametrize("epoch,lo,hi,keys_only", RANGES)
def test_explain_reconciles_with_measured_cost(store, epoch, lo, hi,
                                               keys_only):
    report = store.explain(epoch, lo, hi, keys_only=keys_only)
    measured = store.query(epoch, lo, hi, keys_only=keys_only).cost
    assert report.reconcile(measured) == []
    assert report.cost == measured


def test_explain_covers_every_log_with_epoch_data(store):
    report = store.explain(0, 0.5, 2.0)
    # one row per log holding epoch data, including logs the range
    # never touches (zero-filled), so the plan shows what was *pruned*
    readers_with_data = {idx for idx, _ in store.entries(0)}
    assert len(report.logs) == len(readers_with_data)
    for log in report.logs:
        assert log.ssts_read == len(log.entries)
        assert log.ssts_read <= log.ssts_considered
    # a selective range must actually prune SSTs somewhere
    assert report.cost.ssts_read < report.cost.ssts_considered


def test_explain_on_compacted_store(sorted_output):
    with PartitionedStore(sorted_output) as store:
        epoch = store.epochs()[0]
        lo, hi = store.key_range(epoch)
        report = store.explain(epoch, lo, (lo + hi) / 2)
        measured = store.query(epoch, lo, (lo + hi) / 2).cost
        assert report.reconcile(measured) == []


def test_explain_records_no_observability(carp_output):
    obs = Obs.recording()
    with PartitionedStore(carp_output["dir"], obs=obs) as store:
        before_events = len(obs.tracer.to_doc()["traceEvents"])
        before_metrics = json.dumps(obs.metrics.snapshot(), sort_keys=True)
        store.explain(0, 0.5, 2.0)
        assert len(obs.tracer.to_doc()["traceEvents"]) == before_events
        assert json.dumps(obs.metrics.snapshot(),
                          sort_keys=True) == before_metrics


def test_reconcile_flags_tampered_cost(store):
    report = store.explain(0, 0.5, 2.0)
    bad_cost = dataclasses.replace(report.cost,
                                   bytes_read=report.cost.bytes_read + 1)
    tampered = dataclasses.replace(report, cost=bad_cost)
    errors = tampered.reconcile()
    assert errors and any("bytes_read" in e for e in errors)
    # and a measured-cost mismatch is reported field-by-field
    errors = report.reconcile(bad_cost)
    assert errors and any("measured" in e for e in errors)


def test_report_serializes_and_renders(store):
    report = store.explain(0, 0.5, 2.0, keys_only=True)
    doc = json.loads(json.dumps(report.to_dict()))
    assert doc["epoch"] == 0
    assert doc["keys_only"] is True
    assert len(doc["logs"]) == len(report.logs)
    assert doc["cost"]["latency"] == report.cost.latency
    text = report.render_text()
    assert "EXPLAIN epoch 0" in text
    assert "keys only" in text
    for log in report.logs:
        assert log.log in text


def test_session_explain_passthrough(tmp_path):
    spec = VpicTraceSpec(nranks=4, particles_per_rank=400, value_size=8,
                         seed=3)
    options = CarpOptions(pivot_count=32, oob_capacity=32,
                          renegotiations_per_epoch=2, memtable_records=256,
                          round_records=128, value_size=8)
    with Session(spec.nranks, tmp_path, options) as session:
        session.ingest_epoch(0, generate_timestep(spec, 0))
        report = session.explain(0, 0.5, 2.0)
        assert isinstance(report, QueryExplain)
        assert report.reconcile(session.query(0, 0.5, 2.0).cost) == []
