"""Unit tests for the 3-hop overlay topology."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.shuffle.overlay import Overlay3Hop


class TestOverlay3Hop:
    def test_nnodes(self):
        assert Overlay3Hop(32, ranks_per_node=16).nnodes == 2
        assert Overlay3Hop(33, ranks_per_node=16).nnodes == 3

    def test_node_of(self):
        ov = Overlay3Hop(32, ranks_per_node=16)
        assert ov.node_of(0) == 0
        assert ov.node_of(15) == 0
        assert ov.node_of(16) == 1

    def test_same_rank_path(self):
        ov = Overlay3Hop(32, 16)
        assert ov.path(3, 3) == [3]
        assert ov.hop_count(3, 3) == 0

    def test_same_node_path_is_direct(self):
        ov = Overlay3Hop(32, 16)
        assert ov.path(1, 7) == [1, 7]
        assert ov.hop_count(1, 7) == 1

    def test_cross_node_at_most_three_hops(self):
        ov = Overlay3Hop(64, 16)
        for src in range(0, 64, 7):
            for dst in range(0, 64, 11):
                assert ov.hop_count(src, dst) <= 3

    def test_path_endpoints(self):
        ov = Overlay3Hop(48, 16)
        path = ov.path(2, 40)
        assert path[0] == 2 and path[-1] == 40

    def test_path_has_no_consecutive_duplicates(self):
        ov = Overlay3Hop(48, 16)
        for src, dst in [(0, 47), (15, 16), (0, 16), (17, 1)]:
            path = ov.path(src, dst)
            assert all(a != b for a, b in zip(path, path[1:]))

    def test_intermediate_hops_on_correct_nodes(self):
        ov = Overlay3Hop(64, 16)
        path = ov.path(2, 50)
        # second hop on source node, third on destination node
        assert ov.node_of(path[1]) == ov.node_of(2)
        assert ov.node_of(path[-2]) == ov.node_of(50)

    def test_connection_scaling_beats_all_to_all(self):
        """Per-rank flows grow far slower than N-1 (what makes DeltaFS's
        overlay scale to 131072 ranks)."""
        ov = Overlay3Hop(131072, 16)
        assert ov.connections_per_rank() < 10_000  # vs 131071 direct

    def test_rank_bounds_checked(self):
        ov = Overlay3Hop(8, 4)
        with pytest.raises(IndexError):
            ov.path(0, 8)
        with pytest.raises(IndexError):
            ov.node_of(-1)

    def test_validation(self):
        with pytest.raises(ValueError):
            Overlay3Hop(0)
        with pytest.raises(ValueError):
            Overlay3Hop(8, 0)

    def test_partial_last_node(self):
        ov = Overlay3Hop(20, 16)  # second node has only 4 ranks
        path = ov.path(0, 18)
        assert path[-1] == 18
        assert all(0 <= r < 20 for r in path)

    @given(
        nranks=st.integers(1, 200),
        rpn=st.integers(1, 32),
        src=st.integers(0, 199),
        dst=st.integers(0, 199),
    )
    @settings(max_examples=100)
    def test_path_valid_for_any_pair(self, nranks, rpn, src, dst):
        if src >= nranks or dst >= nranks:
            return
        ov = Overlay3Hop(nranks, rpn)
        path = ov.path(src, dst)
        assert path[0] == src and path[-1] == dst
        assert len(path) <= 4
        assert all(0 <= r < nranks for r in path)
