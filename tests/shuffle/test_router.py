"""Unit tests for shuffle routing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.partition import OOB_DEST, PartitionTable
from repro.core.records import RecordBatch
from repro.shuffle.router import hash_route, range_route, split_by_destination


def batch(*keys):
    return RecordBatch.from_keys(np.array(keys, dtype=np.float32), value_size=8)


class TestRangeRoute:
    def test_routes_by_partition(self):
        table = PartitionTable(np.array([0.0, 1.0, 2.0]))
        dests = range_route(batch(0.5, 1.5), table)
        assert dests.tolist() == [0, 1]

    def test_oob_marked(self):
        table = PartitionTable(np.array([0.0, 1.0]))
        dests = range_route(batch(-1.0, 0.5, 2.0), table)
        assert dests.tolist() == [OOB_DEST, 0, OOB_DEST]


class TestHashRoute:
    def test_in_range(self):
        dests = hash_route(batch(*np.random.default_rng(0).random(100)), 8)
        assert np.all((dests >= 0) & (dests < 8))

    def test_deterministic(self):
        b = batch(1.0, 2.0, 3.0)
        assert np.array_equal(hash_route(b, 4), hash_route(b, 4))

    def test_depends_on_rid_not_key(self):
        a = RecordBatch(np.array([1.0], np.float32), np.array([5], np.uint64), 8)
        b = RecordBatch(np.array([9.0], np.float32), np.array([5], np.uint64), 8)
        assert hash_route(a, 16)[0] == hash_route(b, 16)[0]

    def test_roughly_uniform(self):
        b = RecordBatch.from_keys(np.zeros(8000, np.float32), value_size=8)
        counts = np.bincount(hash_route(b, 8), minlength=8)
        assert counts.min() > 800  # perfect = 1000

    def test_nranks_validation(self):
        with pytest.raises(ValueError):
            hash_route(batch(1.0), 0)

    def test_single_rank(self):
        assert np.all(hash_route(batch(1.0, 2.0), 1) == 0)


class TestSplitByDestination:
    def test_split(self):
        table = PartitionTable(np.array([0.0, 1.0, 2.0]))
        b = batch(0.1, 1.5, 0.9, 5.0)
        per_dest, oob = split_by_destination(b, range_route(b, table))
        assert sorted(per_dest) == [0, 1]
        assert per_dest[0].keys.tolist() == pytest.approx([0.1, 0.9])
        assert per_dest[1].keys.tolist() == [1.5]
        assert oob.keys.tolist() == [5.0]

    def test_all_oob(self):
        table = PartitionTable(np.array([0.0, 1.0]))
        b = batch(5.0, 6.0)
        per_dest, oob = split_by_destination(b, range_route(b, table))
        assert per_dest == {}
        assert len(oob) == 2

    def test_no_oob(self):
        b = batch(0.1, 0.2)
        per_dest, oob = split_by_destination(b, np.array([0, 0]))
        assert len(oob) == 0
        assert len(per_dest[0]) == 2

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            split_by_destination(batch(1.0), np.array([0, 1]))

    def test_preserves_order_within_destination(self):
        b = batch(0.3, 0.1, 0.2)
        per_dest, _ = split_by_destination(b, np.array([0, 0, 0]))
        assert per_dest[0].keys.tolist() == pytest.approx([0.3, 0.1, 0.2])

    @given(st.lists(st.floats(-5, 5, allow_nan=False, width=32), max_size=60))
    @settings(max_examples=40)
    def test_partition_of_batch(self, values):
        """split is a partition: no record lost, none duplicated."""
        b = RecordBatch.from_keys(np.array(values, np.float32), value_size=8)
        table = PartitionTable(np.array([-1.0, 0.0, 1.0, 2.0]))
        per_dest, oob = split_by_destination(b, range_route(b, table))
        pieces = [oob] + list(per_dest.values())
        got = np.concatenate([p.rids for p in pieces]) if pieces else []
        assert sorted(got.tolist()) == sorted(b.rids.tolist())
