"""Unit tests for the delivery-delay queue."""

import numpy as np
import pytest

from repro.core.records import RecordBatch
from repro.shuffle.flow import DelayQueue


def batch(n=1):
    return RecordBatch.from_keys(np.arange(n, dtype=np.float32), value_size=8)


class TestDelayQueue:
    def test_zero_delay_delivers_same_tick(self):
        q = DelayQueue(0)
        q.send(0, batch(3), table_version=1)
        arrived = q.tick()
        assert len(arrived) == 1
        assert len(arrived[0].batch) == 3

    def test_one_round_delay(self):
        q = DelayQueue(1)
        q.send(0, batch(), 1)
        assert q.tick() == []
        assert len(q.tick()) == 1

    def test_two_round_delay(self):
        q = DelayQueue(2)
        q.send(0, batch(), 1)
        assert q.tick() == []
        assert q.tick() == []
        assert len(q.tick()) == 1

    def test_fifo_within_slot(self):
        q = DelayQueue(0)
        q.send(0, batch(1), 1)
        q.send(1, batch(2), 1)
        arrived = q.tick()
        assert [m.dest for m in arrived] == [0, 1]

    def test_in_flight_accounting(self):
        q = DelayQueue(2)
        q.send(0, batch(5), 1)
        q.send(1, batch(3), 1)
        assert q.in_flight == 8
        q.tick()
        assert q.in_flight == 8
        q.tick()
        q.tick()
        assert q.in_flight == 0

    def test_message_carries_table_version(self):
        q = DelayQueue(0)
        q.send(2, batch(), table_version=7)
        assert q.tick()[0].table_version == 7

    def test_empty_batch_dropped(self):
        q = DelayQueue(0)
        q.send(0, RecordBatch.empty(8), 1)
        assert q.tick() == []

    def test_negative_dest_rejected(self):
        with pytest.raises(ValueError):
            DelayQueue(0).send(-1, batch(), 1)

    def test_drain_flushes_everything(self):
        q = DelayQueue(3)
        q.send(0, batch(2), 1)
        q.tick()
        q.send(1, batch(4), 2)
        arrived = q.drain()
        assert sum(len(m.batch) for m in arrived) == 6
        assert q.in_flight == 0
        assert q.tick() == []

    def test_delay_validation(self):
        with pytest.raises(ValueError):
            DelayQueue(-1)

    def test_interleaved_sends_and_ticks(self):
        q = DelayQueue(1)
        q.send(0, batch(1), 1)
        assert q.tick() == []
        q.send(0, batch(2), 2)
        first = q.tick()
        assert len(first) == 1 and len(first[0].batch) == 1
        second = q.tick()
        assert len(second) == 1 and len(second[0].batch) == 2
