"""End-to-end tests for the artifact-equivalent CLI tools."""

import csv

import numpy as np
import pytest

from repro.tools.compactor_cli import main as compactor_main
from repro.tools.range_reader_cli import main as reader_main
from repro.tools.range_runner import main as runner_main, reshard
from repro.core.records import RecordBatch
from repro.traces import io as trace_io
from repro.traces.vpic import VpicTraceSpec, generate_timestep

SPEC = VpicTraceSpec(nranks=8, particles_per_rank=500,
                     timesteps=(200, 2000), seed=31, value_size=8)


@pytest.fixture(scope="module")
def trace_dir(tmp_path_factory):
    d = tmp_path_factory.mktemp("cli_trace")
    for i, ts in enumerate(SPEC.timesteps):
        trace_io.write_timestep(d, ts, generate_timestep(SPEC, i))
    return d


@pytest.fixture(scope="module")
def carp_dir(trace_dir, tmp_path_factory):
    out = tmp_path_factory.mktemp("cli_carp")
    rc = runner_main([
        "-i", str(trace_dir), "-o", str(out), "-n", "4",
        "--pivots", "64", "--oob", "64", "--memtable", "256",
    ])
    assert rc == 0
    return out


class TestReshard:
    def test_round_robin(self):
        streams = [
            RecordBatch.from_keys(np.full(10, r, np.float32), rank=r,
                                  value_size=8)
            for r in range(6)
        ]
        out = reshard(streams, 4)
        assert len(out) == 4
        assert [len(b) for b in out] == [20, 20, 10, 10]

    def test_total_preserved(self):
        streams = [
            RecordBatch.from_keys(np.zeros(7, np.float32), rank=r,
                                  value_size=8)
            for r in range(3)
        ]
        assert sum(len(b) for b in reshard(streams, 8)) == 21


class TestRangeRunner:
    def test_produces_koidb_logs(self, carp_dir):
        from repro.storage.log import list_logs

        assert len(list_logs(carp_dir)) == 4

    def test_all_records_stored(self, carp_dir):
        from repro.query.engine import PartitionedStore

        with PartitionedStore(carp_dir) as store:
            assert store.total_records(0) == 4000
            assert store.total_records(1) == 4000

    def test_missing_trace_errors(self, tmp_path, capsys):
        rc = runner_main(["-i", str(tmp_path / "nope"), "-o",
                          str(tmp_path / "out")])
        assert rc == 2

    def test_unknown_timestep_errors(self, trace_dir, tmp_path):
        rc = runner_main([
            "-i", str(trace_dir), "-o", str(tmp_path / "out"),
            "--timesteps", "999",
        ])
        assert rc == 2

    def test_timestep_subset(self, trace_dir, tmp_path):
        out = tmp_path / "subset"
        rc = runner_main([
            "-i", str(trace_dir), "-o", str(out), "-n", "4",
            "--oob", "64", "--timesteps", "2000",
        ])
        assert rc == 0
        from repro.query.engine import PartitionedStore

        with PartitionedStore(out) as store:
            assert store.epochs() == [0]


class TestCompactor:
    def test_compact_single_epoch(self, carp_dir, tmp_path):
        out = tmp_path / "sorted"
        rc = compactor_main(["-i", str(carp_dir), "-o", str(out), "-e", "0"])
        assert rc == 0
        assert (out / "0").is_dir()

    def test_compact_all(self, carp_dir, tmp_path):
        out = tmp_path / "sorted_all"
        rc = compactor_main(["-i", str(carp_dir), "-o", str(out), "--all"])
        assert rc == 0
        assert (out / "0").is_dir() and (out / "1").is_dir()

    def test_missing_input_errors(self, tmp_path):
        rc = compactor_main(["-i", str(tmp_path / "nope"), "-o",
                             str(tmp_path / "out"), "-e", "0"])
        assert rc == 2


class TestRangeReader:
    def test_analyze(self, carp_dir, capsys):
        rc = reader_main(["-i", str(carp_dir), "-a"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "median selectivity" in out
        assert "epochs: [0, 1]" in out

    def test_query(self, carp_dir, capsys):
        rc = reader_main(["-i", str(carp_dir), "-q", "-e", "0",
                          "-x", "0.0", "-y", "100.0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "matched 4000 records" in out

    def test_query_missing_args(self, carp_dir, capsys):
        rc = reader_main(["-i", str(carp_dir), "-q"])
        assert rc == 2

    def test_batch(self, carp_dir, tmp_path, capsys):
        batch = tmp_path / "batch.csv"
        batch.write_text("0,0.1,0.5\n1,0.1,0.5\n")
        qlog = tmp_path / "qlog.csv"
        rc = reader_main(["-i", str(carp_dir), "-b", str(batch),
                          "--querylog", str(qlog)])
        assert rc == 0
        rows = list(csv.reader(qlog.open()))
        assert len(rows) == 3  # header + 2 queries

    def test_missing_store_errors(self, tmp_path):
        rc = reader_main(["-i", str(tmp_path / "nope"), "-a"])
        assert rc == 2


class TestTracegen:
    def test_vpic_trace_generated(self, tmp_path):
        from repro.tools.tracegen import main as tracegen_main

        rc = tracegen_main([
            "-o", str(tmp_path / "t"), "--workload", "vpic",
            "--ranks", "4", "--records", "50",
            "--timesteps", "200", "2000",
        ])
        assert rc == 0
        assert trace_io.list_timesteps(tmp_path / "t") == [200, 2000]
        assert len(trace_io.list_ranks(tmp_path / "t", 200)) == 4

    def test_amr_trace_generated(self, tmp_path):
        from repro.tools.tracegen import main as tracegen_main

        rc = tracegen_main([
            "-o", str(tmp_path / "t"), "--workload", "amr",
            "--ranks", "2", "--records", "30",
        ])
        assert rc == 0
        assert len(trace_io.list_timesteps(tmp_path / "t")) >= 1

    def test_bad_geometry_errors(self, tmp_path):
        from repro.tools.tracegen import main as tracegen_main

        rc = tracegen_main(["-o", str(tmp_path / "t"), "--ranks", "0"])
        assert rc == 2

    def test_chains_into_range_runner(self, tmp_path):
        from repro.tools.tracegen import main as tracegen_main

        assert tracegen_main([
            "-o", str(tmp_path / "t"), "--ranks", "4", "--records", "200",
            "--timesteps", "200",
        ]) == 0
        assert runner_main([
            "-i", str(tmp_path / "t"), "-o", str(tmp_path / "out"),
            "-n", "2", "--oob", "64", "--memtable", "128",
        ]) == 0
        from repro.query.engine import PartitionedStore

        with PartitionedStore(tmp_path / "out") as store:
            assert store.total_records(0) == 800


class TestExplainCli:
    def test_reconciles_and_exits_zero(self, carp_dir, capsys):
        from repro.tools.explain_cli import main as explain_main

        rc = explain_main([str(carp_dir), "--lo", "0.5", "--hi", "2.0"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "EXPLAIN epoch" in out
        assert "reconciliation: explain cost == measured QueryCost" in out

    def test_json_report_verified(self, carp_dir, capsys):
        import json

        from repro.tools.explain_cli import main as explain_main

        rc = explain_main([str(carp_dir), "--json", "--keys-only"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["verified"] is True
        assert doc["keys_only"] is True
        assert doc["logs"]
        totals = sum(l["bytes_read"] for l in doc["logs"])
        assert totals == doc["cost"]["bytes_read"]

    def test_bad_epoch_errors(self, carp_dir, capsys):
        from repro.tools.explain_cli import main as explain_main

        rc = explain_main([str(carp_dir), "--epoch", "99"])
        assert rc == 2
        assert "epoch 99" in capsys.readouterr().err

    def test_missing_store_errors(self, tmp_path):
        from repro.tools.explain_cli import main as explain_main

        assert explain_main([str(tmp_path / "nope")]) == 2


class TestTraceCli:
    def test_top_spans_report(self, tmp_path, capsys):
        from repro.tools.trace_cli import main as trace_main

        rc = trace_main([
            "-o", str(tmp_path / "obs"), "--ranks", "4", "--epochs", "2",
            "--records", "300", "--top", "3",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Top 3 spans per track type" in out
        # worker-side flush spans must surface in the ranking
        assert "flush" in out
        assert (tmp_path / "obs" / "trace.json").is_file()
        # telemetry plane artifacts ride along
        assert (tmp_path / "obs" / "db" / "telemetry.jsonl").is_file()
        assert (tmp_path / "obs" / "db" / "metrics.om").is_file()

    def _recorded(self, tmp_path, capsys):
        from repro.tools.trace_cli import main as trace_main

        out_dir = tmp_path / "obs"
        rc = trace_main([
            "-o", str(out_dir), "--ranks", "4", "--epochs", "2",
            "--records", "300",
        ])
        capsys.readouterr()
        assert rc == 0
        return out_dir

    def test_output_required_without_report(self, capsys):
        from repro.tools.trace_cli import main as trace_main

        assert trace_main([]) == 2
        assert "--output is required" in capsys.readouterr().err

    def test_report_mode_re_renders(self, tmp_path, capsys):
        from repro.tools.trace_cli import main as trace_main

        out_dir = self._recorded(tmp_path, capsys)
        rc = trace_main(["--report", str(out_dir)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "CARP run" in out
        assert "Metrics snapshot" in out
        assert "note:" not in out  # complete artifacts need no caveats

    def test_report_mode_degrades_on_legacy_metrics(self, tmp_path, capsys):
        """A metrics.json without histograms is annotated, not fatal."""
        import json

        from repro.tools.trace_cli import main as trace_main

        out_dir = self._recorded(tmp_path, capsys)
        metrics_path = out_dir / "metrics.json"
        snapshot = json.loads(metrics_path.read_text())
        del snapshot["histograms"]  # simulate a pre-histogram recording
        metrics_path.write_text(json.dumps(snapshot))
        rc = trace_main(["--report", str(out_dir)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "note: legacy snapshot: no 'histograms' section" in out

    def test_report_mode_degrades_on_trace_only_directory(self, tmp_path,
                                                          capsys):
        """Pruned archives keep their span timeline readable.

        A directory holding only ``trace.json`` (metrics and telemetry
        pruned) must render a partial report with a warning — not
        exit 2 — because the span timeline is useful on its own.
        """
        from repro.tools.trace_cli import main as trace_main

        out_dir = self._recorded(tmp_path, capsys)
        (out_dir / "metrics.json").unlink()
        (out_dir / "db" / "telemetry.jsonl").unlink()
        rc = trace_main(["--report", str(out_dir)])
        captured = capsys.readouterr()
        assert rc == 0
        assert "warning:" in captured.err
        assert "metrics.json" in captured.err
        assert "CARP run" in captured.out  # the report still renders
        assert "report is partial" in captured.out
        assert "telemetry.jsonl missing" in captured.out

    def test_report_mode_missing_artifacts_exit_two(self, tmp_path, capsys):
        from repro.tools.trace_cli import main as trace_main

        assert trace_main(["--report", str(tmp_path / "nope")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_request_tree_from_archived_trace(self, tmp_path, capsys):
        from repro.tools.trace_cli import main as trace_main

        out_dir = self._recorded(tmp_path, capsys)
        rc = trace_main([
            "--report", str(out_dir), "--request", "ingest-000001",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Spans for request ingest-000001" in out
        # the cross-worker tree: the driver epoch span plus worker flushes
        assert "epoch" in out
        assert "flush" in out
