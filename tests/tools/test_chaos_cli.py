"""The ``carp-chaos`` CLI: exit codes, bundles, scratch handling."""

import json

from repro.faults import chaos
from repro.faults.plan import FaultPlan
from repro.tools.chaos_cli import main


def test_passing_seeds_exit_zero(tmp_path, capsys):
    rc = main(["--seeds", "2", "--out", str(tmp_path / "scratch")])
    captured = capsys.readouterr()
    assert rc == 0
    assert "2 seed(s)" in captured.out
    assert "0 failed" in captured.out


def test_keep_retains_scratch_directories(tmp_path):
    out = tmp_path / "scratch"
    rc = main(["--seeds", "1", "--out", str(out), "--keep"])
    assert rc == 0
    names = {p.name for p in out.iterdir()}
    assert "seed0-ref" in names
    assert {f"seed0-{b}" for b, _ in chaos.CHAOS_BACKENDS} <= names


def test_scratch_removed_for_passing_seeds(tmp_path):
    out = tmp_path / "scratch"
    rc = main(["--seeds", "1", "--out", str(out)])
    assert rc == 0
    assert list(out.iterdir()) == []


def test_nonpositive_seed_count_rejected(capsys):
    assert main(["--seeds", "0"]) == 2
    assert "--seeds" in capsys.readouterr().err


def test_failing_seed_writes_repro_bundle(tmp_path, monkeypatch, capsys):
    def fake_run_seed(seed, base_dir):
        result = chaos.SeedResult(seed=seed, plan=FaultPlan(seed=seed))
        result.failures.append("rank 0: COMMITTED DATA LOST (synthetic)")
        return result

    monkeypatch.setattr(chaos, "run_seed", fake_run_seed)
    bundles = tmp_path / "bundles"
    rc = main(
        [
            "--seeds", "3",
            "--seed-start", "40",
            "--out", str(tmp_path / "scratch"),
            "--bundle-dir", str(bundles),
        ]
    )
    captured = capsys.readouterr()
    assert rc == 1
    assert "failing seeds: 40, 41, 42" in captured.err
    bundle = json.loads((bundles / "chaos-seed-41.json").read_text())
    assert bundle["seed"] == 41
    assert bundle["plan"] == {"seed": 41, "specs": []}
    assert any("COMMITTED DATA LOST" in f for f in bundle["failures"])
