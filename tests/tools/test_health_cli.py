"""``carp-health`` end to end: breach gating over real telemetry."""

from __future__ import annotations

import json
from pathlib import Path

from repro.api import Session
from repro.core.config import CarpOptions
from repro.tools.health_cli import main as health_main
from repro.traces.vpic import VpicTraceSpec, generate_timestep

REPO = Path(__file__).resolve().parents[2]
DEFAULT_POLICY = REPO / "configs" / "health_default.json"

OPTIONS = CarpOptions(
    pivot_count=32,
    oob_capacity=32,
    renegotiations_per_epoch=2,
    memtable_records=256,
    round_records=128,
    value_size=8,
)


def _telemetry_run(out_dir: Path) -> Path:
    spec = VpicTraceSpec(nranks=4, particles_per_rank=400, value_size=8,
                         seed=17)
    with Session(spec.nranks, out_dir, OPTIONS, record=True,
                 telemetry=True) as session:
        session.ingest_epoch(0, generate_timestep(spec, 0))
        store = session.store()
        (epoch,) = store.epochs()
        lo, hi = store.key_range(epoch)
        session.query(epoch, lo, lo + (hi - lo) / 8)
    return out_dir / "telemetry.jsonl"


def _policy_file(tmp_path: Path, rules: list[dict]) -> Path:
    path = tmp_path / "policy.json"
    path.write_text(json.dumps({"name": "seeded", "rules": rules}))
    return path


def test_clean_run_passes_default_policy(tmp_path, capsys):
    telemetry = _telemetry_run(tmp_path / "out")
    rc = health_main([str(telemetry), "--policy", str(DEFAULT_POLICY)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "0 breach(es)" in out


def test_seeded_breach_exits_nonzero(tmp_path, capsys):
    telemetry = _telemetry_run(tmp_path / "out")
    # impossible bar: any ingest breaches a zero-record ceiling
    policy = _policy_file(tmp_path, [
        {"selector": "counters.carp.records_ingested", "max": 0,
         "description": "seeded breach"},
    ])
    rc = health_main([str(telemetry), "--policy", str(policy)])
    out = capsys.readouterr().out
    assert rc == 1
    assert "1 breach(es)" in out
    assert "BREACH" in out


def test_json_report_written(tmp_path):
    telemetry = _telemetry_run(tmp_path / "out")
    report_path = tmp_path / "health" / "report.json"
    rc = health_main([
        str(telemetry), "--policy", str(DEFAULT_POLICY),
        "--json", str(report_path),
    ])
    assert rc == 0
    doc = json.loads(report_path.read_text())
    assert doc["ok"] is True
    assert doc["policy"] == "carp-default"
    assert {r["status"] for r in doc["results"]} <= {"ok", "skipped"}


def test_strict_skips_fails_on_unresolved_selector(tmp_path, capsys):
    telemetry = _telemetry_run(tmp_path / "out")
    policy = _policy_file(tmp_path, [
        {"selector": "counters.never.emitted", "max": 0},
    ])
    assert health_main([str(telemetry), "--policy", str(policy)]) == 0
    rc = health_main([
        str(telemetry), "--policy", str(policy), "--strict-skips",
    ])
    assert rc == 1
    assert "unresolved selectors" in capsys.readouterr().err


def test_usage_errors_exit_two(tmp_path, capsys):
    telemetry = _telemetry_run(tmp_path / "out")
    missing_policy = tmp_path / "nope.json"
    assert health_main([str(telemetry), "--policy",
                        str(missing_policy)]) == 2
    bad_policy = _policy_file(tmp_path, [])
    bad_policy.write_text("{not json")
    assert health_main([str(telemetry), "--policy", str(bad_policy)]) == 2
    assert health_main([str(tmp_path / "missing.jsonl"), "--policy",
                        str(DEFAULT_POLICY)]) == 2
    err = capsys.readouterr().err
    assert "cannot load policy" in err
    assert "cannot read telemetry" in err


def test_truncated_stream_is_a_usage_error(tmp_path, capsys):
    telemetry = _telemetry_run(tmp_path / "out")
    clipped = tmp_path / "clipped.jsonl"
    text = telemetry.read_text()
    clipped.write_text(text[: len(text) // 2])
    rc = health_main([str(clipped), "--policy", str(DEFAULT_POLICY)])
    assert rc == 2
    assert "not valid JSON" in capsys.readouterr().err
