"""carp-profile: record/diff over archived artifacts, byte-stable.

The CLI never runs a workload — everything here operates on artifact
directories built by hand (exact, fast) plus one real ``carp-trace``
recording for the end-to-end exact-reconciliation path.
"""

from __future__ import annotations

import json

from repro.tools.profile_cli import main as profile_main


def _events(extra_flush_child: bool = False) -> list[dict]:
    events = [
        {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
         "args": {"name": "flush"}},
        {"name": "flush", "ph": "B", "ts": 0.0, "pid": 1, "tid": 1,
         "args": {"records": 10}},
    ]
    if extra_flush_child:
        events += [
            {"name": "checksum", "ph": "B", "ts": 0.2, "pid": 1, "tid": 1,
             "args": {}},
            {"ph": "E", "ts": 0.9, "pid": 1, "tid": 1, "args": {}},
        ]
    # the hot-span variant ends later by exactly the injected child's
    # duration, so the parent's *self* time is unchanged and the diff
    # blames the checksum frame alone
    end_ts = 2.2 if extra_flush_child else 1.5
    events.append(
        {"ph": "E", "ts": end_ts, "pid": 1, "tid": 1, "args": {"bytes": 100}}
    )
    return events


def _write_artifacts(directory, *, records=10, bytes_written=100,
                     hot_span=False, metrics=True):
    directory.mkdir(parents=True, exist_ok=True)
    (directory / "trace.json").write_text(
        json.dumps({"traceEvents": _events(hot_span)})
    )
    if metrics:
        (directory / "metrics.json").write_text(json.dumps({
            "counters": {
                "koidb.records_in": records,
                "koidb.bytes_written": bytes_written,
            },
        }))
    return directory


class TestRecord:
    def test_writes_profile_and_reconciles_exactly(self, tmp_path, capsys):
        d = _write_artifacts(tmp_path / "run")
        assert profile_main(["record", str(d)]) == 0
        out = capsys.readouterr().out
        assert "profile totals match metrics counters exactly" in out
        assert (d / "profile.json").is_file()
        assert (d / "profile.folded").is_file()
        doc = json.loads((d / "profile.json").read_text())
        assert doc["schema"] == "carp-profile-v1"
        assert doc["totals"]["records"] == 10

    def test_repeat_invocations_are_byte_identical(self, tmp_path, capsys):
        d = _write_artifacts(tmp_path / "run")
        assert profile_main(["record", str(d)]) == 0
        first = ((d / "profile.json").read_bytes(),
                 (d / "profile.folded").read_bytes())
        assert profile_main(["record", str(d)]) == 0
        second = ((d / "profile.json").read_bytes(),
                  (d / "profile.folded").read_bytes())
        assert second == first

    def test_metric_drift_exits_nonzero(self, tmp_path, capsys):
        d = _write_artifacts(tmp_path / "run", bytes_written=101)
        assert profile_main(["record", str(d)]) == 1
        err = capsys.readouterr().err
        assert "reconcile" in err and "koidb.bytes_written" in err
        # the profile is still written — it is the evidence
        assert (d / "profile.json").is_file()

    def test_missing_metrics_degrades_to_warning(self, tmp_path, capsys):
        d = _write_artifacts(tmp_path / "run", metrics=False)
        assert profile_main(["record", str(d)]) == 0
        captured = capsys.readouterr()
        assert "reconciliation skipped" in captured.err
        assert "profile totals match" not in captured.out
        assert (d / "profile.json").is_file()

    def test_missing_trace_exits_two(self, tmp_path, capsys):
        assert profile_main(["record", str(tmp_path / "nope")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_output_redirect(self, tmp_path, capsys):
        d = _write_artifacts(tmp_path / "run")
        out = tmp_path / "elsewhere"
        assert profile_main(["record", str(d), "-o", str(out)]) == 0
        assert (out / "profile.json").is_file()
        assert not (d / "profile.json").exists()


class TestDiff:
    def test_identical_profiles(self, tmp_path, capsys):
        a = _write_artifacts(tmp_path / "a")
        b = _write_artifacts(tmp_path / "b")
        for d in (a, b):
            profile_main(["record", str(d)])
        capsys.readouterr()
        assert profile_main(["diff", str(a), str(b)]) == 0
        assert "profiles are identical" in capsys.readouterr().out

    def test_regression_blames_injected_hot_span(self, tmp_path, capsys):
        a = _write_artifacts(tmp_path / "a")
        b = _write_artifacts(tmp_path / "b", hot_span=True)
        for d in (a, b):
            profile_main(["record", str(d)])
        capsys.readouterr()
        json_out = tmp_path / "diff.json"
        rc = profile_main(["diff", str(a), str(b), "--json", str(json_out)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "flush;flush;checksum" in out
        doc = json.loads(json_out.read_text())
        assert doc["schema"] == "carp-profile-diff-v1"
        # entries are sorted by contribution: the injected 0.7-tick
        # span is the top blame
        assert doc["entries"][0]["stack"] == ["flush", "flush", "checksum"]
        assert doc["entries"][0]["self_delta_ns"] == 700_000_000

    def test_diff_document_is_byte_stable(self, tmp_path, capsys):
        a = _write_artifacts(tmp_path / "a")
        b = _write_artifacts(tmp_path / "b", hot_span=True)
        json_out = tmp_path / "diff.json"
        renders = []
        for _ in range(2):
            assert profile_main(
                ["diff", str(a), str(b), "--json", str(json_out)]
            ) == 0
            renders.append(json_out.read_bytes())
        capsys.readouterr()
        assert renders[0] == renders[1]

    def test_folds_trace_on_the_fly_with_note(self, tmp_path, capsys):
        a = _write_artifacts(tmp_path / "a")  # no committed profile.json
        b = _write_artifacts(tmp_path / "b")
        assert profile_main(["diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "folded" in out and "on the fly" in out

    def test_accepts_profile_json_files(self, tmp_path, capsys):
        a = _write_artifacts(tmp_path / "a")
        profile_main(["record", str(a)])
        capsys.readouterr()
        rc = profile_main([
            "diff", str(a / "profile.json"), str(a / "profile.json"),
        ])
        assert rc == 0
        assert "profiles are identical" in capsys.readouterr().out

    def test_unreadable_source_exits_two(self, tmp_path, capsys):
        a = _write_artifacts(tmp_path / "a")
        empty = tmp_path / "empty"
        empty.mkdir()
        assert profile_main(["diff", str(a), str(empty)]) == 2
        assert "neither profile.json nor trace.json" in (
            capsys.readouterr().err
        )


class TestEndToEnd:
    def test_carp_trace_recording_reconciles_exactly(self, tmp_path,
                                                     capsys):
        from repro.tools.trace_cli import main as trace_main

        obs_dir = tmp_path / "obs"
        assert trace_main([
            "-o", str(obs_dir), "--ranks", "4", "--epochs", "2",
            "--records", "300",
        ]) == 0
        capsys.readouterr()
        assert profile_main(["record", str(obs_dir)]) == 0
        out = capsys.readouterr().out
        assert "profile totals match metrics counters exactly" in out
        folded = (obs_dir / "profile.folded").read_text()
        # real phases show up in the collapsed stacks
        assert any(line.startswith("flush;") for line in folded.splitlines())
        assert any(line.startswith("route;") for line in folded.splitlines())
