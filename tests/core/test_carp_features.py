"""Tests for §VI features: reduced receivers, external triggers, WAF."""

import numpy as np
import pytest

from repro.core.carp import CarpRun
from repro.core.config import CarpOptions
from repro.core.records import RecordBatch
from repro.core.triggers import TriggerReason
from repro.query.engine import PartitionedStore
from repro.storage.log import list_logs

OPTS = CarpOptions(
    pivot_count=32, oob_capacity=32, renegotiations_per_epoch=3,
    memtable_records=256, round_records=128, value_size=8,
)


def uniform_streams(nranks, n, seed=0):
    rng = np.random.default_rng(seed)
    return [
        RecordBatch.from_keys(rng.random(n).astype(np.float32), rank=r,
                              value_size=8)
        for r in range(nranks)
    ]


class TestReducedReceivers:
    def test_fewer_output_files(self, tmp_path):
        with CarpRun(8, tmp_path, OPTS, nreceivers=2) as run:
            run.ingest_epoch(0, uniform_streams(8, 400))
        assert len(list_logs(tmp_path)) == 2

    def test_all_records_stored(self, tmp_path):
        with CarpRun(8, tmp_path, OPTS, nreceivers=3) as run:
            stats = run.ingest_epoch(0, uniform_streams(8, 400))
        with PartitionedStore(tmp_path) as store:
            assert store.total_records(0) == stats.records == 3200

    def test_partition_loads_sized_by_receivers(self, tmp_path):
        with CarpRun(8, tmp_path, OPTS, nreceivers=4) as run:
            stats = run.ingest_epoch(0, uniform_streams(8, 400))
        assert len(stats.partition_loads) == 4
        assert stats.partition_loads.sum() == 3200

    def test_queries_still_correct(self, tmp_path):
        streams = uniform_streams(8, 400, seed=4)
        keys = np.concatenate([s.keys for s in streams])
        rids = np.concatenate([s.rids for s in streams])
        with CarpRun(8, tmp_path, OPTS, nreceivers=2) as run:
            run.ingest_epoch(0, streams)
        with PartitionedStore(tmp_path) as store:
            res = store.query(0, 0.25, 0.75)
            mask = (keys >= 0.25) & (keys <= 0.75)
            assert set(res.rids.tolist()) == set(rids[mask].tolist())

    def test_balance_across_receivers(self, tmp_path):
        with CarpRun(16, tmp_path, OPTS.with_(pivot_count=128),
                     nreceivers=4) as run:
            stats = run.ingest_epoch(0, uniform_streams(16, 1000))
        assert stats.load_stddev < 0.1

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError, match="nreceivers"):
            CarpRun(4, tmp_path, OPTS, nreceivers=5)
        with pytest.raises(ValueError, match="nreceivers"):
            CarpRun(4, tmp_path, OPTS, nreceivers=0)

    def test_single_receiver_degenerate(self, tmp_path):
        with CarpRun(4, tmp_path, OPTS, nreceivers=1) as run:
            stats = run.ingest_epoch(0, uniform_streams(4, 200))
        assert len(list_logs(tmp_path)) == 1
        assert stats.partition_loads.tolist() == [800]


class TestExternalTrigger:
    def test_fires_at_next_round(self, tmp_path):
        with CarpRun(4, tmp_path, OPTS.with_(renegotiations_per_epoch=1)) as run:
            # queue the hint before ingest; it fires once a table exists
            run.request_renegotiation()
            stats = run.ingest_epoch(0, uniform_streams(4, 800))
        assert stats.triggers.count(TriggerReason.EXTERNAL) == 1

    def test_no_hint_no_external(self, tmp_path):
        with CarpRun(4, tmp_path, OPTS) as run:
            stats = run.ingest_epoch(0, uniform_streams(4, 800))
        assert stats.triggers.count(TriggerReason.EXTERNAL) == 0

    def test_hint_consumed_once(self, tmp_path):
        with CarpRun(4, tmp_path, OPTS.with_(renegotiations_per_epoch=1)) as run:
            run.request_renegotiation()
            s0 = run.ingest_epoch(0, uniform_streams(4, 800, seed=0))
            s1 = run.ingest_epoch(1, uniform_streams(4, 800, seed=1))
        assert s0.triggers.count(TriggerReason.EXTERNAL) == 1
        assert s1.triggers.count(TriggerReason.EXTERNAL) == 0


class TestWriteAmplification:
    def test_waf_near_one(self, tmp_path):
        """CARP's core design constraint: data is written exactly once;
        only SST headers/manifests add overhead."""
        with CarpRun(4, tmp_path, OPTS) as run:
            run.ingest_epoch(0, uniform_streams(4, 2000))
            waf = run.write_amplification()
        assert 1.0 <= waf < 1.2

    def test_waf_zero_before_ingest(self, tmp_path):
        with CarpRun(4, tmp_path, OPTS) as run:
            assert run.write_amplification() == 0.0

    def test_waf_far_below_lsm(self, tmp_path):
        """CARP vs an online index: the motivating §III comparison."""
        from repro.baselines.lsm import LSMTree

        streams = uniform_streams(4, 4000)
        with CarpRun(4, tmp_path, OPTS) as run:
            run.ingest_epoch(0, streams)
            carp_waf = run.write_amplification()
        tree = LSMTree(sst_records=256, level0_ssts=2, growth_factor=3,
                       value_size=8)
        for s in streams:
            tree.insert(s)
        tree.flush()
        assert tree.stats.write_amplification > 2 * carp_waf


class TestWarmStart:
    def test_warm_start_skips_bootstrap(self, tmp_path):
        opts = OPTS.with_(warm_start=True)
        with CarpRun(4, tmp_path, opts) as run:
            s0 = run.ingest_epoch(0, uniform_streams(4, 800, seed=0))
            s1 = run.ingest_epoch(1, uniform_streams(4, 800, seed=1))
        assert s0.triggers.count(TriggerReason.BOOTSTRAP) >= 1
        assert s1.triggers.count(TriggerReason.BOOTSTRAP) == 0

    def test_warm_start_first_epoch_still_bootstraps(self, tmp_path):
        with CarpRun(4, tmp_path, OPTS.with_(warm_start=True)) as run:
            stats = run.ingest_epoch(0, uniform_streams(4, 400))
        assert stats.triggers.count(TriggerReason.BOOTSTRAP) >= 1

    def test_warm_start_no_records_lost(self, tmp_path):
        opts = OPTS.with_(warm_start=True)
        with CarpRun(4, tmp_path, opts) as run:
            run.ingest_epoch(0, uniform_streams(4, 500, seed=0))
            s1 = run.ingest_epoch(1, uniform_streams(4, 500, seed=1))
        with PartitionedStore(tmp_path) as store:
            assert store.total_records(1) == s1.records == 2000

    def test_warm_start_handles_keyspace_shift(self, tmp_path):
        """A later epoch entirely outside the warm table's bounds must
        still be ingested (via OOB extension renegotiations)."""
        opts = OPTS.with_(warm_start=True)
        with CarpRun(4, tmp_path, opts) as run:
            run.ingest_epoch(0, uniform_streams(4, 500, seed=0))
            rng = np.random.default_rng(9)
            shifted = [
                RecordBatch.from_keys(
                    (rng.random(500) + 100.0).astype(np.float32), rank=r,
                    value_size=8,
                )
                for r in range(4)
            ]
            s1 = run.ingest_epoch(1, shifted)
        with PartitionedStore(tmp_path) as store:
            assert store.total_records(1) == 2000
        assert s1.triggers.count(TriggerReason.OOB_FULL) >= 1

    def test_warm_start_on_stationary_workload_balances_immediately(
        self, tmp_path
    ):
        """Stationary data: the inherited table is already right, so the
        epoch starts balanced (no cold-start imbalance)."""
        opts = OPTS.with_(warm_start=True, pivot_count=256)
        cold_opts = OPTS.with_(pivot_count=256)
        with CarpRun(8, tmp_path / "warm", opts) as run:
            run.ingest_epoch(0, uniform_streams(8, 1500, seed=0))
            warm = run.ingest_epoch(1, uniform_streams(8, 1500, seed=1))
        with CarpRun(8, tmp_path / "cold", cold_opts) as run:
            run.ingest_epoch(0, uniform_streams(8, 1500, seed=0))
            cold = run.ingest_epoch(1, uniform_streams(8, 1500, seed=1))
        assert warm.load_stddev <= cold.load_stddev + 0.02


class TestTableHistory:
    def test_history_matches_renegotiations(self, tmp_path):
        with CarpRun(4, tmp_path, OPTS) as run:
            stats = run.ingest_epoch(0, uniform_streams(4, 800))
        assert len(stats.table_history) == stats.renegotiations
        assert stats.table_history[-1] is stats.final_table

    def test_versions_strictly_increase(self, tmp_path):
        with CarpRun(4, tmp_path, OPTS) as run:
            stats = run.ingest_epoch(0, uniform_streams(4, 800))
        versions = [t.version for t in stats.table_history]
        assert versions == sorted(versions)
        assert len(set(versions)) == len(versions)

    def test_boundary_drift_small_for_stationary(self, tmp_path):
        with CarpRun(4, tmp_path, OPTS.with_(pivot_count=256)) as run:
            stats = run.ingest_epoch(0, uniform_streams(4, 3000))
        drift = stats.boundary_drift()
        assert len(drift) == stats.renegotiations - 1
        # after bootstrap, stationary data keeps boundaries nearly still
        if len(drift) > 1:
            assert drift[1:].mean() < 0.1

    def test_boundary_drift_large_under_distribution_shift(self, tmp_path):
        rng = np.random.default_rng(3)
        half = 1500
        streams = [
            RecordBatch.concat([
                RecordBatch.from_keys(rng.random(half).astype(np.float32),
                                      rank=r, value_size=8),
                RecordBatch.from_keys(
                    (rng.random(half) * 100 + 100).astype(np.float32),
                    rank=r, start_seq=half, value_size=8),
            ])
            for r in range(4)
        ]
        with CarpRun(4, tmp_path, OPTS.with_(renegotiations_per_epoch=6)) as run:
            stats = run.ingest_epoch(0, streams)
        drift = stats.boundary_drift()
        assert drift.max() > 0.2  # the mid-epoch jump is visible


class TestRunManifest:
    def test_manifest_written(self, tmp_path):
        import json

        with CarpRun(4, tmp_path, OPTS) as run:
            run.ingest_epoch(0, uniform_streams(4, 400, seed=0))
            run.ingest_epoch(1, uniform_streams(4, 400, seed=1))
            path = run.write_run_manifest()
        doc = json.loads(path.read_text())
        assert doc["nranks"] == 4
        assert len(doc["epochs"]) == 2
        assert doc["epochs"][0]["records"] == 1600
        assert doc["write_amplification"] >= 1.0
        assert len(doc["epochs"][0]["final_bounds"]) == 5
        assert doc["options"]["pivot_count"] == OPTS.pivot_count

    def test_manifest_custom_path(self, tmp_path):
        with CarpRun(2, tmp_path, OPTS) as run:
            run.ingest_epoch(0, uniform_streams(2, 200))
            path = run.write_run_manifest(tmp_path / "meta" / "run.json")
        assert path.is_file()
        assert path.parent.name == "meta"

    def test_trigger_reasons_serialized(self, tmp_path):
        import json

        with CarpRun(2, tmp_path, OPTS) as run:
            run.ingest_epoch(0, uniform_streams(2, 400))
            doc = json.loads(run.write_run_manifest().read_text())
        reasons = {t["reason"] for t in doc["epochs"][0]["triggers"]}
        assert "bootstrap" in reasons
