"""Integration-grade unit tests for the CARP run driver."""

import numpy as np
import pytest

from repro.core.carp import CarpRun
from repro.core.config import CarpOptions
from repro.core.records import RecordBatch
from repro.core.triggers import TriggerReason
from repro.storage.log import LogReader, list_logs

OPTS = CarpOptions(
    pivot_count=32,
    oob_capacity=32,
    renegotiations_per_epoch=3,
    memtable_records=256,
    round_records=128,
    value_size=8,
)


def uniform_streams(nranks, n, seed=0, lo=0.0, hi=1.0):
    rng = np.random.default_rng(seed)
    return [
        RecordBatch.from_keys(
            rng.uniform(lo, hi, n).astype(np.float32), rank=r, value_size=8
        )
        for r in range(nranks)
    ]


def stored_records(directory, epoch):
    total = 0
    for path in list_logs(directory):
        with LogReader(path) as r:
            total += sum(e.count for e in r.entries_for(epoch=epoch))
    return total


class TestIngestEpoch:
    def test_all_records_persisted(self, tmp_path):
        streams = uniform_streams(4, 500)
        with CarpRun(4, tmp_path, OPTS) as run:
            stats = run.ingest_epoch(0, streams)
        assert stats.records == 2000
        assert stored_records(tmp_path, 0) == 2000

    def test_no_records_lost_or_duplicated(self, tmp_path):
        streams = uniform_streams(4, 300, seed=3)
        expect = sorted(
            np.concatenate([s.rids for s in streams]).tolist()
        )
        with CarpRun(4, tmp_path, OPTS) as run:
            run.ingest_epoch(0, streams)
        got = []
        for path in list_logs(tmp_path):
            with LogReader(path) as r:
                for e in r.entries_for(epoch=0):
                    got.extend(r.read_sst(e).rids.tolist())
        assert sorted(got) == expect

    def test_bootstrap_renegotiation_always_happens(self, tmp_path):
        with CarpRun(2, tmp_path, OPTS) as run:
            stats = run.ingest_epoch(0, uniform_streams(2, 200))
        assert stats.triggers.count(TriggerReason.BOOTSTRAP) >= 1

    def test_periodic_renegotiations_roughly_as_configured(self, tmp_path):
        opts = OPTS.with_(renegotiations_per_epoch=5, oob_capacity=128)
        with CarpRun(4, tmp_path, opts) as run:
            stats = run.ingest_epoch(0, uniform_streams(4, 2000))
        periodic = stats.triggers.count(TriggerReason.PERIODIC)
        assert 3 <= periodic <= 6

    def test_huge_oob_capacity_still_persists_everything(self, tmp_path):
        """Buffers that never fill are flushed by the epoch-end trigger."""
        opts = OPTS.with_(oob_capacity=100_000)
        with CarpRun(4, tmp_path, opts) as run:
            stats = run.ingest_epoch(0, uniform_streams(4, 500))
        assert stats.triggers.count(TriggerReason.EPOCH_FLUSH) >= 1
        assert stored_records(tmp_path, 0) == 2000

    def test_balanced_partitions_for_uniform_keys(self, tmp_path):
        with CarpRun(8, tmp_path, OPTS.with_(pivot_count=128)) as run:
            stats = run.ingest_epoch(0, uniform_streams(8, 2000))
        assert stats.load_stddev < 0.1

    def test_skewed_keys_still_balanced(self, tmp_path):
        rng = np.random.default_rng(1)
        streams = [
            RecordBatch.from_keys(
                rng.lognormal(0, 1.5, 2000).astype(np.float32), rank=r, value_size=8
            )
            for r in range(8)
        ]
        with CarpRun(8, tmp_path, OPTS.with_(pivot_count=256)) as run:
            stats = run.ingest_epoch(0, streams)
        assert stats.load_stddev < 0.25

    def test_multiple_epochs(self, tmp_path):
        with CarpRun(4, tmp_path, OPTS) as run:
            s0 = run.ingest_epoch(0, uniform_streams(4, 400, seed=0))
            s1 = run.ingest_epoch(1, uniform_streams(4, 400, seed=1, lo=10, hi=20))
        assert stored_records(tmp_path, 0) == 1600
        assert stored_records(tmp_path, 1) == 1600
        # epoch 1 bootstrapped fresh (no stale bounds from epoch 0)
        assert s1.triggers.count(TriggerReason.BOOTSTRAP) >= 1
        assert s1.final_table.lo >= 9.0

    def test_wrong_stream_count_rejected(self, tmp_path):
        with CarpRun(4, tmp_path, OPTS) as run:
            with pytest.raises(ValueError, match="streams"):
                run.ingest_epoch(0, uniform_streams(3, 10))

    def test_empty_epoch_rejected(self, tmp_path):
        empty = [RecordBatch.empty(8) for _ in range(2)]
        with CarpRun(2, tmp_path, OPTS) as run:
            with pytest.raises(ValueError, match="empty"):
                run.ingest_epoch(0, empty)

    def test_single_rank(self, tmp_path):
        with CarpRun(1, tmp_path, OPTS) as run:
            stats = run.ingest_epoch(0, uniform_streams(1, 500))
        assert stats.records == 500
        assert stored_records(tmp_path, 0) == 500

    def test_identical_keys_degenerate(self, tmp_path):
        streams = [
            RecordBatch.from_keys(np.full(300, 7.0, np.float32), rank=r, value_size=8)
            for r in range(4)
        ]
        with CarpRun(4, tmp_path, OPTS) as run:
            stats = run.ingest_epoch(0, streams)
        assert stored_records(tmp_path, 0) == 1200

    def test_uneven_stream_lengths(self, tmp_path):
        rng = np.random.default_rng(5)
        streams = [
            RecordBatch.from_keys(rng.random(n).astype(np.float32), rank=r,
                                  value_size=8)
            for r, n in enumerate([100, 700, 5, 350])
        ]
        with CarpRun(4, tmp_path, OPTS) as run:
            stats = run.ingest_epoch(0, streams)
        assert stats.records == 1155
        assert stored_records(tmp_path, 0) == 1155

    def test_final_table_covers_all_keys(self, tmp_path):
        streams = uniform_streams(4, 500, seed=9)
        all_keys = np.concatenate([s.keys for s in streams])
        with CarpRun(4, tmp_path, OPTS) as run:
            stats = run.ingest_epoch(0, streams)
        # drift means the final table may not cover early keys, but it
        # must cover the keys seen since the last renegotiation; for a
        # stationary stream it covers (nearly) everything
        table = stats.final_table
        frac_covered = np.mean(
            (all_keys >= table.lo) & (all_keys <= table.hi)
        )
        assert frac_covered > 0.95

    def test_stray_records_appear_with_delay(self, tmp_path):
        opts = OPTS.with_(shuffle_delay_rounds=2, renegotiations_per_epoch=6)
        rng = np.random.default_rng(2)
        # drifting keys force boundary movement -> strays
        streams = [
            RecordBatch.from_keys(
                (rng.random(2000) * np.linspace(1, 5, 2000)).astype(np.float32),
                rank=r, value_size=8,
            )
            for r in range(4)
        ]
        with CarpRun(4, tmp_path, opts) as run:
            stats = run.ingest_epoch(0, streams)
        assert stats.stray_records > 0
        assert stored_records(tmp_path, 0) == stats.records

    def test_zero_delay_no_strays(self, tmp_path):
        opts = OPTS.with_(shuffle_delay_rounds=0)
        with CarpRun(4, tmp_path, opts) as run:
            stats = run.ingest_epoch(0, uniform_streams(4, 800))
        assert stats.stray_records == 0

    def test_reneg_stats_recorded(self, tmp_path):
        with CarpRun(4, tmp_path, OPTS) as run:
            stats = run.ingest_epoch(0, uniform_streams(4, 800))
        assert len(stats.reneg_stats) == stats.renegotiations
        for r in stats.reneg_stats:
            assert r.nranks == 4
            assert r.pivot_width == OPTS.pivot_count

    def test_naive_protocol_equivalent_storage(self, tmp_path):
        opts = OPTS.with_(reneg_protocol="naive")
        with CarpRun(4, tmp_path, opts) as run:
            stats = run.ingest_epoch(0, uniform_streams(4, 500))
        assert stored_records(tmp_path, 0) == stats.records

    def test_partition_loads_sum_to_records(self, tmp_path):
        with CarpRun(4, tmp_path, OPTS) as run:
            stats = run.ingest_epoch(0, uniform_streams(4, 600))
        assert stats.partition_loads.sum() == stats.records

    def test_epoch_history_accumulates(self, tmp_path):
        with CarpRun(2, tmp_path, OPTS) as run:
            run.ingest_epoch(0, uniform_streams(2, 200, seed=0))
            run.ingest_epoch(1, uniform_streams(2, 200, seed=1))
            assert [s.epoch for s in run.epoch_history] == [0, 1]
