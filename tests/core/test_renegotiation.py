"""Unit tests for the renegotiation protocols (naive and TRP)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pivots import Pivots, pivots_from_histogram
from repro.core.renegotiation import (
    negotiate,
    negotiate_naive,
    negotiate_trp,
    trp_tree_levels,
)


def rank_pivots(nranks: int, seed: int = 0, width: int = 64):
    """Pivot sets from lognormal per-rank key samples."""
    rng = np.random.default_rng(seed)
    out = []
    for r in range(nranks):
        keys = rng.lognormal(mean=r * 0.05, size=400)
        out.append(pivots_from_histogram(None, None, width, oob_keys=keys))
    return out


class TestTreeLevels:
    def test_single_rank(self):
        assert trp_tree_levels(1, 64) == [1]

    def test_fits_one_group(self):
        assert trp_tree_levels(64, 64) == [1]

    def test_two_levels(self):
        assert trp_tree_levels(65, 64) == [2, 1]

    def test_depth_three_at_scale(self):
        # 131072 ranks with fanout 64: 2048 -> 32 -> 1
        assert trp_tree_levels(131072, 64) == [2048, 32, 1]

    def test_paper_scale_depth(self):
        """Fanout 64 keeps depth <= 3 up to 262144 ranks (paper §VI)."""
        for n in (16, 512, 2048, 131072):
            assert len(trp_tree_levels(n, 64)) <= 3

    def test_validation(self):
        with pytest.raises(ValueError):
            trp_tree_levels(0, 64)
        with pytest.raises(ValueError):
            trp_tree_levels(8, 1)


class TestNaive:
    def test_produces_nparts_bounds(self):
        bounds, stats = negotiate_naive(rank_pivots(8), nparts=8, pivot_width=64)
        assert len(bounds) == 9
        assert np.all(np.diff(bounds) >= 0)

    def test_stats_single_level(self):
        _, stats = negotiate_naive(rank_pivots(8), 8, 64)
        assert stats.depth == 1
        assert stats.levels[0][0] == 7  # n-1 senders

    def test_bounds_cover_all_ranks(self):
        pivots = rank_pivots(4)
        bounds, _ = negotiate_naive(pivots, 4, 64)
        global_min = min(p.points[0] for p in pivots)
        global_max = max(p.points[-1] for p in pivots)
        assert bounds[0] <= global_min + 1e-9
        assert bounds[-1] >= global_max - 1e-9


class TestTRP:
    def test_matches_naive_closely(self):
        """TRP is lossier than naive but lands near the same bounds."""
        pivots = rank_pivots(32, width=256)
        nb, _ = negotiate_naive(pivots, 32, 256)
        tb, _ = negotiate_trp(pivots, 32, 256, fanout=8)
        # interior bounds within a few percent in quantile space
        assert np.allclose(nb, tb, rtol=0.1, atol=0.05)

    def test_depth_matches_tree(self):
        pivots = rank_pivots(20)
        _, stats = negotiate_trp(pivots, 20, 64, fanout=4)
        assert stats.depth == len(trp_tree_levels(20, 4))

    def test_single_rank(self):
        pivots = rank_pivots(1)
        bounds, stats = negotiate_trp(pivots, 1, 64)
        assert len(bounds) == 2
        assert stats.depth == 0

    def test_handles_none_contributions(self):
        pivots = rank_pivots(8)
        pivots[2] = None
        pivots[5] = None
        bounds, _ = negotiate_trp(pivots, 8, 64, fanout=4)
        assert len(bounds) == 9

    def test_all_none_rejected(self):
        with pytest.raises(ValueError):
            negotiate_trp([None, None], 2, 64)

    def test_total_messages_less_than_naive_per_receiver(self):
        """TRP bounds any single receiver's fan-in by the fanout."""
        pivots = rank_pivots(64)
        _, stats = negotiate_trp(pivots, 64, 64, fanout=8)
        for _, max_fanin, _ in stats.levels:
            assert max_fanin <= 8

    def test_message_bytes_scale_with_pivot_width(self):
        pivots = rank_pivots(8, width=64)
        _, s64 = negotiate_trp(pivots, 8, 64)
        pivots2 = rank_pivots(8, width=512)
        _, s512 = negotiate_trp(pivots2, 8, 512)
        assert s512.levels[0][2] > s64.levels[0][2]

    def test_mass_conservation_through_tree(self):
        """Total key mass survives multi-level lossy reduction."""
        pivots = rank_pivots(16, width=32)
        total = sum(p.count for p in pivots)
        bounds, _ = negotiate_trp(pivots, 16, 32, fanout=4)
        # bounds exist and cover; mass is implicit — rebuild via union
        from repro.core.pivots import pivot_union

        merged = pivot_union(pivots, 32)
        assert merged.count == pytest.approx(total)

    @given(nranks=st.integers(1, 40), fanout=st.integers(2, 16))
    @settings(max_examples=30, deadline=None)
    def test_levels_shrink_geometrically(self, nranks, fanout):
        levels = trp_tree_levels(nranks, fanout)
        assert levels[-1] == 1
        for a, b in zip(levels, levels[1:]):
            assert b < a


class TestDispatch:
    def test_negotiate_dispatch(self):
        pivots = rank_pivots(4)
        b1, _ = negotiate(pivots, 4, 64, protocol="naive")
        b2, _ = negotiate(pivots, 4, 64, protocol="trp", fanout=2)
        assert len(b1) == len(b2) == 5

    def test_unknown_protocol(self):
        with pytest.raises(ValueError, match="unknown"):
            negotiate(rank_pivots(2), 2, 64, protocol="magic")

    def test_broadcast_bytes_scale_with_nparts(self):
        pivots = rank_pivots(4)
        _, s_small = negotiate(pivots, 4, 64)
        _, s_large = negotiate(pivots, 64, 64)
        assert s_large.broadcast_bytes > s_small.broadcast_bytes
