"""Unit tests for record batches and rid encoding."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.records import (
    KEY_DTYPE,
    PAPER_RECORD_SIZE,
    PAPER_VALUE_SIZE,
    RID_SEQ_BITS,
    RecordBatch,
    make_rids,
    rid_rank,
    rid_seq,
)


class TestMakeRids:
    def test_basic_sequence(self):
        rids = make_rids(rank=0, start_seq=0, count=5)
        assert rids.tolist() == [0, 1, 2, 3, 4]

    def test_rank_encoded_in_high_bits(self):
        rids = make_rids(rank=3, start_seq=0, count=2)
        assert rids[0] == 3 << RID_SEQ_BITS

    def test_start_seq_offset(self):
        rids = make_rids(rank=1, start_seq=100, count=3)
        assert rid_seq(rids).tolist() == [100, 101, 102]

    def test_roundtrip_rank_and_seq(self):
        rids = make_rids(rank=7, start_seq=42, count=10)
        assert np.all(rid_rank(rids) == 7)
        assert rid_seq(rids).tolist() == list(range(42, 52))

    def test_unique_across_ranks(self):
        a = make_rids(0, 0, 100)
        b = make_rids(1, 0, 100)
        assert len(np.intersect1d(a, b)) == 0

    def test_negative_rank_rejected(self):
        with pytest.raises(ValueError):
            make_rids(-1, 0, 1)

    def test_seq_overflow_rejected(self):
        with pytest.raises(ValueError):
            make_rids(0, (1 << RID_SEQ_BITS) - 1, 2)

    @given(rank=st.integers(0, 1000), seq=st.integers(0, 2**30),
           count=st.integers(0, 50))
    def test_roundtrip_property(self, rank, seq, count):
        rids = make_rids(rank, seq, count)
        assert np.all(rid_rank(rids) == rank)
        assert np.array_equal(rid_seq(rids), np.arange(seq, seq + count))


class TestRecordBatch:
    def test_paper_geometry(self):
        assert PAPER_RECORD_SIZE == 60
        batch = RecordBatch.from_keys(np.array([1.0, 2.0], dtype=np.float32))
        assert batch.record_size == 60
        assert batch.nbytes == 120

    def test_len(self):
        batch = RecordBatch.from_keys(np.arange(7, dtype=np.float32))
        assert len(batch) == 7

    def test_keys_cast_to_float32(self):
        batch = RecordBatch(np.array([1.5, 2.5]), make_rids(0, 0, 2))
        assert batch.keys.dtype == KEY_DTYPE

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="mismatch"):
            RecordBatch(np.zeros(3, np.float32), make_rids(0, 0, 2))

    def test_nan_keys_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            RecordBatch(np.array([1.0, np.nan], np.float32), make_rids(0, 0, 2))

    def test_inf_keys_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            RecordBatch(np.array([np.inf], np.float32), make_rids(0, 0, 1))

    def test_2d_keys_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            RecordBatch(np.zeros((2, 2), np.float32), make_rids(0, 0, 4))

    def test_value_size_must_hold_rid(self):
        with pytest.raises(ValueError, match="value_size"):
            RecordBatch.from_keys(np.zeros(1, np.float32), value_size=4)

    def test_select_by_mask(self):
        batch = RecordBatch.from_keys(np.array([1, 2, 3, 4], np.float32))
        sub = batch.select(batch.keys > 2)
        assert sub.keys.tolist() == [3, 4]
        assert len(sub.rids) == 2

    def test_select_by_index(self):
        batch = RecordBatch.from_keys(np.array([5, 6, 7], np.float32))
        sub = batch.select(np.array([2, 0]))
        assert sub.keys.tolist() == [7, 5]

    def test_select_preserves_value_size(self):
        batch = RecordBatch.from_keys(np.zeros(3, np.float32), value_size=16)
        assert batch.select(np.array([0])).value_size == 16

    def test_sorted_by_key(self):
        batch = RecordBatch.from_keys(np.array([3, 1, 2], np.float32))
        s = batch.sorted_by_key()
        assert s.keys.tolist() == [1, 2, 3]
        # rids follow their keys
        assert s.rids.tolist() == [1, 2, 0]

    def test_sorted_stable_for_ties(self):
        batch = RecordBatch.from_keys(np.array([2, 2, 1], np.float32))
        s = batch.sorted_by_key()
        assert s.rids.tolist() == [2, 0, 1]

    def test_empty(self):
        batch = RecordBatch.empty()
        assert len(batch) == 0
        assert batch.nbytes == 0
        assert batch.value_size == PAPER_VALUE_SIZE

    def test_concat(self):
        a = RecordBatch.from_keys(np.array([1], np.float32), rank=0)
        b = RecordBatch.from_keys(np.array([2], np.float32), rank=1)
        c = RecordBatch.concat([a, b])
        assert c.keys.tolist() == [1, 2]
        assert len(c) == 2

    def test_concat_skips_empties(self):
        a = RecordBatch.from_keys(np.array([1], np.float32))
        c = RecordBatch.concat([RecordBatch.empty(), a, RecordBatch.empty()])
        assert len(c) == 1

    def test_concat_empty_list(self):
        assert len(RecordBatch.concat([])) == 0

    def test_concat_mixed_value_sizes_rejected(self):
        a = RecordBatch.from_keys(np.array([1], np.float32), value_size=8)
        b = RecordBatch.from_keys(np.array([2], np.float32), value_size=16)
        with pytest.raises(ValueError, match="mixed"):
            RecordBatch.concat([a, b])

    def test_from_keys_assigns_rids(self):
        batch = RecordBatch.from_keys(
            np.array([1, 2], np.float32), rank=2, start_seq=10
        )
        assert np.all(rid_rank(batch.rids) == 2)
        assert rid_seq(batch.rids).tolist() == [10, 11]

    @given(st.lists(st.floats(0, 1e6, width=32), max_size=64))
    def test_sort_is_permutation(self, values):
        keys = np.array(values, dtype=np.float32)
        batch = RecordBatch.from_keys(keys)
        s = batch.sorted_by_key()
        assert np.all(np.diff(s.keys) >= 0)
        assert sorted(s.rids.tolist()) == sorted(batch.rids.tolist())
