"""Unit tests for partition tables."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.partition import OOB_DEST, PartitionTable, load_stddev


def table(*bounds, version=0):
    return PartitionTable(np.array(bounds, dtype=np.float64), version)


class TestConstruction:
    def test_basic(self):
        t = table(0.0, 1.0, 2.0)
        assert t.nparts == 2
        assert t.lo == 0.0 and t.hi == 2.0

    def test_needs_two_bounds(self):
        with pytest.raises(ValueError):
            table(1.0)

    def test_rejects_non_increasing(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            table(0.0, 1.0, 1.0)

    def test_rejects_decreasing(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            table(0.0, 2.0, 1.0)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            table(0.0, np.nan, 1.0)

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="finite"):
            table(0.0, np.inf)

    def test_immutability(self):
        t = table(0.0, 1.0)
        with pytest.raises(Exception):
            t.bounds = np.array([0.0, 2.0])

    def test_from_quantile_points_spreads_duplicates(self):
        t = PartitionTable.from_quantile_points(np.array([1.0, 1.0, 1.0, 2.0]))
        assert t.nparts == 3
        assert np.all(np.diff(t.bounds) > 0)

    def test_from_quantile_points_needs_two(self):
        with pytest.raises(ValueError):
            PartitionTable.from_quantile_points(np.array([1.0]))

    def test_with_version(self):
        t = table(0.0, 1.0).with_version(5)
        assert t.version == 5


class TestLookup:
    def test_interior_keys(self):
        t = table(0.0, 1.0, 2.0, 3.0)
        assert t.lookup(np.array([0.5, 1.5, 2.5])).tolist() == [0, 1, 2]

    def test_lower_bound_inclusive(self):
        t = table(0.0, 1.0, 2.0)
        assert t.lookup(np.array([0.0, 1.0])).tolist() == [0, 1]

    def test_upper_bound_owned_by_last(self):
        t = table(0.0, 1.0, 2.0)
        assert t.lookup(np.array([2.0])).tolist() == [1]

    def test_oob_below(self):
        t = table(0.0, 1.0)
        assert t.lookup(np.array([-0.1]))[0] == OOB_DEST

    def test_oob_above(self):
        t = table(0.0, 1.0)
        assert t.lookup(np.array([1.0001]))[0] == OOB_DEST

    def test_mixed(self):
        t = table(0.0, 1.0, 2.0)
        dests = t.lookup(np.array([-1.0, 0.5, 3.0, 1.5]))
        assert dests.tolist() == [OOB_DEST, 0, OOB_DEST, 1]

    def test_empty_input(self):
        t = table(0.0, 1.0)
        assert len(t.lookup(np.array([]))) == 0

    @given(st.lists(st.floats(-10, 10, allow_nan=False), max_size=50))
    def test_lookup_total(self, values):
        """Every key gets either a valid partition or OOB_DEST."""
        t = table(-1.0, 0.0, 1.0, 2.0)
        keys = np.array(values, dtype=np.float64)
        dests = t.lookup(keys)
        assert np.all((dests == OOB_DEST) | ((dests >= 0) & (dests < t.nparts)))
        # in-bounds keys are never OOB
        in_bounds = (keys >= t.lo) & (keys <= t.hi)
        assert np.all(dests[in_bounds] != OOB_DEST)


class TestOwnership:
    def test_owns(self):
        t = table(0.0, 1.0, 2.0)
        assert t.owns(0) == (0.0, 1.0)
        assert t.owns(1) == (1.0, 2.0)

    def test_owns_out_of_range(self):
        with pytest.raises(IndexError):
            table(0.0, 1.0).owns(1)

    def test_contains_half_open(self):
        t = table(0.0, 1.0, 2.0)
        keys = np.array([0.0, 0.999, 1.0])
        assert t.contains(0, keys).tolist() == [True, True, False]

    def test_contains_last_closed(self):
        t = table(0.0, 1.0, 2.0)
        assert t.contains(1, np.array([2.0])).tolist() == [True]

    def test_partitions_cover_keyspace_exactly_once(self):
        t = table(0.0, 0.5, 1.5, 3.0)
        keys = np.linspace(0.0, 3.0, 101)
        owners = np.zeros(len(keys), dtype=int)
        for p in range(t.nparts):
            owners += t.contains(p, keys).astype(int)
        assert np.all(owners == 1)


class TestOverlapping:
    def test_single_partition(self):
        t = table(0.0, 1.0, 2.0, 3.0)
        assert t.overlapping(1.2, 1.8).tolist() == [1]

    def test_spanning(self):
        t = table(0.0, 1.0, 2.0, 3.0)
        assert t.overlapping(0.5, 2.5).tolist() == [0, 1, 2]

    def test_outside_returns_empty(self):
        t = table(0.0, 1.0)
        assert len(t.overlapping(5.0, 6.0)) == 0
        assert len(t.overlapping(-3.0, -2.0)) == 0

    def test_clamps_to_edges(self):
        t = table(0.0, 1.0, 2.0)
        assert t.overlapping(-5.0, 10.0).tolist() == [0, 1]

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            table(0.0, 1.0).overlapping(1.0, 0.5)

    def test_point_query(self):
        t = table(0.0, 1.0, 2.0)
        assert t.overlapping(0.5, 0.5).tolist() == [0]


class TestLoadCounts:
    def test_counts(self):
        t = table(0.0, 1.0, 2.0)
        counts = t.load_counts(np.array([0.1, 0.2, 1.5]))
        assert counts.tolist() == [2, 1]

    def test_ignores_oob(self):
        t = table(0.0, 1.0)
        counts = t.load_counts(np.array([-1.0, 0.5, 9.0]))
        assert counts.tolist() == [1]


class TestLoadStddev:
    def test_perfect_balance(self):
        assert load_stddev(np.array([10, 10, 10])) == 0.0

    def test_normalized(self):
        # std of [0, 20] = 10, mean = 10 -> 1.0
        assert load_stddev(np.array([0, 20])) == pytest.approx(1.0)

    def test_unnormalized(self):
        assert load_stddev(np.array([0, 20]), normalized=False) == pytest.approx(10.0)

    def test_empty(self):
        assert load_stddev(np.array([])) == 0.0

    def test_all_zero(self):
        assert load_stddev(np.array([0, 0])) == 0.0

    def test_scale_invariance_of_normalized(self):
        a = np.array([5, 10, 15])
        assert load_stddev(a) == pytest.approx(load_stddev(a * 1000))
