"""Unit + property tests for the summary-statistics primitives."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pivots import (
    Pivots,
    WeightedCDF,
    partition_bounds_from_pivots,
    pivot_union,
    pivots_from_cdf,
    pivots_from_histogram,
)


class TestWeightedCDF:
    def test_from_histogram(self):
        cdf = WeightedCDF.from_histogram(np.array([0.0, 1.0, 2.0]), np.array([3, 1]))
        assert cdf.total == 4.0
        assert cdf.evaluate(np.array([0.0, 1.0, 2.0])).tolist() == [0.0, 3.0, 4.0]

    def test_linear_within_bins(self):
        cdf = WeightedCDF.from_histogram(np.array([0.0, 2.0]), np.array([4]))
        assert cdf.evaluate(np.array([1.0]))[0] == pytest.approx(2.0)

    def test_from_histogram_shape_mismatch(self):
        with pytest.raises(ValueError):
            WeightedCDF.from_histogram(np.array([0.0, 1.0]), np.array([1, 2]))

    def test_from_histogram_negative_counts(self):
        with pytest.raises(ValueError):
            WeightedCDF.from_histogram(np.array([0.0, 1.0]), np.array([-1]))

    def test_from_samples(self):
        cdf = WeightedCDF.from_samples(np.array([1.0, 2.0, 2.0, 5.0]))
        assert cdf.total == 4.0
        assert cdf.evaluate(np.array([2.0]))[0] == pytest.approx(3.0)

    def test_from_samples_empty(self):
        with pytest.raises(ValueError):
            WeightedCDF.from_samples(np.array([]))

    def test_evaluate_clamps(self):
        cdf = WeightedCDF.from_samples(np.array([1.0, 2.0]))
        assert cdf.evaluate(np.array([-10.0]))[0] == 0.0
        assert cdf.evaluate(np.array([10.0]))[0] == cdf.total

    def test_quantiles_inverts(self):
        cdf = WeightedCDF.from_histogram(np.array([0.0, 1.0, 2.0]), np.array([2, 2]))
        qs = cdf.quantiles(np.array([0.0, 2.0, 4.0]))
        assert qs.tolist() == [0.0, 1.0, 2.0]

    def test_quantiles_single_point(self):
        cdf = WeightedCDF(np.array([3.0]), np.array([5.0]))
        assert cdf.quantiles(np.array([0.0, 2.5, 5.0])).tolist() == [3.0, 3.0, 3.0]

    def test_quantiles_skip_plateaus(self):
        # middle bin empty: quantiles never land strictly inside it
        cdf = WeightedCDF.from_histogram(
            np.array([0.0, 1.0, 2.0, 3.0]), np.array([2, 0, 2])
        )
        q = cdf.quantiles(np.array([2.0]))
        assert q[0] <= 1.0 or q[0] >= 2.0

    def test_sum_two(self):
        a = WeightedCDF.from_histogram(np.array([0.0, 1.0]), np.array([2]))
        b = WeightedCDF.from_histogram(np.array([0.5, 1.5]), np.array([2]))
        s = WeightedCDF.sum([a, b])
        assert s.total == 4.0
        assert s.evaluate(np.array([1.0]))[0] == pytest.approx(2.0 + 1.0)

    def test_sum_skips_empty(self):
        a = WeightedCDF.from_histogram(np.array([0.0, 1.0]), np.array([2]))
        empty = WeightedCDF.from_histogram(np.array([0.0, 1.0]), np.array([0]))
        s = WeightedCDF.sum([a, empty])
        assert s.total == 2.0

    def test_sum_all_empty_rejected(self):
        empty = WeightedCDF.from_histogram(np.array([0.0, 1.0]), np.array([0]))
        with pytest.raises(ValueError):
            WeightedCDF.sum([empty])

    def test_rejects_decreasing_x(self):
        with pytest.raises(ValueError):
            WeightedCDF(np.array([1.0, 0.0]), np.array([0.0, 1.0]))

    def test_rejects_decreasing_cw(self):
        with pytest.raises(ValueError):
            WeightedCDF(np.array([0.0, 1.0]), np.array([1.0, 0.0]))


class TestPivots:
    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            Pivots(np.array([1.0]), 1.0)

    def test_width(self):
        p = Pivots(np.array([0.0, 1.0, 2.0]), 10.0)
        assert p.width == 3

    def test_as_cdf_equal_mass(self):
        p = Pivots(np.array([0.0, 1.0, 4.0]), 10.0)
        cdf = p.as_cdf()
        assert cdf.evaluate(np.array([1.0]))[0] == pytest.approx(5.0)

    def test_rejects_decreasing(self):
        with pytest.raises(ValueError):
            Pivots(np.array([1.0, 0.0]), 1.0)


class TestPivotsFromHistogram:
    def test_uniform_histogram(self):
        edges = np.linspace(0, 10, 11)
        counts = np.full(10, 100)
        p = pivots_from_histogram(edges, counts, width=5)
        assert p is not None
        assert p.count == 1000
        # equal mass under uniform => equally spaced points
        assert np.allclose(p.points, np.linspace(0, 10, 5))

    def test_skewed_histogram_concentrates_pivots(self):
        edges = np.array([0.0, 1.0, 10.0])
        counts = np.array([900, 100])
        p = pivots_from_histogram(edges, counts, width=11)
        assert p is not None
        # most pivots land in the dense [0, 1) region
        assert np.count_nonzero(p.points <= 1.0) >= 8

    def test_oob_keys_extend_range(self):
        edges = np.array([0.0, 1.0])
        counts = np.array([10])
        p = pivots_from_histogram(edges, counts, width=4,
                                  oob_keys=np.array([5.0, 6.0]))
        assert p is not None
        assert p.points[-1] == pytest.approx(6.0)
        assert p.count == 12

    def test_oob_only(self):
        p = pivots_from_histogram(None, None, width=3, oob_keys=np.array([1.0, 2.0]))
        assert p is not None
        assert p.count == 2.0

    def test_nothing_observed_returns_none(self):
        assert pivots_from_histogram(None, None, width=4) is None
        assert pivots_from_histogram(
            np.array([0.0, 1.0]), np.array([0]), width=4
        ) is None

    def test_width_validation(self):
        with pytest.raises(ValueError):
            pivots_from_cdf(WeightedCDF.from_samples(np.array([1.0])), width=1)

    def test_single_key_degenerate(self):
        p = pivots_from_histogram(None, None, width=4,
                                  oob_keys=np.array([3.0, 3.0, 3.0]))
        assert p is not None
        assert np.all(p.points == 3.0)

    @given(
        counts=st.lists(st.integers(0, 1000), min_size=2, max_size=20),
        width=st.integers(2, 64),
    )
    @settings(max_examples=50)
    def test_equal_mass_property(self, counts, width):
        """Consecutive pivots delimit (approximately) equal histogram mass."""
        counts = np.array(counts)
        if counts.sum() == 0:
            return
        edges = np.linspace(0.0, 1.0, len(counts) + 1)
        p = pivots_from_histogram(edges, counts, width)
        assert p is not None
        cdf = WeightedCDF.from_histogram(edges, counts)
        masses = cdf.evaluate(p.points)
        target = np.linspace(0, counts.sum(), width)
        # equality is exact up to interpolation over zero-mass plateaus
        assert np.all(np.abs(masses - target) <= counts.sum() * 1e-9 + 1e-6)


class TestPivotUnion:
    def test_mass_conserved(self):
        a = Pivots(np.array([0.0, 1.0]), 10.0)
        b = Pivots(np.array([5.0, 6.0]), 30.0)
        merged = pivot_union([a, b], width=8)
        assert merged.count == pytest.approx(40.0)

    def test_covers_full_range(self):
        a = Pivots(np.array([0.0, 1.0]), 10.0)
        b = Pivots(np.array([5.0, 6.0]), 10.0)
        merged = pivot_union([a, b], width=8)
        assert merged.points[0] == pytest.approx(0.0)
        assert merged.points[-1] == pytest.approx(6.0)

    def test_skips_none(self):
        a = Pivots(np.array([0.0, 1.0]), 10.0)
        merged = pivot_union([None, a, None], width=4)
        assert merged.count == pytest.approx(10.0)

    def test_all_none_rejected(self):
        with pytest.raises(ValueError):
            pivot_union([None, None], width=4)

    def test_commutative(self):
        a = Pivots(np.array([0.0, 1.0, 2.0]), 10.0)
        b = Pivots(np.array([1.5, 3.0]), 20.0)
        m1 = pivot_union([a, b], width=16)
        m2 = pivot_union([b, a], width=16)
        assert np.allclose(m1.points, m2.points)

    def test_associative_up_to_resampling(self):
        """((a+b)+c) ~ (a+(b+c)): lossy but close for generous widths."""
        rng = np.random.default_rng(0)
        piv = [
            pivots_from_histogram(None, None, 64, oob_keys=rng.lognormal(size=500))
            for _ in range(3)
        ]
        left = pivot_union([pivot_union(piv[:2], 64), piv[2]], 64)
        right = pivot_union([piv[0], pivot_union(piv[1:], 64)], 64)
        assert left.count == pytest.approx(right.count)
        assert np.allclose(left.points, right.points, rtol=0.05, atol=0.05)

    def test_union_weights_by_mass(self):
        """A heavier pivot set dominates the merged quantiles."""
        light = Pivots(np.array([0.0, 1.0]), 1.0)
        heavy = Pivots(np.array([10.0, 11.0]), 99.0)
        merged = pivot_union([light, heavy], width=101)
        # ~99% of merged pivot points lie in the heavy range
        assert np.count_nonzero(merged.points >= 10.0) >= 95


class TestPartitionBounds:
    def test_bounds_count(self):
        p = Pivots(np.linspace(0, 1, 9), 100.0)
        bounds = partition_bounds_from_pivots(p, nparts=4)
        assert len(bounds) == 5

    def test_bounds_cover_pivot_range(self):
        p = Pivots(np.linspace(2, 7, 9), 100.0)
        bounds = partition_bounds_from_pivots(p, nparts=4)
        assert bounds[0] == pytest.approx(2.0)
        assert bounds[-1] == pytest.approx(7.0)

    def test_uniform_distribution_equal_widths(self):
        p = Pivots(np.linspace(0, 1, 65), 1000.0)
        bounds = partition_bounds_from_pivots(p, nparts=8)
        assert np.allclose(np.diff(bounds), 0.125, atol=1e-9)

    def test_nparts_validation(self):
        p = Pivots(np.array([0.0, 1.0]), 1.0)
        with pytest.raises(ValueError):
            partition_bounds_from_pivots(p, 0)

    @given(st.lists(st.floats(0, 100, allow_nan=False), min_size=8, max_size=200),
           st.integers(2, 16))
    @settings(max_examples=50)
    def test_balanced_partitions_property(self, values, nparts):
        """Bounds from exact sample pivots produce balanced partitions."""
        keys = np.array(values)
        piv = pivots_from_histogram(None, None, width=256, oob_keys=keys)
        assert piv is not None
        bounds = partition_bounds_from_pivots(piv, nparts)
        assert np.all(np.diff(bounds) >= 0)
        assert bounds[0] <= keys.min() + 1e-9
        assert bounds[-1] >= keys.max() - 1e-9
