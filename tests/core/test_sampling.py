"""Tests for the reservoir-sampling statistics backend."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.carp import CarpRun
from repro.core.config import CarpOptions
from repro.core.records import RecordBatch
from repro.core.sampling import ReservoirSampler


class TestReservoirSampler:
    def test_validation(self):
        with pytest.raises(ValueError):
            ReservoirSampler(1)

    def test_fills_first(self):
        r = ReservoirSampler(10)
        r.observe(np.arange(5, dtype=float))
        assert len(r.sample()) == 5
        assert r.seen == 5

    def test_capacity_respected(self):
        r = ReservoirSampler(10)
        r.observe(np.arange(1000, dtype=float))
        assert len(r.sample()) == 10
        assert r.seen == 1000

    def test_sample_from_stream(self):
        r = ReservoirSampler(50, seed=1)
        r.observe(np.arange(5000, dtype=float))
        s = r.sample()
        assert np.all((s >= 0) & (s < 5000))

    def test_uniformity(self):
        """The mean of many reservoirs tracks the stream mean."""
        means = []
        for seed in range(40):
            r = ReservoirSampler(64, seed=seed)
            r.observe(np.arange(10_000, dtype=float))
            means.append(r.sample().mean())
        assert np.mean(means) == pytest.approx(4999.5, rel=0.05)

    def test_reset(self):
        r = ReservoirSampler(8)
        r.observe(np.arange(100, dtype=float))
        r.reset()
        assert r.is_empty
        assert r.seen == 0

    def test_incremental_equivalent_to_bulk_in_count(self):
        a = ReservoirSampler(16, seed=0)
        a.observe(np.arange(1000, dtype=float))
        b = ReservoirSampler(16, seed=0)
        for i in range(0, 1000, 100):
            b.observe(np.arange(i, i + 100, dtype=float))
        assert a.seen == b.seen == 1000
        assert len(a.sample()) == len(b.sample()) == 16

    def test_pivots_weighting(self):
        """Pivots represent the full stream's mass, not just the
        reservoir's size."""
        r = ReservoirSampler(32, seed=2)
        r.observe(np.random.default_rng(0).random(5000))
        p = r.compute_pivots(16)
        assert p is not None
        assert p.count == pytest.approx(5000, rel=0.01)

    def test_pivots_with_oob(self):
        r = ReservoirSampler(32, seed=3)
        r.observe(np.random.default_rng(0).random(500))
        p = r.compute_pivots(8, oob_keys=np.array([10.0, 11.0]))
        assert p is not None
        assert p.points[-1] == pytest.approx(11.0)
        assert p.count == pytest.approx(502, rel=0.01)

    def test_empty_pivots_none(self):
        assert ReservoirSampler(8).compute_pivots(4) is None

    @given(chunks=st.lists(st.integers(0, 300), min_size=1, max_size=10),
           cap=st.integers(2, 64))
    @settings(max_examples=40)
    def test_invariants_property(self, chunks, cap):
        r = ReservoirSampler(cap, seed=7)
        total = 0
        rng = np.random.default_rng(0)
        for n in chunks:
            r.observe(rng.random(n))
            total += n
        assert r.seen == total
        assert len(r.sample()) == min(total, cap)


class TestReservoirBackendEndToEnd:
    OPTS = CarpOptions(
        pivot_count=32, oob_capacity=32, renegotiations_per_epoch=3,
        memtable_records=256, round_records=128, value_size=8,
        stats_backend="reservoir", reservoir_capacity=256,
    )

    def _streams(self, nranks=4, n=800, seed=0):
        rng = np.random.default_rng(seed)
        return [
            RecordBatch.from_keys(
                rng.lognormal(size=n).astype(np.float32), rank=r, value_size=8
            )
            for r in range(nranks)
        ]

    def test_backend_validation(self):
        with pytest.raises(ValueError, match="stats_backend"):
            CarpOptions(stats_backend="magic")
        with pytest.raises(ValueError, match="reservoir_capacity"):
            CarpOptions(reservoir_capacity=1)

    def test_all_records_stored(self, tmp_path):
        from repro.query.engine import PartitionedStore

        with CarpRun(4, tmp_path, self.OPTS) as run:
            stats = run.ingest_epoch(0, self._streams())
        with PartitionedStore(tmp_path) as store:
            assert store.total_records(0) == stats.records

    def test_balanced_partitions(self, tmp_path):
        with CarpRun(8, tmp_path, self.OPTS) as run:
            stats = run.ingest_epoch(0, self._streams(8, 2000))
        assert stats.load_stddev < 0.25

    def test_queries_correct(self, tmp_path):
        from repro.core.records import range_mask
        from repro.query.engine import PartitionedStore

        streams = self._streams(seed=5)
        keys = np.concatenate([s.keys for s in streams])
        rids = np.concatenate([s.rids for s in streams])
        with CarpRun(4, tmp_path, self.OPTS) as run:
            run.ingest_epoch(0, streams)
        with PartitionedStore(tmp_path) as store:
            res = store.query(0, 0.5, 2.0)
        assert set(res.rids.tolist()) == set(
            rids[range_mask(keys, 0.5, 2.0)].tolist()
        )


class TestBiasedReservoir:
    def test_validation(self):
        from repro.core.sampling import BiasedReservoirSampler

        with pytest.raises(ValueError):
            BiasedReservoirSampler(8, replace_prob=0.0)
        with pytest.raises(ValueError):
            BiasedReservoirSampler(8, replace_prob=1.5)

    def test_recency_bias(self):
        """After a distribution jump, the biased reservoir forgets the
        old regime far faster than the uniform one."""
        from repro.core.sampling import BiasedReservoirSampler

        uniform = ReservoirSampler(128, seed=0)
        biased = BiasedReservoirSampler(128, seed=0)
        old = np.zeros(4000)
        new = np.ones(2000)
        for r in (uniform, biased):
            r.observe(old)
            r.observe(new)
        assert np.mean(biased.sample()) > 0.9
        assert np.mean(uniform.sample()) < 0.6

    def test_capacity_and_seen(self):
        from repro.core.sampling import BiasedReservoirSampler

        r = BiasedReservoirSampler(16)
        r.observe(np.arange(1000, dtype=float))
        assert len(r.sample()) == 16
        assert r.seen == 1000

    def test_end_to_end_backend(self, tmp_path):
        from repro.query.engine import PartitionedStore

        opts = CarpOptions(
            pivot_count=32, oob_capacity=32, renegotiations_per_epoch=3,
            memtable_records=256, round_records=128, value_size=8,
            stats_backend="recency_reservoir", reservoir_capacity=256,
        )
        rng = np.random.default_rng(0)
        streams = [
            RecordBatch.from_keys(rng.random(600).astype(np.float32),
                                  rank=r, value_size=8)
            for r in range(4)
        ]
        with CarpRun(4, tmp_path, opts) as run:
            stats = run.ingest_epoch(0, streams)
        with PartitionedStore(tmp_path) as store:
            assert store.total_records(0) == stats.records
