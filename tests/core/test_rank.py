"""Unit tests for per-rank CARP sender state."""

import numpy as np
import pytest

from repro.core.config import CarpOptions
from repro.core.partition import PartitionTable
from repro.core.rank import CarpRankState

OPTS = CarpOptions(pivot_count=16, oob_capacity=8, value_size=8)


def make_rank(r=0):
    return CarpRankState(r, OPTS)


class TestCarpRankState:
    def test_no_pivots_before_any_data(self):
        assert make_rank().compute_pivots() is None

    def test_pivots_from_oob_only(self):
        rank = make_rank()
        from repro.core.records import RecordBatch

        rank.oob.add(RecordBatch.from_keys(np.array([1.0, 2.0, 3.0], np.float32),
                                           value_size=8))
        p = rank.compute_pivots()
        assert p is not None
        assert p.count == 3
        assert p.width == OPTS.pivot_count

    def test_adopt_table_rebins(self):
        rank = make_rank()
        table = PartitionTable(np.array([0.0, 1.0, 2.0]))
        rank.adopt_table(table)
        assert rank.hist.edges.tolist() == [0.0, 1.0, 2.0]

    def test_observe_sent_counts(self):
        rank = make_rank()
        rank.adopt_table(PartitionTable(np.array([0.0, 2.0])))
        rank.observe_sent(np.array([0.5, 1.5]))
        assert rank.sent_records == 2
        assert rank.hist.total == 2

    def test_pivots_combine_hist_and_oob(self):
        rank = make_rank()
        rank.adopt_table(PartitionTable(np.array([0.0, 1.0])))
        rank.observe_sent(np.array([0.5, 0.6]))
        from repro.core.records import RecordBatch

        rank.oob.add(RecordBatch.from_keys(np.array([5.0], np.float32),
                                           value_size=8))
        p = rank.compute_pivots()
        assert p is not None
        assert p.count == pytest.approx(3)
        assert p.points[-1] == pytest.approx(5.0)

    def test_adopt_table_resets_stats(self):
        rank = make_rank()
        rank.adopt_table(PartitionTable(np.array([0.0, 1.0])))
        rank.observe_sent(np.array([0.5]))
        rank.adopt_table(PartitionTable(np.array([0.0, 2.0])))
        assert rank.hist.total == 0

    def test_reset_for_epoch(self):
        rank = make_rank()
        rank.adopt_table(PartitionTable(np.array([0.0, 1.0])))
        rank.observe_sent(np.array([0.5]))
        rank.reset_for_epoch()
        assert rank.sent_records == 0
        assert rank.compute_pivots() is None
