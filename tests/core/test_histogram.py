"""Unit tests for rank-local histograms."""

import numpy as np
import pytest

from repro.core.histogram import RankHistogram, oracle_histogram
from repro.core.partition import PartitionTable


class TestRankHistogram:
    def test_starts_without_edges(self):
        h = RankHistogram()
        assert h.is_empty
        with pytest.raises(RuntimeError, match="no edges"):
            _ = h.edges

    def test_observe_before_edges_rejected(self):
        h = RankHistogram()
        with pytest.raises(RuntimeError):
            h.observe(np.array([1.0]))

    def test_rebin_and_observe(self):
        h = RankHistogram(np.array([0.0, 1.0, 2.0]))
        h.observe(np.array([0.5, 0.6, 1.5]))
        assert h.counts.tolist() == [2, 1]
        assert h.total == 3

    def test_one_bin_per_partition(self):
        table = PartitionTable(np.array([0.0, 1.0, 2.0, 3.0]))
        h = RankHistogram.for_table(table)
        assert len(h.counts) == table.nparts

    def test_observe_accumulates(self):
        h = RankHistogram(np.array([0.0, 1.0]))
        h.observe(np.array([0.5]))
        h.observe(np.array([0.6, 0.7]))
        assert h.total == 3

    def test_observe_empty_batch(self):
        h = RankHistogram(np.array([0.0, 1.0]))
        h.observe(np.array([]))
        assert h.total == 0

    def test_clamps_rounding_at_extremes(self):
        h = RankHistogram(np.array([0.0, 1.0, 2.0]))
        # keys nominally in-bounds but at/just past the edges
        h.observe(np.array([0.0, 2.0]))
        assert h.total == 2
        assert h.counts.tolist() == [1, 1]

    def test_reset_keeps_edges(self):
        h = RankHistogram(np.array([0.0, 1.0]))
        h.observe(np.array([0.5]))
        h.reset()
        assert h.total == 0
        assert h.edges.tolist() == [0.0, 1.0]

    def test_rebin_resets_counts(self):
        h = RankHistogram(np.array([0.0, 1.0]))
        h.observe(np.array([0.5]))
        h.rebin(np.array([0.0, 2.0, 4.0]))
        assert h.total == 0
        assert len(h.counts) == 2

    def test_rebin_validation(self):
        h = RankHistogram()
        with pytest.raises(ValueError):
            h.rebin(np.array([1.0]))
        with pytest.raises(ValueError):
            h.rebin(np.array([1.0, 1.0]))

    def test_is_empty_semantics(self):
        h = RankHistogram(np.array([0.0, 1.0]))
        assert h.is_empty
        h.observe(np.array([0.5]))
        assert not h.is_empty


class TestOracleHistogram:
    def test_covers_full_range(self):
        keys = np.array([1.0, 5.0, 9.0])
        edges, counts = oracle_histogram(keys, bins=4)
        assert edges[0] == 1.0 and edges[-1] == 9.0
        assert counts.sum() == 3

    def test_bin_count(self):
        edges, counts = oracle_histogram(np.random.default_rng(0).random(100), 16)
        assert len(counts) == 16
        assert len(edges) == 17

    def test_identical_keys(self):
        edges, counts = oracle_histogram(np.full(10, 3.0), bins=4)
        assert counts.sum() == 10
        assert edges[0] == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            oracle_histogram(np.array([]), 4)
