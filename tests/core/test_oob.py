"""Unit tests for the Out-Of-Bounds buffer."""

import numpy as np
import pytest

from repro.core.oob import OOBBuffer
from repro.core.records import RecordBatch


def batch(*keys, value_size=8):
    return RecordBatch.from_keys(np.array(keys, dtype=np.float32),
                                 value_size=value_size)


class TestOOBBuffer:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            OOBBuffer(0, 8)

    def test_add_within_capacity(self):
        buf = OOBBuffer(4, 8)
        overflow = buf.add(batch(1.0, 2.0))
        assert len(overflow) == 0
        assert len(buf) == 2
        assert not buf.is_full

    def test_fills_exactly(self):
        buf = OOBBuffer(2, 8)
        overflow = buf.add(batch(1.0, 2.0))
        assert len(overflow) == 0
        assert buf.is_full
        assert buf.room == 0

    def test_overflow_returned(self):
        buf = OOBBuffer(2, 8)
        overflow = buf.add(batch(1.0, 2.0, 3.0, 4.0))
        assert len(buf) == 2
        assert overflow.keys.tolist() == [3.0, 4.0]

    def test_overflow_when_already_full(self):
        buf = OOBBuffer(1, 8)
        buf.add(batch(1.0))
        overflow = buf.add(batch(2.0))
        assert overflow.keys.tolist() == [2.0]

    def test_keys_view(self):
        buf = OOBBuffer(8, 8)
        buf.add(batch(3.0))
        buf.add(batch(1.0, 2.0))
        assert sorted(buf.keys().tolist()) == [1.0, 2.0, 3.0]

    def test_keys_empty(self):
        assert len(OOBBuffer(4, 8).keys()) == 0

    def test_drain_returns_all_and_empties(self):
        buf = OOBBuffer(8, 8)
        buf.add(batch(1.0, 2.0))
        drained = buf.drain()
        assert len(drained) == 2
        assert len(buf) == 0
        assert not buf.is_full

    def test_drain_empty(self):
        drained = OOBBuffer(4, 16).drain()
        assert len(drained) == 0
        assert drained.value_size == 16

    def test_reuse_after_drain(self):
        buf = OOBBuffer(2, 8)
        buf.add(batch(1.0, 2.0))
        buf.drain()
        overflow = buf.add(batch(3.0))
        assert len(overflow) == 0
        assert buf.keys().tolist() == [3.0]
