"""Unit tests for renegotiation triggers."""

import pytest

from repro.core.triggers import PeriodicTrigger, TriggerLog, TriggerReason


class TestPeriodicTrigger:
    def test_validation(self):
        with pytest.raises(ValueError):
            PeriodicTrigger(0)
        with pytest.raises(ValueError):
            PeriodicTrigger.per_epoch(100, 0)

    def test_fires_at_interval(self):
        t = PeriodicTrigger(100)
        assert not t.advance(99)
        assert t.advance(1)

    def test_accumulates_across_calls(self):
        t = PeriodicTrigger(10)
        assert not t.advance(4)
        assert not t.advance(4)
        assert t.advance(4)

    def test_reset(self):
        t = PeriodicTrigger(10)
        t.advance(10)
        t.reset()
        assert t.records_since_last == 0
        assert not t.advance(9)

    def test_per_epoch_interval(self):
        t = PeriodicTrigger.per_epoch(epoch_records=1000, times_per_epoch=4)
        assert t.interval_records == 250

    def test_per_epoch_minimum_interval(self):
        t = PeriodicTrigger.per_epoch(epoch_records=2, times_per_epoch=10)
        assert t.interval_records == 1

    def test_negative_records_rejected(self):
        with pytest.raises(ValueError):
            PeriodicTrigger(10).advance(-1)

    def test_fires_repeatedly_with_reset(self):
        t = PeriodicTrigger(5)
        fires = 0
        for _ in range(20):
            if t.advance(1):
                fires += 1
                t.reset()
        assert fires == 4


class TestTriggerLog:
    def test_record_and_count(self):
        log = TriggerLog()
        log.record(0, TriggerReason.BOOTSTRAP)
        log.record(3, TriggerReason.PERIODIC)
        log.record(5, TriggerReason.PERIODIC)
        assert log.count() == 3
        assert log.count(TriggerReason.PERIODIC) == 2
        assert log.count(TriggerReason.OOB_FULL) == 0

    def test_events_preserve_order(self):
        log = TriggerLog()
        log.record(1, TriggerReason.OOB_FULL)
        log.record(2, TriggerReason.PERIODIC)
        assert [r for _, r in log.events] == [
            TriggerReason.OOB_FULL, TriggerReason.PERIODIC
        ]
