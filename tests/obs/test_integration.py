"""End-to-end recording: CarpRun + KoiDB + queries under one Obs stack.

The acceptance contract for the observability subsystem: a recorded
run yields a Perfetto-valid trace with one track per subsystem, and
every metrics counter reconciles exactly with the statistics the run
maintains for itself (``EpochStats`` / ``KoiDBStats``).
"""

import numpy as np
import pytest

from repro.core.carp import CarpRun
from repro.core.config import CarpOptions
from repro.core.records import RecordBatch
from repro.obs import NULL_OBS, Obs, validate_trace_events
from repro.query.engine import PartitionedStore
from repro.sim.engine import simulate_ingestion

NRANKS = 8
OPTS = CarpOptions(pivot_count=32, oob_capacity=32,
                   renegotiations_per_epoch=3, memtable_records=256,
                   round_records=128, value_size=8)


def streams(seed=0, n=600):
    rng = np.random.default_rng(seed)
    return [
        RecordBatch.from_keys(rng.lognormal(size=n).astype(np.float32),
                              rank=r, value_size=8)
        for r in range(NRANKS)
    ]


@pytest.fixture
def recorded(tmp_path):
    obs = Obs.recording()
    stats = []
    with CarpRun(NRANKS, tmp_path, OPTS, obs=obs) as run:
        for epoch in range(2):
            stats.append(run.ingest_epoch(epoch, streams(seed=epoch)))
        koidb = [db.stats for db in run.koidbs]
    return obs, stats, koidb, tmp_path


class TestTraceShape:
    def test_all_pipeline_track_types_present(self, recorded):
        obs, _, _, _ = recorded
        assert {"route", "shuffle", "renegotiate", "flush", "epoch"} <= set(
            obs.tracer.track_types
        )

    def test_trace_document_validates(self, recorded):
        obs, _, _, _ = recorded
        assert validate_trace_events(obs.tracer.to_doc()) == []
        assert obs.tracer.open_spans == {}
        assert obs.tracer.unmatched_ends == 0

    def test_one_route_lane_per_rank(self, recorded):
        obs, _, _, _ = recorded
        events = obs.tracer.events()
        route_pid = next(
            e["pid"] for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
            and e["args"]["name"] == "route"
        )
        lanes = {
            e["args"]["name"] for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
            and e["pid"] == route_pid
        }
        assert lanes == {f"rank {r}" for r in range(NRANKS)}

    def test_epoch_spans_bracket_everything(self, recorded):
        obs, stats, _, _ = recorded
        events = obs.tracer.events()
        begins = [e for e in events if e["ph"] == "B" and
                  e["name"].startswith("epoch ")]
        assert len(begins) == len(stats)
        # timestamps strictly increase epoch over epoch (virtual clock
        # is monotonic across the whole run)
        ts = [e["ts"] for e in begins]
        assert ts == sorted(ts)


class TestMetricsReconciliation:
    def test_counters_match_epoch_stats(self, recorded):
        obs, stats, _, _ = recorded
        m = obs.metrics
        assert m.counter_value("carp.records_ingested") == sum(
            s.records for s in stats
        )
        assert m.counter_value("reneg.rounds") == sum(
            s.renegotiations for s in stats
        )
        assert m.counter_value("reneg.messages") == sum(
            rs.total_messages for s in stats for rs in s.reneg_stats
        )
        assert m.counter_value("net.bytes_charged") == sum(
            rs.total_bytes for s in stats for rs in s.reneg_stats
        )

    def test_counters_match_koidb_stats(self, recorded):
        obs, _, koidb, _ = recorded
        m = obs.metrics
        for metric, attr in [
            ("koidb.records_in", "records_in"),
            ("koidb.stray_records", "stray_records"),
            ("koidb.ssts_written", "ssts_written"),
            ("koidb.stray_ssts_written", "stray_ssts_written"),
            ("koidb.bytes_written", "bytes_written"),
            ("koidb.memtable_flushes", "memtable_flushes"),
        ]:
            assert m.counter_value(metric) == sum(
                getattr(s, attr) for s in koidb
            ), metric

    def test_every_shuffled_record_counted(self, recorded):
        obs, stats, _, _ = recorded
        assert obs.metrics.counter_value("carp.records_shuffled") == sum(
            s.records for s in stats
        )

    def test_query_counters(self, recorded):
        obs, _, _, out = recorded
        with PartitionedStore(out, obs=obs) as store:
            res = store.query(0, 0.5, 2.0)
        m = obs.metrics
        assert m.counter_value("query.read_requests") == res.cost.read_requests
        assert m.counter_value("query.probe_bytes") == res.cost.bytes_read
        assert m.counter_value("query.ssts_read") == res.cost.ssts_read
        assert m.counter_value("io.bytes_charged") == res.cost.bytes_read


class TestDisabledPath:
    def test_null_obs_run_identical_to_unobserved(self, tmp_path):
        with CarpRun(NRANKS, tmp_path / "a", OPTS) as run:
            plain = run.ingest_epoch(0, streams())
        with CarpRun(NRANKS, tmp_path / "b", OPTS, obs=NULL_OBS) as run:
            nulled = run.ingest_epoch(0, streams())
        assert plain.records == nulled.records
        assert plain.stray_records == nulled.stray_records
        assert plain.renegotiations == nulled.renegotiations
        assert np.array_equal(plain.partition_loads, nulled.partition_loads)

    def test_null_obs_records_nothing(self, tmp_path):
        with CarpRun(NRANKS, tmp_path, OPTS, obs=NULL_OBS) as run:
            run.ingest_epoch(0, streams())
        assert NULL_OBS.tracer.events() == []
        assert NULL_OBS.metrics.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }
        assert NULL_OBS.clock.now() == 0.0

    def test_default_is_null(self, tmp_path):
        with CarpRun(NRANKS, tmp_path, OPTS) as run:
            assert run.obs is NULL_OBS


class TestSimulatorSpans:
    def test_stall_and_idle_intervals_traced(self):
        obs = Obs.recording()
        res = simulate_ingestion(
            1e9, 5e8, 4e8, reneg_pauses=[0.05, 0.05],
            receiver_buffer_bytes=2e8, obs=obs,
        )
        events = obs.tracer.events()
        stalls = [e for e in events if e["name"] == "stall"]
        renegs = [e for e in events if e["name"] == "renegotiation"]
        assert stalls and all(e["ph"] == "X" for e in stalls)
        assert len(renegs) == 2
        # traced stall time sums to the result's stall accounting
        traced = sum(e["dur"] for e in stalls) / 1e6
        assert traced == pytest.approx(res.shuffle_stall_time, rel=0.05)
        assert obs.metrics.counter_value("sim.stall_seconds") == pytest.approx(
            res.shuffle_stall_time
        )

    def test_disabled_sim_emits_nothing(self):
        res = simulate_ingestion(1e9, 5e8, 4e8, obs=None)
        assert res.duration > 0
