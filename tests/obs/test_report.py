"""Report edge cases: degenerate traces and legacy metrics snapshots."""

from __future__ import annotations

from repro.obs.report import (
    metrics_table,
    normalize_snapshot,
    render_report,
    request_spans,
    request_tree_table,
    top_spans,
    top_spans_table,
    track_summary,
)


def _meta(pid, name):
    return {"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": name}}


def _begin(pid, name, ts, args=None):
    return {"ph": "B", "pid": pid, "tid": 0, "name": name, "ts": ts,
            "args": args or {}}


def _end(pid, ts):
    return {"ph": "E", "pid": pid, "tid": 0, "ts": ts}


# --------------------------------------------------------- empty traces


def test_track_summary_of_empty_trace():
    assert track_summary([]) == {}


def test_top_spans_of_empty_trace():
    assert top_spans([], 5) == []
    # the table renders headers only, no crash
    assert "track" in top_spans_table([], 5)


def test_request_spans_of_empty_trace():
    assert request_spans([], "query-000001") == []
    assert "span" in request_tree_table([], "query-000001")


# ---------------------------------------------------- never-closed spans


def test_never_closed_span_contributes_no_interval():
    events = [
        _meta(1, "flush"),
        _begin(1, "flush", 0.0),
        # no matching E: the run died mid-span
    ]
    summary = track_summary(events)
    assert summary["flush"]["events"] == 1
    assert summary["flush"]["spans"] == 0
    assert summary["flush"]["busy_ticks"] == 0.0
    assert top_spans(events, 5) == []


def test_unbalanced_end_is_tolerated():
    events = [
        _meta(1, "flush"),
        _end(1, 4.0),  # E with no B on the stack
        _begin(1, "flush", 5.0),
        _end(1, 7.0),
    ]
    summary = track_summary(events)
    assert summary["flush"]["spans"] == 1
    assert summary["flush"]["busy_ticks"] == 2.0
    (span,) = top_spans(events, 5)
    assert span["dur"] == 2.0


def test_mixed_closed_and_open_spans():
    events = [
        _meta(1, "route"),
        _begin(1, "outer", 0.0),
        _begin(1, "inner", 1.0),
        _end(1, 3.0),  # closes inner (LIFO)
        # outer never closes
    ]
    (span,) = top_spans(events, 5)
    assert span["name"] == "inner"
    assert span["dur"] == 2.0


# ------------------------------------------------- duplicate track names


def test_duplicate_track_names_aggregate_in_summary():
    """Two pids declaring the same track type merge in the summary."""
    events = [
        _meta(1, "flush"),
        _meta(2, "flush"),
        _begin(1, "flush", 0.0), _end(1, 2.0),
        _begin(2, "flush", 1.0), _end(2, 4.0),
    ]
    summary = track_summary(events)
    assert summary["flush"]["spans"] == 2
    assert summary["flush"]["busy_ticks"] == 5.0


def test_duplicate_track_names_do_not_collide_in_top_spans():
    """Per-pid span stacks stay separate even under one track name."""
    events = [
        _meta(1, "flush"),
        _meta(2, "flush"),
        _begin(1, "a", 0.0),
        _begin(2, "b", 1.0),
        _end(1, 5.0),  # closes a (pid 1's stack), not b
        _end(2, 2.0),  # closes b
    ]
    spans = {s["name"]: s["dur"] for s in top_spans(events, 5)}
    assert spans == {"a": 5.0, "b": 1.0}


def test_duplicate_name_redeclaration_last_wins():
    events = [
        _meta(1, "flush"),
        _meta(1, "route"),  # pid 1 re-declared; later metadata wins
        _begin(1, "x", 0.0), _end(1, 1.0),
    ]
    summary = track_summary(events)
    assert "route" in summary and "flush" not in summary


# --------------------------------------------------- request attribution


def test_request_spans_filter_and_order():
    events = [
        _meta(1, "epoch"),
        _meta(2, "flush"),
        _begin(1, "epoch", 0.0, {"request": "ingest-000001", "epoch": 0}),
        _begin(2, "flush", 1.0, {"request": "ingest-000001", "rank": 3}),
        _end(2, 2.0),
        _end(1, 5.0),
        _begin(1, "epoch", 6.0, {"request": "ingest-000002"}),
        _end(1, 7.0),
    ]
    spans = request_spans(events, "ingest-000001")
    assert [s["name"] for s in spans] == ["epoch", "flush"]  # by start ts
    table = request_tree_table(events, "ingest-000001")
    assert "rank=3" in table
    # the request key itself is implied by the query, not repeated
    assert "request=ingest-000001" not in table


# ------------------------------------------------------ legacy snapshots


def test_normalize_snapshot_fills_missing_sections():
    legacy = {"counters": {"koidb.records_in": 5}, "gauges": {}}
    normalized, notes = normalize_snapshot(legacy)
    assert normalized["histograms"] == {}
    assert normalized["counters"] == {"koidb.records_in": 5}
    assert any("histograms" in n for n in notes)
    assert not any("counters" in n for n in notes)


def test_normalize_snapshot_replaces_malformed_sections():
    broken = {"counters": "oops", "gauges": {}, "histograms": {}}
    normalized, notes = normalize_snapshot(broken)
    assert normalized["counters"] == {}
    assert any("malformed" in n for n in notes)


def test_normalize_snapshot_is_quiet_on_complete_input():
    complete = {"counters": {}, "gauges": {}, "histograms": {}}
    normalized, notes = normalize_snapshot(complete)
    assert notes == []
    assert normalized == complete


def test_metrics_table_survives_legacy_and_odd_values():
    snapshot, _ = normalize_snapshot({"counters": {"koidb.records_in": 5}})
    text = metrics_table(snapshot)
    assert "koidb.records_in" in text
    # non-numeric values degrade to str(), numeric histograms summarize
    weird = {
        "counters": {"koidb.note": "n/a"},
        "gauges": {"g": "broken"},
        "histograms": {"h": {"count": 2, "mean": "?", "p50": 1.0}},
    }
    text = metrics_table(weird)
    assert "n/a" in text and "broken" in text and "p50<=1.00" in text


def test_render_report_on_legacy_artifacts():
    snapshot, _ = normalize_snapshot({"counters": {}})
    text = render_report({}, snapshot, [])
    assert "CARP run" in text
    assert "Metrics snapshot" in text
