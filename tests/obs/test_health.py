"""HealthPolicy parsing and SLO evaluation over telemetry samples."""

from __future__ import annotations

import json
import sys

import pytest

from repro.obs.health import (
    HealthPolicy,
    HealthRule,
    evaluate,
    parse_policy,
    parse_telemetry_lines,
)


def _sample(seq, kind="epoch", **sections):
    doc = {"kind": kind, "seq": seq, "ts": float(seq),
           "counters": {}, "deltas": {}, "gauges": {}, "histograms": {},
           "derived": {}}
    doc.update(sections)
    return doc


def _policy(*rules):
    return HealthPolicy(name="test", rules=tuple(rules))


# ------------------------------------------------------------ rule shape


def test_rule_rejects_unknown_section():
    with pytest.raises(ValueError, match="must start with"):
        HealthRule(selector="bogus.thing", max=1.0)


def test_rule_needs_some_bound():
    with pytest.raises(ValueError, match="max and/or min"):
        HealthRule(selector="counters.faults.task_crashes")


def test_rule_rejects_unknown_window():
    with pytest.raises(ValueError, match="over="):
        HealthRule(selector="counters.x", max=1.0, over="always")


def test_histogram_selector_needs_a_stat():
    with pytest.raises(ValueError, match="must end in"):
        HealthRule(selector="histograms.query.latency", max=1.0)
    # a metric name containing dots parses: stat is the last component
    HealthRule(selector="histograms.query.latency.p99", max=1.0)


# --------------------------------------------------------------- parsing


def test_parse_policy_json_roundtrip():
    doc = {
        "name": "demo",
        "rules": [
            {"selector": "derived.read_amp", "max": 10.0,
             "description": "bounded amplification"},
            {"selector": "counters.faults.task_crashes", "max": 0,
             "over": "any"},
        ],
    }
    policy = parse_policy(json.dumps(doc))
    assert policy.name == "demo"
    assert policy.rules[0].max == 10.0
    assert policy.rules[1].over == "any"


def test_parse_policy_rejects_malformed_documents():
    with pytest.raises(ValueError, match="rules"):
        parse_policy(json.dumps({"name": "x"}))
    with pytest.raises(ValueError, match="selector"):
        parse_policy(json.dumps({"rules": [{"max": 1}]}))
    with pytest.raises(ValueError, match="must be a number"):
        parse_policy(json.dumps(
            {"rules": [{"selector": "counters.x", "max": "big"}]}
        ))
    with pytest.raises(ValueError, match="unknown health policy format"):
        parse_policy("{}", fmt="yaml")


def test_parse_policy_toml_is_capability_gated():
    toml = (
        'name = "demo"\n'
        "[[rules]]\n"
        'selector = "derived.read_amp"\n'
        "max = 10.0\n"
    )
    if sys.version_info >= (3, 11):
        policy = parse_policy(toml, fmt="toml")
        assert policy.rules[0].selector == "derived.read_amp"
    else:
        with pytest.raises(RuntimeError, match="JSON"):
            parse_policy(toml, fmt="toml")


def test_default_policy_file_parses():
    from pathlib import Path

    repo = Path(__file__).resolve().parents[2]
    text = (repo / "configs" / "health_default.json").read_text()
    policy = parse_policy(text)
    assert policy.name == "carp-default"
    assert len(policy.rules) >= 5


# ------------------------------------------------------------ evaluation


def test_final_window_checks_only_the_last_sample():
    rule = HealthRule(selector="gauges.shuffle.in_flight_records", max=0)
    samples = [
        _sample(0, gauges={"shuffle.in_flight_records": 64.0}),
        _sample(1, kind="final", gauges={"shuffle.in_flight_records": 0.0}),
    ]
    report = evaluate(_policy(rule), samples)
    (result,) = report.results
    assert result.status == "ok"
    assert result.observed == 0.0


def test_any_window_catches_mid_run_excursions():
    rule = HealthRule(selector="gauges.shuffle.in_flight_records", max=0,
                      over="any")
    samples = [
        _sample(0, gauges={"shuffle.in_flight_records": 64.0}),
        _sample(1, kind="final", gauges={"shuffle.in_flight_records": 0.0}),
    ]
    report = evaluate(_policy(rule), samples)
    (result,) = report.results
    assert result.status == "breach"
    assert result.observed == 64.0
    assert result.at_seq == 0
    assert not report.ok


def test_ticks_are_ignored_by_evaluation():
    rule = HealthRule(selector="counters.faults.task_crashes", max=0,
                      over="any")
    samples = [
        {"kind": "tick", "seq": 0, "ts": 10.0,
         "counters": {"faults.task_crashes": 5}, "gauges": {}},
        _sample(1, kind="final", counters={"faults.task_crashes": 0}),
    ]
    report = evaluate(_policy(rule), samples)
    assert report.results[0].status == "ok"
    assert report.samples_seen == 1


def test_unresolved_selector_is_skipped_not_breached():
    rule = HealthRule(selector="counters.fsck.quarantined_files", max=0)
    report = evaluate(_policy(rule), [_sample(0, kind="final")])
    (result,) = report.results
    assert result.status == "skipped"
    assert "absent" in result.note
    assert report.ok


def test_empty_stream_skips_every_rule():
    rule = HealthRule(selector="derived.read_amp", max=10.0)
    report = evaluate(_policy(rule), [])
    assert report.results[0].status == "skipped"
    assert report.samples_seen == 0


def test_histogram_stat_selector_resolves():
    rule = HealthRule(selector="histograms.query.latency.p99", max=1.0)
    hist = {"bounds": [0.1, 1.0], "counts": [0, 0, 3], "count": 3,
            "sum": 15.0, "mean": 5.0, "min": 4.0, "max": 6.0,
            "p50": 6.0, "p95": 6.0, "p99": 6.0}
    samples = [_sample(0, kind="final",
                       histograms={"query.latency": hist})]
    report = evaluate(_policy(rule), samples)
    (result,) = report.results
    assert result.status == "breach"
    assert result.observed == 6.0


def test_min_bound_breaches_below():
    rule = HealthRule(selector="deltas.carp.records_ingested", min=1.0)
    report = evaluate(
        _policy(rule),
        [_sample(0, kind="final", deltas={"carp.records_ingested": 0.0})],
    )
    assert report.results[0].status == "breach"


def test_worst_value_reported_across_window():
    rule = HealthRule(selector="derived.read_amp", max=10.0, over="any")
    samples = [
        _sample(0, derived={"read_amp": 12.0}),
        _sample(1, derived={"read_amp": 40.0}),
        _sample(2, kind="final", derived={"read_amp": 2.0}),
    ]
    report = evaluate(_policy(rule), samples)
    (result,) = report.results
    assert result.observed == 40.0
    assert result.at_seq == 1


def test_report_render_and_to_dict():
    rule = HealthRule(selector="derived.faults_total", max=0,
                      description="clean run")
    report = evaluate(
        _policy(rule),
        [_sample(0, kind="final", derived={"faults_total": 2.0})],
    )
    text = report.render()
    assert "1 breach(es)" in text
    assert "derived.faults_total" in text
    assert "clean run" in text
    doc = report.to_dict()
    assert doc["ok"] is False
    assert doc["results"][0]["status"] == "breach"
    assert doc["results"][0]["observed"] == 2.0


# --------------------------------------------------------- stream parsing


def test_parse_telemetry_lines_tolerates_blanks():
    text = '{"kind": "epoch", "seq": 0}\n\n{"kind": "final", "seq": 1}\n'
    samples = parse_telemetry_lines(text)
    assert [s["seq"] for s in samples] == [0, 1]


def test_parse_telemetry_lines_names_the_bad_line():
    text = '{"kind": "epoch"}\nnot json\n'
    with pytest.raises(ValueError, match="line 2"):
        parse_telemetry_lines(text)
    with pytest.raises(ValueError, match="line 1"):
        parse_telemetry_lines("[1, 2]\n")
