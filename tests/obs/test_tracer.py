"""ChromeTracer: ordering, out-of-order closes, schema validation."""

import json
from pathlib import Path

from repro.obs import ChromeTracer, NullTracer, Tracer, validate_trace_events

GOLDEN = Path(__file__).parent / "golden_trace.json"


def canonical_trace() -> ChromeTracer:
    """The fixed event sequence behind the golden-file test."""
    t = ChromeTracer()
    route = t.track("route", "rank 0")
    shuffle = t.track("shuffle", "fabric")
    t.begin(route, "route", 0.0, {"records": 128})
    t.complete(shuffle, "deliver", 0.5, 0.25, {"records": 64})
    t.instant(shuffle, "renegotiation", 0.75)
    t.end(route, 1.0)
    t.counter(shuffle, "in_flight", 1.0, {"records": 64.0})
    return t


class TestTrackAssignment:
    def test_same_track_resolves_to_same_ids(self):
        t = ChromeTracer()
        assert t.track("route", "rank 0") == t.track("route", "rank 0")

    def test_threads_get_distinct_tids_within_process(self):
        t = ChromeTracer()
        a = t.track("route", "rank 0")
        b = t.track("route", "rank 1")
        assert a[0] == b[0]
        assert a[1] != b[1]

    def test_processes_get_distinct_pids(self):
        t = ChromeTracer()
        assert t.track("route")[0] != t.track("flush")[0]

    def test_track_types_in_creation_order(self):
        t = ChromeTracer()
        t.track("route")
        t.track("flush")
        t.track("route", "rank 9")
        assert t.track_types == ["route", "flush"]

    def test_metadata_events_emitted_once_per_track(self):
        t = ChromeTracer()
        t.track("route", "rank 0")
        t.track("route", "rank 0")
        meta = [e for e in t.events() if e["ph"] == "M"]
        assert len(meta) == 2  # one process_name + one thread_name


class TestEventOrdering:
    def test_metadata_sorts_before_spans(self):
        t = canonical_trace()
        events = t.events()
        phases = [e["ph"] for e in events]
        n_meta = phases.count("M")
        assert all(ph == "M" for ph in phases[:n_meta])

    def test_events_sorted_by_timestamp(self):
        t = ChromeTracer()
        a = t.track("route")
        # emitted out of timestamp order
        t.complete(a, "late", 5.0, 1.0)
        t.complete(a, "early", 1.0, 1.0)
        names = [e["name"] for e in t.events() if e["ph"] == "X"]
        assert names == ["early", "late"]

    def test_same_ts_preserves_emission_order(self):
        t = ChromeTracer()
        a = t.track("route")
        t.begin(a, "outer", 1.0)
        t.begin(a, "inner", 1.0)
        t.end(a, 1.0)
        t.end(a, 1.0)
        spans = [(e["ph"], e["name"]) for e in t.events() if e["ph"] in "BE"]
        assert spans == [("B", "outer"), ("B", "inner"),
                        ("E", "inner"), ("E", "outer")]


class TestOutOfOrderCloses:
    def test_end_pops_innermost_open_span(self):
        t = ChromeTracer()
        a = t.track("route")
        t.begin(a, "outer", 0.0)
        t.begin(a, "inner", 1.0)
        t.end(a, 2.0)
        assert t.open_spans == {a: ["outer"]}
        t.end(a, 3.0)
        assert t.open_spans == {}
        assert t.unmatched_ends == 0

    def test_unmatched_end_counted_not_recorded(self):
        t = ChromeTracer()
        a = t.track("route")
        t.end(a, 1.0)
        assert t.unmatched_ends == 1
        assert [e for e in t.events() if e["ph"] == "E"] == []
        # document stays valid: no dangling E events
        assert validate_trace_events(t.to_doc()) == []

    def test_interleaved_tracks_close_independently(self):
        t = ChromeTracer()
        a = t.track("route", "rank 0")
        b = t.track("route", "rank 1")
        t.begin(a, "ra", 0.0)
        t.begin(b, "rb", 0.5)
        t.end(a, 1.0)  # a closes before b, tracks do not interfere
        t.end(b, 2.0)
        assert t.open_spans == {}
        assert validate_trace_events(t.to_doc()) == []


class TestValidation:
    def test_canonical_trace_validates(self):
        assert validate_trace_events(canonical_trace().to_doc()) == []

    def test_rejects_non_object_top_level(self):
        assert validate_trace_events([]) != []
        assert validate_trace_events({"events": []}) != []

    def test_rejects_unknown_phase(self):
        doc = {"traceEvents": [
            {"name": "x", "ph": "Q", "ts": 0.0, "pid": 1, "tid": 1}
        ]}
        assert any("phase" in p for p in validate_trace_events(doc))

    def test_rejects_negative_ts_and_missing_dur(self):
        doc = {"traceEvents": [
            {"name": "x", "ph": "i", "ts": -1.0, "pid": 1, "tid": 1},
            {"name": "y", "ph": "X", "ts": 0.0, "pid": 1, "tid": 1},
        ]}
        problems = validate_trace_events(doc)
        assert any("'ts'" in p for p in problems)
        assert any("'dur'" in p for p in problems)

    def test_detects_unbalanced_spans(self):
        doc = {"traceEvents": [
            {"name": "x", "ph": "B", "ts": 0.0, "pid": 1, "tid": 1}
        ]}
        assert any("unclosed" in p for p in validate_trace_events(doc))
        doc = {"traceEvents": [
            {"name": "x", "ph": "E", "ts": 0.0, "pid": 1, "tid": 1}
        ]}
        assert any("no open span" in p for p in validate_trace_events(doc))


class TestGoldenFile:
    def test_canonical_trace_matches_golden(self):
        """The emitted document is byte-stable against the checked-in
        golden file — any schema drift (field renames, ordering
        changes) must be a deliberate, reviewed update of the golden.
        """
        doc = canonical_trace().to_doc()
        golden = json.loads(GOLDEN.read_text())
        assert doc == golden

    def test_golden_file_itself_validates(self):
        assert validate_trace_events(json.loads(GOLDEN.read_text())) == []


class TestNullTracer:
    def test_null_is_base_tracer(self):
        assert NullTracer is Tracer

    def test_null_records_nothing(self, tmp_path):
        t = NullTracer()
        track = t.track("route", "rank 0")
        assert track == (0, 0)
        t.begin(track, "x", 0.0)
        t.end(track, 1.0)
        t.complete(track, "y", 0.0, 1.0)
        t.instant(track, "z", 0.0)
        t.counter(track, "c", 0.0, {"v": 1.0})
        assert t.events() == []
        path = t.write(tmp_path / "trace.json")
        assert json.loads(path.read_text()) == {
            "traceEvents": [], "displayTimeUnit": "ms"
        }
