"""MetricsRegistry: bucketing edge cases, collisions, null no-ops."""

import json

import pytest

from repro.obs import Histogram, MetricsRegistry, NullMetricsRegistry


class TestCounter:
    def test_accumulates(self):
        c = MetricsRegistry().counter("x")
        c.add()
        c.add(4)
        assert c.value == 5

    def test_negative_increment_rejected(self):
        c = MetricsRegistry().counter("x")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.add(-1)

    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")


class TestGauge:
    def test_set_overwrites(self):
        g = MetricsRegistry().gauge("occ")
        g.set(0.25)
        g.set(0.75)
        assert g.value == 0.75


class TestHistogramBucketing:
    def test_below_first_bound_lands_in_first_bucket(self):
        h = Histogram("h", (10, 20))
        h.observe(3)
        assert h.counts == [1, 0, 0]

    def test_exactly_on_bound_lands_in_that_bucket(self):
        # bounds are inclusive upper edges: v == bounds[i] -> bucket i
        h = Histogram("h", (10, 20))
        h.observe(10)
        h.observe(20)
        assert h.counts == [1, 1, 0]

    def test_above_last_bound_lands_in_overflow(self):
        h = Histogram("h", (10, 20))
        h.observe(20.0001)
        h.observe(1e9)
        assert h.counts == [0, 0, 2]

    def test_just_above_bound_spills_to_next_bucket(self):
        h = Histogram("h", (10, 20))
        h.observe(10.0001)
        assert h.counts == [0, 1, 0]

    def test_stats_track_extremes(self):
        h = Histogram("h", (1.0,))
        for v in (0.5, 2.0, 1.0):
            h.observe(v)
        assert h.count == 3
        assert h.min == 0.5
        assert h.max == 2.0
        assert h.mean == pytest.approx(3.5 / 3)

    def test_empty_histogram_to_dict(self):
        d = Histogram("h", (1.0,)).to_dict()
        assert d["count"] == 0
        assert d["min"] is None and d["max"] is None
        assert d["mean"] == 0.0

    def test_bounds_must_be_strictly_increasing(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", (1.0, 1.0))
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", (2.0, 1.0))
        with pytest.raises(ValueError, match="at least one"):
            Histogram("h", ())


class TestRegistry:
    def test_cross_type_name_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="different type"):
            reg.gauge("x")
        with pytest.raises(ValueError, match="different type"):
            reg.histogram("x", (1.0,))

    def test_histogram_rebounds_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("h", (1.0, 2.0))
        assert reg.histogram("h", (1.0, 2.0)).bounds == (1.0, 2.0)
        with pytest.raises(ValueError, match="different bounds"):
            reg.histogram("h", (1.0, 3.0))

    def test_counter_value_defaults_to_zero(self):
        assert MetricsRegistry().counter_value("never") == 0

    def test_snapshot_shape_and_ordering(self):
        reg = MetricsRegistry()
        reg.counter("b").add(2)
        reg.counter("a").add(1)
        reg.gauge("g").set(0.5)
        reg.histogram("h", (1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a", "b"]
        assert snap["gauges"] == {"g": 0.5}
        assert snap["histograms"]["h"]["count"] == 1
        # snapshot must round-trip through JSON unchanged
        assert json.loads(json.dumps(snap)) == snap

    def test_write_json(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("x").add(3)
        path = reg.write_json(tmp_path / "m" / "metrics.json")
        assert json.loads(path.read_text())["counters"] == {"x": 3}


class TestNullRegistry:
    def test_instruments_drop_writes(self):
        reg = NullMetricsRegistry()
        c = reg.counter("x")
        c.add(100)
        g = reg.gauge("y")
        g.set(1.0)
        h = reg.histogram("z", (1.0,))
        h.observe(5.0)
        assert c.value == 0
        assert g.value == 0.0
        assert h.count == 0
        assert reg.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }

    def test_shared_instances(self):
        reg = NullMetricsRegistry()
        assert reg.counter("a") is reg.counter("b")
        assert reg.histogram("a", (1.0,)) is reg.histogram("b", (2.0, 3.0))


class TestHistogramQuantiles:
    def _hist(self):
        h = Histogram("h", (1.0, 2.0, 5.0, 10.0))
        for v in [0.5] * 50 + [1.5] * 30 + [4.0] * 15 + [8.0] * 4 + [100.0]:
            h.observe(v)
        return h

    def test_quantiles_are_bucket_upper_bounds(self):
        h = self._hist()
        # 50th sample sits in the first bucket (<=1.0), 95th in the
        # third (<=5.0), 99th in the fourth (<=10.0)
        assert h.quantile(0.50) == 1.0
        assert h.quantile(0.95) == 5.0
        assert h.quantile(0.99) == 10.0

    def test_overflow_quantile_reports_observed_max(self):
        h = self._hist()
        assert h.quantile(1.0) == 100.0

    def test_empty_histogram_has_no_quantiles(self):
        h = Histogram("h", (1.0,))
        assert h.quantile(0.5) is None

    def test_out_of_range_q_rejected(self):
        h = self._hist()
        with pytest.raises(ValueError):
            h.quantile(1.5)
        with pytest.raises(ValueError):
            h.quantile(-0.1)

    def test_to_dict_carries_bucket_boundaries_and_counts(self):
        d = self._hist().to_dict()
        assert d["bounds"] == [1.0, 2.0, 5.0, 10.0]
        # one count per bounded bucket plus the overflow bucket
        assert d["counts"] == [50, 30, 15, 4, 1]
        assert sum(d["counts"]) == d["count"]

    def test_all_mass_in_overflow_bucket(self):
        # every sample lands above the last bound: the bounded buckets
        # stay empty, every quantile degrades to the observed max, and
        # the snapshot still carries the full bucket structure
        h = Histogram("h", (1.0, 2.0))
        for v in (10.0, 20.0, 30.0):
            h.observe(v)
        d = h.to_dict()
        assert d["bounds"] == [1.0, 2.0]
        assert d["counts"] == [0, 0, 3]
        assert d["p50"] == 30.0
        assert d["p95"] == 30.0
        assert d["p99"] == 30.0
        assert d["min"] == 10.0
        assert d["max"] == 30.0
        assert h.quantile(0.0) == 30.0  # even q=0 resolves via overflow

    def test_to_dict_carries_percentile_summary(self):
        d = self._hist().to_dict()
        assert d["p50"] == 1.0
        assert d["p95"] == 5.0
        assert d["p99"] == 10.0
        # a merged worker delta must reproduce the same summary
        reg = MetricsRegistry()
        reg.merge_worker_delta(
            {"counters": {}, "gauges": {}, "histograms": {"h": d}}
        )
        snap = reg.snapshot()
        assert snap["histograms"]["h"]["p99"] == 10.0
