"""BufferingTracer: rank-local span recording and driver-side replay."""

import json

from repro.obs import BufferingTracer, ChromeTracer, validate_trace_events


def _filled(tracer: BufferingTracer) -> None:
    flush = tracer.track("flush", "rank 0")
    tracer.begin(flush, "flush", 0.0, {"records": 10})
    tracer.end(flush, 0.5)
    tracer.complete(flush, "flush", 1.0, 0.25, {"records": 4, "stray": True})
    tracer.instant(flush, "checkpoint", 1.5)
    tracer.counter(flush, "occupancy", 2.0, {"records": 7})


class TestRecording:
    def test_drain_returns_and_clears(self):
        tracer = BufferingTracer()
        _filled(tracer)
        records = tracer.drain()
        assert [r["ph"] for r in records] == ["B", "E", "X", "i", "C"]
        assert tracer.drain() == []

    def test_events_peeks_without_consuming(self):
        tracer = BufferingTracer()
        _filled(tracer)
        assert len(tracer.events()) == 5
        assert len(tracer.drain()) == 5

    def test_records_carry_names_not_ids(self):
        tracer = BufferingTracer()
        _filled(tracer)
        rec = tracer.drain()[0]
        assert rec["process"] == "flush"
        assert rec["thread"] == "rank 0"

    def test_unmatched_end_counted_not_recorded(self):
        tracer = BufferingTracer()
        track = tracer.track("flush", "rank 0")
        tracer.end(track, 1.0)
        assert tracer.unmatched_ends == 1
        assert tracer.drain() == []


class TestMerge:
    def test_round_trip_equals_direct_recording(self):
        """Record via buffer + merge == record directly on ChromeTracer."""
        direct = ChromeTracer()
        _filled_direct = direct.track("flush", "rank 0")
        direct.begin(_filled_direct, "flush", 0.0, {"records": 10})
        direct.end(_filled_direct, 0.5)
        direct.complete(_filled_direct, "flush", 1.0, 0.25,
                        {"records": 4, "stray": True})
        direct.instant(_filled_direct, "checkpoint", 1.5)
        direct.counter(_filled_direct, "occupancy", 2.0, {"records": 7})

        buffered = BufferingTracer()
        _filled(buffered)
        merged = ChromeTracer()
        merged.merge_events(buffered.drain())

        assert json.dumps(merged.to_doc(), sort_keys=True) == json.dumps(
            direct.to_doc(), sort_keys=True
        )
        assert validate_trace_events(merged.to_doc()) == []

    def test_merge_reuses_declared_tracks(self):
        driver = ChromeTracer()
        driver.track("flush", "rank 0")
        buffered = BufferingTracer()
        _filled(buffered)
        driver.merge_events(buffered.drain())
        assert driver.track_types == ["flush"]

    def test_merge_rejects_malformed_records(self):
        import pytest

        driver = ChromeTracer()
        with pytest.raises(ValueError):
            driver.merge_events([{"ph": "Z", "process": "flush",
                                  "thread": "rank 0", "name": "x",
                                  "ts": 0.0}])
        with pytest.raises(ValueError):
            driver.merge_events([{"ph": "B", "process": 3,
                                  "thread": "rank 0", "name": "x",
                                  "ts": 0.0}])

    def test_base_tracer_merge_is_noop(self):
        from repro.obs import NullTracer

        tracer = NullTracer()
        buffered = BufferingTracer()
        _filled(buffered)
        tracer.merge_events(buffered.drain())  # must not raise
        assert tracer.drain() == []
