"""Clock protocol: virtual monotonic time and the null stand-in."""

import pytest

from repro.obs import Clock, NullClock, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero_and_advances(self):
        c = VirtualClock()
        assert c.now() == 0.0
        assert c.advance(1.5) == 1.5
        assert c.advance(0.5) == 2.0
        assert c.now() == 2.0

    def test_custom_start(self):
        assert VirtualClock(10.0).now() == 10.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-0.1)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock(-1.0)

    def test_zero_advance_is_allowed(self):
        c = VirtualClock()
        assert c.advance(0.0) == 0.0

    def test_satisfies_protocol(self):
        assert isinstance(VirtualClock(), Clock)
        assert isinstance(NullClock(), Clock)


class TestNullClock:
    def test_frozen_at_zero(self):
        c = NullClock()
        assert c.now() == 0.0
        assert c.advance(100.0) == 0.0
        assert c.now() == 0.0
