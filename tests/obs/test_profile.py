"""repro.obs.profile: folding, exact attribution, reconcile, diff.

The profile is a *derived artifact*: pure integer arithmetic over an
archived ``trace.json``, cross-checked exactly against the archived
``metrics.json``.  These tests pin the fold semantics (nesting,
self-time, instance collapsing, arg merging), the exact-reconciliation
contract (zero tolerance, drift is an error), and the byte stability
of every serialized form.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs.profile import (
    Profile,
    diff_profiles,
    fold,
    fold_trace_doc,
)

GOLDEN = Path(__file__).parent / "golden_trace.json"


def _meta(pid: int, track: str) -> dict:
    return {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": track}}


def _b(pid: int, tid: int, name: str, ts: float, **args) -> dict:
    return {"name": name, "ph": "B", "ts": ts, "pid": pid, "tid": tid,
            "args": args}


def _e(pid: int, tid: int, ts: float, **args) -> dict:
    return {"ph": "E", "ts": ts, "pid": pid, "tid": tid, "args": args}


def _x(pid: int, tid: int, name: str, ts: float, dur: float,
       **args) -> dict:
    return {"name": name, "ph": "X", "ts": ts, "dur": dur, "pid": pid,
            "tid": tid, "args": args}


class TestFold:
    def test_nested_spans_split_self_and_total(self):
        profile = fold([
            _meta(1, "flush"),
            _b(1, 1, "flush", 0.0, records=10),
            _b(1, 1, "write", 0.1),
            _e(1, 1, 0.4),
            _e(1, 1, 1.0, bytes=100),
        ])
        frames = profile.by_path()
        outer = frames["flush;flush"]
        inner = frames["flush;flush;write"]
        assert outer.total_ns == 1_000_000_000
        assert outer.self_ns == 700_000_000
        assert outer.bytes == 100 and outer.records == 10
        assert inner.total_ns == inner.self_ns == 300_000_000
        # self-time partitions total exactly: no ns lost or invented
        assert outer.self_ns + inner.self_ns == outer.total_ns

    def test_complete_span_nests_under_open_begin(self):
        profile = fold([
            _meta(3, "query"),
            _b(3, 1, "query", 0.0),
            _x(3, 1, "probe", 0.2, 0.5, bytes=64, ssts=2),
            _e(3, 1, 1.0),
        ])
        frames = profile.by_path()
        assert frames["probe;query;probe"].total_ns == 500_000_000
        assert frames["probe;query"].self_ns == 500_000_000
        assert frames["probe;query;probe"].bytes == 64
        assert frames["probe;query;probe"].ssts == 2

    def test_instance_suffixes_collapse_to_one_frame(self):
        profile = fold([
            _meta(2, "epoch"),
            _x(2, 1, "epoch 0", 0.0, 1.0),
            _x(2, 1, "epoch 1", 1.0, 2.0),
        ])
        frames = profile.by_path()
        assert list(frames) == ["ingest;epoch"]
        assert frames["ingest;epoch"].count == 2
        assert frames["ingest;epoch"].total_ns == 3_000_000_000

    def test_end_args_override_begin_args(self):
        profile = fold([
            _meta(1, "flush"),
            _b(1, 1, "flush", 0.0, bytes=1),
            _e(1, 1, 1.0, bytes=42),
        ])
        assert profile.by_path()["flush;flush"].bytes == 42

    def test_lanes_do_not_interleave(self):
        # two ranks flushing concurrently on separate tids must not
        # nest under each other
        profile = fold([
            _meta(1, "flush"),
            _b(1, 1, "flush", 0.0),
            _b(1, 2, "flush", 0.5),
            _e(1, 1, 1.0),
            _e(1, 2, 2.0),
        ])
        frame = profile.by_path()["flush;flush"]
        assert frame.count == 2
        assert frame.total_ns == 2_500_000_000

    def test_unknown_track_becomes_its_own_phase(self):
        profile = fold([
            _meta(9, "mystery"),
            _x(9, 1, "work", 0.0, 1.0),
        ])
        assert "mystery;work" in profile.by_path()

    def test_malformed_trace_counted(self):
        profile = fold([
            _meta(1, "flush"),
            _e(1, 1, 1.0),            # end with no begin
            _b(1, 1, "flush", 2.0),   # begin never closed
        ])
        assert profile.unmatched_ends == 1
        assert profile.unclosed_spans == 1
        errors = profile.reconcile({"counters": {}})
        assert any("unmatched" in e for e in errors)
        assert any("unclosed" in e for e in errors)

    def test_golden_trace_folds(self):
        doc = json.loads(GOLDEN.read_text())
        profile = fold_trace_doc(doc)
        assert profile.unmatched_ends == 0
        assert profile.unclosed_spans == 0
        # the golden trace's B/E route span and X shuffle span survive
        paths = set(profile.by_path())
        assert "route;route" in paths

    def test_fold_trace_doc_rejects_eventless_doc(self):
        with pytest.raises(ValueError, match="traceEvents"):
            fold_trace_doc({"schema": "nope"})


class TestReconcile:
    def _profile(self, records: int = 10) -> Profile:
        return fold([
            _meta(1, "flush"),
            _b(1, 1, "flush", 0.0, records=records),
            _e(1, 1, 1.0, bytes=100),
        ])

    def test_exact_match_is_clean(self):
        errors = self._profile().reconcile({"counters": {
            "koidb.records_in": 10,
            "koidb.bytes_written": 100,
        }})
        assert errors == []

    def test_one_record_of_drift_is_an_error(self):
        errors = self._profile(records=11).reconcile({"counters": {
            "koidb.records_in": 10,
            "koidb.bytes_written": 100,
        }})
        assert len(errors) == 1
        assert "koidb.records_in" in errors[0]
        assert "11" in errors[0] and "10" in errors[0]

    def test_attributed_work_without_counter_is_an_error(self):
        errors = self._profile().reconcile({"counters": {
            "koidb.bytes_written": 100,
        }})
        assert any("koidb.records_in" in e and "never recorded" in e
                   for e in errors)

    def test_unrecorded_subsystems_do_not_require_counters(self):
        # a flush-only profile must not demand query/compact counters
        errors = self._profile().reconcile({"counters": {
            "koidb.records_in": 10,
            "koidb.bytes_written": 100,
        }})
        assert errors == []

    def test_counters_must_be_a_mapping(self):
        errors = self._profile().reconcile({"counters": []})
        assert any("no counters mapping" in e for e in errors)


class TestSerialization:
    EVENTS = [
        _meta(1, "flush"),
        _meta(3, "query"),
        _b(1, 1, "flush", 0.0, records=7),
        _e(1, 1, 0.25, bytes=32),
        _b(3, 1, "query", 0.0),
        _x(3, 1, "probe", 0.1, 0.3, bytes=16, ssts=1),
        _e(3, 1, 1.5),
    ]

    def test_to_json_is_byte_stable(self):
        assert fold(self.EVENTS).to_json() == fold(self.EVENTS).to_json()

    def test_doc_roundtrip_preserves_frames(self):
        profile = fold(self.EVENTS)
        clone = Profile.from_doc(json.loads(profile.to_json()))
        assert clone.frames == profile.frames
        assert clone.to_json() == profile.to_json()

    def test_from_doc_rejects_other_schemas(self):
        with pytest.raises(ValueError, match="carp-profile-v1"):
            Profile.from_doc({"schema": "carp-trace-v1", "frames": []})

    def test_folded_lines_are_sorted_collapsed_stacks(self):
        lines = fold(self.EVENTS).to_folded().splitlines()
        assert lines == sorted(lines)
        for line in lines:
            path, self_ns = line.rsplit(" ", 1)
            assert ";" in path
            assert int(self_ns) >= 0

    def test_phase_rollup_is_internally_consistent(self):
        phases = fold(self.EVENTS).phases()
        assert set(phases) == {"flush", "probe"}
        for rollup in phases.values():
            assert rollup["self_ns"] == rollup["total_ns"]


class TestDiff:
    BASE = [
        _meta(1, "flush"),
        _b(1, 1, "flush", 0.0, records=5),
        _e(1, 1, 1.0, bytes=50),
    ]

    def test_identical_profiles_have_no_changed_paths(self):
        a = fold(self.BASE)
        diff = diff_profiles(a, fold(self.BASE))
        assert diff.changed() == ()
        assert diff.top_paths() == []
        assert diff.to_doc()["changed_paths"] == 0

    def test_regression_blamed_on_the_hot_path(self):
        slow = [
            _meta(1, "flush"),
            _b(1, 1, "flush", 0.0, records=5),
            _b(1, 1, "checksum", 0.2),   # injected hot span
            _e(1, 1, 0.9),
            _e(1, 1, 1.7, bytes=50),
        ]
        diff = diff_profiles(fold(self.BASE), fold(slow))
        top = diff.top_paths(3)
        assert top[0][0] == "flush;flush;checksum"
        assert top[0][1] == 700_000_000
        doc = diff.to_doc()
        assert doc["self_delta_ns"] == 700_000_000
        assert doc["entries"][0]["stack"] == ["flush", "flush", "checksum"]

    def test_diff_json_is_byte_stable(self):
        a, b = fold(self.BASE), fold(self.BASE[:1])
        assert diff_profiles(a, b).to_json() == diff_profiles(a, b).to_json()

    def test_byte_delta_breaks_self_time_ties(self):
        bigger = [
            _meta(1, "flush"),
            _b(1, 1, "flush", 0.0, records=5),
            _e(1, 1, 1.0, bytes=80),
        ]
        diff = diff_profiles(fold(self.BASE), fold(bigger))
        assert diff.top_paths(1) == [("flush;flush", 0, 30)]
