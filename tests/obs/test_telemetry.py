"""TelemetryStream: cadences, deltas, derived gauges, null path."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs import NULL_TELEMETRY, TelemetryStream, render_openmetrics
from repro.obs.clock import VirtualClock
from repro.obs.metrics import MetricsRegistry


def _stream(interval=10.0, record_bytes=None):
    metrics = MetricsRegistry()
    clock = VirtualClock()
    sink = io.StringIO()
    stream = TelemetryStream(metrics, clock, sink, interval=interval,
                             record_bytes=record_bytes)
    return metrics, clock, sink, stream


def _lines(sink: io.StringIO) -> list[dict]:
    return [json.loads(line) for line in sink.getvalue().splitlines()]


def test_interval_must_be_positive():
    metrics, clock = MetricsRegistry(), VirtualClock()
    with pytest.raises(ValueError):
        TelemetryStream(metrics, clock, io.StringIO(), interval=0.0)


def test_tick_fires_only_after_crossing_the_interval():
    metrics, clock, sink, stream = _stream(interval=10.0)
    metrics.counter("carp.records_ingested").add(5)
    assert stream.tick() is False  # clock has not moved
    clock.advance(9.0)
    assert stream.tick() is False
    clock.advance(1.0)
    assert stream.tick() is True
    assert stream.tick() is False  # next due 10 ticks later
    clock.advance(10.0)
    assert stream.tick() is True
    docs = _lines(sink)
    assert [d["kind"] for d in docs] == ["tick", "tick"]
    assert [d["ts"] for d in docs] == [10.0, 20.0]
    assert [d["seq"] for d in docs] == [0, 1]
    assert stream.lines_written == 2


def test_tick_is_restricted_to_driver_prefixes():
    metrics, clock, sink, stream = _stream()
    metrics.counter("carp.records_ingested").add(3)
    metrics.counter("koidb.records_in").add(7)  # worker-owned
    metrics.gauge("shuffle.in_flight_records").set(2)
    metrics.gauge("koidb.memtable_occupancy.r0").set(0.5)
    clock.advance(10.0)
    assert stream.tick() is True
    (doc,) = _lines(sink)
    assert doc["counters"] == {"carp.records_ingested": 3}
    assert doc["gauges"] == {"shuffle.in_flight_records": 2.0}


def test_sample_carries_full_registry_and_deltas():
    metrics, clock, sink, stream = _stream()
    counter = metrics.counter("koidb.records_in")
    metrics.histogram("query.latency", (0.1, 1.0)).observe(0.05)
    counter.add(10)
    first = stream.sample("epoch", epoch=0, request="ingest-000001")
    counter.add(4)
    second = stream.sample("epoch", epoch=1, request="ingest-000002")
    assert first["deltas"] == {"koidb.records_in": 10.0}
    assert second["deltas"] == {"koidb.records_in": 4.0}
    assert second["counters"] == {"koidb.records_in": 14}
    assert second["epoch"] == 1
    assert second["request"] == "ingest-000002"
    hist = second["histograms"]["query.latency"]
    assert hist["bounds"] == [0.1, 1.0]
    assert hist["counts"] == [1, 0, 0]
    # what was emitted is exactly what was returned
    assert _lines(sink) == [first, second]


def test_sample_omits_epoch_and_request_when_untagged():
    _, _, sink, stream = _stream()
    doc = stream.sample("final")
    assert "epoch" not in doc and "request" not in doc
    assert doc["kind"] == "final"


def test_derived_faults_total_and_read_amp():
    metrics, clock, sink, stream = _stream(record_bytes=12)
    metrics.counter("faults.task_crashes").add(2)
    metrics.counter("faults.torn_writes").add(1)
    metrics.counter("query.records_matched").add(10)
    metrics.counter("query.probe_bytes").add(600)
    doc = stream.sample("query", derived={"retries_done": 3.0})
    assert doc["derived"]["faults_total"] == 3.0
    # 600 bytes probed / (10 records * 12 B) = 5x amplification
    assert doc["derived"]["read_amp"] == pytest.approx(5.0)
    assert doc["derived"]["retries_done"] == 3.0


def test_read_amp_zero_when_nothing_matched_or_unconfigured():
    metrics, _, _, stream = _stream(record_bytes=12)
    metrics.counter("query.probe_bytes").add(600)
    assert stream.sample("query")["derived"]["read_amp"] == 0.0
    _, _, _, bare = _stream(record_bytes=None)
    assert "read_amp" not in bare.sample("query")["derived"]


def test_stream_is_json_lines_with_sorted_keys():
    metrics, clock, sink, stream = _stream()
    metrics.counter("koidb.records_in").add(1)
    stream.sample("epoch", epoch=0)
    (raw,) = sink.getvalue().splitlines()
    assert raw == json.dumps(json.loads(raw), sort_keys=True)


def test_null_telemetry_never_writes():
    assert NULL_TELEMETRY.enabled is False
    assert NULL_TELEMETRY.tick() is False
    assert NULL_TELEMETRY.sample("epoch", epoch=0, request="x") == {}
    assert NULL_TELEMETRY.lines_written == 0


def test_exposition_matches_render_openmetrics():
    metrics, _, _, stream = _stream()
    metrics.counter("carp.records_ingested").add(2)
    assert stream.exposition() == render_openmetrics(metrics.snapshot())


# ------------------------------------------------------- OpenMetrics


def test_openmetrics_rendering_shapes():
    metrics = MetricsRegistry()
    metrics.counter("carp.records_ingested").add(5)
    metrics.gauge("shuffle.in_flight_records").set(1.5)
    hist = metrics.histogram("query.latency", (0.1, 1.0))
    hist.observe(0.05)
    hist.observe(0.5)
    hist.observe(99.0)  # overflow bucket
    text = render_openmetrics(metrics.snapshot())
    assert "# TYPE carp_records_ingested counter" in text
    assert "carp_records_ingested_total 5" in text
    assert "shuffle_in_flight_records 1.5" in text
    # cumulative buckets, overflow folded into +Inf
    assert 'query_latency_bucket{le="0.1"} 1' in text
    assert 'query_latency_bucket{le="1"} 2' in text
    assert 'query_latency_bucket{le="+Inf"} 3' in text
    assert "query_latency_count 3" in text
    assert text.endswith("# EOF\n")


def test_openmetrics_of_empty_snapshot_is_just_eof():
    text = render_openmetrics(
        {"counters": {}, "gauges": {}, "histograms": {}}
    )
    assert text == "# EOF\n"
