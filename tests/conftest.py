"""Shared fixtures: a small VPIC trace and pre-built CARP/sorted outputs.

Session-scoped so the (comparatively expensive) ingest runs once and
every query/metrics test reads from the same on-disk artifacts —
mirroring how the paper's artifacts chain range-runner -> compactor ->
range-reader.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.carp import CarpRun
from repro.core.config import CarpOptions
from repro.storage.compactor import compact_epoch
from repro.traces.vpic import VpicTraceSpec, generate_timestep


SMALL_OPTIONS = CarpOptions(
    pivot_count=64,
    oob_capacity=64,
    renegotiations_per_epoch=4,
    memtable_records=512,
    round_records=256,
    value_size=8,
)


@pytest.fixture(scope="session")
def trace_spec() -> VpicTraceSpec:
    return VpicTraceSpec(nranks=8, particles_per_rank=2500, value_size=8, seed=11)


@pytest.fixture(scope="session")
def trace_streams(trace_spec):
    """Streams for two timesteps: an early and a late (heavier-tailed) one."""
    return {
        0: generate_timestep(trace_spec, 2),
        1: generate_timestep(trace_spec, 9),
    }


@pytest.fixture(scope="session")
def trace_keys(trace_streams):
    return {
        ep: np.concatenate([s.keys for s in streams])
        for ep, streams in trace_streams.items()
    }


@pytest.fixture(scope="session")
def trace_rids(trace_streams):
    return {
        ep: np.concatenate([s.rids for s in streams])
        for ep, streams in trace_streams.items()
    }


@pytest.fixture(scope="session")
def carp_output(tmp_path_factory, trace_spec, trace_streams):
    """CARP-partitioned on-disk output for both epochs, plus stats."""
    out = tmp_path_factory.mktemp("carp_out")
    stats = {}
    with CarpRun(trace_spec.nranks, out, SMALL_OPTIONS) as run:
        for epoch, streams in trace_streams.items():
            stats[epoch] = run.ingest_epoch(epoch, streams)
    return {"dir": out, "stats": stats, "options": SMALL_OPTIONS}


@pytest.fixture(scope="session")
def sorted_output(tmp_path_factory, carp_output):
    """Fully sorted (compacted) layout of epoch 0."""
    out = tmp_path_factory.mktemp("sorted_out")
    epoch_dir = compact_epoch(carp_output["dir"], out, 0, sst_records=1024)
    return epoch_dir
