"""Tests for the eparticle trace format (paper artifact A2 layout)."""

import numpy as np
import pytest

from repro.traces.io import (
    list_ranks,
    list_timesteps,
    read_rank_keys,
    read_timestep,
    timestep_dir,
    write_rank_file,
    write_timestep,
)
from repro.traces.vpic import VpicTraceSpec, generate_timestep

SPEC = VpicTraceSpec(nranks=3, particles_per_rank=100, seed=1)


class TestLayout:
    def test_artifact_directory_structure(self, tmp_path):
        """Matches the artifact: T.<ts>/eparticle.<rank>."""
        write_timestep(tmp_path, 200, generate_timestep(SPEC, 0))
        assert (tmp_path / "T.200" / "eparticle.0").is_file()
        assert (tmp_path / "T.200" / "eparticle.2").is_file()

    def test_raw_float32_le_contents(self, tmp_path):
        keys = np.array([1.5, -2.0], dtype=np.float32)
        path = write_rank_file(tmp_path, 200, 0, keys)
        assert path.read_bytes() == keys.astype("<f4").tobytes()
        assert path.stat().st_size == 8  # 2 x 4 bytes

    def test_list_timesteps(self, tmp_path):
        for ts in (3800, 200, 2000):
            write_timestep(tmp_path, ts, generate_timestep(SPEC, 0))
        assert list_timesteps(tmp_path) == [200, 2000, 3800]

    def test_list_ranks(self, tmp_path):
        write_timestep(tmp_path, 200, generate_timestep(SPEC, 0))
        assert list_ranks(tmp_path, 200) == [0, 1, 2]

    def test_list_ranks_missing_timestep(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            list_ranks(tmp_path, 999)

    def test_ignores_unrelated_files(self, tmp_path):
        write_timestep(tmp_path, 200, generate_timestep(SPEC, 0))
        (tmp_path / "T.200" / "notes.txt").write_text("x")
        (tmp_path / "README").write_text("x")
        assert list_ranks(tmp_path, 200) == [0, 1, 2]
        assert list_timesteps(tmp_path) == [200]


class TestRoundtrip:
    def test_keys_roundtrip_exactly(self, tmp_path):
        streams = generate_timestep(SPEC, 1)
        write_timestep(tmp_path, 600, streams)
        for r, stream in enumerate(streams):
            assert np.array_equal(read_rank_keys(tmp_path, 600, r), stream.keys)

    def test_read_timestep_batches(self, tmp_path):
        streams = generate_timestep(SPEC, 1)
        write_timestep(tmp_path, 600, streams)
        back = read_timestep(tmp_path, 600, value_size=8)
        assert len(back) == 3
        for orig, got in zip(streams, back):
            assert np.array_equal(orig.keys, got.keys)
            assert got.value_size == 8

    def test_read_timestep_fresh_rids(self, tmp_path):
        write_timestep(tmp_path, 600, generate_timestep(SPEC, 0))
        a = read_timestep(tmp_path, 600, seq_offset=0)
        b = read_timestep(tmp_path, 600, seq_offset=1000)
        assert len(np.intersect1d(
            np.concatenate([x.rids for x in a]),
            np.concatenate([x.rids for x in b]),
        )) == 0

    def test_read_empty_timestep_dir(self, tmp_path):
        timestep_dir(tmp_path, 42).mkdir(parents=True)
        with pytest.raises(ValueError, match="no eparticle"):
            read_timestep(tmp_path, 42)
