"""Tests for workload characterization utilities."""

import numpy as np
import pytest

from repro.traces.stats import (
    TimestepProfile,
    band_fractions,
    distribution_drift,
    quantile_sketch,
    skewness,
)
from repro.traces.vpic import VPIC_BANDS, VpicTraceSpec, timestep_keys


class TestBandFractions:
    def test_sums_to_one_when_bands_cover(self):
        keys = np.array([0.5, 2.0, 20.0, 100.0])
        fracs = band_fractions(keys, VPIC_BANDS)
        assert fracs.sum() == pytest.approx(1.0)

    def test_values(self):
        keys = np.array([0.5, 0.7, 2.0, 100.0])
        fracs = band_fractions(keys, ((0.0, 1.0), (1.0, np.inf)))
        assert fracs.tolist() == [0.5, 0.5]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            band_fractions(np.array([]), VPIC_BANDS)


class TestQuantileSketch:
    def test_endpoints(self):
        keys = np.arange(100, dtype=float)
        q = quantile_sketch(keys, 11)
        assert q[0] == 0.0 and q[-1] == 99.0

    def test_monotone(self):
        rng = np.random.default_rng(0)
        q = quantile_sketch(rng.lognormal(size=500))
        assert np.all(np.diff(q) >= 0)


class TestDrift:
    def test_identical_distributions_zero(self):
        keys = np.random.default_rng(0).random(1000)
        assert distribution_drift(keys, keys) == pytest.approx(0.0)

    def test_shifted_distributions_positive(self):
        rng = np.random.default_rng(0)
        a = rng.random(1000)
        assert distribution_drift(a, a + 5.0) > 1.0

    def test_symmetry(self):
        rng = np.random.default_rng(1)
        a, b = rng.random(500), rng.lognormal(size=500)
        assert distribution_drift(a, b) == pytest.approx(distribution_drift(b, a))

    def test_vpic_drift_nonzero_between_timesteps(self):
        spec = VpicTraceSpec(nranks=2, particles_per_rank=3000)
        early = timestep_keys(spec, 0)
        late = timestep_keys(spec, spec.ntimesteps - 1)
        adjacent = timestep_keys(spec, 1)
        assert distribution_drift(early, late) > distribution_drift(early, adjacent)


class TestSkewness:
    def test_symmetric_near_zero(self):
        rng = np.random.default_rng(0)
        assert abs(skewness(rng.normal(size=20000))) < 0.1

    def test_lognormal_positive(self):
        rng = np.random.default_rng(0)
        assert skewness(rng.lognormal(size=5000)) > 1.0

    def test_constant_is_zero(self):
        assert skewness(np.full(10, 3.0)) == 0.0

    def test_needs_two(self):
        with pytest.raises(ValueError):
            skewness(np.array([1.0]))


class TestTimestepProfile:
    def test_from_keys(self):
        keys = np.array([0.1, 0.5, 2.0, 30.0])
        prof = TimestepProfile.from_keys(200, keys, VPIC_BANDS)
        assert prof.timestep == 200
        assert prof.count == 4
        assert prof.kmin == pytest.approx(0.1)
        assert prof.kmax == pytest.approx(30.0)
        assert sum(prof.band_fracs) == pytest.approx(1.0)
