"""Tests for the synthetic AMR/Sedov trace — verifying Fig. 1b's
documented behaviour (explosion dissipating into a medium band)."""

import numpy as np
import pytest

from repro.traces.amr import (
    AmrTraceSpec,
    generate_rank_stream,
    generate_timestep,
    mixture_at,
    timestep_keys,
)

SPEC = AmrTraceSpec(nranks=4, cells_per_rank=4000, seed=5)


class TestMixtureSchedule:
    def test_initially_mostly_cold(self):
        w_cold, w_front, w_heated, _, _ = mixture_at(0.0)
        assert w_cold > 0.85

    def test_heated_band_grows(self):
        _, _, h0, _, _ = mixture_at(0.0)
        _, _, h1, _, _ = mixture_at(1.0)
        assert h1 > 5 * h0

    def test_front_dissipates(self):
        _, _, _, f0, _ = mixture_at(0.0)
        _, _, _, f1, _ = mixture_at(1.0)
        assert f1 < f0 / 10

    def test_weights_normalized(self):
        for p in np.linspace(0, 1, 7):
            w = mixture_at(p)[:3]
            assert sum(w) == pytest.approx(1.0)


class TestDistributionShape:
    def test_early_mesh_mostly_zero_energy(self):
        """Fig. 1b: initially most of the mesh has no energy."""
        keys = timestep_keys(SPEC, 0)
        assert np.mean(keys < 1e-3) > 0.7

    def test_early_high_energy_spike_exists(self):
        keys = timestep_keys(SPEC, 0)
        assert keys.max() > 100.0

    def test_medium_band_grows(self):
        """Fig. 1b: energy dissipates into a medium band over time."""
        early = timestep_keys(SPEC, 0)
        late = timestep_keys(SPEC, SPEC.ntimesteps - 1)
        med = lambda k: np.mean((k > 1.0) & (k < 50.0))
        assert med(late) > 5 * med(early)

    def test_peak_energy_decays(self):
        early = timestep_keys(SPEC, 0)
        late = timestep_keys(SPEC, SPEC.ntimesteps - 1)
        assert np.quantile(late, 0.999) < np.quantile(early, 0.999)

    def test_non_negative(self):
        assert np.all(timestep_keys(SPEC, 3) >= 0)

    def test_highly_skewed(self):
        from repro.traces.stats import skewness

        assert skewness(timestep_keys(SPEC, 1)) > 2.0


class TestDeterminism:
    def test_reproducible(self):
        a = generate_rank_stream(SPEC, 2, 1)
        b = generate_rank_stream(SPEC, 2, 1)
        assert np.array_equal(a.keys, b.keys)

    def test_rank_skew_varies_streams(self):
        a = generate_rank_stream(SPEC, 2, 0)
        b = generate_rank_stream(SPEC, 2, 3)
        assert not np.array_equal(a.keys, b.keys)

    def test_timestep_count(self):
        assert len(generate_timestep(SPEC, 0)) == SPEC.nranks

    def test_bounds(self):
        with pytest.raises(IndexError):
            generate_rank_stream(SPEC, 99, 0)
        with pytest.raises(IndexError):
            generate_rank_stream(SPEC, 0, 99)

    def test_validation(self):
        with pytest.raises(ValueError):
            AmrTraceSpec(nranks=0)
        with pytest.raises(ValueError):
            AmrTraceSpec(cells_per_rank=0)
