"""Tests for the synthetic VPIC trace generator — verifying the paper's
documented distribution characteristics (Fig. 1a)."""

import numpy as np
import pytest

from repro.core.records import rid_rank
from repro.traces.vpic import (
    DEFAULT_TIMESTEPS,
    VpicTraceSpec,
    generate_rank_stream,
    generate_timestep,
    sample_energies,
    tail_center,
    tail_weight,
    timestep_keys,
)

SPEC = VpicTraceSpec(nranks=4, particles_per_rank=4000, seed=3)


class TestSpec:
    def test_defaults(self):
        assert len(DEFAULT_TIMESTEPS) == 12  # the paper indexes 12 timesteps

    def test_progress(self):
        assert SPEC.progress(0) == 0.0
        assert SPEC.progress(SPEC.ntimesteps - 1) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            VpicTraceSpec(nranks=0)
        with pytest.raises(ValueError):
            VpicTraceSpec(particles_per_rank=0)
        with pytest.raises(ValueError):
            VpicTraceSpec(timesteps=())


class TestDistributionShape:
    def test_energies_non_negative(self):
        keys = timestep_keys(SPEC, 0)
        assert np.all(keys >= 0)

    def test_early_mass_in_unit_band(self):
        """Fig. 1a: most particles fall between 0 and 1."""
        keys = timestep_keys(SPEC, 0)
        assert np.mean(keys < 1.0) > 0.8

    def test_tail_grows_over_time(self):
        early = timestep_keys(SPEC, 0)
        late = timestep_keys(SPEC, SPEC.ntimesteps - 1)
        assert np.mean(late > 1.0) > np.mean(early > 1.0)

    def test_late_tail_fraction_20_to_35_pct(self):
        """Fig. 1a: 20-30% of late-run data sits in the tail."""
        late = timestep_keys(SPEC, SPEC.ntimesteps - 1)
        frac = np.mean(late > 1.0)
        assert 0.18 < frac < 0.40

    def test_late_second_mode_in_16_64_band(self):
        """Fig. 1a: the late second mode lies between 16 and 64."""
        late = timestep_keys(SPEC, SPEC.ntimesteps - 1)
        tail = late[late > 4.0]
        med = np.median(tail)
        assert 16.0 < med < 64.0

    def test_distribution_is_skewed(self):
        from repro.traces.stats import skewness

        keys = timestep_keys(SPEC, 5)
        assert skewness(keys) > 2.0

    def test_tail_weight_schedule_monotone(self):
        ws = [tail_weight(p) for p in np.linspace(0, 1, 11)]
        assert all(b >= a for a, b in zip(ws, ws[1:]))
        assert ws[0] < 0.05 and ws[-1] > 0.25

    def test_tail_center_schedule(self):
        assert tail_center(0.0) == pytest.approx(2.0)
        assert 16.0 < tail_center(1.0) <= 64.0


class TestDeterminism:
    def test_reproducible(self):
        a = generate_rank_stream(SPEC, 3, 1)
        b = generate_rank_stream(SPEC, 3, 1)
        assert np.array_equal(a.keys, b.keys)
        assert np.array_equal(a.rids, b.rids)

    def test_seed_changes_data(self):
        other = VpicTraceSpec(nranks=4, particles_per_rank=4000, seed=99)
        a = generate_rank_stream(SPEC, 0, 0)
        b = generate_rank_stream(other, 0, 0)
        assert not np.array_equal(a.keys, b.keys)

    def test_ranks_differ(self):
        a = generate_rank_stream(SPEC, 0, 0)
        b = generate_rank_stream(SPEC, 0, 1)
        assert not np.array_equal(a.keys, b.keys)

    def test_rids_unique_across_timesteps_and_ranks(self):
        rids = np.concatenate(
            [b.rids for ts in (0, 1) for b in generate_timestep(SPEC, ts)]
        )
        assert len(np.unique(rids)) == len(rids)

    def test_rids_carry_rank(self):
        b = generate_rank_stream(SPEC, 0, 2)
        assert np.all(rid_rank(b.rids) == 2)


class TestBoundsChecks:
    def test_timestep_bounds(self):
        with pytest.raises(IndexError):
            generate_rank_stream(SPEC, 99, 0)

    def test_rank_bounds(self):
        with pytest.raises(IndexError):
            generate_rank_stream(SPEC, 0, 99)

    def test_sample_zero(self):
        rng = np.random.default_rng(0)
        assert len(sample_energies(0.5, 0, rng)) == 0
