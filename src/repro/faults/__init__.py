"""``repro.faults`` — deterministic, seeded fault injection.

CARP's durability story (paper §V-A: data is durable at checkpoint-
epoch granularity, a torn epoch simply disappears) is only testable if
crashes can be *produced on demand, reproducibly*.  This package is
that switchboard: a :class:`FaultPlan` is a seeded, immutable list of
:class:`FaultSpec` records naming *where* (a fault site), *when* (the
n-th occurrence of that site) and *how* (cut fraction, delay, drop) a
fault fires.  Subsystems that host a fault site consult a
:class:`FaultInjector` built from the plan; with no plan the check is
a single ``is None`` branch, so production paths stay zero-overhead.

Fault sites (see ``docs/FAULTS.md``):

* ``storage.sst_write`` — a torn/partial SSTable append in
  :class:`repro.storage.log.LogWriter`,
* ``storage.manifest_write`` — a torn manifest block + footer at epoch
  flush,
* ``exec.task`` — a worker crash (``WorkerCrashError``) at a chosen
  task index in :func:`repro.exec.work.koidb_apply`,
* ``shuffle.send`` — a delayed or dropped shuffle send in
  :class:`repro.shuffle.flow.DelayQueue`.

Everything is driven by ``np.random.default_rng(seed)``; the same seed
always yields the same plan, and the injector's per-site occurrence
counters advance identically on every executor backend because the
per-rank command streams are identical (the PR 3 replay contract).
"""

from __future__ import annotations

from repro.faults.plan import (
    SITE_MANIFEST_WRITE,
    SITE_SHUFFLE_SEND,
    SITE_SST_WRITE,
    SITE_TASK,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedCrashError,
)

__all__ = [
    "SITE_MANIFEST_WRITE",
    "SITE_SHUFFLE_SEND",
    "SITE_SST_WRITE",
    "SITE_TASK",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedCrashError",
]
