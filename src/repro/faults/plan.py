"""Fault plans and the runtime injector.

A :class:`FaultPlan` is pure data — frozen, picklable, serializable to
JSON — so the same plan object (or its per-rank slice) can travel to a
``ProcessExecutor`` worker and into a repro bundle unchanged.  The
runtime half, :class:`FaultInjector`, holds the only mutable state: one
occurrence counter per site.  Each host subsystem owns its own injector
(one per KoiDB for the storage sites, one in the driver for the shuffle
site, one per worker shard for the task site), so counters advance with
the rank-local event stream and stay identical across executor
backends.
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from repro.obs import Obs

#: A torn/partial SSTable append (``LogWriter.append_batch``).
SITE_SST_WRITE = "storage.sst_write"
#: A torn manifest block + footer at epoch flush (``LogWriter.flush_epoch``).
SITE_MANIFEST_WRITE = "storage.manifest_write"
#: A worker crash at a chosen task index (``koidb_apply``).
SITE_TASK = "exec.task"
#: A delayed or dropped shuffle send (``CarpRun._send``).
SITE_SHUFFLE_SEND = "shuffle.send"

#: Sites whose fault is scoped to one receiver rank.
RANK_SITES = (SITE_SST_WRITE, SITE_MANIFEST_WRITE, SITE_TASK)
#: Every known fault site.
ALL_SITES = RANK_SITES + (SITE_SHUFFLE_SEND,)

#: Spec actions: ``crash`` kills the write/task; ``delay``/``drop``
#: apply to the shuffle site only.
ACTION_CRASH = "crash"
ACTION_DELAY = "delay"
ACTION_DROP = "drop"


class InjectedCrashError(RuntimeError):
    """A fault plan killed a write mid-flight (simulated process death).

    Raised *after* the partial payload bytes reach the file, so the
    on-disk state is exactly what a real ``kill -9`` between ``write``
    and the epoch footer would leave behind.
    """

    def __init__(self, site: str, rank: int, index: int, detail: str) -> None:
        self.site = site
        self.rank = rank
        self.index = index
        super().__init__(
            f"injected crash at {site}[{index}] on rank {rank}: {detail}"
        )


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: where, when, and how.

    ``index`` counts occurrences of ``site`` within the owning
    injector (0-based); ``arg`` is the cut fraction for storage sites
    (how much of the payload reaches the file before the crash) and
    the extra delivery delay in rounds for ``delay`` shuffle faults.
    """

    site: str
    rank: int
    index: int
    arg: float = 0.5
    action: str = ACTION_CRASH

    def __post_init__(self) -> None:
        if self.site not in ALL_SITES:
            raise ValueError(f"unknown fault site {self.site!r}")
        if self.action not in (ACTION_CRASH, ACTION_DELAY, ACTION_DROP):
            raise ValueError(f"unknown fault action {self.action!r}")
        if self.index < 0:
            raise ValueError("fault index must be >= 0")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, immutable set of fault specs for one run."""

    seed: int
    specs: tuple[FaultSpec, ...] = ()

    @classmethod
    def generate(
        cls,
        seed: int,
        nranks: int,
        max_faults: int = 3,
        epochs: int = 2,
        sites: Sequence[str] | None = None,
    ) -> "FaultPlan":
        """Sample a plan from a seed (same seed, same plan).

        Indices are drawn from ranges sized to a small chaos workload;
        a spec whose index exceeds the run's actual occurrence count
        simply never fires, which is a legal (empty) fault plan.
        """
        if nranks < 1:
            raise ValueError("nranks must be >= 1")
        rng = np.random.default_rng(seed)
        pool = tuple(sites) if sites is not None else ALL_SITES
        n = int(rng.integers(1, max_faults + 1))
        specs: list[FaultSpec] = []
        # injectors key specs by (site, index) — shuffle specs share one
        # driver injector, rank sites get one injector per rank — so a
        # duplicate key would be rejected at runtime; skip it here
        used: set[tuple[object, ...]] = set()
        for _ in range(n):
            site = pool[int(rng.integers(0, len(pool)))]
            rank = int(rng.integers(0, nranks))
            if site == SITE_MANIFEST_WRITE:
                index = int(rng.integers(0, max(epochs, 1)))
            elif site == SITE_SST_WRITE:
                index = int(rng.integers(0, 4 * max(epochs, 1)))
            elif site == SITE_TASK:
                index = int(rng.integers(0, 3 * max(epochs, 1)))
            else:
                index = int(rng.integers(0, 48))
            if site == SITE_SHUFFLE_SEND:
                action = ACTION_DROP if rng.random() < 0.5 else ACTION_DELAY
                arg = float(rng.integers(1, 4))
            else:
                action = ACTION_CRASH
                arg = float(rng.uniform(0.0, 1.0))
            key = (
                (site, index)
                if site == SITE_SHUFFLE_SEND
                else (site, rank, index)
            )
            if key in used:
                continue
            used.add(key)
            specs.append(FaultSpec(site, rank, index, arg, action))
        return cls(seed=seed, specs=tuple(specs))

    # ------------------------------------------------------------ slicing

    def only(self, *sites: str) -> "FaultPlan":
        """A copy restricted to the given sites (reference-run helper)."""
        return FaultPlan(
            self.seed, tuple(s for s in self.specs if s.site in sites)
        )

    def without(self, *sites: str) -> "FaultPlan":
        """A copy with the given sites removed."""
        return FaultPlan(
            self.seed, tuple(s for s in self.specs if s.site not in sites)
        )

    def specs_for_rank(self, rank: int) -> tuple[FaultSpec, ...]:
        """Rank-scoped specs (storage + task sites) for one receiver."""
        return tuple(
            s for s in self.specs if s.site in RANK_SITES and s.rank == rank
        )

    def shuffle_specs(self) -> tuple[FaultSpec, ...]:
        """Fabric-wide specs (the shuffle send site)."""
        return tuple(s for s in self.specs if s.site == SITE_SHUFFLE_SEND)

    # ------------------------------------------------------ serialization

    def to_json(self) -> str:
        """Serialize for repro bundles (``from_json`` round-trips)."""
        return json.dumps(
            {"seed": self.seed, "specs": [asdict(s) for s in self.specs]},
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        doc = json.loads(text)
        return cls(
            seed=int(doc["seed"]),
            specs=tuple(FaultSpec(**spec) for spec in doc["specs"]),
        )


class FaultInjector:
    """Runtime fault lookup: per-site occurrence counters over a plan.

    ``check(site)`` advances the site's counter and returns the spec
    planned for that occurrence, or ``None``.  When built with an
    ``obs`` stack, fired faults are stamped onto the virtual timeline
    as instant events on a dedicated ``faults`` track and counted in
    static-named counters — both no-ops under ``NULL_OBS``.
    """

    def __init__(
        self, specs: Sequence[FaultSpec], obs: "Obs | None" = None
    ) -> None:
        from repro.obs import NULL_OBS

        self._by_key: dict[tuple[str, int], FaultSpec] = {}
        for spec in specs:
            key = (spec.site, spec.index)
            if key in self._by_key:
                raise ValueError(
                    f"duplicate fault spec for {spec.site}[{spec.index}]"
                )
            self._by_key[key] = spec
        self._counts: dict[str, int] = {}
        self.fired: list[FaultSpec] = []
        self._obs = obs if obs is not None else NULL_OBS
        self._obs_on = self._obs.enabled and bool(self._by_key)
        if self._obs_on:
            self._track = self._obs.track("faults", "injector")
            metrics = self._obs.metrics
            self._counters = {
                SITE_SST_WRITE: metrics.counter("faults.sst_write_crashes"),
                SITE_MANIFEST_WRITE: metrics.counter(
                    "faults.manifest_write_crashes"
                ),
                SITE_TASK: metrics.counter("faults.task_crashes"),
                ACTION_DELAY: metrics.counter("faults.shuffle_delayed"),
                ACTION_DROP: metrics.counter("faults.shuffle_dropped"),
            }

    def occurrences(self, site: str) -> int:
        """How many times ``site`` has been checked so far."""
        return self._counts.get(site, 0)

    def check(self, site: str) -> FaultSpec | None:
        """Advance ``site``'s counter; return the fault due now, if any."""
        index = self._counts.get(site, 0)
        self._counts[site] = index + 1
        spec = self._by_key.get((site, index))
        if spec is None:
            return None
        self.fired.append(spec)
        if self._obs_on:
            key = spec.action if site == SITE_SHUFFLE_SEND else site
            counter = self._counters.get(key)
            if counter is not None:
                counter.add(1)
            self._obs.tracer.instant(
                self._track,
                "fault",
                self._obs.clock.now(),
                {
                    "site": site,
                    "rank": spec.rank,
                    "index": index,
                    "action": spec.action,
                },
            )
        return spec
