"""The ``carp-chaos`` harness: ingest → kill → recover → query loops.

One chaos *seed* is a complete durability trial.  A seeded
:class:`~repro.faults.plan.FaultPlan` is generated, a small CARP
workload is run against it on every executor backend, the injected
crash is taken, and recovery (``fsck --repair`` + ``KoiDB.open``)
must then prove the paper's §V-A contract:

* **no committed-data loss** — every epoch whose ``ingest_epoch``
  returned before the crash is durable, byte-for-byte, on every rank;
* **epoch-aligned truncation** — each recovered log is a byte prefix
  of the fault-free reference log, cut exactly at an epoch boundary;
* **cross-executor determinism** — the recovered logs, the post-redo
  logs, and all range-query results are bit-identical across the
  serial, thread, and process backends;
* **the log stays writable** — a redo epoch appended through
  ``KoiDB.open(recover=True)`` leaves a directory ``fsck`` calls clean.

A failing seed serializes everything needed to replay it (the plan
JSON, per-backend digests and fsck summaries) into a repro bundle.
"""

from __future__ import annotations

import hashlib
import json
import shutil
from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.carp import CarpRun
from repro.core.config import CarpOptions
from repro.core.records import RecordBatch
from repro.exec.api import ExecutorError
from repro.exec.factory import make_executor
from repro.faults.plan import SITE_SHUFFLE_SEND, FaultPlan, InjectedCrashError
from repro.query.engine import PartitionedStore, QueryResult
from repro.storage.fsck import fsck
from repro.storage.koidb import KoiDB
from repro.storage.log import log_name

#: Chaos workload shape: small enough that one seed runs in well under
#: a second per backend, large enough to span several memtable flushes,
#: renegotiations, and manifest blocks per epoch.
CHAOS_RANKS = 3
CHAOS_EPOCHS = 2
CHAOS_RECORDS_PER_RANK = 160
CHAOS_REDO_RECORDS = 64
#: Epoch index and rid sequence base of the post-recovery redo epoch
#: (the sequence offset keeps redo rids disjoint from ingest rids).
CHAOS_REDO_EPOCH = CHAOS_EPOCHS
CHAOS_REDO_SEQ = 1 << 20

CHAOS_OPTIONS = CarpOptions(
    pivot_count=16,
    oob_capacity=64,
    renegotiations_per_epoch=2,
    memtable_records=48,
    round_records=64,
    value_size=8,
    shuffle_delay_rounds=1,
)

#: Executor backends every seed is run on: (name, workers).
CHAOS_BACKENDS: tuple[tuple[str, int | None], ...] = (
    ("serial", None),
    ("thread", 2),
    ("process", 2),
)

#: Inline crash-retry budget handed to every backend.  Matches the
#: plan generator's ``max_faults``: even a worst-case run of planned
#: task crashes on consecutive indices is always rescued, so a task
#: fault never makes one backend fail where another succeeds.
CHAOS_TASK_RETRIES = 3

_FULL_RANGE = (-1e30, 1e30)


# ------------------------------------------------------------- workload

def chaos_streams(seed: int, epoch: int) -> list[RecordBatch]:
    """The deterministic per-rank record streams for one epoch."""
    rng = np.random.default_rng([seed, epoch, 0xCA])
    streams = []
    for rank in range(CHAOS_RANKS):
        keys = rng.uniform(
            0.0, 1.0 + 0.25 * epoch, CHAOS_RECORDS_PER_RANK
        ).astype(np.float32)
        streams.append(
            RecordBatch.from_keys(
                keys,
                rank=rank,
                start_seq=epoch * 10_000,
                value_size=CHAOS_OPTIONS.value_size,
            )
        )
    return streams


def chaos_redo_batch(seed: int, rank: int) -> RecordBatch:
    """The redo-epoch batch appended after recovery for one rank."""
    rng = np.random.default_rng([seed, rank, 0xED])
    keys = rng.uniform(0.0, 1.0, CHAOS_REDO_RECORDS).astype(np.float32)
    return RecordBatch.from_keys(
        keys,
        rank=rank,
        start_seq=CHAOS_REDO_SEQ,
        value_size=CHAOS_OPTIONS.value_size,
    )


# -------------------------------------------------------------- digests

def _digest_bytes(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()[:16]


def _digest_query(result: QueryResult) -> str:
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(result.keys).tobytes())
    h.update(np.ascontiguousarray(result.rids).tobytes())
    return h.hexdigest()[:16]


def _log_bytes(directory: Path, rank: int) -> bytes:
    path = directory / log_name(rank)
    return path.read_bytes() if path.exists() else b""


# ------------------------------------------------------------- outcomes

@dataclass
class BackendOutcome:
    """Everything one backend's crash-recovery trial produced."""

    backend: str
    epochs_completed: int = 0
    crashed: bool = False
    error: str = ""
    fsck_summary: str = ""
    #: rank -> sha of the log right after ``fsck --repair``
    recovered: dict[int, str] = field(default_factory=dict)
    #: rank -> committed byte length after repair
    recovered_len: dict[int, int] = field(default_factory=dict)
    #: rank -> sha of the log after the redo epoch + final fsck
    final: dict[int, str] = field(default_factory=dict)
    #: epoch -> sha of the full-range query result after redo
    queries: dict[int, str] = field(default_factory=dict)
    failures: list[str] = field(default_factory=list)


@dataclass
class SeedResult:
    """One chaos seed, across all backends."""

    seed: int
    plan: FaultPlan
    backends: dict[str, BackendOutcome] = field(default_factory=dict)
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures and all(
            not b.failures for b in self.backends.values()
        )

    @property
    def crashed(self) -> bool:
        return any(b.crashed for b in self.backends.values())

    def all_failures(self) -> list[str]:
        out = list(self.failures)
        for name, outcome in sorted(self.backends.items()):
            out.extend(f"[{name}] {msg}" for msg in outcome.failures)
        return out

    def to_bundle(self) -> dict[str, object]:
        """A JSON-serializable repro bundle for this seed."""
        return {
            "seed": self.seed,
            "plan": json.loads(self.plan.to_json()),
            "failures": self.all_failures(),
            "backends": {
                name: {
                    "epochs_completed": b.epochs_completed,
                    "crashed": b.crashed,
                    "error": b.error,
                    "fsck": b.fsck_summary,
                    "recovered": {str(k): v for k, v in b.recovered.items()},
                    "final": {str(k): v for k, v in b.final.items()},
                    "queries": {str(k): v for k, v in b.queries.items()},
                }
                for name, b in sorted(self.backends.items())
            },
        }


# ------------------------------------------------------------ reference

@dataclass
class _Reference:
    """Fault-free ground truth: full logs and their epoch boundaries."""

    #: rank -> full fault-free log bytes
    log_bytes: dict[int, bytes]
    #: rank -> log offset after each committed epoch, starting at 0
    boundaries: dict[int, list[int]]
    #: epoch -> full-range query digest
    queries: dict[int, str]


def _run_reference(seed: int, plan: FaultPlan, directory: Path) -> _Reference:
    """Run the workload serially with only the (lossless) shuffle faults.

    Shuffle delay/drop faults perturb delivery timing but never lose
    data, and they fire in every backend's run identically — so this
    run's logs are the exact bytes every crashed run's committed prefix
    must match.
    """
    boundaries: dict[int, list[int]] = {
        r: [0] for r in range(CHAOS_RANKS)
    }
    run = CarpRun(
        CHAOS_RANKS, directory, CHAOS_OPTIONS,
        faults=plan.only(SITE_SHUFFLE_SEND),
    )
    with run:
        for epoch in range(CHAOS_EPOCHS):
            run.ingest_epoch(epoch, chaos_streams(seed, epoch))
            for rank, db in enumerate(run.koidbs):
                boundaries[rank].append(db.log.offset)
    log_bytes = {r: _log_bytes(directory, r) for r in range(CHAOS_RANKS)}
    queries: dict[int, str] = {}
    with PartitionedStore(directory) as store:
        for epoch in store.epochs():
            queries[epoch] = _digest_query(
                store.query(epoch, *_FULL_RANGE)
            )
    return _Reference(log_bytes=log_bytes, boundaries=boundaries,
                      queries=queries)


# ------------------------------------------------------------ the trial

def _run_backend(
    seed: int,
    plan: FaultPlan,
    backend: str,
    workers: int | None,
    directory: Path,
    reference: _Reference,
) -> BackendOutcome:
    outcome = BackendOutcome(backend=backend)
    executor = make_executor(
        backend, workers, task_retries=CHAOS_TASK_RETRIES
    )
    run = CarpRun(
        CHAOS_RANKS, directory, CHAOS_OPTIONS,
        executor=executor, faults=plan,
    )
    try:
        for epoch in range(CHAOS_EPOCHS):
            run.ingest_epoch(epoch, chaos_streams(seed, epoch))
            outcome.epochs_completed += 1
    except (InjectedCrashError, ExecutorError) as exc:
        outcome.crashed = True
        outcome.error = repr(exc)
    finally:
        try:
            run.close()
        except (InjectedCrashError, ExecutorError, RuntimeError) as exc:
            # a planned fault can also fire inside the close fan-out;
            # the process died either way — recovery takes it from here
            outcome.crashed = True
            if not outcome.error:
                outcome.error = repr(exc)
        executor.close()

    # ---- recover: fsck --repair must leave a clean directory
    report = fsck(directory, deep=True, repair=True)
    outcome.fsck_summary = report.summary()
    if not report.ok:
        benign_empty = outcome.epochs_completed == 0 and all(
            "no KoiDB logs" in err for err in report.errors
        )
        if not benign_empty:
            outcome.failures.append(
                f"fsck not clean after repair: {report.errors}"
            )

    # ---- committed prefix: byte-identical to the reference, cut at an
    # epoch boundary, holding every fully-ingested epoch
    for rank in range(CHAOS_RANKS):
        data = _log_bytes(directory, rank)
        outcome.recovered[rank] = _digest_bytes(data)
        outcome.recovered_len[rank] = len(data)
        bounds = reference.boundaries[rank]
        if len(data) not in bounds:
            outcome.failures.append(
                f"rank {rank}: recovered length {len(data)} is not an "
                f"epoch boundary (expected one of {bounds})"
            )
            continue
        committed_epochs = bounds.index(len(data))
        if committed_epochs < outcome.epochs_completed:
            outcome.failures.append(
                f"rank {rank}: COMMITTED DATA LOST — only "
                f"{committed_epochs} epoch(s) durable, "
                f"{outcome.epochs_completed} were committed"
            )
        if data != reference.log_bytes[rank][: len(data)]:
            outcome.failures.append(
                f"rank {rank}: recovered bytes diverge from the "
                "fault-free reference log"
            )

    # ---- redo: the recovered logs must accept a fresh epoch
    for rank in range(CHAOS_RANKS):
        db = KoiDB.open(rank, directory, CHAOS_OPTIONS)
        try:
            db.begin_epoch(CHAOS_REDO_EPOCH)
            db.ingest(chaos_redo_batch(seed, rank))
            db.finish_epoch()
        finally:
            db.close()
    final = fsck(directory, deep=True)
    if not final.ok:
        outcome.failures.append(
            f"fsck not clean after redo epoch: {final.errors}"
        )
    for rank in range(CHAOS_RANKS):
        outcome.final[rank] = _digest_bytes(_log_bytes(directory, rank))

    # ---- query every surviving epoch end-to-end
    with PartitionedStore(directory) as store:
        for epoch in store.epochs():
            outcome.queries[epoch] = _digest_query(
                store.query(epoch, *_FULL_RANGE)
            )
    for epoch in range(outcome.epochs_completed):
        if outcome.queries.get(epoch) != reference.queries.get(epoch):
            outcome.failures.append(
                f"epoch {epoch}: query digest diverges from the "
                "fault-free reference (committed data loss)"
            )
    return outcome


def run_seed(seed: int, base_dir: Path | str) -> SeedResult:
    """Run one full chaos trial (all backends) for ``seed``."""
    base_dir = Path(base_dir)
    plan = FaultPlan.generate(
        seed, CHAOS_RANKS, max_faults=CHAOS_TASK_RETRIES,
        epochs=CHAOS_EPOCHS,
    )
    result = SeedResult(seed=seed, plan=plan)
    ref_dir = base_dir / f"seed{seed}-ref"
    reference = _run_reference(seed, plan, ref_dir)
    for backend, workers in CHAOS_BACKENDS:
        directory = base_dir / f"seed{seed}-{backend}"
        result.backends[backend] = _run_backend(
            seed, plan, backend, workers, directory, reference
        )
    _check_cross_backend(result)
    return result


def _check_cross_backend(result: SeedResult) -> None:
    """Every backend must have produced bit-identical outcomes."""
    names = [name for name, _ in CHAOS_BACKENDS]
    first = result.backends[names[0]]
    for name in names[1:]:
        other = result.backends[name]
        for label, a, b in (
            ("epochs_completed", first.epochs_completed,
             other.epochs_completed),
            ("crashed", first.crashed, other.crashed),
            ("recovered logs", first.recovered, other.recovered),
            ("final logs", first.final, other.final),
            ("query results", first.queries, other.queries),
        ):
            if a != b:
                result.failures.append(
                    f"cross-executor divergence in {label}: "
                    f"{names[0]}={a!r} vs {name}={b!r}"
                )


def run_seeds(
    seeds: list[int],
    base_dir: Path | str,
    bundle_dir: Path | str | None = None,
    keep: bool = False,
    progress: Callable[[SeedResult], None] | None = None,
) -> list[SeedResult]:
    """Run many seeds; write repro bundles for failures.

    ``progress`` is an optional callable invoked with each finished
    :class:`SeedResult`.  Scratch directories for passing seeds are
    removed unless ``keep`` is set.
    """
    base_dir = Path(base_dir)
    base_dir.mkdir(parents=True, exist_ok=True)
    results = []
    for seed in seeds:
        result = run_seed(seed, base_dir)
        results.append(result)
        if not result.ok and bundle_dir is not None:
            bundle = Path(bundle_dir)
            bundle.mkdir(parents=True, exist_ok=True)
            target = bundle / f"chaos-seed-{seed}.json"
            target.write_text(json.dumps(result.to_bundle(), indent=2))
        if result.ok and not keep:
            for backend, _ in CHAOS_BACKENDS:
                shutil.rmtree(
                    base_dir / f"seed{seed}-{backend}", ignore_errors=True
                )
            shutil.rmtree(base_dir / f"seed{seed}-ref", ignore_errors=True)
        if progress is not None:
            progress(result)
    return results
