"""YCSB workload primitives (Cooper et al., SoCC'10).

Re-implements the pieces the paper's evaluation uses (§VII-A, Fig. 8):

* the standard YCSB **Zipfian** generator (Gray et al.'s rejection-free
  algorithm with the ``zeta``/``eta`` constants, theta = 0.99),
* the **FNV-1a 64-bit** hash YCSB uses to scramble key order,
* **Workload E** range-query batches: scan-start positions drawn from
  the Zipfian distribution over sorted-SST numbers, fixed scan widths,
  execution order randomized by the FNV hash.

The paper drops Workload E's 5% inserts because CARP and TritonSort
are transient indexing services, not online stores; we do the same.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

ZIPFIAN_CONSTANT = 0.99

_FNV_OFFSET = np.uint64(0xCBF29CE484222325)
_FNV_PRIME = np.uint64(0x100000001B3)


def fnvhash64(values: np.ndarray) -> np.ndarray:
    """YCSB's FNV-1a 64-bit hash of integer values (vectorized).

    Processes each value's 8 little-endian bytes exactly as YCSB's
    ``Utils.fnvhash64`` does.
    """
    vals = np.asarray(values, dtype=np.uint64)
    h = np.full(vals.shape, _FNV_OFFSET, dtype=np.uint64)
    with np.errstate(over="ignore"):
        for shift in range(0, 64, 8):
            octet = (vals >> np.uint64(shift)) & np.uint64(0xFF)
            h = h ^ octet
            h = h * _FNV_PRIME
    return h


class ZipfianGenerator:
    """The YCSB Zipfian generator over items ``0 .. n-1``.

    Item 0 is the most popular; popularity follows a Zipf law with
    exponent ``theta``.
    """

    def __init__(self, n: int, theta: float = ZIPFIAN_CONSTANT,
                 seed: int | np.random.Generator = 0) -> None:
        if n < 1:
            raise ValueError("n must be >= 1")
        if not 0 < theta < 1:
            raise ValueError("theta must be in (0, 1)")
        self.n = n
        self.theta = theta
        self.rng = (
            seed if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )
        self.zetan = self._zeta(n, theta)
        self.zeta2 = self._zeta(2, theta)
        self.alpha = 1.0 / (1.0 - theta)
        if n > 2:
            self.eta = (1.0 - (2.0 / n) ** (1.0 - theta)) / (
                1.0 - self.zeta2 / self.zetan
            )
        else:
            # Gray's approximation degenerates (0/0) for n <= 2; tiny
            # item spaces are sampled exactly from the Zipf pmf instead
            self.eta = 0.0
        self._exact_probs: np.ndarray | None = None
        if n <= 2:
            weights = 1.0 / np.arange(1, n + 1) ** theta
            self._exact_probs = weights / weights.sum()

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return float(np.sum(1.0 / np.arange(1, n + 1) ** theta))

    def sample(self, count: int = 1) -> np.ndarray:
        """Draw ``count`` Zipfian item numbers (vectorized)."""
        if self._exact_probs is not None:
            return self.rng.choice(self.n, size=count, p=self._exact_probs)
        u = self.rng.random(count)
        uz = u * self.zetan
        out = (self.n * (self.eta * u - self.eta + 1.0) ** self.alpha).astype(np.int64)
        out = np.where(uz < 1.0, 0, out)
        out = np.where((uz >= 1.0) & (uz < 1.0 + 0.5 ** self.theta), 1, out)
        return np.clip(out, 0, self.n - 1)


class ScrambledZipfianGenerator:
    """Zipfian popularity spread uniformly over the item space.

    YCSB scrambles the Zipfian rank through FNV so hot items are not
    clustered at low ids.
    """

    def __init__(self, n: int, theta: float = ZIPFIAN_CONSTANT, seed: int = 0) -> None:
        self.n = n
        self._zipf = ZipfianGenerator(n, theta, seed)

    def sample(self, count: int = 1) -> np.ndarray:
        ranks = self._zipf.sample(count)
        return (fnvhash64(ranks) % np.uint64(self.n)).astype(np.int64)


@dataclass(frozen=True)
class SSTRangeQuery:
    """A Workload-E scan expressed in sorted-SST numbers."""

    start_sst: int
    end_sst: int  # inclusive

    @property
    def width(self) -> int:
        return self.end_sst - self.start_sst + 1


def workload_e_batch(
    n_ssts: int,
    width: int,
    count: int,
    theta: float = ZIPFIAN_CONSTANT,
    seed: int = 0,
) -> list[SSTRangeQuery]:
    """Build one Fig. 8 query batch.

    ``count`` scans of fixed ``width`` SSTs; start positions are
    Zipfian over ``[0, n_ssts)`` (clamped so scans stay in range) and
    the batch execution order is randomized by the FNV hash of the
    query sequence number, as in YCSB's request scrambling.
    """
    if width < 1 or width > n_ssts:
        raise ValueError(f"width {width} out of range for {n_ssts} SSTs")
    if count < 1:
        raise ValueError("count must be >= 1")
    gen = ZipfianGenerator(n_ssts, theta, seed)
    starts = np.minimum(gen.sample(count), n_ssts - width)
    order = np.argsort(fnvhash64(np.arange(count)), kind="stable")
    return [
        SSTRangeQuery(int(s), int(s) + width - 1) for s in starts[order]
    ]


def sst_query_to_key_range(
    query: SSTRangeQuery, sst_boundaries: np.ndarray
) -> tuple[float, float]:
    """Translate an SST-number scan into the equivalent key range.

    ``sst_boundaries`` are the sorted layout's ``n_ssts + 1`` boundary
    keys (see :func:`repro.storage.compactor.sorted_sst_boundaries`).
    The paper uses the same translation so CARP and TritonSort answer
    identical key ranges.
    """
    n_ssts = len(sst_boundaries) - 1
    if not 0 <= query.start_sst <= query.end_sst < n_ssts:
        raise ValueError(f"{query} out of range for {n_ssts} SSTs")
    return float(sst_boundaries[query.start_sst]), float(
        sst_boundaries[query.end_sst + 1]
    )
