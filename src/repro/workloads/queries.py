"""Query-suite construction (paper §VII-A, Fig. 7a).

The paper's latency experiment runs eight range queries of different
selectivity (0.01% up to ~10%) against one timestep.  Queries are
defined in key space; to hit a target selectivity under an arbitrary
(skewed) distribution the bounds are derived from key quantiles, and
anchors are spread across the keyspace so both the dense body and the
sparse tail get exercised.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Fig. 7a's selectivity ladder (fractions, not percent).
DEFAULT_SELECTIVITIES: tuple[float, ...] = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.02, 0.05, 0.10,
)


@dataclass(frozen=True)
class RangeQuerySpec:
    """One range query with its intended selectivity."""

    lo: float
    hi: float
    target_selectivity: float
    anchor: float

    def as_tuple(self) -> tuple[float, float]:
        return (self.lo, self.hi)


def query_for_selectivity(
    keys: np.ndarray, selectivity: float, anchor: float = 0.5
) -> RangeQuerySpec:
    """A key range matching ``selectivity`` of ``keys``.

    ``anchor`` positions the query in quantile space: the range covers
    quantiles ``[anchor - s/2, anchor + s/2]`` (shifted to stay inside
    [0, 1]).
    """
    if not 0 < selectivity <= 1:
        raise ValueError(f"selectivity must be in (0, 1], got {selectivity}")
    if not 0 <= anchor <= 1:
        raise ValueError("anchor must be in [0, 1]")
    keys = np.asarray(keys, dtype=np.float64)
    if len(keys) == 0:
        raise ValueError("no keys")
    q_lo = anchor - selectivity / 2
    q_hi = anchor + selectivity / 2
    if q_lo < 0:
        q_hi -= q_lo
        q_lo = 0.0
    if q_hi > 1:
        q_lo -= q_hi - 1.0
        q_hi = 1.0
        q_lo = max(q_lo, 0.0)
    lo, hi = np.quantile(keys, [q_lo, q_hi])
    return RangeQuerySpec(float(lo), float(hi), selectivity, anchor)


def build_query_suite(
    keys: np.ndarray,
    selectivities: tuple[float, ...] = DEFAULT_SELECTIVITIES,
    anchors: tuple[float, ...] | None = None,
) -> list[RangeQuerySpec]:
    """The Fig. 7a eight-query suite for one timestep's keys.

    Anchors alternate through the keyspace (median region, lower body,
    upper body, tail) so queries of different selectivity also sample
    different data densities.
    """
    if anchors is None:
        anchors = (0.5, 0.25, 0.75, 0.9)
    return [
        query_for_selectivity(keys, s, anchors[i % len(anchors)])
        for i, s in enumerate(selectivities)
    ]


def achieved_selectivity(keys: np.ndarray, spec: RangeQuerySpec) -> float:
    """The selectivity a query spec actually achieves on ``keys``."""
    keys = np.asarray(keys, dtype=np.float64)
    return float(np.count_nonzero((keys >= spec.lo) & (keys <= spec.hi)) / len(keys))
