"""Query workloads: the Fig. 7a suite and YCSB Workload E."""

from repro.workloads.queries import (
    DEFAULT_SELECTIVITIES,
    RangeQuerySpec,
    build_query_suite,
    query_for_selectivity,
)
from repro.workloads.ycsb import (
    ScrambledZipfianGenerator,
    SSTRangeQuery,
    ZipfianGenerator,
    fnvhash64,
    sst_query_to_key_range,
    workload_e_batch,
)

__all__ = [
    "DEFAULT_SELECTIVITIES", "RangeQuerySpec", "build_query_suite",
    "query_for_selectivity", "ScrambledZipfianGenerator", "SSTRangeQuery",
    "ZipfianGenerator", "fnvhash64", "sst_query_to_key_range",
    "workload_e_batch",
]
