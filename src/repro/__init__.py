"""CARP: range query-optimized in-situ indexing for streaming data.

A laptop-scale Python reproduction of *CARP: Range Query-Optimized
Indexing for Streaming Data* (Jain et al., SC 2024): an adaptive range
partitioner that reorders scientific application output while it
streams to storage, approximating the query performance of a fully
sorted clustered index with zero write amplification.

Quick start::

    from repro import CarpRun, CarpOptions, PartitionedStore
    from repro.traces.vpic import VpicTraceSpec, generate_timestep

    spec = VpicTraceSpec(nranks=16, particles_per_rank=10_000)
    with CarpRun(16, "out/", CarpOptions()) as run:
        run.ingest_epoch(0, generate_timestep(spec, 0))
    with PartitionedStore("out/") as store:
        result = store.query(epoch=0, lo=1.0, hi=4.0)
        print(len(result), result.cost.latency)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured reproduction of every table and figure.
"""

from repro.api import Session
from repro.core.carp import CarpRun, EpochStats
from repro.core.config import CarpOptions, PAPER_OPTIONS, TEST_OPTIONS
from repro.core.partition import PartitionTable, load_stddev
from repro.core.records import RecordBatch, make_rids
from repro.exec import (
    SERIAL_EXEC,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
)
from repro.query.engine import PartitionedStore, QueryResult
from repro.query.reader import RangeReader
from repro.query.request import QueryRequest, QueryResponse
from repro.query.service import QueryService
from repro.sim.cluster import ClusterSpec, PAPER_CLUSTER
from repro.sim.iomodel import IOModel
from repro.sim.netmodel import NetModel
from repro.storage.compactor import compact_all_epochs, compact_epoch
from repro.storage.koidb import KoiDB
from repro.storage.snapshot import Snapshot, pin_snapshot

__version__ = "1.0.0"

__all__ = [
    "CarpRun",
    "CarpOptions",
    "ClusterSpec",
    "EpochStats",
    "Executor",
    "IOModel",
    "KoiDB",
    "NetModel",
    "PAPER_CLUSTER",
    "PAPER_OPTIONS",
    "PartitionTable",
    "PartitionedStore",
    "ProcessExecutor",
    "QueryRequest",
    "QueryResponse",
    "QueryResult",
    "QueryService",
    "RangeReader",
    "RecordBatch",
    "SERIAL_EXEC",
    "SerialExecutor",
    "Session",
    "Snapshot",
    "TEST_OPTIONS",
    "ThreadExecutor",
    "compact_all_epochs",
    "compact_epoch",
    "load_stddev",
    "make_executor",
    "make_rids",
    "pin_snapshot",
    "__version__",
]
