"""``repro.api`` — the :class:`Session` facade.

The library's primitives compose by explicit injection: ``CarpRun``,
``PartitionedStore``, ``RangeReader``, and the compactor each take
``obs=`` and ``executor=`` keywords.  That is the right seam for tests
and benchmarks, but a user who just wants "ingest, then query, with
one observability stack and one worker pool" ends up threading the
same two objects through four constructors (the scatter visible in
``docs/API.md``).

``Session`` owns that wiring: one ``Obs``, one ``Executor``, one
``CarpRun``, created together and torn down together::

    from repro.api import Session

    with Session(nranks=16, out_dir="out/") as session:
        session.ingest_epoch(0, streams)
        result = session.query(epoch=0, lo=16.0, hi=64.0)
    # logs closed, executor shut down, metrics still readable

Views handed out by :meth:`Session.store` and :meth:`Session.reader`
are attached: they share the session's obs/executor, the reader wraps
the session's store (one set of file handles), and the session closes
them.  The underlying constructors keep working unchanged for callers
that want manual control.
"""

from __future__ import annotations

from pathlib import Path
from types import TracebackType
from typing import TextIO

from repro.core.carp import CarpRun, EpochStats
from repro.core.config import CarpOptions
from repro.core.records import RecordBatch
from repro.exec.api import Executor
from repro.exec.factory import resolve_executor
from repro.faults.plan import FaultPlan
from repro.obs import NULL_OBS, Obs, RequestIdAllocator, TelemetryStream
from repro.query.engine import PartitionedStore, QueryResult
from repro.query.explain import QueryExplain
from repro.query.reader import RangeReader
from repro.sim.iomodel import IOModel


class Session:
    """One CARP ingest-and-query context: obs + executor + run + views.

    Parameters mirror :class:`~repro.core.carp.CarpRun`; ``record=True``
    is a convenience that builds a recording ``Obs`` stack
    (``Obs.recording()``) when no explicit ``obs=`` is given.  The
    executor resolves like everywhere else: explicit ``executor=``
    wins, then ``CARP_EXECUTOR``/``CARP_WORKERS``, then serial — and a
    session-created executor is closed by the session.
    """

    def __init__(
        self,
        nranks: int,
        out_dir: Path | str,
        options: CarpOptions | None = None,
        nreceivers: int | None = None,
        obs: Obs | None = None,
        executor: Executor | None = None,
        io: IOModel | None = None,
        record: bool = False,
        faults: FaultPlan | None = None,
        telemetry: TelemetryStream | bool = False,
    ) -> None:
        if obs is None:
            self.obs = Obs.recording() if record else NULL_OBS
        else:
            self.obs = obs
        self.executor, self._exec_owned = resolve_executor(executor)
        self.io = io or IOModel()
        self.out_dir = Path(out_dir)
        self._requests = RequestIdAllocator()
        self.run = CarpRun(
            nranks,
            self.out_dir,
            options,
            nreceivers=nreceivers,
            obs=self.obs,
            executor=self.executor,
            faults=faults,
        )
        # ``telemetry=True`` opens <out_dir>/telemetry.jsonl and streams
        # samples into it (closed with the session); an explicit
        # TelemetryStream is attached as-is and its sink stays owned by
        # the caller.  Either way the stream rides on the session obs,
        # which must therefore be a recording stack — NULL_OBS is a
        # shared singleton and must never be mutated.
        self._telemetry_file: TextIO | None = None
        self.telemetry: TelemetryStream | None = None
        if telemetry:
            if not self.obs.enabled:
                raise ValueError(
                    "telemetry needs a recording obs stack: pass "
                    "record=True or an enabled obs="
                )
            if isinstance(telemetry, TelemetryStream):
                self.telemetry = telemetry
            else:
                self.out_dir.mkdir(parents=True, exist_ok=True)
                self._telemetry_file = (self.out_dir / "telemetry.jsonl").open(
                    "w", encoding="utf-8"
                )
                self.telemetry = TelemetryStream(
                    self.obs.metrics,
                    self.obs.clock,
                    self._telemetry_file,
                    record_bytes=4 + self.run.options.value_size,
                )
            self.obs.telemetry = self.telemetry
        self._store: PartitionedStore | None = None
        self._reader: RangeReader | None = None
        self._closed = False

    # ------------------------------------------------------------ ingest

    def ingest_epoch(self, epoch: int, streams: list[RecordBatch]) -> EpochStats:
        """Ingest one epoch through the session's :class:`CarpRun`.

        Each epoch is one logical *request*: the session mints a
        deterministic ``ingest-NNNNNN`` id that tags every span and
        telemetry sample on the epoch's causal path, driver- and
        worker-side (see :mod:`repro.obs.context`).
        """
        ctx = self._requests.mint("ingest")
        stats = self.run.ingest_epoch(epoch, streams, ctx=ctx)
        # the logs grew, so any open store view is stale
        self._invalidate_views()
        return stats

    # ------------------------------------------------------------- views

    def store(self) -> PartitionedStore:
        """An attached read view over the session's output directory.

        Created lazily (the run's buffered epochs must be finished
        before the logs are readable) and cached; re-opened after each
        further :meth:`ingest_epoch`.
        """
        self._check_open()
        if self._store is None:
            self._store = PartitionedStore(
                self.out_dir, io=self.io, obs=self.obs, executor=self.executor
            )
        return self._store

    def reader(self) -> RangeReader:
        """An attached :class:`RangeReader` wrapping the session store."""
        self._check_open()
        if self._reader is None:
            self._reader = RangeReader(store=self.store())
        return self._reader

    def query(
        self, epoch: int, lo: float, hi: float, keys_only: bool = False
    ) -> QueryResult:
        """Range query against the session's output.

        Mints a ``query-NNNNNN`` request id; the query/probe spans and
        the post-query telemetry sample carry it.
        """
        ctx = self._requests.mint("query")
        return self.store().query(epoch, lo, hi, keys_only=keys_only, ctx=ctx)

    def explain(
        self, epoch: int, lo: float, hi: float, keys_only: bool = False
    ) -> QueryExplain:
        """Plan + cost report for a range query (no merge executed).

        See :meth:`repro.query.engine.PartitionedStore.explain`; the
        report reconciles exactly against :attr:`QueryResult.cost`.
        """
        return self.store().explain(epoch, lo, hi, keys_only=keys_only)

    # ---------------------------------------------------------- plumbing

    def _invalidate_views(self) -> None:
        if self._reader is not None:
            self._reader.close()  # wrapped: does not close the store
            self._reader = None
        if self._store is not None:
            self._store.close()
            self._store = None

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("session is closed")

    def write_metrics(self, path: Path | str | None = None) -> Path:
        """Persist the session's metrics snapshot (``metrics.json``)."""
        target = Path(path) if path is not None else self.out_dir / "metrics.json"
        return self.obs.metrics.write_json(target)

    def write_exposition(self, path: Path | str | None = None) -> Path:
        """Persist the OpenMetrics-style text exposition (``metrics.om``)."""
        from repro.obs import render_openmetrics

        target = Path(path) if path is not None else self.out_dir / "metrics.om"
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(render_openmetrics(self.obs.metrics.snapshot()))
        return target

    def close(self) -> None:
        """Close views, the run, and any session-owned executor.

        With telemetry attached, the run teardown (final shard barrier)
        is followed by one ``final`` full sample — the sample SLO
        policies with ``over="final"`` gate on — plus the OpenMetrics
        exposition, before the session-owned sink closes.
        """
        if self._closed:
            return
        self._closed = True
        self._invalidate_views()
        self.run.close()
        if self.telemetry is not None:
            self.telemetry.sample(
                "final",
                derived={"retries_done": float(self.executor.retries_done)},
            )
            self.write_exposition()
        if self._telemetry_file is not None:
            self._telemetry_file.close()
            self._telemetry_file = None
        if self._exec_owned:
            self.executor.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()
