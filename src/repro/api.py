"""``repro.api`` — the :class:`Session` facade.

The library's primitives compose by explicit injection: ``CarpRun``,
``PartitionedStore``, ``RangeReader``, and the compactor each take
``obs=`` and ``executor=`` keywords.  That is the right seam for tests
and benchmarks, but a user who just wants "ingest, then query, with
one observability stack and one worker pool" ends up threading the
same two objects through four constructors (the scatter visible in
``docs/API.md``).

``Session`` owns that wiring: one ``Obs``, one ``Executor``, one
``CarpRun``, created together and torn down together::

    from repro.api import Session

    with Session(nranks=16, out_dir="out/") as session:
        session.ingest_epoch(0, streams)
        result = session.query(epoch=0, lo=16.0, hi=64.0)
    # logs closed, executor shut down, metrics still readable

Views handed out by :meth:`Session.store` and :meth:`Session.reader`
are attached: they share the session's obs/executor, the reader wraps
the session's store (one set of file handles), and the session closes
them.  The underlying constructors keep working unchanged for callers
that want manual control.

The read side is *snapshot-first* (``docs/SERVING.md``):
:meth:`Session.snapshot` pins the last committed manifest chain of
every log, :meth:`Session.store` opens pinned views that survive
concurrent ingest, and :meth:`Session.serve` starts a
:class:`~repro.query.service.QueryService` admitting many concurrent
typed :class:`~repro.query.request.QueryRequest` objects while
``ingest_epoch`` keeps running.  :meth:`Session.query` accepts either
a :class:`QueryRequest` (canonical) or the legacy positional
``(epoch, lo, hi)`` spread (kept as a shim) and always returns a
typed :class:`~repro.query.request.QueryResponse`.
"""

from __future__ import annotations

from pathlib import Path
from types import TracebackType
from typing import TextIO

from repro.core.carp import CarpRun, EpochStats
from repro.core.config import CarpOptions
from repro.core.records import RecordBatch
from repro.exec.api import Executor
from repro.exec.factory import resolve_executor
from repro.faults.plan import FaultPlan
from repro.obs import NULL_OBS, Obs, RequestIdAllocator, TelemetryStream
from repro.query.engine import PartitionedStore
from repro.query.explain import QueryExplain
from repro.query.reader import RangeReader
from repro.query.request import (
    LIVE_TOKEN,
    QueryRequest,
    QueryResponse,
    response_from_result,
)
from repro.query.service import QueryService
from repro.sim.iomodel import IOModel
from repro.storage.snapshot import Snapshot, pin_snapshot


class Session:
    """One CARP ingest-and-query context: obs + executor + run + views.

    Parameters mirror :class:`~repro.core.carp.CarpRun`; ``record=True``
    is a convenience that builds a recording ``Obs`` stack
    (``Obs.recording()``) when no explicit ``obs=`` is given.  The
    executor resolves like everywhere else: explicit ``executor=``
    wins, then ``CARP_EXECUTOR``/``CARP_WORKERS``, then serial — and a
    session-created executor is closed by the session.
    """

    def __init__(
        self,
        nranks: int,
        out_dir: Path | str,
        options: CarpOptions | None = None,
        nreceivers: int | None = None,
        obs: Obs | None = None,
        executor: Executor | None = None,
        io: IOModel | None = None,
        record: bool = False,
        faults: FaultPlan | None = None,
        telemetry: TelemetryStream | bool = False,
    ) -> None:
        if obs is None:
            self.obs = Obs.recording() if record else NULL_OBS
        else:
            self.obs = obs
        self.executor, self._exec_owned = resolve_executor(executor)
        self.io = io or IOModel()
        self.out_dir = Path(out_dir)
        self._requests = RequestIdAllocator()
        self.run = CarpRun(
            nranks,
            self.out_dir,
            options,
            nreceivers=nreceivers,
            obs=self.obs,
            executor=self.executor,
            faults=faults,
        )
        # ``telemetry=True`` opens <out_dir>/telemetry.jsonl and streams
        # samples into it (closed with the session); an explicit
        # TelemetryStream is attached as-is and its sink stays owned by
        # the caller.  Either way the stream rides on the session obs,
        # which must therefore be a recording stack — NULL_OBS is a
        # shared singleton and must never be mutated.
        self._telemetry_file: TextIO | None = None
        self.telemetry: TelemetryStream | None = None
        if telemetry:
            if not self.obs.enabled:
                raise ValueError(
                    "telemetry needs a recording obs stack: pass "
                    "record=True or an enabled obs="
                )
            if isinstance(telemetry, TelemetryStream):
                self.telemetry = telemetry
            else:
                self.out_dir.mkdir(parents=True, exist_ok=True)
                self._telemetry_file = (self.out_dir / "telemetry.jsonl").open(
                    "w", encoding="utf-8"
                )
                self.telemetry = TelemetryStream(
                    self.obs.metrics,
                    self.obs.clock,
                    self._telemetry_file,
                    record_bytes=4 + self.run.options.value_size,
                )
            self.obs.telemetry = self.telemetry
        self._store: PartitionedStore | None = None
        self._reader: RangeReader | None = None
        #: Pinned read views by snapshot token.  Deliberately *not*
        #: torn down by :meth:`_invalidate_views`: a pinned store only
        #: consults bytes before its snapshot's commit points, which a
        #: concurrent ingest never rewrites, so the view stays valid
        #: across epochs until released or the session closes.
        self._pinned: dict[str, PartitionedStore] = {}
        self._services: list[QueryService] = []
        self._closed = False

    # ------------------------------------------------------------ ingest

    def ingest_epoch(self, epoch: int, streams: list[RecordBatch]) -> EpochStats:
        """Ingest one epoch through the session's :class:`CarpRun`.

        Each epoch is one logical *request*: the session mints a
        deterministic ``ingest-NNNNNN`` id that tags every span and
        telemetry sample on the epoch's causal path, driver- and
        worker-side (see :mod:`repro.obs.context`).
        """
        ctx = self._requests.mint("ingest")
        stats = self.run.ingest_epoch(epoch, streams, ctx=ctx)
        # the logs grew, so any open *live* store view is stale; pinned
        # views keep reading their snapshot's committed prefix untouched
        self._invalidate_views()
        # epoch commit: advance every serving plane to the new commit
        # point (their caches key on the snapshot token, so results of
        # the superseded snapshot can never leak into the new one)
        if self._services:
            snap = pin_snapshot(self.out_dir)
            for service in self._services:
                service.invalidate(snap)
        return stats

    # --------------------------------------------------------- snapshots

    def snapshot(self) -> Snapshot:
        """Pin the current committed state of every output log.

        The returned :class:`~repro.storage.snapshot.Snapshot` is pure
        metadata (per-log commit points validated by
        :func:`~repro.storage.recovery.find_committed_state` plus a
        token naming them); readers opened on it never see epochs that
        commit later, so ingest and snapshot queries proceed
        concurrently with no coordination.
        """
        self._check_open()
        return pin_snapshot(self.out_dir)

    def release(self, snapshot: Snapshot) -> None:
        """Close the pinned store view opened for ``snapshot`` (if any)."""
        store = self._pinned.pop(snapshot.token, None)
        if store is not None:
            store.close()

    # ------------------------------------------------------------- views

    def store(self, snapshot: Snapshot | None = None) -> PartitionedStore:
        """An attached read view over the session's output directory.

        Without a snapshot: the *live* view — created lazily (the
        run's buffered epochs must be finished before the logs are
        readable) and cached; re-opened after each further
        :meth:`ingest_epoch`.

        With ``snapshot=``: a *pinned* view opened at the snapshot's
        commit points, cached per token.  Pinned views survive
        concurrent ingest (see :meth:`_invalidate_views`) and are
        closed by :meth:`release` or session close.
        """
        self._check_open()
        if snapshot is not None:
            pinned = self._pinned.get(snapshot.token)
            if pinned is None:
                pinned = PartitionedStore(
                    self.out_dir, io=self.io, obs=self.obs,
                    executor=self.executor, snapshot=snapshot,
                )
                self._pinned[snapshot.token] = pinned
            return pinned
        if self._store is None:
            self._store = PartitionedStore(
                self.out_dir, io=self.io, obs=self.obs, executor=self.executor
            )
        return self._store

    def reader(self) -> RangeReader:
        """An attached :class:`RangeReader` wrapping the session store."""
        self._check_open()
        if self._reader is None:
            self._reader = RangeReader(store=self.store())
        return self._reader

    # ------------------------------------------------------------- reads

    def _coerce_request(
        self,
        request: QueryRequest | int | None,
        lo: float | None,
        hi: float | None,
        keys_only: bool,
        epoch: int | None,
    ) -> QueryRequest:
        """Accept the canonical QueryRequest or the legacy spread.

        The legacy positional form ``(epoch, lo, hi[, keys_only])``
        and the keyword form ``(lo=, hi=, epoch=)`` both route through
        one :class:`QueryRequest`, so every entry point shares the
        same validation and response semantics.
        """
        if isinstance(request, QueryRequest):
            if lo is not None or hi is not None or epoch is not None:
                raise TypeError(
                    "pass either a QueryRequest or (epoch, lo, hi), not both"
                )
            return request
        if request is not None and epoch is not None:
            raise TypeError("epoch given both positionally and by keyword")
        if lo is None or hi is None:
            raise TypeError("lo and hi are required without a QueryRequest")
        resolved = request if request is not None else epoch
        return QueryRequest(
            lo=float(lo), hi=float(hi), epoch=resolved, keys_only=keys_only
        )

    def _resolve_epoch(
        self,
        req: QueryRequest,
        snapshot: Snapshot | None,
        store: PartitionedStore,
    ) -> int:
        if snapshot is not None:
            return snapshot.resolve_epoch(req.epoch)
        if req.epoch is not None:
            return req.epoch
        epochs = store.epochs()
        if not epochs:
            raise ValueError(f"no committed epochs under {self.out_dir}")
        return epochs[-1]

    def query(
        self,
        request: QueryRequest | int | None = None,
        lo: float | None = None,
        hi: float | None = None,
        keys_only: bool = False,
        *,
        epoch: int | None = None,
        snapshot: Snapshot | None = None,
    ) -> QueryResponse:
        """Range query against the session's output.

        Canonical form: ``session.query(QueryRequest(lo=..., hi=...))``
        — epoch-or-latest, optional deadline, typed
        :class:`QueryResponse` reply.  The legacy
        ``session.query(epoch, lo, hi)`` spread keeps working and
        routes through the same request object.  ``snapshot=`` runs
        the query against a pinned view instead of the live store.

        Mints a ``query-NNNNNN`` request id; the query/probe spans and
        the post-query telemetry sample carry it.
        """
        req = self._coerce_request(request, lo, hi, keys_only, epoch)
        req.validate()
        store = self.store(snapshot=snapshot)
        target = self._resolve_epoch(req, snapshot, store)
        ctx = self._requests.mint("query")
        result = store.query(
            target, req.lo, req.hi, keys_only=req.keys_only, ctx=ctx
        )
        token = snapshot.token if snapshot is not None else LIVE_TOKEN
        return response_from_result(req, ctx.request_id, token, result)

    def explain(
        self,
        request: QueryRequest | int | None = None,
        lo: float | None = None,
        hi: float | None = None,
        keys_only: bool = False,
        *,
        epoch: int | None = None,
        snapshot: Snapshot | None = None,
    ) -> QueryExplain:
        """Plan + cost report for a range query (no merge executed).

        See :meth:`repro.query.engine.PartitionedStore.explain`; the
        report reconciles exactly against :attr:`QueryResponse.cost`.
        Mints an ``explain-NNNNNN`` request id carried by one
        zero-duration trace span, so ``carp-trace --request`` covers
        EXPLAIN requests too.
        """
        req = self._coerce_request(request, lo, hi, keys_only, epoch)
        req.validate()
        store = self.store(snapshot=snapshot)
        target = self._resolve_epoch(req, snapshot, store)
        ctx = self._requests.mint("explain")
        return store.explain(
            target, req.lo, req.hi, keys_only=req.keys_only, ctx=ctx
        )

    # ------------------------------------------------------------- serve

    def serve(
        self,
        snapshot: Snapshot | None = None,
        workers: int = 4,
        max_pending: int = 64,
        cache_capacity: int = 128,
        autostart: bool = True,
    ) -> QueryService:
        """Start a concurrent query service over a pinned snapshot.

        The service admits :class:`QueryRequest` objects from many
        client threads while :meth:`ingest_epoch` keeps running —
        bounded admission, per-client round-robin fairness, and a
        single-flight LRU result cache keyed on the snapshot token
        (see :mod:`repro.query.service` and ``docs/SERVING.md``).
        Each epoch commit re-pins every attached service.  The session
        closes attached services on :meth:`close`; closing a service
        merges its telemetry into the session obs stack.
        """
        self._check_open()
        service = QueryService(
            self.out_dir,
            io=self.io,
            obs=self.obs,
            requests=self._requests,
            snapshot=snapshot if snapshot is not None else self.snapshot(),
            workers=workers,
            max_pending=max_pending,
            cache_capacity=cache_capacity,
            autostart=autostart,
        )
        self._services.append(service)
        return service

    # ---------------------------------------------------------- plumbing

    def _invalidate_views(self) -> None:
        """Tear down the *live* views (they are stale after an ingest).

        Pinned stores (``self._pinned``) and serving planes
        (``self._services``) deliberately survive: both read only the
        committed prefixes named by their snapshots, which an ingest
        appends after, never into.
        """
        if self._reader is not None:
            self._reader.close()  # wrapped: does not close the store
            self._reader = None
        if self._store is not None:
            self._store.close()
            self._store = None

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("session is closed")

    def write_metrics(self, path: Path | str | None = None) -> Path:
        """Persist the session's metrics snapshot (``metrics.json``)."""
        target = Path(path) if path is not None else self.out_dir / "metrics.json"
        return self.obs.metrics.write_json(target)

    def write_exposition(self, path: Path | str | None = None) -> Path:
        """Persist the OpenMetrics-style text exposition (``metrics.om``)."""
        from repro.obs import render_openmetrics

        target = Path(path) if path is not None else self.out_dir / "metrics.om"
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(render_openmetrics(self.obs.metrics.snapshot()))
        return target

    def close(self) -> None:
        """Close views, the run, and any session-owned executor.

        With telemetry attached, the run teardown (final shard barrier)
        is followed by one ``final`` full sample — the sample SLO
        policies with ``over="final"`` gate on — plus the OpenMetrics
        exposition, before the session-owned sink closes.
        """
        if self._closed:
            return
        self._closed = True
        # serving planes first: their close drains queued requests and
        # merges worker telemetry into the session obs stack, which the
        # final telemetry sample below must already include
        for service in self._services:
            service.close()
        self._invalidate_views()
        for pinned in self._pinned.values():
            pinned.close()
        self._pinned.clear()
        self.run.close()
        if self.telemetry is not None:
            self.telemetry.sample(
                "final",
                derived={"retries_done": float(self.executor.retries_done)},
            )
            self.write_exposition()
        if self._telemetry_file is not None:
            self._telemetry_file.close()
            self._telemetry_file = None
        if self._exec_owned:
            self.executor.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()
