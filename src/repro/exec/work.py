"""Module-level worker task functions for the CARP hot paths.

Everything here follows the executor task contract
(:mod:`repro.exec.api`): plain top-level functions taking the sticky
per-shard ``state`` mapping first, deriving their output only from
``state`` and arguments (rule P601), and recording metrics and spans —
when asked to — into a private ``Obs.deltas()`` stack whose snapshot
delta and drained span records are returned as plain data (rule P602).
Task functions must stay at module level so
:class:`~repro.exec.pools.ProcessExecutor` can pickle them by
reference.

The ingest task is a *command replay*: ``CarpRun`` routing never
depends on KoiDB responses, so the driver can buffer each destination
rank's command stream (begin / own / ingest / finish / close) and have
the owning shard worker replay it verbatim — producing the exact bytes
a serial run would have appended to that rank's log.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.config import CarpOptions
from repro.core.records import RecordBatch, range_mask
from repro.exec.api import WorkerCrashError, stateful_task
from repro.faults.plan import SITE_TASK, FaultInjector, FaultSpec
from repro.obs import NULL_OBS, Obs, SpanRecord, snapshot_delta
from repro.storage.koidb import KoiDB, KoiDBStats
from repro.storage.log import LogReader
from repro.storage.manifest import ManifestEntry
from repro.storage.recovery import CommittedState

# ----------------------------------------------------------------- ingest

#: Command verbs of the KoiDB replay stream, in the order CarpRun
#: emits them: ("begin", epoch) | ("own", lo, hi, inclusive_hi) |
#: ("ingest", RecordBatch) | ("finish",) | ("close",) |
#: ("ctx", request_id) — the last switches the worker obs stack's
#: request attribution and never touches storage state
KoiDBCommand = tuple[Any, ...]


@dataclasses.dataclass(frozen=True)
class KoiDBApplyResult:
    """What a shard worker reports back after replaying commands."""

    rank: int
    stats: KoiDBStats
    log_offset: int
    metrics: dict[str, object]
    #: span records drained from the rank-local buffering tracer since
    #: the previous call (rank-local virtual timestamps; see
    #: :class:`repro.obs.buffer.BufferingTracer`)
    spans: list[SpanRecord]
    #: the request context in effect when the replay batch finished
    #: (the newest ``("ctx", ...)`` command seen), attributing this
    #: result's metric delta to its originating request
    request_id: str | None = None


@stateful_task
def koidb_apply(
    state: dict[str, Any],
    rank: int,
    directory: str,
    options: CarpOptions,
    record_obs: bool,
    commands: list[KoiDBCommand],
    fault_specs: tuple[FaultSpec, ...] = (),
) -> KoiDBApplyResult:
    """Replay a batch of KoiDB commands on the shard owning ``rank``.

    The first call opens the rank's KoiDB inside the worker (truncating
    the rank log exactly as a serial ``CarpRun`` construction would);
    subsequent calls reuse it, so the log grows as one contiguous
    append stream.  Returns a copy of the cumulative ``KoiDBStats``,
    the log offset, and the metrics and trace spans recorded since the
    previous call (the spans on the rank's local virtual timeline).

    ``fault_specs`` arms this rank's fault sites.  The ``exec.task``
    site is checked once per call, *before* any command is applied —
    so a crash here leaves shard state untouched and an executor-level
    retry replays the exact same call idempotently.  Storage-site specs
    ride into the KoiDB on first open.

    Marked :func:`~repro.exec.api.stateful_task`: the open KoiDB lives
    in sticky shard state, so after a real worker-process death this
    task must *not* be resubmitted to a fresh worker — re-opening the
    rank log with the default ``recover=False`` would truncate every
    committed epoch.  ``ProcessExecutor`` fails the drain instead and
    leaves the log on disk for ``KoiDB.open(recover=True)``.
    """
    db: KoiDB | None = state.get("koidb")
    if fault_specs and "task_injector" not in state:
        state["task_injector"] = FaultInjector(fault_specs)
    task_injector: FaultInjector | None = state.get("task_injector")
    if task_injector is not None:
        spec = task_injector.check(SITE_TASK)
        if spec is not None:
            raise WorkerCrashError(
                f"injected worker crash at task {spec.index} for rank {rank}"
            )
    if db is None:
        if state.get("closed"):
            # re-opening would truncate the rank log a closed KoiDB
            # already finalized
            raise RuntimeError(f"KoiDB for rank {rank} was already closed")
        obs = Obs.deltas() if record_obs else NULL_OBS
        db = KoiDB(rank, Path(directory), options, obs=obs, faults=fault_specs)
        state["koidb"] = db
        state["obs"] = obs
        state["prev_snapshot"] = obs.metrics.snapshot()
    elif db.rank != rank or db.directory != Path(directory):
        raise RuntimeError(
            f"shard state collision: worker holds KoiDB rank {db.rank} at "
            f"{db.directory}, got commands for rank {rank} at {directory} "
            "(one executor instance per CarpRun)"
        )
    for command in commands:
        verb = command[0]
        if verb == "ingest":
            db.ingest(command[1])
        elif verb == "own":
            db.set_owned_range(command[1], command[2], command[3])
        elif verb == "begin":
            db.begin_epoch(command[1])
        elif verb == "finish":
            db.finish_epoch()
        elif verb == "close":
            db.close()
            state.pop("koidb", None)
            state["closed"] = True
        elif verb == "ctx":
            db.set_request(command[1])
        else:
            raise ValueError(f"unknown KoiDB command {verb!r}")
    obs = state["obs"]
    current = obs.metrics.snapshot()
    delta = snapshot_delta(current, state["prev_snapshot"])
    state["prev_snapshot"] = current
    return KoiDBApplyResult(
        rank=rank,
        stats=dataclasses.replace(db.stats),
        log_offset=db.log.offset,
        metrics=delta,
        spans=obs.tracer.drain(),
        request_id=obs.request_id,
    )


# ------------------------------------------------------------------ query

@dataclasses.dataclass(frozen=True)
class LogProbeResult:
    """Per-log probe output, in the log's candidate-entry order."""

    bytes_read: int
    scanned: int
    requests: int
    runs: list[RecordBatch]
    key_runs: list[np.ndarray]

    @property
    def matched(self) -> int:
        """Records that survived the range filter in this log.

        The per-log share of ``QueryCost.records_matched``: the merged
        result concatenates every log's runs, so the per-log counts sum
        exactly to the query total (the reconciliation ``carp-explain``
        relies on).
        """
        return (sum(len(r) for r in self.runs)
                + sum(len(k) for k in self.key_runs))


def _cached_reader(
    state: dict[str, Any],
    path: str,
    recover: bool,
    pin: CommittedState | None,
) -> LogReader:
    # pinned readers are keyed by their commit point: two snapshots of
    # the same growing log pin different footers and must not share a
    # reader (the older one must never see the newer entries)
    pin_key = None if pin is None else (pin.footer_end, pin.manifest_offset)
    readers: dict[tuple[str, bool, tuple[int, int] | None], LogReader] = (
        state.setdefault("readers", {})
    )
    key = (path, recover, pin_key)
    reader = readers.get(key)
    if reader is None:
        reader = LogReader(Path(path), recover=recover, pin=pin)
        readers[key] = reader
    return reader


def probe_entries(
    reader: LogReader,
    entries: list[ManifestEntry],
    lo: float,
    hi: float,
    keys_only: bool,
) -> LogProbeResult:
    """Read and range-filter one log's candidate SSTs for a query.

    The single per-entry probe loop both query paths execute: the
    serial engine calls it inline per reader, and :func:`probe_log`
    wraps it for the shard-worker fan-out — same read sizes, same
    masks, same run order, so concatenating per-log results (in
    reader-index order) lands on the identical merged ``QueryResult``.
    """
    from repro.storage.blocks import key_block_size
    from repro.storage.sstable import HEADER_SIZE

    bytes_read = 0
    scanned = 0
    runs: list[RecordBatch] = []
    key_runs: list[np.ndarray] = []
    for entry in entries:
        if keys_only:
            _info, sst_keys = reader.read_sst_keys(entry)
            bytes_read += min(
                HEADER_SIZE + key_block_size(entry.count), entry.length
            )
            scanned += len(sst_keys)
            mask = range_mask(sst_keys, lo, hi)
            if mask.any():
                key_runs.append(sst_keys[mask])
        else:
            batch = reader.read_sst(entry)
            bytes_read += entry.length
            scanned += len(batch)
            mask = range_mask(batch.keys, lo, hi)
            if mask.any():
                runs.append(batch.select(mask))
    return LogProbeResult(
        bytes_read=bytes_read,
        scanned=scanned,
        requests=len(entries),
        runs=runs,
        key_runs=key_runs,
    )


def probe_log(
    state: dict[str, Any],
    path: str,
    recover: bool,
    entries: list[ManifestEntry],
    lo: float,
    hi: float,
    keys_only: bool,
    pin: CommittedState | None = None,
) -> LogProbeResult:
    """Worker task wrapping :func:`probe_entries` for one log.

    ``pin`` carries a snapshot's validated commit point into the
    worker: the reader opens directly at it — no footer parse, no
    backward ``find_committed_state`` scan over bytes a concurrent
    writer may be appending — and maps the log for zero-copy entry
    reads.  Log readers are cached in shard state keyed by
    ``(path, recover, commit point)``.
    """
    return probe_entries(
        _cached_reader(state, path, recover, pin), entries, lo, hi, keys_only
    )


# ------------------------------------------------------------- compaction

def read_epoch_log(state: dict[str, Any], path: str, epoch: int) -> RecordBatch | None:
    """Load one log's records for ``epoch`` (compactor read fan-out).

    Entries are concatenated in manifest order, matching the serial
    ``read_epoch`` loop; returns ``None`` when the log holds nothing
    for the epoch.
    """
    with LogReader(Path(path)) as reader:
        batches = [reader.read_sst(e) for e in reader.entries_for(epoch=epoch)]
    if not batches:
        return None
    return RecordBatch.concat(batches)


def compact_epoch_task(
    state: dict[str, Any],
    in_dir: str,
    out_dir: str,
    epoch: int,
    sst_records: int,
) -> str:
    """Compact one whole epoch (the ``compact_all_epochs`` fan-out unit).

    Each epoch writes into its own output directory, so concurrent
    epochs never touch the same file.  The inner compaction runs
    serially — the parallelism here is across epochs.
    """
    # imported lazily: the compactor module itself takes executor=
    # keywords from repro.exec, so a top-level import would be circular
    from repro.exec.api import SERIAL_EXEC
    from repro.storage.compactor import compact_epoch

    # force the inner compaction serial: CARP_EXECUTOR=process would
    # otherwise try to nest a pool inside a daemonic worker
    return str(
        compact_epoch(
            Path(in_dir), Path(out_dir), epoch, sst_records,
            executor=SERIAL_EXEC,
        )
    )
