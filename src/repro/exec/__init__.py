"""``repro.exec`` — shared-nothing parallel execution backends.

CARP's per-rank logs are a natural shard boundary (paper §VII-A: the
layout exists to "allow for parallel processing of a query"); this
package makes that executable.  An :class:`Executor` runs *shard
tasks* — module-level functions bound to sticky, worker-exclusive
per-shard state — with three interchangeable backends:

* :class:`SerialExecutor` — the zero-overhead default, inline.
* :class:`ThreadExecutor` — a thread pool; wins when tasks release the
  GIL (file I/O, NumPy kernels).
* :class:`ProcessExecutor` — a process pool; fully shared-nothing,
  sidesteps the GIL at a pickling cost.

The hot paths (``CarpRun.ingest_epoch``, ``PartitionedStore.query``,
the compactor) accept ``executor=`` exactly like ``obs=`` and produce
bit-identical output on every backend; ``CARP_EXECUTOR`` /
``CARP_WORKERS`` select a backend environment-wide.  The model, the
ownership rules, and the determinism contract are documented in
``docs/PARALLELISM.md``; carp-lint's P6xx family enforces the worker
task constraints.
"""

from __future__ import annotations

from repro.exec.api import (
    SERIAL_EXEC,
    Executor,
    ExecutorError,
    SerialExecutor,
    TaskFn,
    WorkerCrashError,
    WorkerTaskError,
    is_stateful_task,
    stateful_task,
    worker_of,
)
from repro.exec.factory import (
    EXECUTOR_KINDS,
    add_executor_args,
    default_executor,
    executor_from_args,
    make_executor,
    resolve_executor,
)
from repro.exec.pools import ProcessExecutor, ThreadExecutor

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "SERIAL_EXEC",
    "TaskFn",
    "worker_of",
    "stateful_task",
    "is_stateful_task",
    "ExecutorError",
    "WorkerTaskError",
    "WorkerCrashError",
    "EXECUTOR_KINDS",
    "make_executor",
    "default_executor",
    "resolve_executor",
    "add_executor_args",
    "executor_from_args",
]
