"""Executor construction: by name, from the environment, from a CLI.

The injection convention mirrors ``obs=``: every parallelizable entry
point takes ``executor=`` and defaults to the zero-overhead serial
backend.  ``executor=None`` additionally consults the environment —
``CARP_EXECUTOR={serial,thread,process}`` and ``CARP_WORKERS=N`` — so a
CI leg can push a whole test suite through the process pool without
touching call sites.  :func:`resolve_executor` reports whether the
consumer owns (and must close) the executor it got back.
"""

from __future__ import annotations

import argparse
import os

from repro.exec.api import SERIAL_EXEC, Executor, SerialExecutor
from repro.exec.pools import ProcessExecutor, ThreadExecutor

#: Recognized ``CARP_EXECUTOR`` / ``--executor`` backend names.
EXECUTOR_KINDS = ("serial", "thread", "process")

ENV_EXECUTOR = "CARP_EXECUTOR"
ENV_WORKERS = "CARP_WORKERS"
ENV_TASK_RETRIES = "CARP_TASK_RETRIES"


def default_worker_count() -> int:
    """Workers used when none are requested: one per CPU."""
    return os.cpu_count() or 1


def default_task_retries() -> int:
    """Crash-retry budget from ``CARP_TASK_RETRIES`` (default 0)."""
    raw = os.environ.get(ENV_TASK_RETRIES, "").strip()
    return int(raw) if raw else 0


def make_executor(
    kind: str, workers: int | None = None, task_retries: int | None = None
) -> Executor:
    """Construct a backend by name.

    ``workers`` defaults to the CPU count for the pool backends and is
    ignored for ``serial``.  ``task_retries`` is the per-task
    :class:`~repro.exec.api.WorkerCrashError` retry budget (default:
    ``CARP_TASK_RETRIES`` or 0).  Workers spawn lazily, so an executor
    that is never submitted to costs nothing.
    """
    retries = task_retries if task_retries is not None else default_task_retries()
    if kind == "serial":
        return SerialExecutor(task_retries=retries)
    n = workers if workers is not None else default_worker_count()
    if kind == "thread":
        return ThreadExecutor(n, task_retries=retries)
    if kind == "process":
        return ProcessExecutor(n, task_retries=retries)
    raise ValueError(
        f"unknown executor kind {kind!r} (expected one of {EXECUTOR_KINDS})"
    )


def default_executor() -> Executor:
    """The environment-selected executor.

    Returns the shared :data:`~repro.exec.api.SERIAL_EXEC` unless
    ``CARP_EXECUTOR`` names a pool backend; ``CARP_WORKERS`` sizes it.
    """
    kind = os.environ.get(ENV_EXECUTOR, "").strip().lower()
    if not kind or kind == "serial":
        return SERIAL_EXEC
    raw_workers = os.environ.get(ENV_WORKERS, "").strip()
    workers = int(raw_workers) if raw_workers else None
    return make_executor(kind, workers)


def resolve_executor(executor: Executor | None) -> tuple[Executor, bool]:
    """Resolve an ``executor=`` keyword to ``(executor, owned)``.

    ``owned`` is True when the executor was created here (from the
    environment) and the consumer is responsible for closing it; an
    explicitly injected executor stays owned by its caller, matching
    the ``obs=`` convention.
    """
    if executor is not None:
        return executor, False
    resolved = default_executor()
    return resolved, resolved is not SERIAL_EXEC


# ------------------------------------------------------------------- CLI

def add_executor_args(parser: argparse.ArgumentParser) -> None:
    """Attach the uniform ``--executor`` / ``--workers`` flags."""
    parser.add_argument(
        "--executor",
        choices=EXECUTOR_KINDS,
        default=None,
        help="execution backend for parallelizable stages "
        f"(default: ${ENV_EXECUTOR} or serial)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=f"worker count for pool backends (default: ${ENV_WORKERS} or CPU count)",
    )


def executor_from_args(args: argparse.Namespace) -> tuple[Executor, bool]:
    """Build ``(executor, owned)`` from parsed CLI flags.

    Flags win over the environment; with neither present this falls
    back to :func:`resolve_executor`'s environment handling.
    """
    if args.executor is None and args.workers is None:
        return resolve_executor(None)
    kind = args.executor
    if kind is None:
        kind = os.environ.get(ENV_EXECUTOR, "").strip().lower() or "serial"
    executor = make_executor(kind, args.workers)
    return executor, executor is not SERIAL_EXEC
