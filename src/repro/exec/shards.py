"""Driver-side shard plumbing for parallel KoiDB ingest.

``CarpRun`` routing never depends on a KoiDB response, so a parallel
run can treat each destination rank's KoiDB as a *replayed command
stream*: the driver buffers the per-rank sequence of
begin / set_owned_range / ingest / finish / close calls and ships it to
the shard worker that owns the rank, where
:func:`repro.exec.work.koidb_apply` replays it against a real KoiDB.
Because the per-rank sequence is identical to what a serial run would
have executed, the rank's log bytes come out identical — that is the
whole determinism argument.

:class:`KoiDBProxy` is the drop-in stand-in ``CarpRun`` holds instead
of a live ``KoiDB``; it exposes the same call surface plus the
driver-visible read side (``stats``, ``log.offset``), refreshed at
every :meth:`KoiDBShardClient.barrier`.  Driver code must only read
proxy state after a barrier — ``CarpRun`` barriers after the
finish-epoch fan-out, which is exactly where it reads stats.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.config import CarpOptions
from repro.core.records import RecordBatch
from repro.exec.api import Executor
from repro.exec.work import KoiDBApplyResult, KoiDBCommand, koidb_apply
from repro.faults.plan import FaultPlan, FaultSpec
from repro.obs import NULL_OBS, Obs, SpanRecord
from repro.storage.koidb import KoiDBStats


class _ProxyLog:
    """Mirror of the worker-side ``LogWriter`` read surface."""

    __slots__ = ("offset",)

    def __init__(self) -> None:
        self.offset = 0


class KoiDBProxy:
    """Command-buffering stand-in for one rank's worker-held KoiDB."""

    __slots__ = ("rank", "stats", "log", "_client")

    def __init__(self, rank: int, client: "KoiDBShardClient") -> None:
        self.rank = rank
        self.stats = KoiDBStats()
        self.log = _ProxyLog()
        self._client = client

    def begin_epoch(self, epoch: int) -> None:
        self._client.enqueue(self.rank, ("begin", epoch))

    def set_owned_range(self, lo: float, hi: float, inclusive_hi: bool) -> None:
        self._client.enqueue(self.rank, ("own", lo, hi, inclusive_hi))

    def ingest(self, batch: RecordBatch) -> None:
        self._client.enqueue(self.rank, ("ingest", batch))

    def finish_epoch(self) -> None:
        self._client.enqueue(self.rank, ("finish",))

    def set_request(self, request_id: str | None) -> None:
        """Enqueue a request-context switch into the command stream.

        Replayed by ``koidb_apply`` as ``obs.request_id = request_id``
        at the same stream position where a serial driver would call
        ``KoiDB.set_request``, so worker-side flush spans carry the
        same ``request`` attribution as serial ones.  Context commands
        carry no records and never trigger an auto-flush, so task
        boundaries — and therefore log bytes — are unchanged.
        """
        self._client.enqueue(self.rank, ("ctx", request_id))

    def close(self) -> None:
        self._client.close_rank(self.rank)


class KoiDBShardClient:
    """Buffers per-rank KoiDB command streams and runs the barriers.

    One instance per parallel ``CarpRun``; rank ``r`` is shard key
    ``r`` on the bound executor, so sticky assignment gives each worker
    a disjoint set of rank directories (shared-nothing ownership).
    Buffers auto-flush once a rank accumulates a memtable's worth of
    records, keeping task granularity coarse enough to amortize
    dispatch overhead.
    """

    def __init__(
        self,
        executor: Executor,
        directory: Path,
        options: CarpOptions,
        nreceivers: int,
        obs: Obs | None = None,
        faults: FaultPlan | None = None,
    ) -> None:
        self._executor = executor
        self._directory = str(directory)
        self._options = options
        self._obs = obs if obs is not None else NULL_OBS
        self._record_obs = self._obs.enabled
        # rank-scoped fault specs ride along on every koidb_apply call;
        # the worker-side injector advances with the rank's command
        # stream, which is identical across backends
        self._fault_specs: list[tuple[FaultSpec, ...]] = [
            faults.specs_for_rank(r) if faults is not None else ()
            for r in range(nreceivers)
        ]
        self.proxies = [KoiDBProxy(r, self) for r in range(nreceivers)]
        self._buffers: list[list[KoiDBCommand]] = [[] for _ in range(nreceivers)]
        self._buffered_records = [0] * nreceivers
        self._flush_records = max(options.memtable_records, options.round_records)
        self._rank_closed = [False] * nreceivers
        self._closed = False

    # --------------------------------------------------------- buffering

    def enqueue(self, rank: int, command: KoiDBCommand) -> None:
        if self._closed or self._rank_closed[rank]:
            # a re-sent close would make the worker re-open (and
            # truncate) the rank log; refuse anything after close
            raise RuntimeError(f"KoiDB shard for rank {rank} is closed")
        self._buffers[rank].append(command)
        if command[0] == "ingest":
            self._buffered_records[rank] += len(command[1])
            if self._buffered_records[rank] >= self._flush_records:
                self._submit(rank)

    def _submit(self, rank: int) -> None:
        commands = self._buffers[rank]
        if not commands:
            return
        self._buffers[rank] = []
        self._buffered_records[rank] = 0
        self._executor.submit(
            rank,
            koidb_apply,
            rank,
            self._directory,
            self._options,
            self._record_obs,
            commands,
            self._fault_specs[rank],
        )

    # ---------------------------------------------------------- barriers

    def barrier(self) -> None:
        """Flush every buffer, wait for the workers, sync proxy state.

        Worker metric deltas are merged into the driver registry in
        submission order (rank-major, deterministic); per-rank stats
        and log offsets replace the proxies' copies with the workers'
        newest cumulative values.  Worker span records (rank-local
        virtual timelines) are regrouped per rank and replayed into the
        driver tracer in ascending rank order — the same order
        ``CarpRun._sync_storage_trace`` uses serially — so the merged
        trace is bit-identical across backends.
        """
        for rank in range(len(self.proxies)):
            self._submit(rank)
        results = self._executor.drain()
        spans: dict[int, list[SpanRecord]] = {}
        for result in results:
            assert isinstance(result, KoiDBApplyResult)
            proxy = self.proxies[result.rank]
            proxy.stats = result.stats
            proxy.log.offset = result.log_offset
            self._obs.metrics.merge_worker_delta(result.metrics)
            if result.spans:
                # drain() preserves submission order per rank, so each
                # rank's records stay in emission order
                spans.setdefault(result.rank, []).extend(result.spans)
        for rank in sorted(spans):
            self._obs.tracer.merge_events(spans[rank])

    def close_rank(self, rank: int) -> None:
        """Close one rank's worker-held KoiDB (idempotent)."""
        if self._closed or self._rank_closed[rank]:
            return
        self.enqueue(rank, ("close",))
        self._rank_closed[rank] = True
        self.barrier()

    def close(self) -> None:
        """Enqueue a close for every open rank and run the final barrier."""
        if self._closed:
            return
        for proxy in self.proxies:
            if not self._rank_closed[proxy.rank]:
                self.enqueue(proxy.rank, ("close",))
                self._rank_closed[proxy.rank] = True
        self.barrier()
        self._closed = True
