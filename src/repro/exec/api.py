"""The :class:`Executor` contract and its in-process serial backend.

CARP's per-rank logs exist precisely so that ingest and probing can be
"processed in parallel" (paper §VII-A); this module defines the seam
that makes that executable instead of merely priced.  An executor runs
*shard tasks*: plain module-level functions invoked as
``fn(state, *args)`` where ``state`` is a mutable mapping that is

* **sticky** — every task submitted for the same shard key sees the
  same mapping, for the lifetime of the executor, and
* **exclusive** — owned by exactly one worker, so no two tasks ever
  touch it concurrently (shared-nothing by construction).

Tasks for one shard execute in submission order; tasks for different
shards may run concurrently.  :meth:`Executor.drain` is the barrier
that returns every result since the previous drain, in submission
order, which is what lets callers merge worker output back
deterministically no matter how execution interleaved.

Determinism contract (see ``docs/PARALLELISM.md``): a task function
must derive its output purely from ``state`` and its arguments — never
from module-level mutable state (lint rule P601) — and must not build
recording observability stacks (rule P602); workers report metrics as
plain deltas that the driver merges in shard order.
"""

from __future__ import annotations

import abc
import traceback
from collections.abc import Callable, Sequence
from typing import Any

#: Signature every shard task follows: ``fn(state, *args) -> result``.
TaskFn = Callable[..., Any]


class ExecutorError(RuntimeError):
    """Base class for executor failures."""


class WorkerTaskError(ExecutorError):
    """A shard task raised; carries the worker-side traceback text."""

    def __init__(self, shard: int, cause: str, traceback_text: str = "") -> None:
        self.shard = shard
        self.cause = cause
        self.traceback_text = traceback_text
        detail = f"\n--- worker traceback ---\n{traceback_text}" if traceback_text else ""
        super().__init__(f"task on shard {shard} failed: {cause}{detail}")


class WorkerCrashError(ExecutorError):
    """A worker crashed (process death or an injected ``exec.task`` fault).

    Uniquely among task failures this one is *retryable*: executors
    built with ``task_retries > 0`` re-run the crashed task inline on
    its owning worker, against the same sticky state, before giving
    up.  Task functions that can raise it must therefore be idempotent
    up to their crash point (``koidb_apply`` checks its fault site
    before applying any command, so a retry replays nothing twice).
    """


def stateful_task(fn: TaskFn) -> TaskFn:
    """Mark a task whose sticky shard state cannot be rebuilt from scratch.

    Decorator for task functions that accumulate per-shard state which
    a *fresh* worker cannot reconstruct safely — e.g. ``koidb_apply``,
    whose open :class:`~repro.storage.koidb.KoiDB` would, on a blind
    re-open in a replacement worker, truncate the rank log and destroy
    previously committed epochs.  :class:`~repro.exec.pools.ProcessExecutor`
    refuses to resubmit marked tasks after a real worker-process death
    and fails the drain with :class:`WorkerCrashError` instead; the
    durable state on disk is left untouched for
    ``KoiDB.open(recover=True)`` / ``fsck --repair``.
    """
    fn.carp_stateful = True  # type: ignore[attr-defined]
    return fn


def is_stateful_task(fn: TaskFn) -> bool:
    """True when ``fn`` was marked with :func:`stateful_task`."""
    return bool(getattr(fn, "carp_stateful", False))


def worker_of(shard: int, workers: int) -> int:
    """The worker index that owns ``shard`` (sticky modulo assignment).

    Shard ownership never migrates: all tasks for one shard run on
    ``shard % workers``, which is what keeps per-shard state (an open
    KoiDB, a reader cache) local to exactly one worker.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if shard < 0:
        raise ValueError("shard keys must be non-negative")
    return shard % workers


class Executor(abc.ABC):
    """Deterministic shard-task executor (see module docstring)."""

    #: Human-readable backend name (``serial`` / ``thread`` / ``process``).
    name: str = ""
    #: Number of workers tasks are spread across.
    workers: int = 1
    #: Per-task retry budget for :class:`WorkerCrashError` (0 = fail fast).
    #: Retries run inline on the owning worker, preserving sticky shard
    #: ownership and per-shard submission order.
    task_retries: int = 0
    #: Total crash retries performed over the executor's lifetime.
    retries_done: int = 0

    @property
    def is_serial(self) -> bool:
        """True when tasks run inline on the calling thread.

        Hot paths use this to keep their zero-overhead direct code path
        instead of routing through the task machinery.
        """
        return False

    @abc.abstractmethod
    def submit(self, shard: int, fn: TaskFn, /, *args: Any) -> None:
        """Queue ``fn(state, *args)`` on the worker owning ``shard``."""

    @abc.abstractmethod
    def drain(self) -> list[Any]:
        """Wait for every task submitted since the last drain.

        Returns their results in submission order.  If any task raised,
        the submission-order-first failure is re-raised as
        :class:`WorkerTaskError` (remaining results are discarded; the
        executor stays usable).
        """

    def map(
        self,
        fn: TaskFn,
        arg_tuples: Sequence[tuple[Any, ...]],
        shards: Sequence[int] | None = None,
    ) -> list[Any]:
        """Submit one task per argument tuple and drain.

        ``shards[i]`` keys task ``i``; by default task index is used,
        which spreads independent items across all workers.
        """
        if shards is not None and len(shards) != len(arg_tuples):
            raise ValueError("shards and arg_tuples must have equal length")
        for i, args in enumerate(arg_tuples):
            self.submit(shards[i] if shards is not None else i, fn, *args)
        return self.drain()

    @abc.abstractmethod
    def close(self) -> None:
        """Release workers and per-shard state.  Idempotent."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} workers={self.workers}>"


class SerialExecutor(Executor):
    """Run every task inline on the calling thread.

    The default backend everywhere: consumers check
    :attr:`Executor.is_serial` and keep their direct code path, so a
    serial run pays a single attribute check.  When tasks *are*
    submitted (e.g. exercising worker functions in tests) they run
    immediately with the same sticky-state semantics as the parallel
    backends.
    """

    name = "serial"
    workers = 1

    def __init__(self, task_retries: int = 0) -> None:
        self._states: dict[int, dict[str, Any]] = {}
        self._results: list[Any] = []
        self._failure: ExecutorError | None = None
        self.task_retries = task_retries
        self.retries_done = 0

    @property
    def is_serial(self) -> bool:
        return True

    def submit(self, shard: int, fn: TaskFn, /, *args: Any) -> None:
        if self._failure is not None:
            return  # drain will raise; mirror parallel fail-fast drains
        state = self._states.setdefault(shard, {})
        retries = 0
        while True:
            try:
                self._results.append(fn(state, *args))
                return
            except WorkerCrashError as exc:
                if retries < self.task_retries:
                    retries += 1
                    self.retries_done += 1
                    continue
                self._failure = WorkerCrashError(
                    f"task on shard {shard} crashed"
                    f"{f' after {retries} retries' if retries else ''}: "
                    f"{exc}"
                )
                return
            except Exception as exc:  # noqa: BLE001 - uniform worker semantics
                self._failure = WorkerTaskError(
                    shard, repr(exc), traceback.format_exc()
                )
                return

    def drain(self) -> list[Any]:
        results, self._results = self._results, []
        failure, self._failure = self._failure, None
        if failure is not None:
            raise failure
        return results

    def close(self) -> None:
        self._states.clear()
        self._results.clear()
        self._failure = None


#: Shared default executor.  Stateless use only (the built-in serial
#: paths never submit tasks to it); anything needing sticky shard state
#: should own a fresh executor instance.
SERIAL_EXEC = SerialExecutor()
