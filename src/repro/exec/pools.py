"""Thread- and process-pool executors with sticky shard ownership.

Both pools share one architecture: each worker owns a private task
queue and the shards assigned to it by :func:`~repro.exec.api.worker_of`
never migrate, so per-shard state (an open KoiDB, a reader cache) is
touched by exactly one worker for the executor's lifetime.  Results
flow back over a single shared queue tagged with submission tickets;
:meth:`drain` reorders them into submission order, which is the whole
reason callers can merge worker output deterministically.

``ThreadExecutor`` shares the caller's address space — per-shard state
holds live objects, nothing is pickled, but the GIL serializes pure-
Python work (NumPy kernels and file I/O release it).
``ProcessExecutor`` is fully shared-nothing: task functions must be
module-level (pickled by reference; lint rule P601 keeps them free of
module-level mutable state) and arguments/results cross a pickle
boundary.  See ``docs/PARALLELISM.md`` for when each wins.

Workers spawn lazily on the first submit, so constructing an executor
— e.g. the default from ``CARP_EXECUTOR`` — costs nothing until it is
actually used.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
import traceback
from typing import Any

from repro.exec.api import (
    Executor,
    ExecutorError,
    TaskFn,
    WorkerCrashError,
    WorkerTaskError,
    is_stateful_task,
    worker_of,
)

# Seconds between liveness checks while a drain waits on the result
# queue.  Purely a polling cadence for failure detection; results are
# consumed the moment they arrive.
_POLL_TIMEOUT = 0.1

_OK = "ok"
_ERR = "err"
_CRASH = "crash"


def _run_task(
    states: dict[int, dict[str, Any]],
    result_q: Any,
    item: tuple[int, int, int, TaskFn, tuple[Any, ...]],
    task_retries: int,
) -> None:
    """Execute one ticketed task, retrying crashes inline.

    Shared by both worker loops.  Retrying *inside* the worker (rather
    than re-enqueueing at the driver) preserves per-shard submission
    order: a retried task still finishes before any later task for the
    same shard is picked up.  Every message echoes the submission's
    attempt number (so the drain can discard results from a superseded
    submission after a worker respawn) and carries the retry count as
    its last field so drains can account for recovery work.
    """
    tid, attempt, shard, fn, args = item
    state = states.setdefault(shard, {})
    retries = 0
    while True:
        try:
            value = fn(state, *args)
        except WorkerCrashError as exc:
            if retries < task_retries:
                retries += 1
                continue
            result_q.put(
                (_CRASH, tid, attempt, shard, repr(exc),
                 traceback.format_exc(), retries)
            )
            return
        except Exception as exc:  # noqa: BLE001 - reported via the queue
            result_q.put(
                (_ERR, tid, attempt, shard, repr(exc),
                 traceback.format_exc(), retries)
            )
            return
        else:
            result_q.put((_OK, tid, attempt, value, retries))
            return


def _thread_worker_main(
    task_q: "queue.SimpleQueue[tuple[int, int, int, TaskFn, tuple[Any, ...]] | None]",
    result_q: "queue.SimpleQueue[tuple[Any, ...]]",
    task_retries: int = 0,
) -> None:
    """Worker loop shared by every :class:`ThreadExecutor` thread."""
    states: dict[int, dict[str, Any]] = {}
    while True:
        item = task_q.get()
        if item is None:
            return
        _run_task(states, result_q, item, task_retries)


def _process_worker_main(task_q: Any, result_q: Any, task_retries: int = 0) -> None:
    """Worker loop run inside every :class:`ProcessExecutor` child.

    Identical protocol to the thread loop, but everything crossing the
    queues is pickled, so task results must serialize cleanly and task
    functions must be importable module-level callables.
    """
    states: dict[int, dict[str, Any]] = {}
    while True:
        item = task_q.get()
        if item is None:
            return
        _run_task(states, result_q, item, task_retries)


class _PoolExecutor(Executor):
    """Ticketed submit/drain machinery shared by both pool backends."""

    def __init__(self, workers: int, task_retries: int = 0) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if task_retries < 0:
            raise ValueError("task_retries must be >= 0")
        self.workers = workers
        self.task_retries = task_retries
        self.retries_done = 0
        self._started = False
        self._closed = False
        self._next_tid = 0
        # tid -> (attempt, shard, fn, args) for every task since the
        # last drain; keeping the full task lets ProcessExecutor
        # resubmit after a real worker death, and the attempt counter
        # lets the drain discard a result the dead worker managed to
        # enqueue before dying (the resubmission would otherwise be
        # double-counted).
        self._pending: dict[int, tuple[int, int, TaskFn, tuple[Any, ...]]] = {}
        # the drain in progress exposes its completed tickets here so
        # _check_workers_alive knows what not to resubmit
        self._drain_done: dict[int, tuple[Any, ...]] = {}

    # ------------------------------------------------------ subclass API

    def _start(self) -> None:
        """Spawn workers and create queues (called once, lazily)."""
        raise NotImplementedError

    def _enqueue(self, worker: int, item: tuple[Any, ...]) -> None:
        raise NotImplementedError

    def _result_get(self) -> tuple[Any, ...]:
        """Blocking result fetch; may raise ``queue.Empty`` on timeout."""
        raise NotImplementedError

    def _check_workers_alive(self) -> None:
        """Raise :class:`WorkerCrashError` if any worker died."""

    def _shutdown(self) -> None:
        """Tear down workers (sentinels already sent by :meth:`close`)."""
        raise NotImplementedError

    # --------------------------------------------------------- Executor

    def submit(self, shard: int, fn: TaskFn, /, *args: Any) -> None:
        if self._closed:
            raise ExecutorError(f"{type(self).__name__} is closed")
        if not self._started:
            self._start()
            self._started = True
        tid = self._next_tid
        self._next_tid += 1
        self._pending[tid] = (0, shard, fn, args)
        self._enqueue(worker_of(shard, self.workers), (tid, 0, shard, fn, args))

    def drain(self) -> list[Any]:
        outcomes: dict[int, tuple[Any, ...]] = {}
        self._drain_done = outcomes
        while len(outcomes) < len(self._pending):
            try:
                msg = self._result_get()
            except queue.Empty:
                self._check_workers_alive()
                continue
            tid, attempt = msg[1], msg[2]
            current = self._pending.get(tid)
            if current is None or current[0] != attempt:
                # unknown ticket (a leftover from a past drain) or a
                # stale attempt (the task was resubmitted after its
                # worker died mid-report): drop it, the live attempt's
                # result is the one that counts
                continue
            outcomes[tid] = msg
        pending, self._pending = self._pending, {}
        self._drain_done = {}
        failure: ExecutorError | None = None
        results: list[Any] = []
        for tid in sorted(pending):
            msg = outcomes[tid]
            self.retries_done += msg[-1]
            if failure is not None:
                continue
            if msg[0] == _OK:
                results.append(msg[3])
            elif msg[0] == _CRASH:
                failure = WorkerCrashError(
                    f"task on shard {msg[3]} crashed"
                    f"{f' after {msg[6]} retries' if msg[6] else ''}: "
                    f"{msg[4]}"
                )
            else:
                failure = WorkerTaskError(msg[3], msg[4], msg[5])
        if failure is not None:
            raise failure
        return results

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._started:
            self._shutdown()
        self._pending.clear()


class ThreadExecutor(_PoolExecutor):
    """Shard tasks on a fixed pool of daemon threads.

    Best when tasks spend their time outside the GIL — file reads,
    NumPy sorting/searching — or when task state (open file handles,
    live objects) cannot cross a process boundary.
    """

    name = "thread"

    def __init__(self, workers: int, task_retries: int = 0) -> None:
        super().__init__(workers, task_retries)
        self._task_qs: list[queue.SimpleQueue[Any]] = []
        self._result_q: queue.SimpleQueue[tuple[Any, ...]] = queue.SimpleQueue()
        self._threads: list[threading.Thread] = []

    def _start(self) -> None:
        for i in range(self.workers):
            task_q: queue.SimpleQueue[Any] = queue.SimpleQueue()
            thread = threading.Thread(
                target=_thread_worker_main,
                args=(task_q, self._result_q, self.task_retries),
                name=f"carp-exec-{i}",
                daemon=True,
            )
            self._task_qs.append(task_q)
            self._threads.append(thread)
            thread.start()

    def _enqueue(self, worker: int, item: tuple[Any, ...]) -> None:
        self._task_qs[worker].put(item)

    def _result_get(self) -> tuple[Any, ...]:
        return self._result_q.get(timeout=_POLL_TIMEOUT)

    def _shutdown(self) -> None:
        for task_q in self._task_qs:
            task_q.put(None)
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._task_qs.clear()
        self._threads.clear()


class ProcessExecutor(_PoolExecutor):
    """Shard tasks on a pool of worker processes (shared-nothing).

    Each worker process owns the per-shard state for its shards; tasks
    and results cross a pickle boundary.  This sidesteps the GIL
    entirely, at the price of serialization and process startup — see
    ``docs/PARALLELISM.md`` for the trade-off against threads.
    """

    name = "process"

    def __init__(self, workers: int, task_retries: int = 0) -> None:
        super().__init__(workers, task_retries)
        # fork avoids re-importing the world per worker where the OS
        # supports it; tasks are spawn-safe regardless (P601 bans the
        # module-global state that fork would otherwise paper over).
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        self._task_qs: list[Any] = []
        self._result_q: Any = None
        self._procs: list[Any] = []
        self._respawns_left = task_retries

    def _start(self) -> None:
        self._result_q = self._ctx.Queue()
        for i in range(self.workers):
            task_q = self._ctx.Queue()
            proc = self._ctx.Process(
                target=_process_worker_main,
                args=(task_q, self._result_q, self.task_retries),
                name=f"carp-exec-{i}",
                daemon=True,
            )
            self._task_qs.append(task_q)
            self._procs.append(proc)
            proc.start()

    def _enqueue(self, worker: int, item: tuple[Any, ...]) -> None:
        self._task_qs[worker].put(item)

    def _result_get(self) -> tuple[Any, ...]:
        assert self._result_q is not None
        msg: tuple[Any, ...] = self._result_q.get(timeout=_POLL_TIMEOUT)
        return msg

    def _unfinished_for(self, worker: int) -> list[int]:
        """Tickets owned by ``worker`` with no result received yet."""
        return [
            tid
            for tid in sorted(self._pending)
            if tid not in self._drain_done
            and worker_of(self._pending[tid][1], self.workers) == worker
        ]

    def _check_workers_alive(self) -> None:
        dead = [
            i for i, proc in enumerate(self._procs)
            if not proc.is_alive() and proc.exitcode not in (0, None)
        ]
        if not dead:
            return
        detail = ", ".join(
            f"{self._procs[i].name} (exit {self._procs[i].exitcode})"
            for i in dead
        )
        # A stateful task's per-shard state (an open KoiDB) died with
        # the worker and cannot be rebuilt from scratch: re-running it
        # in a fresh worker would re-open — and truncate — a rank log
        # that already holds committed epochs.  Fail the drain instead;
        # the logs on disk stay exactly as the dead worker left them,
        # recoverable via ``KoiDB.open(recover=True)`` / fsck --repair.
        stateful = sorted(
            {
                self._pending[tid][2].__name__
                for worker in dead
                for tid in self._unfinished_for(worker)
                if is_stateful_task(self._pending[tid][2])
            }
        )
        if stateful:
            self._closed = True
            self._shutdown()
            raise WorkerCrashError(
                f"worker process died with stateful task(s) "
                f"{', '.join(stateful)} in flight ({detail}); their "
                "per-shard state cannot be rebuilt in a fresh worker, "
                "so the drain fails rather than resubmitting — recover "
                "the rank logs with KoiDB.open(recover=True)"
            )
        if self._respawns_left >= len(dead):
            for worker in dead:
                self._respawns_left -= 1
                self._respawn(worker)
            return
        self._closed = True
        self._shutdown()
        raise WorkerCrashError(
            f"worker process died without reporting a result: {detail}"
        )

    def _respawn(self, worker: int) -> None:
        """Replace a dead worker and resubmit its unfinished tasks.

        Per-shard state in the dead process is gone, so this only runs
        for stateless tasks (``_check_workers_alive`` fails the drain
        when a task marked via :func:`~repro.exec.api.stateful_task`
        is in flight on the dead worker).  The worker gets a *fresh*
        task queue so tasks buffered in the dead worker's queue are not
        executed twice, and every resubmission bumps the ticket's
        attempt counter so a result the dead worker enqueued just
        before dying is discarded by the drain instead of being
        double-counted.  A task the worker died inside may still
        re-run, which is the standard at-least-once caveat of crash
        retry.
        """
        task_q = self._ctx.Queue()
        proc = self._ctx.Process(
            target=_process_worker_main,
            args=(task_q, self._result_q, self.task_retries),
            name=f"carp-exec-{worker}",
            daemon=True,
        )
        self._task_qs[worker] = task_q
        self._procs[worker] = proc
        proc.start()
        self.retries_done += 1
        for tid in self._unfinished_for(worker):
            attempt, shard, fn, args = self._pending[tid]
            attempt += 1
            self._pending[tid] = (attempt, shard, fn, args)
            task_q.put((tid, attempt, shard, fn, args))

    def _shutdown(self) -> None:
        for task_q in self._task_qs:
            try:
                task_q.put(None)
            except (OSError, ValueError):
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        if self._result_q is not None:
            self._result_q.close()
            self._result_q = None
        self._task_qs.clear()
        self._procs.clear()
