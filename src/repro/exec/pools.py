"""Thread- and process-pool executors with sticky shard ownership.

Both pools share one architecture: each worker owns a private task
queue and the shards assigned to it by :func:`~repro.exec.api.worker_of`
never migrate, so per-shard state (an open KoiDB, a reader cache) is
touched by exactly one worker for the executor's lifetime.  Results
flow back over a single shared queue tagged with submission tickets;
:meth:`drain` reorders them into submission order, which is the whole
reason callers can merge worker output deterministically.

``ThreadExecutor`` shares the caller's address space — per-shard state
holds live objects, nothing is pickled, but the GIL serializes pure-
Python work (NumPy kernels and file I/O release it).
``ProcessExecutor`` is fully shared-nothing: task functions must be
module-level (pickled by reference; lint rule P601 keeps them free of
module-level mutable state) and arguments/results cross a pickle
boundary.  See ``docs/PARALLELISM.md`` for when each wins.

Workers spawn lazily on the first submit, so constructing an executor
— e.g. the default from ``CARP_EXECUTOR`` — costs nothing until it is
actually used.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
import traceback
from typing import Any

from repro.exec.api import (
    Executor,
    ExecutorError,
    TaskFn,
    WorkerCrashError,
    WorkerTaskError,
    worker_of,
)

# Seconds between liveness checks while a drain waits on the result
# queue.  Purely a polling cadence for failure detection; results are
# consumed the moment they arrive.
_POLL_TIMEOUT = 0.1

_OK = "ok"
_ERR = "err"


def _thread_worker_main(
    task_q: "queue.SimpleQueue[tuple[int, int, TaskFn, tuple[Any, ...]] | None]",
    result_q: "queue.SimpleQueue[tuple[Any, ...]]",
) -> None:
    """Worker loop shared by every :class:`ThreadExecutor` thread."""
    states: dict[int, dict[str, Any]] = {}
    while True:
        item = task_q.get()
        if item is None:
            return
        tid, shard, fn, args = item
        state = states.setdefault(shard, {})
        try:
            value = fn(state, *args)
        except Exception as exc:  # noqa: BLE001 - reported via the queue
            result_q.put((_ERR, tid, shard, repr(exc), traceback.format_exc()))
        else:
            result_q.put((_OK, tid, value))


def _process_worker_main(task_q: Any, result_q: Any) -> None:
    """Worker loop run inside every :class:`ProcessExecutor` child.

    Identical protocol to the thread loop, but everything crossing the
    queues is pickled, so task results must serialize cleanly and task
    functions must be importable module-level callables.
    """
    states: dict[int, dict[str, Any]] = {}
    while True:
        item = task_q.get()
        if item is None:
            return
        tid, shard, fn, args = item
        state = states.setdefault(shard, {})
        try:
            value = fn(state, *args)
        except Exception as exc:  # noqa: BLE001 - reported via the queue
            result_q.put((_ERR, tid, shard, repr(exc), traceback.format_exc()))
        else:
            result_q.put((_OK, tid, value))


class _PoolExecutor(Executor):
    """Ticketed submit/drain machinery shared by both pool backends."""

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._started = False
        self._closed = False
        self._next_tid = 0
        # tid -> shard, for every task submitted since the last drain
        self._pending: dict[int, int] = {}

    # ------------------------------------------------------ subclass API

    def _start(self) -> None:
        """Spawn workers and create queues (called once, lazily)."""
        raise NotImplementedError

    def _enqueue(self, worker: int, item: tuple[Any, ...]) -> None:
        raise NotImplementedError

    def _result_get(self) -> tuple[Any, ...]:
        """Blocking result fetch; may raise ``queue.Empty`` on timeout."""
        raise NotImplementedError

    def _check_workers_alive(self) -> None:
        """Raise :class:`WorkerCrashError` if any worker died."""

    def _shutdown(self) -> None:
        """Tear down workers (sentinels already sent by :meth:`close`)."""
        raise NotImplementedError

    # --------------------------------------------------------- Executor

    def submit(self, shard: int, fn: TaskFn, /, *args: Any) -> None:
        if self._closed:
            raise ExecutorError(f"{type(self).__name__} is closed")
        if not self._started:
            self._start()
            self._started = True
        tid = self._next_tid
        self._next_tid += 1
        self._pending[tid] = shard
        self._enqueue(worker_of(shard, self.workers), (tid, shard, fn, args))

    def drain(self) -> list[Any]:
        outcomes: dict[int, tuple[Any, ...]] = {}
        while len(outcomes) < len(self._pending):
            try:
                msg = self._result_get()
            except queue.Empty:
                self._check_workers_alive()
                continue
            outcomes[msg[1]] = msg
        pending, self._pending = self._pending, {}
        failure: WorkerTaskError | None = None
        results: list[Any] = []
        for tid in sorted(pending):
            msg = outcomes[tid]
            if msg[0] == _ERR:
                failure = WorkerTaskError(msg[2], msg[3], msg[4])
                break
            results.append(msg[2])
        if failure is not None:
            raise failure
        return results

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._started:
            self._shutdown()
        self._pending.clear()


class ThreadExecutor(_PoolExecutor):
    """Shard tasks on a fixed pool of daemon threads.

    Best when tasks spend their time outside the GIL — file reads,
    NumPy sorting/searching — or when task state (open file handles,
    live objects) cannot cross a process boundary.
    """

    name = "thread"

    def __init__(self, workers: int) -> None:
        super().__init__(workers)
        self._task_qs: list[queue.SimpleQueue[Any]] = []
        self._result_q: queue.SimpleQueue[tuple[Any, ...]] = queue.SimpleQueue()
        self._threads: list[threading.Thread] = []

    def _start(self) -> None:
        for i in range(self.workers):
            task_q: queue.SimpleQueue[Any] = queue.SimpleQueue()
            thread = threading.Thread(
                target=_thread_worker_main,
                args=(task_q, self._result_q),
                name=f"carp-exec-{i}",
                daemon=True,
            )
            self._task_qs.append(task_q)
            self._threads.append(thread)
            thread.start()

    def _enqueue(self, worker: int, item: tuple[Any, ...]) -> None:
        self._task_qs[worker].put(item)

    def _result_get(self) -> tuple[Any, ...]:
        return self._result_q.get(timeout=_POLL_TIMEOUT)

    def _shutdown(self) -> None:
        for task_q in self._task_qs:
            task_q.put(None)
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._task_qs.clear()
        self._threads.clear()


class ProcessExecutor(_PoolExecutor):
    """Shard tasks on a pool of worker processes (shared-nothing).

    Each worker process owns the per-shard state for its shards; tasks
    and results cross a pickle boundary.  This sidesteps the GIL
    entirely, at the price of serialization and process startup — see
    ``docs/PARALLELISM.md`` for the trade-off against threads.
    """

    name = "process"

    def __init__(self, workers: int) -> None:
        super().__init__(workers)
        # fork avoids re-importing the world per worker where the OS
        # supports it; tasks are spawn-safe regardless (P601 bans the
        # module-global state that fork would otherwise paper over).
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        self._task_qs: list[Any] = []
        self._result_q: Any = None
        self._procs: list[Any] = []

    def _start(self) -> None:
        self._result_q = self._ctx.Queue()
        for i in range(self.workers):
            task_q = self._ctx.Queue()
            proc = self._ctx.Process(
                target=_process_worker_main,
                args=(task_q, self._result_q),
                name=f"carp-exec-{i}",
                daemon=True,
            )
            self._task_qs.append(task_q)
            self._procs.append(proc)
            proc.start()

    def _enqueue(self, worker: int, item: tuple[Any, ...]) -> None:
        self._task_qs[worker].put(item)

    def _result_get(self) -> tuple[Any, ...]:
        assert self._result_q is not None
        msg: tuple[Any, ...] = self._result_q.get(timeout=_POLL_TIMEOUT)
        return msg

    def _check_workers_alive(self) -> None:
        dead = [
            (proc.name, proc.exitcode)
            for proc in self._procs
            if not proc.is_alive() and proc.exitcode not in (0, None)
        ]
        if dead:
            self._closed = True
            self._shutdown()
            detail = ", ".join(f"{name} (exit {code})" for name, code in dead)
            raise WorkerCrashError(
                f"worker process died without reporting a result: {detail}"
            )

    def _shutdown(self) -> None:
        for task_q in self._task_qs:
            try:
                task_q.put(None)
            except (OSError, ValueError):
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        if self._result_q is not None:
            self._result_q.close()
            self._result_q = None
        self._task_qs.clear()
        self._procs.clear()
