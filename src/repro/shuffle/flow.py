"""In-flight shuffle traffic: the delivery-delay queue.

The physical shuffle fabric batches records into RPC buffers and takes
time to deliver them.  The consequence the paper cares about is *stray
keys* (§V-D): a record dispatched under partition-table version ``v``
may be delivered after the table has moved to ``v + 1``, in which case
it can land on a rank that no longer owns its key.

:class:`DelayQueue` models this with a configurable delivery delay in
simulation rounds.  Messages carry the table version they were routed
under so receivers (KoiDB) can account for stray arrivals.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.records import RecordBatch


@dataclass(frozen=True)
class ShuffleMessage:
    """A batch of records in flight toward ``dest``."""

    dest: int
    batch: RecordBatch
    table_version: int


class DelayQueue:
    """FIFO fabric with a fixed delivery delay measured in rounds.

    ``delay_rounds == 0`` delivers within the same round's
    :meth:`tick`; larger values hold messages for that many additional
    rounds, widening the window in which a renegotiation can turn them
    into strays.
    """

    def __init__(self, delay_rounds: int = 1) -> None:
        if delay_rounds < 0:
            raise ValueError("delay_rounds must be >= 0")
        self.delay_rounds = delay_rounds
        # slot i (from the front) arrives after i ticks; a normal send
        # lands at index ``delay_rounds``, a fault-delayed one further
        # back (slots extend lazily)
        self._slots: deque[list[ShuffleMessage]] = deque(
            [[] for _ in range(delay_rounds + 1)]
        )
        # fault-dropped messages: withheld from every tick, retransmitted
        # only by the epoch-end drain, so delivery is late but never lost
        self._dropped: list[ShuffleMessage] = []
        self._in_flight_records = 0

    @property
    def in_flight(self) -> int:
        """Number of records currently traversing the fabric."""
        return self._in_flight_records

    def _slot(self, index: int) -> list[ShuffleMessage]:
        while len(self._slots) <= index:
            self._slots.append([])
        return self._slots[index]

    def send(
        self,
        dest: int,
        batch: RecordBatch,
        table_version: int,
        extra_delay: int = 0,
        drop: bool = False,
    ) -> None:
        """Dispatch a batch toward ``dest`` under ``table_version``.

        ``extra_delay`` holds the message that many rounds beyond the
        fabric's base delay; ``drop=True`` withholds it from every tick
        entirely (delivered only by :meth:`drain` — the fault model is
        a lost-then-retransmitted send, never silent data loss).  Both
        are the ``shuffle.send`` fault-site hooks.
        """
        if len(batch) == 0:
            return
        if dest < 0:
            raise ValueError(f"invalid destination {dest}")
        if extra_delay < 0:
            raise ValueError("extra_delay must be >= 0")
        message = ShuffleMessage(dest, batch, table_version)
        if drop:
            self._dropped.append(message)
        else:
            self._slot(self.delay_rounds + extra_delay).append(message)
        self._in_flight_records += len(batch)

    def tick(self) -> list[ShuffleMessage]:
        """Advance one round; return the messages that arrive now."""
        arrived = self._slots.popleft()
        if len(self._slots) <= self.delay_rounds:
            self._slots.append([])
        self._in_flight_records -= sum(len(m.batch) for m in arrived)
        return arrived

    def drain(self) -> list[ShuffleMessage]:
        """Flush the fabric: deliver everything still in flight.

        Used at epoch end, where CARP flushes all data to disk to align
        with the application's checkpoint fault-tolerance semantics
        (paper §V-A).  Dropped messages are retransmitted here, after
        all regular traffic.
        """
        arrived: list[ShuffleMessage] = []
        for slot in self._slots:
            arrived.extend(slot)
            slot.clear()
        arrived.extend(self._dropped)
        self._dropped.clear()
        self._in_flight_records = 0
        return arrived
