"""The DeltaFS 3-hop all-to-all overlay topology.

CARP reuses DeltaFS's scalable shuffle (paper §V-A): instead of every
rank opening a connection to every other rank (O(N^2) flows), ranks are
grouped by node and messages travel at most three hops:

1. *local* hop — sender to the per-node representative of the
   destination's node group,
2. *global* hop — representative to a representative on the
   destination's node,
3. *delivery* hop — local delivery to the destination rank.

This module models the topology itself: hop paths, per-hop message
counts, and connection footprint.  It is used by the network model to
cost shuffle traffic and by tests to verify the O(N * sqrt(N))-ish
connection scaling argument.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Overlay3Hop:
    """A 3-hop overlay over ``nranks`` ranks grouped ``ranks_per_node``
    to a node."""

    nranks: int
    ranks_per_node: int = 16

    def __post_init__(self) -> None:
        if self.nranks < 1:
            raise ValueError("nranks must be >= 1")
        if self.ranks_per_node < 1:
            raise ValueError("ranks_per_node must be >= 1")

    @property
    def nnodes(self) -> int:
        return -(-self.nranks // self.ranks_per_node)

    def node_of(self, rank: int) -> int:
        self._check(rank)
        return rank // self.ranks_per_node

    def local_root(self, node: int, peer_node: int) -> int:
        """The rank on ``node`` responsible for traffic toward
        ``peer_node`` (round-robin over the node's ranks)."""
        first = node * self.ranks_per_node
        last = min(first + self.ranks_per_node, self.nranks) - 1
        width = last - first + 1
        return first + peer_node % width

    def path(self, src: int, dst: int) -> list[int]:
        """The sequence of ranks a message visits from ``src`` to
        ``dst`` (including both endpoints, without consecutive
        duplicates)."""
        self._check(src)
        self._check(dst)
        src_node, dst_node = self.node_of(src), self.node_of(dst)
        hops = [src]
        if src_node == dst_node:
            if src != dst:
                hops.append(dst)
            return hops
        origin_rep = self.local_root(src_node, dst_node)
        remote_rep = self.local_root(dst_node, src_node)
        for nxt in (origin_rep, remote_rep, dst):
            if nxt != hops[-1]:
                hops.append(nxt)
        return hops

    def hop_count(self, src: int, dst: int) -> int:
        """Number of network hops (edges) between ``src`` and ``dst``."""
        return len(self.path(src, dst)) - 1

    def connections_per_rank(self) -> int:
        """Upper bound on flows any one rank must maintain.

        Each rank talks to: all ranks on its own node, plus (if it is a
        representative) one representative per remote node.  This is
        what keeps the overlay scalable versus N-1 flows for direct
        all-to-all.
        """
        local = min(self.ranks_per_node, self.nranks) - 1
        remote = self.nnodes - 1
        return local + remote

    def _check(self, rank: int) -> None:
        if not 0 <= rank < self.nranks:
            raise IndexError(f"rank {rank} out of range (nranks={self.nranks})")
