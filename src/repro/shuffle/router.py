"""Shuffle destination computation.

CARP routes each record to the rank owning its key range; DeltaFS (the
baseline) routes by a hash of the record id.  Both routers are total:
every record either gets a destination in ``[0, nranks)`` or, for the
range router, the sentinel :data:`~repro.core.partition.OOB_DEST` when
its key is outside the current partition table.
"""

from __future__ import annotations

import numpy as np

from repro.core.partition import OOB_DEST, PartitionTable
from repro.core.records import RecordBatch
from repro.kernels import active_kernels


def range_route(batch: RecordBatch, table: PartitionTable) -> np.ndarray:
    """CARP routing: destination = partition owning the key."""
    return table.lookup(batch.keys)


def hash_route(batch: RecordBatch, nranks: int) -> np.ndarray:
    """DeltaFS routing: destination = hash(rid) mod nranks.

    Uses a 64-bit splitmix-style mix so destinations are uniform even
    for sequential rids.
    """
    if nranks < 1:
        raise ValueError("nranks must be >= 1")
    x = batch.rids.astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        x ^= x >> np.uint64(31)
    return (x % np.uint64(nranks)).astype(np.int64)


def split_by_destination(
    batch: RecordBatch, dests: np.ndarray
) -> tuple[dict[int, RecordBatch], RecordBatch]:
    """Partition a batch by destination.

    Returns ``(per_dest, oob)`` where ``per_dest`` maps each in-bounds
    destination to its sub-batch and ``oob`` holds the records whose
    destination was :data:`OOB_DEST`.

    Grouping goes through the active kernel backend; both backends
    emit groups in ascending destination order with original batch
    order inside each group, which fixes the shuffle send order (and
    therefore the on-disk log bytes) independent of ``CARP_KERNELS``.
    """
    dests = np.asarray(dests)
    if len(dests) != len(batch):
        raise ValueError("dests length must match batch length")
    oob = RecordBatch.empty(batch.value_size)
    per_dest: dict[int, RecordBatch] = {}
    for dest, indices in active_kernels().group_runs(dests):
        if dest == OOB_DEST:
            oob = batch.select(indices)
        else:
            per_dest[dest] = batch.select(indices)
    return per_dest, oob
