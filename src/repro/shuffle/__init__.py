"""Shuffle substrate: routing, 3-hop overlay topology, in-flight delay."""

from repro.shuffle.flow import DelayQueue, ShuffleMessage
from repro.shuffle.overlay import Overlay3Hop
from repro.shuffle.router import hash_route, range_route, split_by_destination

__all__ = [
    "DelayQueue", "ShuffleMessage", "Overlay3Hop",
    "hash_route", "range_route", "split_by_destination",
]
