"""Columnar storage interop (paper §VIII, "Storage Formats").

The paper argues CARP-partitioned output "can be directly written to
columnar formats like Parquet", where per-rowgroup min/max statistics
then prune I/O for range queries — and that the pruning is only as
good as the partitioning feeding it.

This module implements a minimal Parquet-like format: files composed of
*rowgroups*, each storing its key and rid columns separately with
min/max statistics in a footer index.  A reader answers range queries
by consulting the statistics and reading only candidate rowgroups.
The accompanying benchmark shows CARP-partitioned rowgroups prune
1-2 orders of magnitude more data than arrival-order rowgroups —
the §VIII claim, made measurable.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.records import KEY_DTYPE, RID_DTYPE, RecordBatch, range_mask

COLUMNAR_MAGIC = b"KCOL"
_FOOTER_TAIL_FMT = "<4sQI"  # magic, footer offset, crc
_FOOTER_TAIL_SIZE = struct.calcsize(_FOOTER_TAIL_FMT)
_RG_ENTRY_FMT = "<QQQdd"  # offset, nbytes, count, kmin, kmax
_RG_ENTRY_SIZE = struct.calcsize(_RG_ENTRY_FMT)


class ColumnarFormatError(Exception):
    """Malformed columnar file."""


@dataclass(frozen=True)
class RowGroupStat:
    """Footer statistics for one rowgroup."""

    offset: int
    nbytes: int
    count: int
    kmin: float
    kmax: float

    def overlaps(self, lo: float, hi: float) -> bool:
        return self.kmin <= hi and self.kmax >= lo


def write_columnar(
    path: Path | str, batches: list[RecordBatch], rowgroup_records: int = 4096
) -> list[RowGroupStat]:
    """Write record batches as a columnar file with rowgroup stats.

    Batches are concatenated and cut into rowgroups of
    ``rowgroup_records`` in the order given — pass CARP-partitioned
    batches to get tight per-rowgroup key ranges, or arrival-order
    batches to see the pruning collapse.
    """
    if rowgroup_records < 1:
        raise ValueError("rowgroup_records must be >= 1")
    data = RecordBatch.concat(batches)
    if len(data) == 0:
        raise ValueError("nothing to write")
    stats: list[RowGroupStat] = []
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "wb") as fh:
        offset = 0
        for start in range(0, len(data), rowgroup_records):
            chunk = data.select(
                np.arange(start, min(start + rowgroup_records, len(data)))
            )
            key_bytes = np.ascontiguousarray(chunk.keys, KEY_DTYPE).tobytes()
            rid_bytes = np.ascontiguousarray(chunk.rids, RID_DTYPE).tobytes()
            blob = key_bytes + rid_bytes
            fh.write(blob)
            stats.append(
                RowGroupStat(
                    offset=offset,
                    nbytes=len(blob),
                    count=len(chunk),
                    kmin=float(chunk.keys.min()),
                    kmax=float(chunk.keys.max()),
                )
            )
            offset += len(blob)
        footer = b"".join(
            struct.pack(_RG_ENTRY_FMT, s.offset, s.nbytes, s.count, s.kmin, s.kmax)
            for s in stats
        )
        footer_offset = offset
        fh.write(footer)
        tail_body = struct.pack("<4sQ", COLUMNAR_MAGIC, footer_offset)
        crc = zlib.crc32(tail_body) & 0xFFFFFFFF
        fh.write(tail_body + crc.to_bytes(4, "little"))
    return stats


class ColumnarReader:
    """Range queries over a columnar file via rowgroup-stat pruning."""

    def __init__(self, path: Path | str) -> None:
        self.path = Path(path)
        self._fh = open(self.path, "rb")
        self._stats = self._load_footer()
        self.bytes_read = 0
        self.rowgroups_read = 0

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "ColumnarReader":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _load_footer(self) -> list[RowGroupStat]:
        self._fh.seek(0, 2)
        size = self._fh.tell()
        if size < _FOOTER_TAIL_SIZE:
            raise ColumnarFormatError("file too small")
        self._fh.seek(size - _FOOTER_TAIL_SIZE)
        tail = self._fh.read(_FOOTER_TAIL_SIZE)
        magic, footer_offset = struct.unpack("<4sQ", tail[:-4])
        if magic != COLUMNAR_MAGIC:
            raise ColumnarFormatError(f"bad magic {magic!r}")
        if (zlib.crc32(tail[:-4]) & 0xFFFFFFFF).to_bytes(4, "little") != tail[-4:]:
            raise ColumnarFormatError("footer CRC mismatch")
        footer_len = size - _FOOTER_TAIL_SIZE - footer_offset
        if footer_len < 0 or footer_len % _RG_ENTRY_SIZE:
            raise ColumnarFormatError("bad footer geometry")
        self._fh.seek(footer_offset)
        raw = self._fh.read(footer_len)
        return [
            RowGroupStat(*struct.unpack(
                _RG_ENTRY_FMT, raw[i : i + _RG_ENTRY_SIZE]
            ))
            for i in range(0, footer_len, _RG_ENTRY_SIZE)
        ]

    @property
    def rowgroups(self) -> list[RowGroupStat]:
        return self._stats

    @property
    def total_bytes(self) -> int:
        return sum(s.nbytes for s in self._stats)

    def query(self, lo: float, hi: float) -> tuple[np.ndarray, np.ndarray]:
        """Return (keys, rids) with keys in ``[lo, hi]``, sorted by key.

        Only rowgroups whose statistics overlap the range are read;
        :attr:`bytes_read` accumulates the pruned I/O volume.
        """
        if hi < lo:
            raise ValueError(f"empty query range [{lo}, {hi}]")
        keys_out: list[np.ndarray] = []
        rids_out: list[np.ndarray] = []
        for s in self._stats:
            if not s.overlaps(lo, hi):
                continue
            self._fh.seek(s.offset)
            blob = self._fh.read(s.nbytes)
            self.bytes_read += s.nbytes
            self.rowgroups_read += 1
            ks = np.frombuffer(blob[: 4 * s.count], dtype=KEY_DTYPE)
            rs = np.frombuffer(blob[4 * s.count :], dtype=RID_DTYPE)
            mask = range_mask(ks, lo, hi)
            keys_out.append(ks[mask])
            rids_out.append(rs[mask])
        if not keys_out:
            return np.empty(0, KEY_DTYPE), np.empty(0, RID_DTYPE)
        keys = np.concatenate(keys_out)
        rids = np.concatenate(rids_out)
        order = np.argsort(keys, kind="stable")
        return keys[order], rids[order]
