"""Multi-attribute queries: auxiliary sorted CARP indexes (paper §VIII).

The paper sketches a two-stage pipeline for indexing additional
attributes beyond the primary (clustered) one:

1. rows are shuffled by the primary attribute as usual; each receiver
   assigns row locations and, for every additional indexed attribute,
   emits ``(key, partition_id, row_id)`` tuples back into the shuffle;
2. receivers of those tuples write them to *separate* storage backend
   instances, where each entry points at the full row in the primary
   partition.

Queries on an auxiliary attribute find matching pointers with sorted-
index efficiency, then pay random reads into the primary partitions to
retrieve full rows — better than bitmap indexes in space and lookup,
worse than the clustered primary in retrieval (exactly the paper's
framing).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.carp import CarpRun, EpochStats
from repro.core.config import CarpOptions
from repro.core.records import RID_DTYPE, RecordBatch
from repro.query.engine import PartitionedStore, QueryResult
from repro.sim.iomodel import IOModel
from repro.storage.log import LogReader, list_logs, log_rank

PRIMARY_SUBDIR = "primary"
AUX_SUBDIR_PREFIX = "aux_"
LOCATOR_SUFFIX = ".rowloc"


class RowLocator:
    """rid -> primary partition mapping for one epoch.

    Stage 1 receivers know where every row landed; persisting that
    mapping is the "(key, partition_id, row_id)" pointer material of
    the paper's design.  Stored as parallel sorted arrays.
    """

    def __init__(self, rids: np.ndarray, partitions: np.ndarray) -> None:
        rids = np.asarray(rids, dtype=RID_DTYPE)
        partitions = np.asarray(partitions, dtype=np.int32)
        if len(rids) != len(partitions):
            raise ValueError("rids/partitions length mismatch")
        order = np.argsort(rids, kind="stable")
        self.rids = rids[order]
        self.partitions = partitions[order]
        if len(self.rids) > 1 and np.any(np.diff(self.rids) == 0):
            raise ValueError("duplicate rids in locator")

    def lookup(self, rids: np.ndarray) -> np.ndarray:
        """Primary partition of each rid; raises on unknown rids."""
        rids = np.asarray(rids, dtype=RID_DTYPE)
        idx = np.searchsorted(self.rids, rids)
        if np.any(idx >= len(self.rids)) or np.any(self.rids[np.minimum(idx, len(self.rids) - 1)] != rids):
            raise KeyError("locator lookup of unknown rid")
        return self.partitions[idx]

    def save(self, path: Path | str) -> None:
        with open(path, "wb") as fh:
            fh.write(np.int64(len(self.rids)).tobytes())
            fh.write(self.rids.tobytes())
            fh.write(self.partitions.tobytes())

    @classmethod
    def load(cls, path: Path | str) -> "RowLocator":
        with open(path, "rb") as fh:
            n = int(np.frombuffer(fh.read(8), dtype=np.int64)[0])
            rids = np.frombuffer(fh.read(8 * n), dtype=RID_DTYPE)
            partitions = np.frombuffer(fh.read(4 * n), dtype=np.int32)
        return cls(rids.copy(), partitions.copy())


@dataclass
class MultiAttributeResult:
    """Per-epoch stats of a multi-attribute ingest."""

    primary: EpochStats
    auxiliary: dict[str, EpochStats]


class MultiAttributeIngest:
    """Two-stage CARP ingest: clustered primary + sorted auxiliary indexes."""

    def __init__(
        self,
        nranks: int,
        out_dir: Path | str,
        aux_attributes: tuple[str, ...],
        options: CarpOptions | None = None,
    ) -> None:
        self.nranks = nranks
        self.out_dir = Path(out_dir)
        self.options = options or CarpOptions()
        self.aux_attributes = aux_attributes
        self._primary = CarpRun(nranks, self.out_dir / PRIMARY_SUBDIR, self.options)
        # auxiliary entries are tiny: a pointer-sized value per tuple
        aux_options = self.options.with_(value_size=8, subpartitions=1)
        self._aux = {
            name: CarpRun(nranks, self.out_dir / f"{AUX_SUBDIR_PREFIX}{name}",
                          aux_options)
            for name in aux_attributes
        }

    def close(self) -> None:
        self._primary.close()
        for run in self._aux.values():
            run.close()

    def __enter__(self) -> "MultiAttributeIngest":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def ingest_epoch(
        self,
        epoch: int,
        primary_streams: list[RecordBatch],
        aux_keys: dict[str, list[np.ndarray]],
    ) -> MultiAttributeResult:
        """Ingest one epoch.

        ``aux_keys[attr][r]`` are rank ``r``'s values for attribute
        ``attr`` — aligned element-for-element with
        ``primary_streams[r]``.
        """
        if set(aux_keys) != set(self.aux_attributes):
            raise ValueError("aux_keys must cover exactly the configured attributes")
        for name, per_rank in aux_keys.items():
            if len(per_rank) != self.nranks:
                raise ValueError(f"attribute {name}: need {self.nranks} streams")
            for r, (keys, stream) in enumerate(zip(per_rank, primary_streams)):
                if len(keys) != len(stream):
                    raise ValueError(
                        f"attribute {name}, rank {r}: length mismatch with primary"
                    )

        # stage 1: shuffle full rows by the primary attribute
        primary_stats = self._primary.ingest_epoch(epoch, primary_streams)
        locator = self._build_locator(epoch)
        locator.save(self.out_dir / f"{epoch}{LOCATOR_SUFFIX}")

        # stage 2: shuffle (aux key, row pointer) tuples per attribute
        aux_stats: dict[str, EpochStats] = {}
        for name in self.aux_attributes:
            tuple_streams = [
                RecordBatch(aux_keys[name][r], primary_streams[r].rids, 8)
                for r in range(self.nranks)
            ]
            aux_stats[name] = self._aux[name].ingest_epoch(epoch, tuple_streams)
        return MultiAttributeResult(primary=primary_stats, auxiliary=aux_stats)

    def _build_locator(self, epoch: int) -> RowLocator:
        """Scan the primary output to map rid -> landing partition."""
        rids: list[np.ndarray] = []
        parts: list[np.ndarray] = []
        for path in list_logs(self.out_dir / PRIMARY_SUBDIR):
            rank = log_rank(path)
            with LogReader(path) as reader:
                for entry in reader.entries_for(epoch=epoch):
                    batch = reader.read_sst(entry)
                    rids.append(batch.rids)
                    parts.append(np.full(len(batch), rank, dtype=np.int32))
        return RowLocator(np.concatenate(rids), np.concatenate(parts))


@dataclass(frozen=True)
class AuxQueryResult:
    """Result of an auxiliary-attribute range query."""

    aux_keys: np.ndarray
    rids: np.ndarray
    primary_keys: np.ndarray
    index_latency: float
    retrieval_latency: float

    @property
    def latency(self) -> float:
        return self.index_latency + self.retrieval_latency

    def __len__(self) -> int:
        return len(self.rids)


class AuxiliaryIndexReader:
    """Query client for a multi-attribute CARP output directory."""

    def __init__(self, out_dir: Path | str, io: IOModel | None = None) -> None:
        self.out_dir = Path(out_dir)
        self.io = io or IOModel()
        self.primary = PartitionedStore(self.out_dir / PRIMARY_SUBDIR, io=self.io)
        self._locators: dict[int, RowLocator] = {}

    def close(self) -> None:
        self.primary.close()

    def __enter__(self) -> "AuxiliaryIndexReader":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _locator(self, epoch: int) -> RowLocator:
        if epoch not in self._locators:
            self._locators[epoch] = RowLocator.load(
                self.out_dir / f"{epoch}{LOCATOR_SUFFIX}"
            )
        return self._locators[epoch]

    def query(self, attr: str, epoch: int, lo: float, hi: float) -> AuxQueryResult:
        """Range query on an auxiliary attribute.

        Sorted-index lookup over the aux partitions, then random-read
        retrieval of the full rows from the primary partitions.
        """
        with PartitionedStore(
            self.out_dir / f"{AUX_SUBDIR_PREFIX}{attr}", io=self.io
        ) as aux_store:
            pointer_result: QueryResult = aux_store.query(epoch, lo, hi)
        rids = pointer_result.rids
        locator = self._locator(epoch)
        partitions = locator.lookup(rids) if len(rids) else np.empty(0, np.int32)
        # retrieve the full rows (verifies pointers against real data)
        primary_keys = self._fetch_primary_keys(epoch, rids, partitions)
        record_size = 4 + 56
        retrieval = self.io.random_read_time(len(rids) * record_size, len(rids))
        return AuxQueryResult(
            aux_keys=pointer_result.keys,
            rids=rids,
            primary_keys=primary_keys,
            index_latency=pointer_result.cost.latency,
            retrieval_latency=retrieval,
        )

    def _fetch_primary_keys(
        self, epoch: int, rids: np.ndarray, partitions: np.ndarray
    ) -> np.ndarray:
        """Fetch the primary keys of the pointed-to rows."""
        if len(rids) == 0:
            return np.empty(0, dtype=np.float32)
        out = np.empty(len(rids), dtype=np.float32)
        wanted_order = np.argsort(rids, kind="stable")
        want = rids[wanted_order]
        found = np.zeros(len(rids), dtype=bool)
        for part in np.unique(partitions):
            path = self.out_dir / PRIMARY_SUBDIR
            for log_path in list_logs(path):
                if log_rank(log_path) != part:
                    continue
                with LogReader(log_path) as reader:
                    for entry in reader.entries_for(epoch=epoch):
                        batch = reader.read_sst(entry)
                        idx = np.searchsorted(want, batch.rids)
                        idx = np.clip(idx, 0, len(want) - 1)
                        hit = want[idx] == batch.rids
                        out[wanted_order[idx[hit]]] = batch.keys[hit]
                        found[wanted_order[idx[hit]]] = True
        if not found.all():
            raise KeyError("auxiliary pointer referenced a missing primary row")
        return out
