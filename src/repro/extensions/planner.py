"""Cost-based query planning over heterogeneous indexes (paper §VIII).

The paper's discussion closes with: "To leverage the full potential of
different indexing techniques, it is necessary to develop end-to-end
analysis engines that can ... generate an appropriate combination of
in-situ embedded, in-situ auxiliary, and (if necessary) post-processing
transformations".  This module is a small such engine: given whatever
indexes exist for a dataset —

* the clustered CARP primary (cheap sequential reads, one attribute),
* sorted auxiliary CARP indexes (pointer lookup + random-read fetch),
* bitmap indexes (index scan + random-read fetch),
* and always the full scan —

it *estimates* each plan's latency from metadata alone (manifest byte
counts, bin statistics — no data reads) and executes the cheapest one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.fastquery import BitmapIndex
from repro.extensions.multi_attribute import AuxiliaryIndexReader
from repro.query.engine import PartitionedStore
from repro.sim.iomodel import IOModel


@dataclass(frozen=True)
class PlanChoice:
    """One candidate execution plan with its estimated cost."""

    plan: str  # "clustered" | "aux" | "bitmap" | "scan"
    attribute: str
    estimated_latency: float


@dataclass(frozen=True)
class PlannedResult:
    """Outcome of a planned query execution."""

    choice: PlanChoice
    alternatives: tuple[PlanChoice, ...]
    rids: np.ndarray
    actual_latency: float

    def __len__(self) -> int:
        return len(self.rids)


class QueryPlanner:
    """Plan and execute range queries across available indexes."""

    def __init__(
        self,
        primary_store: PartitionedStore,
        primary_attribute: str,
        aux_reader: AuxiliaryIndexReader | None = None,
        aux_attributes: tuple[str, ...] = (),
        bitmap_indexes: dict[str, BitmapIndex] | None = None,
        io: IOModel | None = None,
        record_size: int = 60,
    ) -> None:
        self.primary = primary_store
        self.primary_attribute = primary_attribute
        self.aux_reader = aux_reader
        self.aux_attributes = tuple(aux_attributes)
        if aux_attributes and aux_reader is None:
            raise ValueError("aux_attributes given without an aux_reader")
        self.bitmaps = bitmap_indexes or {}
        self.io = io or IOModel()
        self.record_size = record_size

    # ----------------------------------------------------------- estimates

    def _estimate_clustered(self, epoch: int, lo: float, hi: float) -> float:
        ents = self.primary.overlapping_entries(epoch, lo, hi)
        nbytes = sum(e.length for _, e in ents)
        return (
            self.io.read_time(nbytes, len(ents))
            + self.io.merge_time(nbytes)
            + self.io.scan_time(nbytes)
        )

    def _estimate_aux(self, attr: str, epoch: int, lo: float, hi: float) -> float:
        assert self.aux_reader is not None
        from repro.extensions.multi_attribute import AUX_SUBDIR_PREFIX

        with PartitionedStore(
            self.aux_reader.out_dir / f"{AUX_SUBDIR_PREFIX}{attr}", io=self.io
        ) as aux_store:
            ents = aux_store.overlapping_entries(epoch, lo, hi)
            index_bytes = sum(e.length for _, e in ents)
            # upper-bound match estimate: every record of an overlapping
            # pointer SST could match
            est_rows = sum(e.count for _, e in ents)
        return (
            self.io.read_time(index_bytes, max(len(ents), 1))
            + self.io.random_read_time(est_rows * self.record_size, est_rows)
        )

    def _estimate_bitmap(self, attr: str, lo: float, hi: float) -> float:
        idx = self.bitmaps[attr]
        first = max(int(np.searchsorted(idx.edges, lo, side="right")) - 1, 0)
        last = min(int(np.searchsorted(idx.edges, hi, side="left")) - 1,
                   idx.nbins - 1)
        index_bytes = 8 * len(idx.edges)
        est_rows = 0
        if last >= first:
            for b in range(first, last + 1):
                bm = idx.bitmaps.get(b)
                if bm is not None:
                    index_bytes += bm.nbytes
                    est_rows += bm.count
        return (
            self.io.read_time(index_bytes, max(last - first + 1, 1))
            + self.io.random_read_time(est_rows * self.record_size, est_rows)
        )

    def _estimate_scan(self, epoch: int) -> float:
        nbytes = self.primary.total_bytes(epoch)
        nssts = len(self.primary.entries(epoch))
        return self.io.read_time(nbytes, nssts) + self.io.scan_time(nbytes)

    # ---------------------------------------------------------------- plan

    def candidates(self, attr: str, epoch: int, lo: float, hi: float
                   ) -> list[PlanChoice]:
        """All executable plans for a predicate, with estimated costs."""
        out: list[PlanChoice] = []
        if attr == self.primary_attribute:
            out.append(PlanChoice("clustered", attr,
                                  self._estimate_clustered(epoch, lo, hi)))
        if attr in self.aux_attributes:
            out.append(PlanChoice("aux", attr,
                                  self._estimate_aux(attr, epoch, lo, hi)))
        if attr in self.bitmaps:
            out.append(PlanChoice("bitmap", attr,
                                  self._estimate_bitmap(attr, lo, hi)))
        # a scan works only when the primary layout carries the
        # attribute being filtered (it stores the primary key)
        if attr == self.primary_attribute:
            out.append(PlanChoice("scan", attr, self._estimate_scan(epoch)))
        if not out:
            raise ValueError(f"no index can answer attribute {attr!r}")
        return sorted(out, key=lambda c: c.estimated_latency)

    def plan(self, attr: str, epoch: int, lo: float, hi: float) -> PlanChoice:
        """The cheapest executable plan for a predicate."""
        return self.candidates(attr, epoch, lo, hi)[0]

    # ------------------------------------------------------------- execute

    def execute(self, attr: str, epoch: int, lo: float, hi: float
                ) -> PlannedResult:
        """Plan, then run the chosen plan; returns matching rids."""
        cands = self.candidates(attr, epoch, lo, hi)
        choice = cands[0]
        if choice.plan in ("clustered", "scan"):
            res = (self.primary.query(epoch, lo, hi)
                   if choice.plan == "clustered"
                   else self.primary.scan(epoch))
            rids = res.rids
            if choice.plan == "scan":
                from repro.core.records import range_mask

                mask = range_mask(res.keys, lo, hi)
                rids = res.rids[mask]
            latency = res.cost.latency
        elif choice.plan == "aux":
            assert self.aux_reader is not None
            aux = self.aux_reader.query(attr, epoch, lo, hi)
            rids, latency = aux.rids, aux.latency
        else:  # bitmap
            _, rids, cost = self.bitmaps[attr].query(lo, hi, io=self.io)
            latency = cost.latency
        return PlannedResult(
            choice=choice, alternatives=tuple(cands[1:]),
            rids=rids, actual_latency=latency,
        )
