"""Query-path incremental sorting (paper §VIII, "Indexing Techniques").

The paper suggests that CARP's approximately sorted output "can be
incrementally converted into a fully sorted layout on the query path by
writing back the merged SSTs that are computed for user queries".

:class:`IncrementalSorter` implements that: each range query's merged,
sorted result is written back into a side log as key-disjoint sorted
SSTs, and the covered key interval is remembered.  Subsequent queries
that fall inside an already-merged interval are served from the side
log alone — no overlapping runs, hence no merge cost — so the layout
converges toward fully sorted as the query workload explores the
keyspace.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.records import RecordBatch, range_mask
from repro.query.engine import PartitionedStore, QueryResult
from repro.sim.iomodel import IOModel
from repro.storage.log import LogWriter, log_name


@dataclass
class Interval:
    """A closed key interval already materialized as sorted SSTs."""

    lo: float
    hi: float

    def covers(self, lo: float, hi: float) -> bool:
        return self.lo <= lo and hi <= self.hi

    def overlaps(self, lo: float, hi: float) -> bool:
        return self.lo <= hi and lo <= self.hi


class IntervalSet:
    """A set of merged key intervals, coalesced on insert."""

    def __init__(self) -> None:
        self._intervals: list[Interval] = []

    def __len__(self) -> int:
        return len(self._intervals)

    def covering(self, lo: float, hi: float) -> Interval | None:
        for iv in self._intervals:
            if iv.covers(lo, hi):
                return iv
        return None

    def add(self, lo: float, hi: float) -> None:
        keep = []
        for iv in self._intervals:
            if iv.overlaps(lo, hi):
                lo = min(lo, iv.lo)
                hi = max(hi, iv.hi)
            else:
                keep.append(iv)
        keep.append(Interval(lo, hi))
        keep.sort(key=lambda iv: iv.lo)
        self._intervals = keep

    def coverage_fraction(self, lo: float, hi: float) -> float:
        """Fraction of ``[lo, hi]`` covered by merged intervals."""
        if hi <= lo:
            return 1.0
        covered = 0.0
        for iv in self._intervals:
            covered += max(0.0, min(hi, iv.hi) - max(lo, iv.lo))
        return covered / (hi - lo)


class IncrementalSorter:
    """A query client that converges CARP output to a sorted layout."""

    def __init__(
        self,
        base_dir: Path | str,
        side_dir: Path | str,
        io: IOModel | None = None,
        sst_records: int = 4096,
    ) -> None:
        self.base = PartitionedStore(base_dir, io=io)
        self.side_dir = Path(side_dir)
        self.side_dir.mkdir(parents=True, exist_ok=True)
        self.io = io or IOModel()
        self.sst_records = sst_records
        self._merged: dict[int, IntervalSet] = {}
        self._writers: dict[int, LogWriter] = {}
        self._side_store: PartitionedStore | None = None
        self.writeback_bytes = 0
        self.served_from_side = 0
        self.served_from_base = 0

    def close(self) -> None:
        self.base.close()
        if self._side_store is not None:
            self._side_store.close()
        for w in self._writers.values():
            w.close()

    def __enter__(self) -> "IncrementalSorter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _intervals(self, epoch: int) -> IntervalSet:
        return self._merged.setdefault(epoch, IntervalSet())

    def query(self, epoch: int, lo: float, hi: float) -> QueryResult:
        """Serve a range query, writing merged results back.

        Queries inside an already-merged interval hit the sorted side
        log; everything else is answered by the base CARP store and its
        merged result materialized for the future.
        """
        intervals = self._intervals(epoch)
        if intervals.covering(lo, hi) is not None and self._side_store is not None:
            self.served_from_side += 1
            return self._side_store.query(epoch, lo, hi)

        self.served_from_base += 1
        result = self.base.query(epoch, lo, hi)
        if len(result):
            # write back only keys not already materialized, so coalesced
            # intervals never hold duplicate records
            fresh = np.ones(len(result.keys), dtype=bool)
            for iv in intervals._intervals:
                fresh &= ~range_mask(result.keys, iv.lo, iv.hi)
            self._write_back(epoch, result.keys[fresh], result.rids[fresh])
            intervals.add(lo, hi)
        return result

    def _write_back(self, epoch: int, keys: np.ndarray, rids: np.ndarray) -> None:
        """Append the merged (sorted) result to the side log."""
        if len(keys) == 0:
            return
        writer = self._writers.get(epoch)
        if writer is None:
            writer = LogWriter(self.side_dir / log_name(epoch))
            self._writers[epoch] = writer
        batch = RecordBatch(keys, rids, value_size=8)
        n = len(batch)
        for start in range(0, n, self.sst_records):
            chunk = batch.select(np.arange(start, min(start + self.sst_records, n)))
            entry = writer.append_batch(chunk, epoch, sort=True)
            self.writeback_bytes += entry.length
        writer.flush_epoch(epoch)
        # reopen the side store so new SSTs become visible
        if self._side_store is not None:
            self._side_store.close()
        self._side_store = PartitionedStore(self.side_dir, io=self.io)

    def merge_cost_saved(self, epoch: int, lo: float, hi: float) -> bool:
        """Whether a query on ``[lo, hi]`` would skip merging entirely."""
        return self._intervals(epoch).covering(lo, hi) is not None
