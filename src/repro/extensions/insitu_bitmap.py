"""In-situ bitmap indexing on auxiliary nodes (paper §VIII/§IX).

ADIOS builds FastBit range indices in-situ on *auxiliary nodes*: the
application streams data past dedicated indexing resources, avoiding a
post-processing pass at the cost of provisioned nodes, and keeping the
space/query limitations of bitmap indices (paper §IX).  The paper also
notes CARP "can co-exist with other in-situ approaches running on the
same system" and be "composed together for richer partitioning
capabilities".

:class:`InSituBitmapBuilder` implements the auxiliary-node side:

* bins are calibrated from the first sampled records (streaming
  systems cannot see the full distribution up front — calibration
  quality is therefore measurable, unlike post-hoc FastQuery binning),
* subsequent batches update per-bin row-id sets incrementally,
* ``finish_epoch`` freezes the epoch's index into the same query
  structure the FastQuery baseline uses.

Composing it with CARP is zero-effort: feed the same per-rank streams
to both (the auxiliary nodes observe a copy of the data in flight).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.fastquery import FastQueryCost, RunLengthBitmap
from repro.core.records import RecordBatch, range_mask
from repro.sim.iomodel import IOModel


@dataclass
class InSituBitmapStats:
    """Resource accounting for the auxiliary indexing nodes."""

    records_indexed: int = 0
    calibration_records: int = 0
    index_bytes: int = 0

    def space_overhead(self, record_size: int) -> float:
        if self.records_indexed == 0:
            return 0.0
        return self.index_bytes / (self.records_indexed * record_size)


class InSituBitmapBuilder:
    """Streaming bitmap-index construction for one epoch."""

    def __init__(
        self,
        nbins: int = 256,
        calibration_records: int = 4096,
        record_size: int = 60,
    ) -> None:
        if nbins < 2:
            raise ValueError("nbins must be >= 2")
        if calibration_records < nbins:
            raise ValueError("need at least nbins calibration records")
        self.nbins = nbins
        self.calibration_records = calibration_records
        self.record_size = record_size
        self._calibration: list[RecordBatch] = []
        self._calibrated = 0
        self.edges: np.ndarray | None = None
        self._positions: dict[int, list[np.ndarray]] = {}
        self._keys: list[np.ndarray] = []
        self._rids: list[np.ndarray] = []
        self._row = 0
        self.stats = InSituBitmapStats()
        self._frozen = False

    # ------------------------------------------------------------- ingest

    def observe(self, batch: RecordBatch) -> None:
        """Index a batch streaming past the auxiliary node."""
        if self._frozen:
            raise RuntimeError("epoch already finished")
        if len(batch) == 0:
            return
        if self.edges is None:
            self._calibration.append(batch)
            self._calibrated += len(batch)
            if self._calibrated >= self.calibration_records:
                self._calibrate()
            return
        self._index(batch)

    def _calibrate(self) -> None:
        """Fix quantile bin edges from the calibration sample, then
        index the buffered records."""
        sample = RecordBatch.concat(self._calibration)
        qs = np.linspace(0.0, 1.0, self.nbins + 1)
        edges = np.unique(np.quantile(sample.keys.astype(np.float64), qs))
        if len(edges) < 2:
            edges = np.array([edges[0], np.nextafter(edges[0], np.inf)])
        self.edges = edges
        self.stats.calibration_records = len(sample)
        self._calibration = []
        self._index(sample)

    def _index(self, batch: RecordBatch) -> None:
        assert self.edges is not None
        bin_ids = np.clip(
            np.searchsorted(self.edges, batch.keys.astype(np.float64),
                            side="right") - 1,
            0, len(self.edges) - 2,
        )
        rows = np.arange(self._row, self._row + len(batch))
        for b in np.unique(bin_ids):
            self._positions.setdefault(int(b), []).append(rows[bin_ids == b])
        self._keys.append(batch.keys)
        self._rids.append(batch.rids)
        self._row += len(batch)
        self.stats.records_indexed += len(batch)

    # ------------------------------------------------------------- finish

    def finish_epoch(self) -> "InSituBitmapIndex":
        """Freeze the epoch's index (flushing any calibration residue)."""
        if self.edges is None:
            if not self._calibration:
                raise ValueError("no records observed")
            self._calibrate()
        self._frozen = True
        bitmaps = {
            b: RunLengthBitmap.from_positions(np.concatenate(chunks))
            for b, chunks in self._positions.items()
        }
        assert self.edges is not None
        self.stats.index_bytes = (
            sum(bm.nbytes for bm in bitmaps.values()) + 8 * len(self.edges)
        )
        return InSituBitmapIndex(
            edges=self.edges,
            bitmaps=bitmaps,
            keys=np.concatenate(self._keys),
            rids=np.concatenate(self._rids),
            record_size=self.record_size,
            stats=self.stats,
        )


@dataclass
class InSituBitmapIndex:
    """A frozen epoch index, query-compatible with the FastQuery model."""

    edges: np.ndarray
    bitmaps: dict[int, RunLengthBitmap]
    keys: np.ndarray
    rids: np.ndarray
    record_size: int
    stats: InSituBitmapStats

    @property
    def nbins(self) -> int:
        return len(self.edges) - 1

    def query(
        self, lo: float, hi: float, io: IOModel | None = None
    ) -> tuple[np.ndarray, np.ndarray, FastQueryCost]:
        """Range query: (keys, rids) sorted by key, plus modeled cost."""
        if hi < lo:
            raise ValueError(f"empty query range [{lo}, {hi}]")
        io = io or IOModel()
        first = max(int(np.searchsorted(self.edges, lo, side="right")) - 1, 0)
        last = min(int(np.searchsorted(self.edges, hi, side="left")) - 1,
                   self.nbins - 1)
        rows: list[np.ndarray] = []
        index_bytes = 8 * len(self.edges)
        candidate_checks = 0
        if last >= first:
            for b in range(first, last + 1):
                bm = self.bitmaps.get(b)
                if bm is None:
                    continue
                index_bytes += bm.nbytes
                pos = bm.positions()
                fully = self.edges[b] >= lo and self.edges[b + 1] <= hi
                if fully:
                    rows.append(pos)
                else:
                    candidate_checks += len(pos)
                    k = self.keys[pos]
                    rows.append(pos[range_mask(k, lo, hi)])
        matched = np.concatenate(rows) if rows else np.empty(0, np.int64)
        keys = self.keys[matched]
        rids = self.rids[matched]
        order = np.argsort(keys, kind="stable")
        retrieval_bytes = len(matched) * self.record_size
        latency = (
            io.read_time(index_bytes,
                         max(1, (last - first + 1) if last >= first else 1))
            + io.random_read_time(candidate_checks * 4, candidate_checks)
            + io.random_read_time(retrieval_bytes, len(matched))
        )
        cost = FastQueryCost(
            index_bytes_loaded=index_bytes,
            candidate_checks=candidate_checks,
            rows_retrieved=len(matched),
            retrieval_bytes=retrieval_bytes,
            latency=latency,
        )
        return keys[order], rids[order], cost

    def bin_balance(self) -> float:
        """Normalized std-dev of bin populations.

        Streaming calibration from an early sample drifts out of date
        exactly like static partitioning does (paper Fig. 9) — this
        quantifies it, versus ~0 for post-hoc quantile binning.
        """
        counts = np.zeros(self.nbins)
        for b, bm in self.bitmaps.items():
            counts[b] = bm.count
        mean = counts.mean()
        return float(counts.std() / mean) if mean else 0.0
