"""Paper §VIII extensions: multi-attribute indexes, incremental sorting,
columnar interop."""

from repro.extensions.columnar import ColumnarReader, write_columnar
from repro.extensions.incremental_sort import IncrementalSorter, IntervalSet
from repro.extensions.multi_attribute import (
    AuxiliaryIndexReader,
    MultiAttributeIngest,
    RowLocator,
)
from repro.extensions.insitu_bitmap import InSituBitmapBuilder, InSituBitmapIndex
from repro.extensions.planner import PlanChoice, PlannedResult, QueryPlanner

__all__ = [
    "ColumnarReader", "write_columnar", "IncrementalSorter", "IntervalSet",
    "AuxiliaryIndexReader", "MultiAttributeIngest", "RowLocator",
    "PlanChoice", "PlannedResult", "QueryPlanner",
    "InSituBitmapBuilder", "InSituBitmapIndex",
]
