"""Virtual-time clocks for the observability layer.

Every timestamp the instrumentation records comes from a
:class:`Clock`, never from the host's wall clock — the deterministic
core (``repro.core``/``shuffle``/``storage``/``sim``) stays
bit-reproducible and carp-lint's D1xx/O5xx rules keep it that way.
The clock's unit is *logical ticks*: the run driver advances it by one
tick per ingestion round and by small per-record/per-message increments
inside instrumented operations, so span durations are proportional to
the amount of pipeline work they cover and identical across runs with
the same seed.

:class:`NullClock` is the zero-overhead stand-in used when
observability is disabled.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """What instrumented code may ask about time: read it, advance it."""

    def now(self) -> float:
        """Current virtual time, in logical ticks."""
        ...

    def advance(self, dt: float) -> float:
        """Move virtual time forward by ``dt`` ticks; returns the new time."""
        ...


class VirtualClock:
    """A monotonic, manually advanced logical clock."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError("start time must be non-negative")
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        if dt < 0:
            raise ValueError(f"clock cannot run backwards (dt={dt})")
        self._now += dt
        return self._now


class NullClock:
    """Frozen clock for disabled observability: time never moves."""

    __slots__ = ()

    def now(self) -> float:
        return 0.0

    def advance(self, dt: float) -> float:
        return 0.0
