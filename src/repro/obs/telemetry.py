"""Streaming metrics export: the live telemetry plane.

A :class:`TelemetryStream` turns the end-of-run
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` into a *time
series*: samples are appended to an injected sink as JSON lines
(``telemetry.jsonl``) while the run is still in flight, on two
cadences —

* **virtual-time ticks** (:meth:`TelemetryStream.tick`), emitted from
  the ``CarpRun`` round loop whenever the driver clock crosses the
  sampling interval.  Tick samples are restricted to *driver-owned*
  metric prefixes (:data:`DRIVER_SCOPE_PREFIXES`): mid-epoch, worker
  counters live in rank-local registries that only merge into the
  driver at barriers, so a full-registry sample here would differ
  between serial (shared registry, live updates) and parallel (deltas
  at barriers) backends.  The scoped subset is updated synchronously
  by driver code on every backend, keeping the stream bit-identical.
* **barrier-aligned full samples** (:meth:`TelemetryStream.sample`),
  emitted at epoch end, after each query, and at session close — the
  points where worker deltas have merged and the whole registry is
  deterministic.  Full samples carry cumulative counters, counter
  *deltas* since the previous full sample (per-request attribution
  when the sample is tagged with a request id), gauges, histogram
  state including bucket ``bounds``/``counts`` and the
  p50/p95/p99 bucket-upper-bound quantiles, and derived SLO gauges
  (read amplification, retries, fault totals).

Everything is injected — the metrics registry, the clock, and the
output sink — never acquired here (no ``open()`` or wall clock at
module or constructor scope; carp-lint rule O504 enforces this), so
the stream is as deterministic and testable as the rest of the stack.
:data:`NULL_TELEMETRY` is the shared zero-overhead null path: hot-path
hooks are no-ops and nothing is ever written.

:func:`render_openmetrics` renders a snapshot in the OpenMetrics-style
text exposition format, for scrape-compatible dashboards.
"""

from __future__ import annotations

import json
from typing import Mapping, Protocol

from repro.obs.clock import Clock, NullClock
from repro.obs.metrics import MetricsRegistry, NullMetricsRegistry

#: Counter/gauge name prefixes owned by the driver: updated
#: synchronously by driver code on every executor backend, hence safe
#: to sample mid-epoch.  Worker-owned prefixes (``koidb.``,
#: ``faults.`` storage sites) merge only at barriers and appear in
#: full samples.
DRIVER_SCOPE_PREFIXES = ("carp.", "reneg.", "net.", "shuffle.")

#: Default virtual-time sampling interval, in driver-clock ticks
#: (one ingestion round advances the clock by ``ROUND_TICK`` = 1.0).
DEFAULT_INTERVAL = 10.0


class TextSink(Protocol):
    """Anything line-oriented text can be appended to (injected)."""

    def write(self, text: str) -> object: ...


class _NullSink:
    """Shared sink that drops every write (the null telemetry path)."""

    __slots__ = ()

    def write(self, text: str) -> object:
        return None


class TelemetryStream:
    """Appends metric samples to a sink on epoch/virtual-time cadence."""

    __slots__ = ("_metrics", "_clock", "_sink", "_interval", "_next_due",
                 "_record_bytes", "_seq", "_prev_counters", "enabled",
                 "lines_written")

    def __init__(
        self,
        metrics: MetricsRegistry,
        clock: Clock,
        sink: TextSink,
        interval: float = DEFAULT_INTERVAL,
        record_bytes: int | None = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"telemetry interval must be > 0, got {interval}")
        self._metrics = metrics
        self._clock = clock
        self._sink = sink
        self._interval = float(interval)
        # first tick fires once the clock crosses one whole interval
        self._next_due = clock.now() + self._interval
        #: bytes per stored record (key + value), for the derived
        #: read-amplification gauge; ``None`` skips the derivation
        self._record_bytes = record_bytes
        self._seq = 0
        self._prev_counters: dict[str, float] = {}
        self.enabled = True
        #: lines appended so far (ticks + samples); the zero-cost
        #: invariant of the null path is ``lines_written == 0``
        self.lines_written = 0

    # ------------------------------------------------------------ emission

    def _emit(self, doc: dict[str, object]) -> None:
        self._sink.write(json.dumps(doc, sort_keys=True) + "\n")
        self.lines_written += 1

    def _counters(self) -> dict[str, float]:
        snap = self._metrics.snapshot()
        counters = snap.get("counters")
        assert isinstance(counters, dict)
        return {str(n): float(v) for n, v in counters.items()}

    def tick(self) -> bool:
        """Emit an interval sample if the clock crossed the cadence.

        Restricted to :data:`DRIVER_SCOPE_PREFIXES` (see module
        docstring); returns whether a sample was written.  Called from
        the ``CarpRun`` round loop behind the ``obs.enabled`` guard, so
        the disabled path never reaches here.
        """
        now = self._clock.now()
        if now < self._next_due:
            return False
        self._next_due = now + self._interval
        snap = self._metrics.snapshot()
        counters = snap.get("counters")
        gauges = snap.get("gauges")
        assert isinstance(counters, dict) and isinstance(gauges, dict)
        doc: dict[str, object] = {
            "kind": "tick",
            "seq": self._seq,
            "ts": now,
            "counters": {
                n: v for n, v in counters.items()
                if str(n).startswith(DRIVER_SCOPE_PREFIXES)
            },
            "gauges": {
                n: v for n, v in gauges.items()
                if str(n).startswith(DRIVER_SCOPE_PREFIXES)
            },
        }
        self._seq += 1
        self._emit(doc)
        return True

    def sample(
        self,
        kind: str,
        epoch: int | None = None,
        request: str | None = None,
        derived: Mapping[str, float] | None = None,
    ) -> dict[str, object]:
        """Emit a full-registry sample (barrier-aligned points only).

        ``kind`` labels the cadence point (``epoch`` | ``query`` |
        ``final``); ``request`` attributes the sample — and therefore
        its counter ``deltas`` since the previous full sample — to the
        originating request.  ``derived`` entries are merged into the
        computed SLO gauges.  Returns the emitted document.
        """
        snap = self._metrics.snapshot()
        counters = snap.get("counters")
        assert isinstance(counters, dict)
        cur = {str(n): float(v) for n, v in counters.items()}
        deltas = {
            name: value - self._prev_counters.get(name, 0.0)
            for name, value in cur.items()
        }
        self._prev_counters = cur
        doc: dict[str, object] = {
            "kind": kind,
            "seq": self._seq,
            "ts": self._clock.now(),
            "counters": snap.get("counters"),
            "deltas": deltas,
            "gauges": snap.get("gauges"),
            "histograms": snap.get("histograms"),
            "derived": self._derived(cur, derived),
        }
        if epoch is not None:
            doc["epoch"] = epoch
        if request is not None:
            doc["request"] = request
        self._seq += 1
        self._emit(doc)
        return doc

    def _derived(
        self, counters: Mapping[str, float],
        extra: Mapping[str, float] | None,
    ) -> dict[str, float]:
        out: dict[str, float] = {
            "faults_total": sum(
                v for n, v in counters.items() if n.startswith("faults.")
            ),
        }
        if self._record_bytes:
            matched = counters.get("query.records_matched", 0.0)
            probed = counters.get("query.probe_bytes", 0.0)
            # bytes fetched per byte the query actually needed — the
            # paper's read-amplification factor, as a running SLO gauge
            out["read_amp"] = (
                probed / (matched * self._record_bytes) if matched else 0.0
            )
        if extra is not None:
            out.update({str(k): float(v) for k, v in extra.items()})
        return out

    # ------------------------------------------------------- exposition

    def exposition(self) -> str:
        """Current registry state in OpenMetrics-style text format."""
        return render_openmetrics(self._metrics.snapshot())


class NullTelemetryStream(TelemetryStream):
    """Shared no-op stream: the telemetry half of ``NULL_OBS``."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(NullMetricsRegistry(), NullClock(), _NullSink())
        self.enabled = False

    def tick(self) -> bool:
        return False

    def sample(
        self,
        kind: str,
        epoch: int | None = None,
        request: str | None = None,
        derived: Mapping[str, float] | None = None,
    ) -> dict[str, object]:
        return {}


#: The do-nothing stream hot paths see when telemetry is not attached.
NULL_TELEMETRY = NullTelemetryStream()


# ---------------------------------------------------------- OpenMetrics


def _metric_name(name: str) -> str:
    """Sanitize a dotted metric name into an OpenMetrics identifier."""
    out = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    if out and out[0].isdigit():
        out = "_" + out
    return out


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_openmetrics(snapshot: Mapping[str, object]) -> str:
    """Render a registry snapshot as OpenMetrics-style text exposition.

    Counters become ``<name>_total``, gauges plain samples, histograms
    cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count`` —
    the subset of the format scrape-side tooling needs.  A pure
    function over plain snapshot data: rendering archived
    ``metrics.json`` files works identically to live registries.
    """
    lines: list[str] = []
    counters = snapshot.get("counters")
    if isinstance(counters, Mapping):
        for name in sorted(counters):
            value = counters[name]
            if not isinstance(value, (int, float)):
                continue
            metric = _metric_name(str(name))
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric}_total {_fmt(float(value))}")
    gauges = snapshot.get("gauges")
    if isinstance(gauges, Mapping):
        for name in sorted(gauges):
            value = gauges[name]
            if not isinstance(value, (int, float)):
                continue
            metric = _metric_name(str(name))
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_fmt(float(value))}")
    histograms = snapshot.get("histograms")
    if isinstance(histograms, Mapping):
        for name in sorted(histograms):
            data = histograms[name]
            if not isinstance(data, Mapping):
                continue
            metric = _metric_name(str(name))
            lines.append(f"# TYPE {metric} histogram")
            bounds = data.get("bounds")
            counts = data.get("counts")
            if isinstance(bounds, list) and isinstance(counts, list):
                cumulative = 0.0
                for bound, count in zip(bounds, counts):
                    if not isinstance(count, (int, float)):
                        continue
                    cumulative += float(count)
                    lines.append(
                        f'{metric}_bucket{{le="{_fmt(float(bound))}"}} '
                        f"{_fmt(cumulative)}"
                    )
                if len(counts) == len(bounds) + 1:
                    overflow = counts[-1]
                    if isinstance(overflow, (int, float)):
                        cumulative += float(overflow)
                lines.append(f'{metric}_bucket{{le="+Inf"}} {_fmt(cumulative)}')
            total = data.get("sum")
            count = data.get("count")
            if isinstance(total, (int, float)):
                lines.append(f"{metric}_sum {_fmt(float(total))}")
            if isinstance(count, (int, float)):
                lines.append(f"{metric}_count {_fmt(float(count))}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"
