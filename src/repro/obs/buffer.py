"""A tracer that buffers span records as plain data for later merging.

:class:`BufferingTracer` is the worker-side (and rank-local) recording
tracer: instead of assigning Chrome pid/tid pairs, it remembers each
track's *names* and buffers every event as a picklable
:data:`~repro.obs.tracer.SpanRecord`.  The driver periodically calls
:meth:`BufferingTracer.drain` (directly for serial rank-local domains,
or via the executor result payload for worker tasks) and replays the
records in rank order through
:meth:`~repro.obs.tracer.Tracer.merge_events` on its own
:class:`~repro.obs.tracer.ChromeTracer` — so one trace document covers
the whole run regardless of execution backend.

Timestamps remain *virtual*: the owning :class:`~repro.obs.Obs` stack
pairs this tracer with a rank-local
:class:`~repro.obs.clock.VirtualClock` starting at zero, which is what
makes the buffered timeline reproducible across Serial/Thread/Process
executors (the per-rank command stream, and hence the per-rank span
sequence, is identical on every backend).
"""

from __future__ import annotations

from repro.obs.tracer import SpanRecord, Tracer, Track


class BufferingTracer(Tracer):
    """Recording tracer that keeps events as portable plain data."""

    __slots__ = ("_records", "_tracks", "_open", "unmatched_ends")

    def __init__(self) -> None:
        #: Buffered records since the last :meth:`drain`.
        self._records: list[SpanRecord] = []
        #: Track handle -> (process, thread) names, in creation order.
        self._tracks: list[tuple[str, str]] = []
        #: Open-span name stacks per track, so ``E`` records carry the
        #: span name (the merging tracer re-derives its own stacks, but
        #: named records survive a drain boundary mid-span).
        self._open: dict[Track, list[str]] = {}
        #: ``end()`` calls with no open span (instrumentation bugs).
        self.unmatched_ends = 0

    # ------------------------------------------------------------ tracks

    def track(self, process: str, thread: str = "main") -> Track:
        names = (process, thread)
        try:
            return (self._tracks.index(names), 0)
        except ValueError:
            self._tracks.append(names)
            return (len(self._tracks) - 1, 0)

    def _names(self, track: Track) -> tuple[str, str]:
        return self._tracks[track[0]]

    def _record(self, ph: str, track: Track, name: str, ts: float,
                args: dict[str, object] | None) -> SpanRecord:
        process, thread = self._names(track)
        rec: SpanRecord = {
            "ph": ph, "process": process, "thread": thread,
            "name": name, "ts": float(ts),
        }
        if args:
            rec["args"] = dict(args)
        return rec

    # ------------------------------------------------------------ events

    def begin(self, track: Track, name: str, ts: float,
              args: dict[str, object] | None = None) -> None:
        self._open.setdefault(track, []).append(name)
        self._records.append(self._record("B", track, name, ts, args))

    def end(self, track: Track, ts: float,
            args: dict[str, object] | None = None) -> None:
        stack = self._open.get(track)
        if not stack:
            self.unmatched_ends += 1
            return
        name = stack.pop()
        self._records.append(self._record("E", track, name, ts, args))

    def complete(self, track: Track, name: str, ts: float, dur: float,
                 args: dict[str, object] | None = None) -> None:
        rec = self._record("X", track, name, ts, args)
        rec["dur"] = float(dur)
        self._records.append(rec)

    def instant(self, track: Track, name: str, ts: float,
                args: dict[str, object] | None = None) -> None:
        self._records.append(self._record("i", track, name, ts, args))

    def counter(self, track: Track, name: str, ts: float,
                values: dict[str, float]) -> None:
        rec = self._record("C", track, name, ts, None)
        rec["values"] = {k: float(v) for k, v in values.items()}
        self._records.append(rec)

    # ------------------------------------------------------------- drain

    def drain(self) -> list[SpanRecord]:
        records, self._records = self._records, []
        return records

    def events(self) -> list[dict[str, object]]:
        """Undrained records, for inspection; does not consume them."""
        return [dict(r) for r in self._records]
