"""Human-readable reports over a recorded run.

Turns the three artifacts ``carp-trace`` produces — the run manifest
(``carp_run.json`` shape), the metrics snapshot, and the trace-event
list — into a per-epoch timeline/summary a terminal can show.  The
functions here take plain dicts/lists, not live run objects, so the
module renders archived artifacts as readily as a just-finished run
and introduces no import cycle with the instrumented packages.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.bench.tables import fmt_bytes, fmt_pct, render_table


def track_summary(events: list[dict[str, object]]) -> dict[str, dict[str, float]]:
    """Per track-type event counts and busy time.

    Resolves pid -> track-type names from the metadata events, then
    aggregates span activity: ``X`` events contribute their ``dur``;
    ``B``/``E`` pairs contribute their enclosed interval (per-track
    stack, tolerant of unbalanced input).
    """
    names: dict[object, str] = {}
    out: dict[str, dict[str, float]] = {}
    stacks: dict[tuple[object, object], list[float]] = {}
    for event in events:
        if event.get("ph") == "M":
            if event.get("name") == "process_name":
                args = event.get("args")
                if isinstance(args, dict):
                    names[event.get("pid")] = str(args.get("name"))
            continue
        track_type = names.get(event.get("pid"), f"pid {event.get('pid')}")
        agg = out.setdefault(track_type, {"events": 0, "spans": 0,
                                          "busy_ticks": 0.0})
        agg["events"] += 1
        ph = event.get("ph")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            continue
        key = (event.get("pid"), event.get("tid"))
        if ph == "X":
            dur = event.get("dur")
            agg["spans"] += 1
            if isinstance(dur, (int, float)):
                agg["busy_ticks"] += float(dur)
        elif ph == "B":
            stacks.setdefault(key, []).append(float(ts))
        elif ph == "E":
            stack = stacks.get(key)
            if stack:
                agg["spans"] += 1
                agg["busy_ticks"] += float(ts) - stack.pop()
    return out


def _trigger_timeline(epoch: dict[str, object]) -> str:
    triggers = epoch.get("triggers")
    if not isinstance(triggers, list) or not triggers:
        return "-"
    parts = []
    for t in triggers:
        if isinstance(t, dict):
            parts.append(f"r{t.get('round')}:{t.get('reason')}")
    return " ".join(parts) if parts else "-"


def epoch_table(epochs: list[dict[str, object]]) -> str:
    """Per-epoch summary table with the renegotiation timeline."""
    headers = ["epoch", "records", "rounds", "renegs", "stray frac",
               "load stddev", "trigger timeline (round:reason)"]
    rows = []
    for e in epochs:
        stray = e.get("stray_fraction")
        stddev = e.get("load_stddev")
        rows.append([
            e.get("epoch"),
            e.get("records"),
            e.get("rounds"),
            e.get("renegotiations"),
            fmt_pct(float(stray)) if isinstance(stray, (int, float)) else "-",
            f"{float(stddev):.3f}" if isinstance(stddev, (int, float)) else "-",
            _trigger_timeline(e),
        ])
    return render_table(headers, rows)


def track_table(events: list[dict[str, object]]) -> str:
    """Per track-type activity table."""
    summary = track_summary(events)
    headers = ["track type", "events", "spans", "busy (ticks)"]
    rows = [
        [name, int(agg["events"]), int(agg["spans"]), f"{agg['busy_ticks']:.2f}"]
        for name, agg in sorted(summary.items())
    ]
    return render_table(headers, rows)


def normalize_snapshot(
    snapshot: dict[str, object],
) -> tuple[dict[str, object], list[str]]:
    """Fill in sections an older ``metrics.json`` may lack.

    Snapshots recorded before histograms existed carry only
    ``counters``/``gauges``; rendering such an archive must degrade,
    not crash.  Returns the snapshot with every section present (empty
    where missing) plus human-readable annotations naming what was
    filled in — the report prints them so a legacy artifact is
    labelled, never silently mistaken for a complete recording.
    """
    annotations: list[str] = []
    normalized = dict(snapshot)
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(normalized.get(section), dict):
            if section in normalized:
                annotations.append(
                    f"legacy snapshot: malformed {section!r} section replaced "
                    "with an empty one"
                )
            else:
                annotations.append(
                    f"legacy snapshot: no {section!r} section "
                    "(recorded by an older carp-trace); table omitted"
                )
            normalized[section] = {}
    return normalized, annotations


def metrics_table(snapshot: dict[str, object]) -> str:
    """Counter/gauge totals from a metrics snapshot."""
    rows: list[list[object]] = []
    counters = snapshot.get("counters")
    if isinstance(counters, dict):
        for name, value in sorted(counters.items()):
            if not isinstance(value, (int, float)):
                rows.append(["counter", name, str(value)])
            elif "bytes" in name:
                rows.append(["counter", name, fmt_bytes(float(value))])
            else:
                rows.append(["counter", name, f"{value:g}"])
    gauges = snapshot.get("gauges")
    if isinstance(gauges, dict):
        for name, value in sorted(gauges.items()):
            shown = (f"{float(value):.3f}"
                     if isinstance(value, (int, float)) else str(value))
            rows.append(["gauge", name, shown])
    histograms = snapshot.get("histograms")
    if isinstance(histograms, dict):
        for name, h in sorted(histograms.items()):
            if isinstance(h, dict):
                mean = h.get("mean", 0.0)
                mean_s = (f"{float(mean):.2f}"
                          if isinstance(mean, (int, float)) else "-")
                summary = f"n={h.get('count')} mean={mean_s}"
                quantiles = " ".join(
                    f"{q}<={float(v):.2f}"
                    for q in ("p50", "p95", "p99")
                    if isinstance(v := h.get(q), (int, float))
                )
                if quantiles:
                    # bucket-upper-bound approximations (Histogram.quantile)
                    summary += f" {quantiles}"
                hmax = h.get("max")
                if isinstance(hmax, (int, float)):
                    summary += f" max={float(hmax):.2f}"
                rows.append(["histogram", name, summary])
    return render_table(["kind", "metric", "value"], rows)


class _ClosedSpan(NamedTuple):
    """A resolved span interval, ready to rank by duration."""

    track: str
    lane: str
    name: str
    ts: float
    dur: float
    args: dict[str, object]


def _resolve_spans(
    events: list[dict[str, object]],
) -> dict[str, list[_ClosedSpan]]:
    """Resolve every closed span, grouped by track type, in event order."""
    pid_names: dict[object, str] = {}
    lane_names: dict[tuple[object, object], str] = {}
    spans: dict[str, list[_ClosedSpan]] = {}
    stacks: dict[tuple[object, object], list[dict[str, object]]] = {}

    def push(pid: object, tid: object, name: object, ts: float, dur: float,
             args: object) -> None:
        track = pid_names.get(pid, f"pid {pid}")
        spans.setdefault(track, []).append(_ClosedSpan(
            track=track,
            lane=lane_names.get((pid, tid), f"tid {tid}"),
            name=str(name),
            ts=ts,
            dur=dur,
            args=dict(args) if isinstance(args, dict) else {},
        ))

    for event in events:
        ph = event.get("ph")
        pid, tid = event.get("pid"), event.get("tid")
        if ph == "M":
            args = event.get("args")
            if isinstance(args, dict):
                if event.get("name") == "process_name":
                    pid_names[pid] = str(args.get("name"))
                elif event.get("name") == "thread_name":
                    lane_names[(pid, tid)] = str(args.get("name"))
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            continue
        key = (pid, tid)
        if ph == "X":
            dur = event.get("dur")
            if isinstance(dur, (int, float)):
                push(pid, tid, event.get("name"), float(ts), float(dur),
                     event.get("args"))
        elif ph == "B":
            stacks.setdefault(key, []).append(event)
        elif ph == "E":
            stack = stacks.get(key)
            if stack:
                begin = stack.pop()
                t0 = begin.get("ts")
                if isinstance(t0, (int, float)):
                    push(pid, tid, begin.get("name"), float(t0),
                         float(ts) - float(t0), begin.get("args"))
    return spans


def _closed_spans(
    events: list[dict[str, object]], n: int
) -> list[_ClosedSpan]:
    """The ``n`` longest closed spans per track type, longest first."""
    spans = _resolve_spans(events)
    out: list[_ClosedSpan] = []
    for track in sorted(spans):
        ranked = sorted(spans[track], key=lambda s: (-s.dur, s.ts, s.name))
        out.extend(ranked[:n])
    return out


def top_spans(
    events: list[dict[str, object]], n: int
) -> list[dict[str, object]]:
    """The ``n`` longest spans per track type, longest first.

    Resolves ``X`` durations and ``B``/``E`` intervals (per-track
    stack) into closed spans, then keeps each track type's top ``n``
    by duration.  Returned dicts carry ``track`` (type name), ``lane``
    (thread name), ``name``, ``ts``, ``dur``, and the begin event's
    ``args`` for attribution — what ``carp-trace --top`` prints so
    slow phases are visible without opening Perfetto.
    """
    return [s._asdict() for s in _closed_spans(events, n)]


def top_spans_table(events: list[dict[str, object]], n: int) -> str:
    """Render :func:`top_spans` as an aligned table."""
    rows = []
    for s in _closed_spans(events, n):
        attribution = " ".join(f"{k}={v}" for k, v in s.args.items())
        rows.append([
            s.track, s.lane, s.name, f"{s.ts:.2f}", f"{s.dur:.3f}",
            attribution,
        ])
    return render_table(
        ["track", "lane", "span", "ts", "dur (ticks)", "attribution"], rows
    )


def _request_spans(
    events: list[dict[str, object]], request_id: str
) -> list[_ClosedSpan]:
    matched: list[_ClosedSpan] = []
    for track_spans in _resolve_spans(events).values():
        for span in track_spans:
            if span.args.get("request") == request_id:
                matched.append(span)
    matched.sort(key=lambda s: (s.ts, s.track, s.lane, s.name))
    return matched


def request_spans(
    events: list[dict[str, object]], request_id: str
) -> list[dict[str, object]]:
    """Every closed span attributed to one request, in timeline order.

    Spans carry their request id in ``args["request"]`` (set by
    ``Obs.span`` while the driver or a worker replays the request's
    context — see :mod:`repro.obs.context`); this pulls one request's
    cross-worker tree out of the merged trace.  Ordering is by start
    time, then track/lane name, so the same trace yields the same tree
    on every backend.
    """
    return [s._asdict() for s in _request_spans(events, request_id)]


def request_tree_table(
    events: list[dict[str, object]], request_id: str
) -> str:
    """Render :func:`request_spans` as a timeline table."""
    rows = []
    for s in _request_spans(events, request_id):
        attribution = " ".join(
            f"{k}={v}" for k, v in s.args.items() if k != "request"
        )
        rows.append([
            s.track, s.lane, s.name, f"{s.ts:.2f}", f"{s.dur:.3f}",
            attribution,
        ])
    return render_table(
        ["track", "lane", "span", "ts", "dur (ticks)", "attribution"], rows
    )


def render_report(run_doc: dict[str, object], snapshot: dict[str, object],
                  events: list[dict[str, object]]) -> str:
    """The full ``carp-trace`` terminal report."""
    epochs = run_doc.get("epochs")
    waf = run_doc.get("write_amplification")
    waf_s = f"{float(waf):.3f}x" if isinstance(waf, (int, float)) else "-"
    sections = [
        f"CARP run: {run_doc.get('nranks')} ranks, "
        f"{run_doc.get('nreceivers')} receivers, "
        f"{len(epochs) if isinstance(epochs, list) else 0} epochs, "
        f"write amplification {waf_s}",
        "",
        "Per-epoch timeline",
        epoch_table(epochs if isinstance(epochs, list) else []),
        "",
        "Trace activity by track type",
        track_table(events),
        "",
        "Metrics snapshot",
        metrics_table(snapshot),
    ]
    return "\n".join(sections)
