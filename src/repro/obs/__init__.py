"""``repro.obs`` — virtual-time tracing and metrics for the data plane.

The paper's time-series claims (renegotiation latency masked by
buffered writes, RAF recovering via repartitioning, WAF staying 1x)
are about *when* things happen inside the pipeline, not just epoch
totals.  This package is the measurement substrate: a
:class:`MetricsRegistry` of counters/gauges/bounded histograms, a
:class:`ChromeTracer` emitting Perfetto-loadable span timelines, and a
:class:`~repro.obs.clock.Clock` protocol that keeps every timestamp in
*virtual* time so the deterministic core never reads the host clock
(enforced statically by carp-lint's D1xx and O5xx families).

Instrumented subsystems receive one :class:`Obs` object; they never
construct clocks, tracers, or registries themselves (rule O502) — the
caller (``carp-trace``, a benchmark, a test) decides whether to record:

    obs = Obs.recording()
    with CarpRun(16, out, opts, obs=obs) as run:
        run.ingest_epoch(0, streams)
    obs.tracer.write(out / "trace.json")
    obs.metrics.write_json(out / "metrics.json")

``Obs.null()`` (the default everywhere) is a shared do-nothing stack:
its clock is frozen, its registry hands out no-op instruments, and hot
paths additionally guard on ``obs.enabled`` so a disabled run pays a
single attribute check.
"""

from __future__ import annotations

from types import TracebackType

from repro.obs.buffer import BufferingTracer
from repro.obs.clock import Clock, NullClock, VirtualClock
from repro.obs.context import RequestContext, RequestIdAllocator
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    snapshot_delta,
)
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    TelemetryStream,
    render_openmetrics,
)
from repro.obs.tracer import (
    ChromeTracer,
    NullTracer,
    SpanRecord,
    Tracer,
    Track,
    validate_trace_events,
)

__all__ = [
    "Clock",
    "NullClock",
    "VirtualClock",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "snapshot_delta",
    "BufferingTracer",
    "ChromeTracer",
    "NullTracer",
    "SpanRecord",
    "Tracer",
    "Track",
    "validate_trace_events",
    "RequestContext",
    "RequestIdAllocator",
    "TelemetryStream",
    "NULL_TELEMETRY",
    "render_openmetrics",
    "Obs",
    "Span",
    "NULL_OBS",
    "RECORD_TICK",
    "MESSAGE_TICK",
    "ROUND_TICK",
]

#: Virtual ticks of pipeline work per record routed/flushed (1 tick
#: ~ 1000 records), per control-plane message, and per ingestion round.
RECORD_TICK = 1e-3
MESSAGE_TICK = 1e-3
ROUND_TICK = 1.0


class Span:
    """Context manager pairing a ``B``/``E`` event with a clock advance.

    On exit the clock moves forward by ``dur`` ticks *plus* whatever
    nested spans advanced it, so outer spans always contain inner ones
    on the timeline.
    """

    __slots__ = ("_obs", "_track", "_name", "_dur", "_args", "_exit_args")

    def __init__(self, obs: "Obs", track: Track, name: str, dur: float,
                 args: dict[str, object] | None) -> None:
        self._obs = obs
        self._track = track
        self._name = name
        self._dur = dur
        self._args = args
        self._exit_args: dict[str, object] | None = None

    def annotate(self, args: dict[str, object]) -> None:
        """Attach exact measured facts to the span's ``E`` event.

        For values only known once the work ran (bytes actually
        written, SSTs actually produced): the ``E`` event carries them,
        and ``carp-profile`` joins them against the metrics counters
        incremented at the same code sites.
        """
        if self._exit_args is None:
            self._exit_args = dict(args)
        else:
            self._exit_args.update(args)

    def __enter__(self) -> "Span":
        self._obs.tracer.begin(self._track, self._name,
                               self._obs.clock.now(), self._args)
        return self

    def __exit__(self, exc_type: type[BaseException] | None,
                 exc: BaseException | None,
                 tb: TracebackType | None) -> None:
        if self._dur:
            self._obs.clock.advance(self._dur)
        self._obs.tracer.end(self._track, self._obs.clock.now(),
                             self._exit_args)


class _NullSpan:
    """Shared no-op span for disabled observability."""

    __slots__ = ()

    def annotate(self, args: dict[str, object]) -> None:
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type: type[BaseException] | None,
                 exc: BaseException | None,
                 tb: TracebackType | None) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Obs:
    """One observability stack: clock + metrics + tracer.

    The single object instrumented subsystems accept (``obs=`` keyword
    of ``CarpRun``, ``KoiDB``, ``PartitionedStore``,
    ``simulate_ingestion``).
    """

    __slots__ = ("clock", "metrics", "tracer", "enabled", "request_id",
                 "telemetry")

    def __init__(self, clock: Clock, metrics: MetricsRegistry,
                 tracer: Tracer, enabled: bool = True,
                 telemetry: TelemetryStream | None = None) -> None:
        self.clock = clock
        self.metrics = metrics
        self.tracer = tracer
        self.enabled = enabled
        #: the in-flight request id (see :class:`RequestContext`);
        #: spans opened while set carry a ``request`` arg.  Set/reset
        #: by the driver around each request and replayed into worker
        #: stacks via the ``("ctx", request_id)`` KoiDB command.
        self.request_id: str | None = None
        #: the attached telemetry stream; :data:`NULL_TELEMETRY` when
        #: no stream is wired, so hot-path hooks stay branch-free.
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY

    @classmethod
    def recording(cls) -> "Obs":
        """A fresh recording stack (virtual clock, live registry/tracer)."""
        return cls(VirtualClock(), MetricsRegistry(), ChromeTracer())

    @classmethod
    def null(cls) -> "Obs":
        """The shared zero-overhead stack (see :data:`NULL_OBS`)."""
        return NULL_OBS

    @classmethod
    def deltas(cls, metrics: MetricsRegistry | None = None) -> "Obs":
        """A rank-local stack: live metrics, fresh clock, buffering tracer.

        The one sanctioned observability stack inside executor worker
        tasks (lint rule P602 bans ``Obs.recording()`` there), and the
        stack ``CarpRun`` hands each serial KoiDB so both paths record
        identically.  Metric instruments record into ``metrics`` when
        given (the serial case shares the driver's registry) or into a
        private registry whose
        :func:`~repro.obs.metrics.snapshot_delta` the worker ships back
        for the driver to merge in shard order.  Spans land in a
        :class:`~repro.obs.buffer.BufferingTracer` on a *rank-local*
        virtual timeline starting at zero; the driver drains and merges
        them in rank order at barrier points, which keeps trace.json
        bit-identical across Serial/Thread/Process executors (the
        per-rank command stream is the same on every backend).
        """
        return cls(VirtualClock(),
                   metrics if metrics is not None else MetricsRegistry(),
                   BufferingTracer())

    def track(self, process: str, thread: str = "main") -> Track:
        """Shorthand for ``obs.tracer.track(...)``."""
        return self.tracer.track(process, thread)

    def span(self, track: Track, name: str, dur: float = 0.0,
             args: dict[str, object] | None = None) -> Span | _NullSpan:
        """Open a span that advances the clock by ``dur`` on exit.

        While a request id is set on this stack (driver-side around
        each ingest/query, worker-side via the ``("ctx", ...)``
        command), the span's args gain a ``request`` entry so
        ``carp-trace --request <id>`` can pull one request's
        cross-worker tree out of the merged timeline.
        """
        if not self.enabled:
            return _NULL_SPAN
        if self.request_id is not None:
            args = {**(args or {}), "request": self.request_id}
        return Span(self, track, name, dur, args)


#: The do-nothing stack every instrumented subsystem defaults to.
NULL_OBS = Obs(NullClock(), NullMetricsRegistry(), NullTracer(),
               enabled=False, telemetry=NULL_TELEMETRY)
