"""Declarative SLO health policies over the telemetry stream.

A :class:`HealthPolicy` is a list of threshold rules over the sample
documents a :class:`~repro.obs.telemetry.TelemetryStream` appends to
``telemetry.jsonl``.  Each rule names one value with a dotted
*selector* —

``counters.<name>``
    a cumulative counter, e.g. ``counters.faults.task_crashes``
``gauges.<name>``
    a gauge, e.g. ``gauges.shuffle.in_flight_records``
``deltas.<name>``
    the counter's delta since the previous full sample
``derived.<name>``
    a derived SLO gauge, e.g. ``derived.read_amp`` or
    ``derived.retries_done``
``histograms.<name>.<stat>``
    a histogram statistic, where ``<stat>`` is one of
    ``p50``/``p95``/``p99``/``mean``/``min``/``max``/``count``/``sum``,
    e.g. ``histograms.query.latency.p99``

— and bounds it with ``max`` and/or ``min`` (inclusive; observing a
value strictly beyond a bound is a breach).  ``over`` picks the
evaluation window: ``"final"`` (default) checks only the last full
sample — right for cumulative SLOs like total faults — while
``"any"`` checks every full sample, so a mid-run excursion breaches
even if the final state recovered.

A selector that resolves to nothing (metric never registered, e.g.
quarantine counts on a run that never repaired a log) is reported as
``skipped``, not a breach: policies are written against the union of
everything a run *might* emit.

Policies load from JSON anywhere, and from TOML on interpreters that
ship :mod:`tomllib` (3.11+) — the repo supports 3.10, so TOML is
capability-gated, never required.  This module is pure (text/dicts in,
report out); file handling lives in the ``carp-health`` CLI
(``repro.tools.health_cli``), which keeps the module O504-clean and
the evaluation unit-testable without a filesystem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

_SECTIONS = ("counters", "gauges", "deltas", "derived", "histograms")
_HIST_STATS = ("p50", "p95", "p99", "mean", "min", "max", "count", "sum")
_WINDOWS = ("final", "any")


@dataclass(frozen=True)
class HealthRule:
    """One SLO threshold over a telemetry selector."""

    selector: str
    max: float | None = None
    min: float | None = None
    over: str = "final"
    description: str = ""

    def __post_init__(self) -> None:
        section = self.selector.split(".", 1)[0]
        if section not in _SECTIONS or "." not in self.selector:
            raise ValueError(
                f"health selector {self.selector!r} must start with one of "
                f"{', '.join(s + '.' for s in _SECTIONS)}"
            )
        if section == "histograms":
            stat = self.selector.rsplit(".", 1)[-1]
            if stat not in _HIST_STATS or self.selector.count(".") < 2:
                raise ValueError(
                    f"histogram selector {self.selector!r} must end in one "
                    f"of {', '.join(_HIST_STATS)}"
                )
        if self.max is None and self.min is None:
            raise ValueError(
                f"health rule {self.selector!r} needs a max and/or min bound"
            )
        if self.over not in _WINDOWS:
            raise ValueError(
                f"health rule {self.selector!r}: over={self.over!r} is not "
                f"one of {_WINDOWS}"
            )


@dataclass(frozen=True)
class HealthPolicy:
    """A named collection of :class:`HealthRule` thresholds."""

    name: str
    rules: tuple[HealthRule, ...]

    @staticmethod
    def from_dict(doc: Mapping[str, object]) -> "HealthPolicy":
        raw_rules = doc.get("rules")
        if not isinstance(raw_rules, list):
            raise ValueError("health policy needs a 'rules' list")
        rules = []
        for i, raw in enumerate(raw_rules):
            if not isinstance(raw, Mapping):
                raise ValueError(f"health policy rule #{i} is not a table")
            selector = raw.get("selector")
            if not isinstance(selector, str):
                raise ValueError(f"health policy rule #{i} needs a 'selector'")
            max_ = raw.get("max")
            min_ = raw.get("min")
            if max_ is not None and not isinstance(max_, (int, float)):
                raise ValueError(f"rule {selector!r}: max must be a number")
            if min_ is not None and not isinstance(min_, (int, float)):
                raise ValueError(f"rule {selector!r}: min must be a number")
            over = raw.get("over", "final")
            if not isinstance(over, str):
                raise ValueError(f"rule {selector!r}: over must be a string")
            description = raw.get("description", "")
            if not isinstance(description, str):
                raise ValueError(
                    f"rule {selector!r}: description must be a string"
                )
            rules.append(HealthRule(
                selector=selector,
                max=float(max_) if max_ is not None else None,
                min=float(min_) if min_ is not None else None,
                over=over,
                description=description,
            ))
        name = doc.get("name", "unnamed")
        if not isinstance(name, str):
            raise ValueError("health policy 'name' must be a string")
        return HealthPolicy(name=name, rules=tuple(rules))


def parse_policy(text: str, fmt: str = "json") -> HealthPolicy:
    """Parse a policy document from JSON or (where available) TOML.

    TOML needs :mod:`tomllib` (python >= 3.11); on older interpreters
    a TOML request raises ``RuntimeError`` with a pointer at the JSON
    form, which every supported interpreter can load.
    """
    if fmt == "json":
        import json

        doc = json.loads(text)
    elif fmt == "toml":
        try:
            import tomllib
        except ImportError as exc:  # python 3.10: no stdlib TOML parser
            raise RuntimeError(
                "TOML health policies need python >= 3.11 (tomllib); "
                "use the JSON policy format instead"
            ) from exc
        doc = tomllib.loads(text)
    else:
        raise ValueError(f"unknown health policy format {fmt!r}")
    if not isinstance(doc, dict):
        raise ValueError("health policy document must be a table/object")
    return HealthPolicy.from_dict(doc)


# ------------------------------------------------------------ evaluation


@dataclass(frozen=True)
class RuleResult:
    """Outcome of one rule over the evaluation window."""

    rule: HealthRule
    #: ``ok`` | ``breach`` | ``skipped``
    status: str
    #: the worst value observed in the window (None when skipped)
    observed: float | None = None
    #: ``seq`` of the sample holding the worst value
    at_seq: int | None = None
    #: ``kind`` of that sample
    at_kind: str | None = None
    note: str = ""


@dataclass(frozen=True)
class HealthReport:
    """All rule results for one policy over one telemetry stream."""

    policy: str
    results: tuple[RuleResult, ...]
    samples_seen: int = 0

    @property
    def breaches(self) -> tuple[RuleResult, ...]:
        return tuple(r for r in self.results if r.status == "breach")

    @property
    def ok(self) -> bool:
        return not self.breaches

    def to_dict(self) -> dict[str, object]:
        return {
            "policy": self.policy,
            "ok": self.ok,
            "samples_seen": self.samples_seen,
            "results": [
                {
                    "selector": r.rule.selector,
                    "max": r.rule.max,
                    "min": r.rule.min,
                    "over": r.rule.over,
                    "description": r.rule.description,
                    "status": r.status,
                    "observed": r.observed,
                    "at_seq": r.at_seq,
                    "at_kind": r.at_kind,
                    "note": r.note,
                }
                for r in self.results
            ],
        }

    def render(self) -> str:
        """Human-readable breach report."""
        counts = {"breach": 0, "ok": 0, "skipped": 0}
        for r in self.results:
            counts[r.status] = counts.get(r.status, 0) + 1
        lines = [
            f"health policy {self.policy!r}: "
            f"{counts['breach']} breach(es), {counts['ok']} ok, "
            f"{counts['skipped']} skipped "
            f"({self.samples_seen} full samples)"
        ]
        tag = {"breach": "BREACH", "ok": "ok", "skipped": "skip"}
        for r in self.results:
            bounds = []
            if r.rule.max is not None:
                bounds.append(f"<= {r.rule.max:g}")
            if r.rule.min is not None:
                bounds.append(f">= {r.rule.min:g}")
            line = f"  {tag[r.status]:6s} {r.rule.selector} {' and '.join(bounds)}"
            if r.observed is not None:
                line += f": observed {r.observed:g}"
                if r.at_seq is not None:
                    line += f" at seq {r.at_seq} (kind={r.at_kind})"
            if r.note:
                line += f" [{r.note}]"
            if r.rule.description:
                line += f" — {r.rule.description}"
            lines.append(line)
        return "\n".join(lines)


def _resolve(sample: Mapping[str, object], selector: str) -> float | None:
    """Look ``selector`` up in one sample document; None when absent."""
    section, _, rest = selector.partition(".")
    if section == "histograms":
        name, _, stat = rest.rpartition(".")
        hists = sample.get("histograms")
        if not isinstance(hists, Mapping):
            return None
        data = hists.get(name)
        if not isinstance(data, Mapping):
            return None
        value = data.get(stat)
    else:
        table = sample.get(section)
        if not isinstance(table, Mapping):
            return None
        value = table.get(rest)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def _full_samples(
    samples: Sequence[Mapping[str, object]],
) -> list[Mapping[str, object]]:
    return [s for s in samples if s.get("kind") != "tick"]


def evaluate(
    policy: HealthPolicy, samples: Sequence[Mapping[str, object]]
) -> HealthReport:
    """Evaluate every rule in ``policy`` over parsed telemetry samples.

    ``samples`` is the parsed ``telemetry.jsonl`` in emission order;
    tick samples are ignored (they carry a driver-scoped subset that
    most selectors cannot resolve against).
    """
    full = _full_samples(samples)
    results: list[RuleResult] = []
    for rule in policy.rules:
        window = full[-1:] if rule.over == "final" else full
        results.append(_evaluate_rule(rule, window))
    return HealthReport(
        policy=policy.name, results=tuple(results), samples_seen=len(full)
    )


def _evaluate_rule(
    rule: HealthRule, window: Sequence[Mapping[str, object]]
) -> RuleResult:
    if not window:
        return RuleResult(
            rule=rule, status="skipped", note="no full telemetry samples"
        )
    worst: float | None = None
    worst_sample: Mapping[str, object] | None = None
    breach = False
    for sample in window:
        value = _resolve(sample, rule.selector)
        if value is None:
            continue
        value_breaches = (
            (rule.max is not None and value > rule.max)
            or (rule.min is not None and value < rule.min)
        )
        # track the worst observation: prefer any breaching value,
        # then the largest excursion toward the violated direction
        if worst is None or (value_breaches and not breach) or (
            value_breaches == breach and _worse(rule, value, worst)
        ):
            worst = value
            worst_sample = sample
        breach = breach or value_breaches
    if worst is None:
        return RuleResult(
            rule=rule, status="skipped",
            note=f"{rule.selector} absent from sampled window",
        )
    assert worst_sample is not None
    seq = worst_sample.get("seq")
    kind = worst_sample.get("kind")
    return RuleResult(
        rule=rule,
        status="breach" if breach else "ok",
        observed=worst,
        at_seq=seq if isinstance(seq, int) else None,
        at_kind=kind if isinstance(kind, str) else None,
    )


def _worse(rule: HealthRule, candidate: float, incumbent: float) -> bool:
    """Is ``candidate`` a worse observation than ``incumbent``?"""
    if rule.max is not None:
        return candidate > incumbent
    return candidate < incumbent


def parse_telemetry_lines(text: str) -> list[dict[str, object]]:
    """Parse ``telemetry.jsonl`` content into sample documents.

    Blank lines are tolerated; a malformed line raises ``ValueError``
    naming its (1-based) line number so a truncated stream from a
    crashed run is diagnosable.
    """
    import json

    samples: list[dict[str, object]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"telemetry line {lineno} is not valid JSON: {exc}"
            ) from exc
        if not isinstance(doc, dict):
            raise ValueError(
                f"telemetry line {lineno} is not a JSON object"
            )
        samples.append(doc)
    return samples


__all__ = [
    "HealthPolicy",
    "HealthReport",
    "HealthRule",
    "RuleResult",
    "evaluate",
    "parse_policy",
    "parse_telemetry_lines",
]
