"""Counters, gauges, and bounded histograms for the CARP data plane.

A :class:`MetricsRegistry` is the single mutable sink every
instrumented subsystem writes into: routing increments counters, KoiDB
sets memtable-occupancy gauges, flushes observe histogram samples.
:meth:`MetricsRegistry.snapshot` renders the whole registry as plain
JSON-serializable data, which ``carp-trace`` persists next to the
trace and reconciles against ``EpochStats``/``KoiDBStats``.

The ``Null*`` variants share the registry's interface but drop every
write, so instrumented hot paths cost a no-op method call (or nothing
at all where call sites guard on ``Obs.enabled``) when observability
is off.
"""

from __future__ import annotations

import bisect
import json
from collections.abc import Mapping, Sequence
from pathlib import Path


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def add(self, n: float = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease (n={n})")
        self.value += n


class Gauge:
    """A point-in-time value (e.g. current memtable occupancy)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, v: float) -> None:
        self.value = float(v)


class Histogram:
    """A bounded-bucket histogram.

    ``bounds`` are the inclusive upper edges of the first
    ``len(bounds)`` buckets; one overflow bucket catches everything
    above the last bound, so the memory footprint is fixed no matter
    how many samples arrive.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        edges = [float(b) for b in bounds]
        if not edges:
            raise ValueError(f"histogram {name} needs at least one bucket bound")
        if sorted(edges) != edges or len(set(edges)) != len(edges):
            raise ValueError(
                f"histogram {name} bounds must be strictly increasing: {edges}"
            )
        self.name = name
        self.bounds: tuple[float, ...] = tuple(edges)
        self.counts: list[int] = [0] * (len(edges) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, v: float) -> None:
        v = float(v)
        # bucket i holds samples with v <= bounds[i]; the final bucket
        # is the unbounded overflow
        self.counts[bisect.bisect_left(self.bounds, v)] += 1
        self.count += 1
        self.total += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict[str, object]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


class MetricsRegistry:
    """Named metrics, created on first use and rendered as one snapshot."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # --------------------------------------------------------- creation

    def counter(self, name: str) -> Counter:
        self._check_free(name, self._counters)
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        self._check_free(name, self._gauges)
        if name not in self._gauges:
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(self, name: str, bounds: Sequence[float]) -> Histogram:
        self._check_free(name, self._histograms)
        existing = self._histograms.get(name)
        if existing is not None:
            if existing.bounds != tuple(float(b) for b in bounds):
                raise ValueError(
                    f"histogram {name} re-registered with different bounds"
                )
            return existing
        hist = Histogram(name, bounds)
        self._histograms[name] = hist
        return hist

    def _check_free(self, name: str, own: Mapping[str, object]) -> None:
        for kind in (self._counters, self._gauges, self._histograms):
            if kind is not own and name in kind:
                raise ValueError(f"metric {name!r} already registered "
                                 "as a different type")

    # ---------------------------------------------------------- reading

    def counter_value(self, name: str) -> float:
        """Total of a counter; 0 if it was never touched."""
        c = self._counters.get(name)
        return c.value if c is not None else 0

    def snapshot(self) -> dict[str, object]:
        """The whole registry as JSON-serializable plain data."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.to_dict() for n, h in sorted(self._histograms.items())
            },
        }

    def write_json(self, path: Path | str) -> Path:
        """Persist :meth:`snapshot` as pretty-printed JSON."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.snapshot(), indent=2) + "\n")
        return target


class NullCounter(Counter):
    """Shared counter that ignores every increment."""

    __slots__ = ()

    def add(self, n: float = 1) -> None:
        return None


class NullGauge(Gauge):
    """Shared gauge that ignores every set."""

    __slots__ = ()

    def set(self, v: float) -> None:
        return None


class NullHistogram(Histogram):
    """Shared histogram that ignores every sample."""

    __slots__ = ()

    def observe(self, v: float) -> None:
        return None


class NullMetricsRegistry(MetricsRegistry):
    """Registry that hands out shared no-op instruments."""

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = NullCounter("null")
        self._null_gauge = NullGauge("null")
        self._null_histogram = NullHistogram("null", (1.0,))

    def counter(self, name: str) -> Counter:
        return self._null_counter

    def gauge(self, name: str) -> Gauge:
        return self._null_gauge

    def histogram(self, name: str, bounds: Sequence[float]) -> Histogram:
        return self._null_histogram

    def snapshot(self) -> dict[str, object]:
        return {"counters": {}, "gauges": {}, "histograms": {}}
