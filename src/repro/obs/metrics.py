"""Counters, gauges, and bounded histograms for the CARP data plane.

A :class:`MetricsRegistry` is the single mutable sink every
instrumented subsystem writes into: routing increments counters, KoiDB
sets memtable-occupancy gauges, flushes observe histogram samples.
:meth:`MetricsRegistry.snapshot` renders the whole registry as plain
JSON-serializable data, which ``carp-trace`` persists next to the
trace and reconciles against ``EpochStats``/``KoiDBStats``.

The ``Null*`` variants share the registry's interface but drop every
write, so instrumented hot paths cost a no-op method call (or nothing
at all where call sites guard on ``Obs.enabled``) when observability
is off.
"""

from __future__ import annotations

import bisect
import json
import math
from collections.abc import Mapping, Sequence
from pathlib import Path


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def add(self, n: float = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease (n={n})")
        self.value += n


class Gauge:
    """A point-in-time value (e.g. current memtable occupancy)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, v: float) -> None:
        self.value = float(v)


class Histogram:
    """A bounded-bucket histogram.

    ``bounds`` are the inclusive upper edges of the first
    ``len(bounds)`` buckets; one overflow bucket catches everything
    above the last bound, so the memory footprint is fixed no matter
    how many samples arrive.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        edges = [float(b) for b in bounds]
        if not edges:
            raise ValueError(f"histogram {name} needs at least one bucket bound")
        if sorted(edges) != edges or len(set(edges)) != len(edges):
            raise ValueError(
                f"histogram {name} bounds must be strictly increasing: {edges}"
            )
        self.name = name
        self.bounds: tuple[float, ...] = tuple(edges)
        self.counts: list[int] = [0] * (len(edges) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, v: float) -> None:
        v = float(v)
        # bucket i holds samples with v <= bounds[i]; the final bucket
        # is the unbounded overflow
        self.counts[bisect.bisect_left(self.bounds, v)] += 1
        self.count += 1
        self.total += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float | None:
        """Bucket-upper-bound approximation of the ``q``-quantile.

        Walks the cumulative bucket counts and returns the inclusive
        upper edge of the bucket containing the ``q``-th sample — an
        *upper bound* on the true quantile, exact to bucket resolution
        (the standard trade-off of bounded histograms).  A quantile
        landing in the overflow bucket reports the observed ``max``;
        ``None`` when the histogram is empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        # the smallest 1-based sample index at or above quantile q
        target = max(1, math.ceil(self.count * q))
        cumulative = 0
        for i, n in enumerate(self.counts):
            cumulative += n
            if cumulative >= target:
                if i < len(self.bounds):
                    return self.bounds[i]
                return self.max  # overflow bucket: only max bounds it
        return self.max

    def to_dict(self) -> dict[str, object]:
        # p50/p95/p99 are bucket-upper-bound approximations (see
        # quantile()); min/max/mean are exact
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Named metrics, created on first use and rendered as one snapshot."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # --------------------------------------------------------- creation

    def counter(self, name: str) -> Counter:
        self._check_free(name, self._counters)
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        self._check_free(name, self._gauges)
        if name not in self._gauges:
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(self, name: str, bounds: Sequence[float]) -> Histogram:
        self._check_free(name, self._histograms)
        existing = self._histograms.get(name)
        if existing is not None:
            if existing.bounds != tuple(float(b) for b in bounds):
                raise ValueError(
                    f"histogram {name} re-registered with different bounds"
                )
            return existing
        hist = Histogram(name, bounds)
        self._histograms[name] = hist
        return hist

    def _check_free(self, name: str, own: Mapping[str, object]) -> None:
        for kind in (self._counters, self._gauges, self._histograms):
            if kind is not own and name in kind:
                raise ValueError(f"metric {name!r} already registered "
                                 "as a different type")

    # ---------------------------------------------------------- reading

    def counter_value(self, name: str) -> float:
        """Total of a counter; 0 if it was never touched."""
        c = self._counters.get(name)
        return c.value if c is not None else 0

    def snapshot(self) -> dict[str, object]:
        """The whole registry as JSON-serializable plain data."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.to_dict() for n, h in sorted(self._histograms.items())
            },
        }

    def write_json(self, path: Path | str) -> Path:
        """Persist :meth:`snapshot` as pretty-printed JSON."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.snapshot(), indent=2) + "\n")
        return target

    # --------------------------------------------------- worker merging

    def merge_worker_delta(self, delta: Mapping[str, object]) -> None:
        """Fold a worker's :func:`snapshot_delta` into this registry.

        Executor worker tasks record into their own private registry
        (``Obs.deltas()``) and ship back plain data; the driver merges
        the deltas in shard order, which keeps ``metrics.json``
        bit-identical to a serial run.  Counters accumulate their
        (integer, hence exact) deltas; gauges and histograms arrive as
        cumulative worker-side state and *replace* the driver's copy —
        exact because their names are per-shard-exclusive (e.g.
        ``koidb.memtable_occupancy.r3``), where re-summing floats in a
        different order would not be.
        """
        counters = delta.get("counters", {})
        assert isinstance(counters, Mapping)
        for name, inc in counters.items():
            assert isinstance(inc, (int, float))
            # register even for a zero delta: a serial run registers
            # every instrument at construction, and snapshots must match
            self.counter(name).add(inc)
        gauges = delta.get("gauges", {})
        assert isinstance(gauges, Mapping)
        for name, value in gauges.items():
            assert isinstance(value, (int, float))
            self.gauge(name).set(value)
        histograms = delta.get("histograms", {})
        assert isinstance(histograms, Mapping)
        for name, data in histograms.items():
            assert isinstance(data, Mapping)
            bounds = data["bounds"]
            assert isinstance(bounds, Sequence)
            hist = self.histogram(name, bounds)
            counts = data["counts"]
            assert isinstance(counts, Sequence)
            count, total = data["count"], data["sum"]
            assert isinstance(count, int) and isinstance(total, (int, float))
            hmin, hmax = data["min"], data["max"]
            assert hmin is None or isinstance(hmin, (int, float))
            assert hmax is None or isinstance(hmax, (int, float))
            hist.counts = [int(c) for c in counts]
            hist.count = count
            hist.total = float(total)
            hist.min = float(hmin) if hmin is not None else float("inf")
            hist.max = float(hmax) if hmax is not None else float("-inf")


def snapshot_delta(
    cur: Mapping[str, object], prev: Mapping[str, object]
) -> dict[str, object]:
    """What changed between two registry snapshots, as mergeable data.

    Counters become numeric deltas (monotonic, so always >= 0); gauges
    and histograms are carried as the *cumulative* current state, since
    float state cannot be delta'd exactly — see
    :meth:`MetricsRegistry.merge_worker_delta` for the matching merge
    semantics.  This is what executor workers return to the driver.
    """
    cur_counters = cur.get("counters", {})
    prev_counters = prev.get("counters", {})
    assert isinstance(cur_counters, Mapping)
    assert isinstance(prev_counters, Mapping)
    counters: dict[str, float] = {}
    for name, value in cur_counters.items():
        assert isinstance(value, (int, float))
        before = prev_counters.get(name, 0)
        assert isinstance(before, (int, float))
        # zero deltas are kept: merging registers the instrument, so
        # the driver snapshot carries the same names a serial run would
        counters[name] = value - before
    cur_gauges = cur.get("gauges", {})
    cur_histograms = cur.get("histograms", {})
    assert isinstance(cur_gauges, Mapping)
    assert isinstance(cur_histograms, Mapping)
    return {
        "counters": counters,
        "gauges": dict(cur_gauges),
        "histograms": {n: dict(h) for n, h in cur_histograms.items()
                       if isinstance(h, Mapping)},
    }


class NullCounter(Counter):
    """Shared counter that ignores every increment."""

    __slots__ = ()

    def add(self, n: float = 1) -> None:
        return None


class NullGauge(Gauge):
    """Shared gauge that ignores every set."""

    __slots__ = ()

    def set(self, v: float) -> None:
        return None


class NullHistogram(Histogram):
    """Shared histogram that ignores every sample."""

    __slots__ = ()

    def observe(self, v: float) -> None:
        return None


class NullMetricsRegistry(MetricsRegistry):
    """Registry that hands out shared no-op instruments."""

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = NullCounter("null")
        self._null_gauge = NullGauge("null")
        self._null_histogram = NullHistogram("null", (1.0,))

    def counter(self, name: str) -> Counter:
        return self._null_counter

    def gauge(self, name: str) -> Gauge:
        return self._null_gauge

    def histogram(self, name: str, bounds: Sequence[float]) -> Histogram:
        return self._null_histogram

    def snapshot(self) -> dict[str, object]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def merge_worker_delta(self, delta: Mapping[str, object]) -> None:
        # dropping the merge keeps the shared no-op instruments pristine
        return None
