"""Chrome ``trace_event`` emission for CARP pipeline timelines.

The tracer records span (``B``/``E``), complete (``X``), instant
(``i``), and counter (``C``) events in the Chrome trace-event JSON
format, so a recorded run opens directly in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``.  The track layout
maps CARP's structure onto the viewer's process/thread hierarchy:

* **process** = track type (``route``, ``shuffle``, ``renegotiate``,
  ``flush``, ``query``, ``sim``, ``epoch``), and
* **thread** = the rank (or fabric/driver) within that type,

so e.g. every rank's routing activity lines up as one lane per rank
under the ``route`` process.  Timestamps are *virtual* — logical ticks
from :mod:`repro.obs.clock` (or simulated seconds in ``repro.sim``) —
never the host clock.

:class:`Tracer` is the no-op base (used directly when observability is
disabled); :class:`ChromeTracer` records.  :func:`validate_trace_events`
checks a document against the subset of the trace-event schema the
viewers require, and backs the golden-file test in ``tests/obs``.
"""

from __future__ import annotations

import json
from collections.abc import Mapping, Sequence
from pathlib import Path

#: Track handle: a (pid, tid) pair as assigned by :meth:`Tracer.track`.
Track = tuple[int, int]

#: A buffered trace event as plain data: the portable form worker-side
#: tracers (:class:`repro.obs.buffer.BufferingTracer`) ship back to the
#: driver.  Tracks are carried by *name* (``process``/``thread``), not by
#: pid/tid, because id assignment is owned by the merging tracer.
SpanRecord = dict[str, object]

#: Event phases this tracer emits (plus "M" metadata internally).
_PHASES = frozenset({"B", "E", "X", "i", "I", "C", "M"})


class Tracer:
    """No-op tracer: the disabled-observability implementation."""

    __slots__ = ()

    def track(self, process: str, thread: str = "main") -> Track:
        """Resolve (and lazily create) the track for a process/thread."""
        return (0, 0)

    def begin(self, track: Track, name: str, ts: float,
              args: dict[str, object] | None = None) -> None:
        """Open a span on ``track`` at virtual time ``ts``."""
        return None

    def end(self, track: Track, ts: float,
            args: dict[str, object] | None = None) -> None:
        """Close the most recently opened span on ``track``."""
        return None

    def complete(self, track: Track, name: str, ts: float, dur: float,
                 args: dict[str, object] | None = None) -> None:
        """Record a finished span of duration ``dur`` in one event."""
        return None

    def instant(self, track: Track, name: str, ts: float,
                args: dict[str, object] | None = None) -> None:
        """Record a point-in-time marker."""
        return None

    def counter(self, track: Track, name: str, ts: float,
                values: dict[str, float]) -> None:
        """Record sampled counter series values."""
        return None

    def events(self) -> list[dict[str, object]]:
        """All recorded events in render order."""
        return []

    def drain(self) -> list[SpanRecord]:
        """Buffered span records since the last drain (buffering tracers).

        The base tracer buffers nothing; only
        :class:`repro.obs.buffer.BufferingTracer` returns records here.
        """
        return []

    def merge_events(self, records: Sequence[Mapping[str, object]]) -> None:
        """Replay drained :data:`SpanRecord` data into this tracer.

        The no-op base drops them (disabled observability); the
        recording tracer resolves each record's named track and re-emits
        the event, which is how worker-side spans land in the driver's
        trace.  Callers merge in rank order so the result is
        deterministic regardless of execution interleaving.
        """
        return None

    def to_doc(self) -> dict[str, object]:
        """The complete Chrome trace-event JSON document."""
        return {"traceEvents": [], "displayTimeUnit": "ms"}

    def write(self, path: Path | str) -> Path:
        """Persist :meth:`to_doc` to ``path``."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.to_doc(), indent=1) + "\n")
        return target


#: Alias that makes call sites read naturally when wiring a disabled stack.
NullTracer = Tracer


class ChromeTracer(Tracer):
    """Recording tracer with stable track assignment.

    Events are buffered in memory; :meth:`events` returns them sorted
    by timestamp (stable, metadata first), which keeps the output
    well-ordered even when instrumented code closes spans out of the
    order it opened them across tracks.
    """

    __slots__ = ("_events", "_pids", "_tids", "_open", "_seq",
                 "unmatched_ends")

    def __init__(self) -> None:
        self._events: list[tuple[int, float, int, dict[str, object]]] = []
        self._pids: dict[str, int] = {}
        self._tids: dict[int, list[str]] = {}
        self._open: dict[Track, list[str]] = {}
        self._seq = 0
        #: ``end()`` calls that had no open span to close (instrumentation
        #: bugs surface here instead of corrupting the trace)
        self.unmatched_ends = 0

    # ------------------------------------------------------------ tracks

    def track(self, process: str, thread: str = "main") -> Track:
        pid = self._pids.get(process)
        if pid is None:
            pid = len(self._pids) + 1
            self._pids[process] = pid
            self._push_meta("process_name", pid, 0, {"name": process})
        threads = self._tids.setdefault(pid, [])
        if thread in threads:
            return (pid, threads.index(thread) + 1)
        threads.append(thread)
        tid = len(threads)
        self._push_meta("thread_name", pid, tid, {"name": thread})
        return (pid, tid)

    @property
    def track_types(self) -> list[str]:
        """Registered process (track-type) names, in creation order."""
        return sorted(self._pids, key=lambda p: self._pids[p])

    # ------------------------------------------------------------ events

    def _push(self, event: dict[str, object], rank: int, ts: float) -> None:
        self._events.append((rank, ts, self._seq, event))
        self._seq += 1

    def _push_meta(self, name: str, pid: int, tid: int,
                   args: dict[str, object]) -> None:
        self._push({"name": name, "ph": "M", "pid": pid, "tid": tid,
                    "args": args}, 0, 0.0)

    def _event(self, ph: str, track: Track, name: str, ts: float,
               args: dict[str, object] | None) -> dict[str, object]:
        event: dict[str, object] = {
            "name": name, "ph": ph, "ts": float(ts),
            "pid": track[0], "tid": track[1],
        }
        if args:
            event["args"] = dict(args)
        return event

    def begin(self, track: Track, name: str, ts: float,
              args: dict[str, object] | None = None) -> None:
        self._open.setdefault(track, []).append(name)
        self._push(self._event("B", track, name, ts, args), 1, ts)

    def end(self, track: Track, ts: float,
            args: dict[str, object] | None = None) -> None:
        stack = self._open.get(track)
        if not stack:
            self.unmatched_ends += 1
            return
        name = stack.pop()
        self._push(self._event("E", track, name, ts, args), 1, ts)

    def complete(self, track: Track, name: str, ts: float, dur: float,
                 args: dict[str, object] | None = None) -> None:
        event = self._event("X", track, name, ts, args)
        event["dur"] = float(dur)
        self._push(event, 1, ts)

    def instant(self, track: Track, name: str, ts: float,
                args: dict[str, object] | None = None) -> None:
        event = self._event("i", track, name, ts, args)
        event["s"] = "t"  # thread-scoped marker
        self._push(event, 1, ts)

    def counter(self, track: Track, name: str, ts: float,
                values: dict[str, float]) -> None:
        event = self._event("C", track, name, ts,
                            {k: float(v) for k, v in values.items()})
        self._push(event, 1, ts)

    # ------------------------------------------------------------ merging

    def merge_events(self, records: Sequence[Mapping[str, object]]) -> None:
        for rec in records:
            process, thread = rec.get("process"), rec.get("thread")
            if not isinstance(process, str) or not isinstance(thread, str):
                raise ValueError(f"span record without a named track: {rec!r}")
            track = self.track(process, thread)
            ph = rec.get("ph")
            name = rec.get("name")
            ts = rec.get("ts")
            if not isinstance(ts, (int, float)):
                raise ValueError(f"span record without a numeric ts: {rec!r}")
            raw_args = rec.get("args")
            args: dict[str, object] | None = (
                dict(raw_args) if isinstance(raw_args, Mapping) else None
            )
            if ph == "E":
                self.end(track, float(ts), args)
                continue
            if not isinstance(name, str):
                raise ValueError(f"span record without a name: {rec!r}")
            if ph == "X":
                dur = rec.get("dur")
                if not isinstance(dur, (int, float)):
                    raise ValueError(f"'X' record without a duration: {rec!r}")
                self.complete(track, name, float(ts), float(dur), args)
            elif ph == "B":
                self.begin(track, name, float(ts), args)
            elif ph == "i":
                self.instant(track, name, float(ts), args)
            elif ph == "C":
                values = rec.get("values")
                if not isinstance(values, Mapping):
                    raise ValueError(f"'C' record without values: {rec!r}")
                self.counter(
                    track, name, float(ts),
                    {str(k): float(v) for k, v in values.items()  # type: ignore[arg-type]
                     if isinstance(v, (int, float))},
                )
            else:
                raise ValueError(f"span record with unknown phase {ph!r}")

    # ------------------------------------------------------------ export

    @property
    def open_spans(self) -> dict[Track, list[str]]:
        """Spans begun but not yet ended, per track (for diagnostics)."""
        return {t: list(s) for t, s in self._open.items() if s}

    def events(self) -> list[dict[str, object]]:
        # metadata (rank 0) first, then by timestamp; the sequence
        # number keeps the sort stable so same-ts B/E pairs and nested
        # spans stay in emission order
        return [e for _, _, _, e in sorted(
            self._events, key=lambda item: (item[0], item[1], item[2])
        )]

    def to_doc(self) -> dict[str, object]:
        return {"traceEvents": self.events(), "displayTimeUnit": "ms"}


def validate_trace_events(doc: object) -> list[str]:
    """Check a document against the Chrome trace-event schema subset.

    Returns a list of human-readable problems; an empty list means the
    document will load in Perfetto / ``chrome://tracing``.  Checked:
    top-level shape, required per-event fields, known phases, numeric
    non-negative timestamps/durations, and balanced ``B``/``E`` pairs
    per track.
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"top level must be an object, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["top level must contain a 'traceEvents' array"]
    stacks: dict[tuple[object, object], list[str]] = {}
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in _PHASES:
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: missing string 'name'")
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                problems.append(f"{where}: missing integer {field!r}")
        if ph != "M":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"{where}: 'ts' must be a non-negative number")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: 'dur' must be a non-negative number")
        if "args" in event and not isinstance(event["args"], dict):
            problems.append(f"{where}: 'args' must be an object")
        key = (event.get("pid"), event.get("tid"))
        if ph == "B":
            stacks.setdefault(key, []).append(str(event.get("name")))
        elif ph == "E":
            stack = stacks.get(key)
            if not stack:
                problems.append(f"{where}: 'E' with no open span on {key}")
            else:
                stack.pop()
    for key, stack in stacks.items():
        if stack:
            problems.append(f"unclosed span(s) {stack} on track {key}")
    return problems
