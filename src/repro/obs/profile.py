"""Deterministic cost-attribution profiles from archived artifacts.

This module folds the observability artifacts a recorded run already
persists — ``trace.json`` span trees and ``metrics.json`` counters —
into collapsed-stack *virtual-time* profiles with exact cost
annotation: every stack frame carries self/total virtual nanoseconds
plus the bytes, records, and SST-probe counts its spans reported, and
:meth:`Profile.reconcile` cross-checks the folded totals against the
metrics registry the same way ``carp-explain`` reconciles
:class:`~repro.query.explain.QueryExplain` (any drift is an
instrumentation bug, worth a nonzero exit).

Because the inputs are bit-identical across Serial/Thread/Process
executors (the PR-4 trace contract) and the fold is pure integer
arithmetic over them, the profiles themselves are bit-identical across
backends — a determinism contract of their own, enforced by
``tests/exec/test_profile_determinism.py`` and lint rule O505: profile
builders operate on *archived artifacts only*.  This module therefore
imports nothing from the live observability stack — no clocks, no
tracers, no registries — and consumes plain decoded JSON.

Virtual nanoseconds: one virtual clock tick is folded as one second,
quantized per *event timestamp* (``round(ts * 1e9)``) before any
subtraction, so self-time (``total - sum(children)``) is exact,
non-negative integer arithmetic and never accumulates float error.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

__all__ = [
    "PHASE_BY_TRACK",
    "Profile",
    "ProfileDiff",
    "ProfileFrame",
    "DiffEntry",
    "RECONCILIATIONS",
    "fold",
    "fold_trace_doc",
    "diff_profiles",
]

#: Phase a track type's spans fold under.  Unknown track types become
#: their own phase, so new subsystems degrade gracefully rather than
#: vanishing from the profile.
PHASE_BY_TRACK: Mapping[str, str] = {
    "route": "route",
    "shuffle": "route",
    "renegotiate": "ingest",
    "epoch": "ingest",
    "sim": "ingest",
    "faults": "ingest",
    "flush": "flush",
    "query": "probe",
    "serve": "serve",
    "compact": "compact",
}

#: ``(attribute, counter, ((phase, leaf), ...))`` join table: the sum
#: of ``attribute`` over frames whose stack starts at ``phase`` and
#: ends at ``leaf`` must equal the metrics counter *exactly*.  These
#: pair the span-arg attribution with the counters incremented at the
#: same code sites (see ``carp-trace``'s run-stats reconciliation).
RECONCILIATIONS: tuple[tuple[str, str, tuple[tuple[str, str], ...]], ...] = (
    # route spans count every record a route pass handled, including
    # OOB leftovers re-routed after renegotiation — the counter is
    # incremented at the span site with the same value
    ("records", "carp.records_routed", (("route", "route"),)),
    ("records", "carp.records_shuffled", (("route", "deliver"),)),
    ("records", "koidb.records_in",
     (("flush", "flush"), ("flush", "flush-stray"))),
    ("bytes", "koidb.bytes_written",
     (("flush", "flush"), ("flush", "flush-stray"))),
    ("bytes", "query.probe_bytes", (("probe", "probe"),)),
    # a per-log probe span's ``ssts`` arg is that log's read-request
    # count; the per-query span's ``ssts_read`` arg is the candidate
    # SST count — two different exact quantities, two different joins
    ("ssts", "query.read_requests", (("probe", "probe"),)),
    ("ssts", "query.ssts_read", (("probe", "query"),)),
    ("matched", "query.records_matched", (("probe", "query"),)),
    ("records", "compact.records", (("compact", "compact"),)),
    ("bytes", "compact.bytes_written", (("compact", "compact"),)),
)

_SCHEMA = "carp-profile-v1"
_DIFF_SCHEMA = "carp-profile-diff-v1"

#: Per-rank/per-epoch span names ("epoch 3", "level 0") collapse to
#: their stem so one frame aggregates the whole family.
_INSTANCE_SUFFIX = re.compile(r"\s+\d+$")


def _num(value: object) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return 0.0
    return float(value)


def _ns(ts: object) -> int:
    """Quantize one virtual-tick timestamp to integer nanoseconds."""
    return round(_num(ts) * 1e9)


def _canonical(name: str) -> str:
    return _INSTANCE_SUFFIX.sub("", name)


def _attr_int(args: Mapping[str, object], *names: str) -> int:
    """First numeric (non-bool) arg among ``names``, as an int."""
    for name in names:
        value = args.get(name)
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            return int(value)
    return 0


@dataclass(frozen=True)
class ProfileFrame:
    """One collapsed stack path and its aggregated exact costs."""

    #: ``(phase, name, name, ...)`` — phase first, innermost span last.
    stack: tuple[str, ...]
    #: spans folded into this frame
    count: int
    #: inclusive virtual nanoseconds (this frame plus its children)
    total_ns: int
    #: exclusive virtual nanoseconds (total minus folded children)
    self_ns: int
    #: exact bytes attributed by span args (``bytes``/``bytes_read``)
    bytes: int
    #: exact records attributed (``records``/``scanned``)
    records: int
    #: exact SST probes attributed (``ssts``/``ssts_read``)
    ssts: int
    #: exact matched records attributed (``matched``)
    matched: int

    @property
    def path(self) -> str:
        return ";".join(self.stack)

    def to_doc(self) -> dict[str, Any]:
        return {
            "stack": list(self.stack),
            "count": self.count,
            "total_ns": self.total_ns,
            "self_ns": self.self_ns,
            "bytes": self.bytes,
            "records": self.records,
            "ssts": self.ssts,
            "matched": self.matched,
        }


class _OpenSpan:
    """A ``B`` event waiting for its ``E`` on one (pid, tid) lane."""

    __slots__ = ("name", "start_ns", "child_ns", "args")

    def __init__(self, name: str, start_ns: int,
                 args: dict[str, object]) -> None:
        self.name = name
        self.start_ns = start_ns
        self.child_ns = 0
        self.args = args


@dataclass(frozen=True)
class Profile:
    """A folded, cost-annotated profile of one recorded run."""

    #: frames sorted by stack path (the canonical, deterministic order)
    frames: tuple[ProfileFrame, ...]
    #: ``E`` events that arrived with no open span (malformed trace)
    unmatched_ends: int
    #: ``B`` events never closed (crashed or truncated recording)
    unclosed_spans: int

    # ------------------------------------------------------------ shape

    def by_path(self) -> dict[str, ProfileFrame]:
        return {f.path: f for f in self.frames}

    def phases(self) -> dict[str, dict[str, int]]:
        """Per-phase rollup: span count, frames, self/total ns.

        ``total_ns`` sums *root* frames only (children are contained),
        so per-phase ``self_ns == total_ns`` holds by construction —
        the internal consistency :meth:`reconcile` re-asserts.
        """
        out: dict[str, dict[str, int]] = {}
        for frame in self.frames:
            phase = out.setdefault(frame.stack[0], {
                "frames": 0, "count": 0, "self_ns": 0, "total_ns": 0,
            })
            phase["frames"] += 1
            phase["count"] += frame.count
            phase["self_ns"] += frame.self_ns
            if len(frame.stack) == 2:  # (phase, root span)
                phase["total_ns"] += frame.total_ns
        return out

    def totals(self) -> dict[str, int]:
        return {
            "spans": sum(f.count for f in self.frames),
            "self_ns": sum(f.self_ns for f in self.frames),
            "total_ns": sum(p["total_ns"] for p in self.phases().values()),
            "bytes": sum(f.bytes for f in self.frames),
            "records": sum(f.records for f in self.frames),
            "ssts": sum(f.ssts for f in self.frames),
            "matched": sum(f.matched for f in self.frames),
        }

    # --------------------------------------------------------- documents

    def to_doc(self) -> dict[str, Any]:
        return {
            "schema": _SCHEMA,
            "phases": self.phases(),
            "totals": self.totals(),
            "frames": [f.to_doc() for f in self.frames],
            "unmatched_ends": self.unmatched_ends,
            "unclosed_spans": self.unclosed_spans,
        }

    def to_json(self) -> str:
        """Canonical byte-stable JSON rendering (sorted keys)."""
        return json.dumps(self.to_doc(), indent=2, sort_keys=True) + "\n"

    def to_folded(self) -> str:
        """Collapsed-stack text: ``phase;span;span <self_ns>`` per line.

        The format FlameGraph/speedscope consume; sorted by path so the
        bytes are stable across runs and backends.
        """
        return "".join(
            f"{frame.path} {frame.self_ns}\n" for frame in self.frames
        )

    @classmethod
    def from_doc(cls, doc: Mapping[str, Any]) -> "Profile":
        if doc.get("schema") != _SCHEMA:
            raise ValueError(
                f"not a {_SCHEMA} document (schema={doc.get('schema')!r})"
            )
        frames = tuple(
            ProfileFrame(
                stack=tuple(str(part) for part in row["stack"]),
                count=int(row["count"]),
                total_ns=int(row["total_ns"]),
                self_ns=int(row["self_ns"]),
                bytes=int(row["bytes"]),
                records=int(row["records"]),
                ssts=int(row["ssts"]),
                matched=int(row["matched"]),
            )
            for row in doc["frames"]
        )
        return cls(
            frames=frames,
            unmatched_ends=int(doc.get("unmatched_ends", 0)),
            unclosed_spans=int(doc.get("unclosed_spans", 0)),
        )

    # ------------------------------------------------------- reconcile

    def _join_sum(self, attr: str,
                  pairs: tuple[tuple[str, str], ...]) -> tuple[int, int]:
        """(attribute sum, matching frame count) over join targets."""
        total = 0
        hits = 0
        for frame in self.frames:
            for phase, leaf in pairs:
                if frame.stack[0] == phase and frame.stack[-1] == leaf:
                    total += int(getattr(frame, attr))
                    hits += frame.count
                    break
        return total, hits

    def reconcile(self, snapshot: Mapping[str, Any]) -> list[str]:
        """Cross-check folded totals against a metrics snapshot.

        Returns human-readable drift descriptions (empty == clean).
        Every join in :data:`RECONCILIATIONS` whose counter exists in
        the snapshot — or whose frames attributed work — must agree
        *exactly*; a malformed trace (unmatched/unclosed spans) is a
        reconciliation failure too, because its totals are partial.
        """
        errors: list[str] = []
        if self.unmatched_ends:
            errors.append(
                f"trace has {self.unmatched_ends} unmatched span end(s)"
            )
        if self.unclosed_spans:
            errors.append(
                f"trace has {self.unclosed_spans} unclosed span(s)"
            )
        counters = snapshot.get("counters", {})
        if not isinstance(counters, Mapping):
            return errors + ["metrics snapshot has no counters mapping"]
        for attr, counter, pairs in RECONCILIATIONS:
            span_sum, hits = self._join_sum(attr, pairs)
            raw = counters.get(counter)
            if raw is None:
                if span_sum:
                    errors.append(
                        f"frames attribute {attr}={span_sum} at "
                        f"{self._join_desc(pairs)} but counter "
                        f"{counter} was never recorded"
                    )
                continue
            want = float(raw)
            if float(span_sum) != want:
                errors.append(
                    f"profile {attr} at {self._join_desc(pairs)} "
                    f"= {span_sum} != counter {counter} = {want:g}"
                )
        # internal consistency: per-phase exclusive time must re-add to
        # the contained root-span time (the collapse loses nothing)
        for phase, rollup in self.phases().items():
            if rollup["self_ns"] != rollup["total_ns"]:
                errors.append(
                    f"phase {phase}: self_ns sum {rollup['self_ns']} != "
                    f"root total_ns {rollup['total_ns']}"
                )
        return errors

    @staticmethod
    def _join_desc(pairs: tuple[tuple[str, str], ...]) -> str:
        return "+".join(f"{phase};*;{leaf}" for phase, leaf in pairs)


# ------------------------------------------------------------------ fold


def fold(events: Iterable[Mapping[str, Any]]) -> Profile:
    """Fold Chrome ``trace_event`` dicts into a collapsed-stack profile.

    Consumes the (already deterministic) archived event order: per
    (pid, tid) lane, ``B``/``E`` pairs nest and ``X`` completes nest
    under whatever span is open on the same lane.  Instants, counter
    samples, and metadata contribute no frames; metadata names each
    pid's track type, which picks the frame's phase.
    """
    process_names: dict[int, str] = {}
    stacks: dict[tuple[int, int], list[_OpenSpan]] = {}
    agg: dict[tuple[str, ...], list[int]] = {}
    # aggregate slots: count, total_ns, self_ns, bytes, records, ssts,
    # matched — a plain list avoids churning frozen dataclasses per span
    unmatched_ends = 0

    def record(stack_of: tuple[int, int], name: str, total_ns: int,
               self_ns: int, args: Mapping[str, object]) -> None:
        pid, _tid = stack_of
        track = process_names.get(pid, f"pid-{pid}")
        phase = PHASE_BY_TRACK.get(track, track)
        path = (phase,) + tuple(
            _canonical(open_span.name) for open_span in stacks[stack_of]
        ) + (_canonical(name),)
        slot = agg.setdefault(path, [0, 0, 0, 0, 0, 0, 0])
        slot[0] += 1
        slot[1] += total_ns
        slot[2] += self_ns
        slot[3] += _attr_int(args, "bytes", "bytes_read")
        slot[4] += _attr_int(args, "records", "scanned")
        slot[5] += _attr_int(args, "ssts", "ssts_read")
        slot[6] += _attr_int(args, "matched")

    for event in events:
        ph = event.get("ph")
        pid = int(_num(event.get("pid", 0)))
        tid = int(_num(event.get("tid", 0)))
        if ph == "M":
            if event.get("name") == "process_name":
                meta_args = event.get("args")
                if isinstance(meta_args, Mapping):
                    process_names[pid] = str(meta_args.get("name", pid))
            continue
        if ph not in ("B", "E", "X"):
            continue
        lane = (pid, tid)
        stack = stacks.setdefault(lane, [])
        raw_args = event.get("args")
        args: dict[str, object] = (
            dict(raw_args) if isinstance(raw_args, Mapping) else {}
        )
        if ph == "B":
            stack.append(_OpenSpan(
                str(event.get("name", "?")), _ns(event.get("ts", 0)), args,
            ))
        elif ph == "E":
            if not stack:
                unmatched_ends += 1
                continue
            span = stack.pop()
            end_ns = _ns(event.get("ts", 0))
            total_ns = end_ns - span.start_ns
            merged = dict(span.args)
            merged.update(args)
            if stack:
                stack[-1].child_ns += total_ns
            record(lane, span.name, total_ns,
                   total_ns - span.child_ns, merged)
        else:  # X: a complete span, nested under the lane's open B
            start_ns = _ns(event.get("ts", 0))
            dur_ns = _ns(_num(event.get("ts", 0))
                         + _num(event.get("dur", 0))) - start_ns
            if stack:
                stack[-1].child_ns += dur_ns
            record(lane, str(event.get("name", "?")), dur_ns, dur_ns, args)

    unclosed = sum(len(stack) for stack in stacks.values())
    frames = tuple(
        ProfileFrame(
            stack=path, count=slot[0], total_ns=slot[1], self_ns=slot[2],
            bytes=slot[3], records=slot[4], ssts=slot[5], matched=slot[6],
        )
        for path, slot in sorted(agg.items())
    )
    return Profile(frames=frames, unmatched_ends=unmatched_ends,
                   unclosed_spans=unclosed)


def fold_trace_doc(doc: Mapping[str, Any]) -> Profile:
    """Fold a whole ``trace.json`` document (``traceEvents`` list)."""
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace document has no traceEvents list")
    return fold(events)


# ------------------------------------------------------------------ diff


@dataclass(frozen=True)
class DiffEntry:
    """One stack path's A-vs-B delta, exact in every dimension."""

    stack: tuple[str, ...]
    self_ns_a: int
    self_ns_b: int
    total_ns_a: int
    total_ns_b: int
    bytes_a: int
    bytes_b: int
    count_a: int
    count_b: int

    @property
    def path(self) -> str:
        return ";".join(self.stack)

    @property
    def self_delta_ns(self) -> int:
        return self.self_ns_b - self.self_ns_a

    @property
    def total_delta_ns(self) -> int:
        return self.total_ns_b - self.total_ns_a

    @property
    def bytes_delta(self) -> int:
        return self.bytes_b - self.bytes_a

    @property
    def count_delta(self) -> int:
        return self.count_b - self.count_a

    @property
    def changed(self) -> bool:
        return bool(self.self_delta_ns or self.total_delta_ns
                    or self.bytes_delta or self.count_delta)

    def to_doc(self) -> dict[str, Any]:
        return {
            "stack": list(self.stack),
            "self_ns_a": self.self_ns_a,
            "self_ns_b": self.self_ns_b,
            "self_delta_ns": self.self_delta_ns,
            "total_delta_ns": self.total_delta_ns,
            "bytes_a": self.bytes_a,
            "bytes_b": self.bytes_b,
            "bytes_delta": self.bytes_delta,
            "count_a": self.count_a,
            "count_b": self.count_b,
            "count_delta": self.count_delta,
        }


@dataclass(frozen=True)
class ProfileDiff:
    """A-vs-B differential profile, sorted by contribution.

    Entries are ordered by descending absolute self-time delta, then
    absolute byte delta, then path — so ``entries[0]`` *is* the blame:
    the span path contributing most to the regression.
    """

    entries: tuple[DiffEntry, ...]

    def changed(self) -> tuple[DiffEntry, ...]:
        return tuple(e for e in self.entries if e.changed)

    def top_paths(self, n: int = 3) -> list[tuple[str, int, int]]:
        """``(path, self_delta_ns, bytes_delta)`` for the top offenders."""
        return [
            (e.path, e.self_delta_ns, e.bytes_delta)
            for e in self.changed()[:n]
        ]

    def to_doc(self) -> dict[str, Any]:
        changed = self.changed()
        return {
            "schema": _DIFF_SCHEMA,
            "self_delta_ns": sum(e.self_delta_ns for e in self.entries),
            "bytes_delta": sum(e.bytes_delta for e in self.entries),
            "changed_paths": len(changed),
            "entries": [e.to_doc() for e in changed],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_doc(), indent=2, sort_keys=True) + "\n"


def diff_profiles(a: Profile, b: Profile) -> ProfileDiff:
    """Attribute B-minus-A drift to specific span paths."""
    frames_a = {f.stack: f for f in a.frames}
    frames_b = {f.stack: f for f in b.frames}
    entries = []
    for stack in sorted(set(frames_a) | set(frames_b)):
        fa = frames_a.get(stack)
        fb = frames_b.get(stack)
        entries.append(DiffEntry(
            stack=stack,
            self_ns_a=fa.self_ns if fa else 0,
            self_ns_b=fb.self_ns if fb else 0,
            total_ns_a=fa.total_ns if fa else 0,
            total_ns_b=fb.total_ns if fb else 0,
            bytes_a=fa.bytes if fa else 0,
            bytes_b=fb.bytes if fb else 0,
            count_a=fa.count if fa else 0,
            count_b=fb.count if fb else 0,
        ))
    entries.sort(key=lambda e: (-abs(e.self_delta_ns), -abs(e.bytes_delta),
                                e.stack))
    return ProfileDiff(entries=tuple(entries))
