"""Per-request causal context for the telemetry plane.

A :class:`RequestContext` names one logical request — an ingested
epoch or a range query — with a *deterministic* id minted at the
:class:`repro.api.Session` entry points.  The id rides along the
request's whole causal path: driver-side spans pick it up from
``Obs.request_id``, worker-side spans pick it up from the ``("ctx",
request_id)`` command the driver enqueues into each rank's KoiDB
command stream, and telemetry samples carry it so counter deltas are
attributable to the request that caused them.

Determinism is the point: ids are sequence numbers per request kind
(``ingest-000001``, ``query-000002``, ...), not UUIDs or timestamps,
so the same workload produces the same ids on every executor backend —
which is what lets ``carp-trace --request <id>`` reconstruct one
query's cross-worker tree from a trace recorded on *any* backend and
lets the cross-backend determinism suite compare attribution
bit-for-bit.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass


@dataclass(frozen=True)
class RequestContext:
    """One logical request's identity, carried across the causal path."""

    #: The deterministic id, e.g. ``ingest-000001`` / ``query-000003``.
    request_id: str
    #: Request kind: ``ingest`` | ``query``.
    kind: str
    #: 1-based sequence number within the kind.
    seq: int


class RequestIdAllocator:
    """Mints :class:`RequestContext` ids as per-kind sequence numbers.

    One allocator per :class:`~repro.api.Session`; the id depends only
    on the order of prior requests of the same kind, never on wall
    time or randomness, so a replayed workload re-mints the same ids.

    Minting is thread-safe: the serve plane
    (:class:`~repro.query.service.QueryService`) mints ``query`` ids
    from submitter threads while ``ingest`` ids are minted on the
    driver thread.  Ids stay deterministic as a *set* per kind — the
    sequence a given request receives depends only on the order of
    prior requests of the same kind.
    """

    __slots__ = ("_next", "_mint_lock")

    def __init__(self) -> None:
        self._next: dict[str, int] = {}
        self._mint_lock = threading.Lock()

    def mint(self, kind: str) -> RequestContext:
        """The next request context for ``kind``."""
        with self._mint_lock:
            seq = self._next.get(kind, 0) + 1
            self._next[kind] = seq
        return RequestContext(
            request_id=f"{kind}-{seq:06d}", kind=kind, seq=seq
        )
