"""``carp-serve`` — closed-loop serving-plane workload driver.

Runs a registered ``serve`` workload (``clients`` concurrent
closed-loop clients against :meth:`repro.api.Session.serve` while
epochs keep ingesting), prints served-latency p50/p95/p99 from
:meth:`~repro.obs.metrics.Histogram.quantile` plus the exact workload
counters, and optionally persists the run's observability artifacts
(metrics.json / trace.json / telemetry.jsonl) for ``carp-health``::

    carp-serve                          # serve-mixed, table on stdout
    carp-serve --out serve-obs          # + artifacts under serve-obs/
    carp-serve --json serve-report.json

Exit status: 0 when every request was answered (ok / deadline-
exceeded are both answers), 1 when the run surfaced errors or
rejections, 2 for usage problems.  The same workload is baseline-
gated by ``carp-perf compare serve-mixed``; this tool is the
interactive / artifact-producing front end.

See docs/SERVING.md for the serving-plane contract.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from dataclasses import asdict
from pathlib import Path

from repro.bench.tables import render_table
from repro.perf.serve import ServeReport, run_serve_workload
from repro.perf.workloads import WORKLOADS


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="carp-serve",
        description=(
            "Drive Session.serve() with concurrent closed-loop clients "
            "while epochs ingest; report latency quantiles and counters."
        ),
    )
    p.add_argument("--workload", default="serve-mixed", metavar="NAME",
                   help="registered serve workload (default: serve-mixed)")
    p.add_argument("--out", type=Path, default=None, metavar="DIR",
                   help="persist metrics/trace/telemetry artifacts to DIR")
    p.add_argument("--json", type=Path, default=None, metavar="PATH",
                   help="also write the full report as JSON")
    return p


def render_report(report: ServeReport) -> str:
    rows = [
        ("requests", report.requests),
        ("ok", report.ok),
        ("deadline_exceeded", report.deadline_exceeded),
        ("rejected", report.rejected),
        ("errors", report.errors),
        ("cache_hits", report.cache_hits),
        ("cache_misses", report.cache_misses),
        ("engine_queries", report.engine_queries),
        ("invalidations", report.invalidations),
        ("payload_digest", report.payload_digest),
        ("latency_p50 (virtual s)", f"{report.latency_p50:.6g}"),
        ("latency_p95 (virtual s)", f"{report.latency_p95:.6g}"),
        ("latency_p99 (virtual s)", f"{report.latency_p99:.6g}"),
        ("latency_mean (virtual s)", f"{report.latency_mean:.6g}"),
        ("wall_seconds", f"{report.wall_seconds:.3f}"),
    ]
    return render_table(
        ("metric", "value"), rows, title=f"carp-serve: {report.workload}"
    )


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    spec = WORKLOADS.get(args.workload)
    if spec is None or spec.kind != "serve":
        serve_names = sorted(
            n for n, s in WORKLOADS.items() if s.kind == "serve"
        )
        print(
            f"error: unknown serve workload {args.workload!r}; "
            f"have {serve_names}",
            file=sys.stderr,
        )
        return 2

    with tempfile.TemporaryDirectory(prefix="carp-serve-") as scratch:
        report = run_serve_workload(spec, Path(scratch), out_dir=args.out)

    print(render_report(report))
    for artifact in report.artifacts:
        print(f"artifact: {artifact}")
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(
            json.dumps(asdict(report), indent=2, sort_keys=True) + "\n"
        )
        print(f"report: {args.json}")

    if report.errors or report.rejected:
        print(
            f"error: serve run surfaced {report.errors} error(s) and "
            f"{report.rejected} rejection(s)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
