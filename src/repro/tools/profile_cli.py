"""``carp-profile`` — deterministic cost-attribution profiles.

Folds the artifacts an instrumented run already archived (``carp-trace
-o DIR``, ``carp-serve --out DIR``, a perf workload's recording) into
collapsed-stack virtual-time profiles with exact byte/record/SST
attribution, and diffs two profiles to blame a regression on specific
span paths.  Everything operates on *archived artifacts only* (lint
rule O505): no run is executed, no clock is read, so repeat
invocations over the same inputs are byte-identical.

Two subcommands:

* ``carp-profile record DIR [-o OUT]`` — fold ``DIR/trace.json`` (+
  ``DIR/metrics.json`` when present) into ``OUT/profile.json`` and
  ``OUT/profile.folded`` (FlameGraph/speedscope collapsed stacks).
  The folded totals are reconciled against the metrics counters the
  same way ``carp-explain`` reconciles query costs; any drift exits 1.
  A missing ``metrics.json`` degrades to a warning (profile still
  written, reconciliation skipped).
* ``carp-profile diff A B [--json PATH]`` — differential profile:
  virtual-time and byte deltas per span path, sorted by contribution.
  ``A``/``B`` may be ``profile.json`` files or artifact directories
  (their committed profile is used, else their trace is folded).

    carp-profile record /tmp/carp-obs
    carp-profile diff results/baselines/profiles/ingest-serial.json run2/
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

from repro.bench.tables import render_table
from repro.obs.profile import (
    Profile,
    ProfileDiff,
    diff_profiles,
    fold_trace_doc,
)


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="carp-profile",
        description=(
            "Fold archived trace/metrics artifacts into deterministic "
            "cost-attribution profiles; diff profiles to blame "
            "regressions on span paths."
        ),
    )
    sub = p.add_subparsers(dest="command", required=True)

    rec = sub.add_parser(
        "record", help="fold an artifact directory into a profile"
    )
    rec.add_argument("directory", type=Path, metavar="DIR",
                     help="artifact directory holding trace.json "
                          "(+ metrics.json for reconciliation)")
    rec.add_argument("-o", "--output", type=Path, default=None,
                     help="where to write profile.json/profile.folded "
                          "(default: DIR)")
    rec.add_argument("--top", type=int, default=10, metavar="N",
                     help="frames to print, by self time (default: 10)")

    dif = sub.add_parser("diff", help="differential profile A vs B")
    dif.add_argument("a", type=Path, metavar="A",
                     help="baseline profile.json or artifact directory")
    dif.add_argument("b", type=Path, metavar="B",
                     help="candidate profile.json or artifact directory")
    dif.add_argument("--json", type=Path, default=None,
                     help="also write the diff document to PATH")
    dif.add_argument("--top", type=int, default=10, metavar="N",
                     help="changed paths to print (default: 10)")
    return p


def _load_json(path: Path) -> Any:
    return json.loads(path.read_text())


def load_profile(source: Path) -> tuple[Profile, list[str]]:
    """A profile from a ``profile.json`` file or artifact directory.

    Returns ``(profile, notes)``; raises ``ValueError``/``OSError``
    with a path-bearing message when the source holds neither a
    profile nor a foldable trace.
    """
    notes: list[str] = []
    if source.is_dir():
        committed = source / "profile.json"
        if committed.is_file():
            return Profile.from_doc(_load_json(committed)), notes
        trace = source / "trace.json"
        if not trace.is_file():
            raise FileNotFoundError(
                f"{source} holds neither profile.json nor trace.json"
            )
        notes.append(f"folded {trace} on the fly (no committed profile)")
        return fold_trace_doc(_load_json(trace)), notes
    doc = _load_json(source)
    if isinstance(doc, dict) and "traceEvents" in doc:
        return fold_trace_doc(doc), notes
    return Profile.from_doc(doc), notes


def _phase_table(profile: Profile) -> str:
    rollup = profile.phases()
    return render_table(
        ("phase", "spans", "frames", "self ns", "total ns"),
        [
            (phase, row["count"], row["frames"],
             row["self_ns"], row["total_ns"])
            for phase, row in sorted(rollup.items())
        ],
        title="virtual time by phase",
    )


def _frame_table(profile: Profile, top: int) -> str:
    frames = sorted(profile.frames,
                    key=lambda f: (-f.self_ns, f.stack))[:top]
    return render_table(
        ("stack", "count", "self ns", "total ns", "bytes", "records",
         "ssts", "matched"),
        [
            (f.path, f.count, f.self_ns, f.total_ns, f.bytes,
             f.records, f.ssts, f.matched)
            for f in frames
        ],
        title=f"top {len(frames)} frames by self time",
    )


def write_profile(profile: Profile, out_dir: Path) -> tuple[Path, Path]:
    """Persist ``profile.json`` + ``profile.folded`` under ``out_dir``."""
    out_dir.mkdir(parents=True, exist_ok=True)
    json_path = out_dir / "profile.json"
    folded_path = out_dir / "profile.folded"
    json_path.write_text(profile.to_json())
    folded_path.write_text(profile.to_folded())
    return json_path, folded_path


def _cmd_record(args: argparse.Namespace) -> int:
    directory: Path = args.directory
    trace_path = directory / "trace.json"
    try:
        trace_doc = _load_json(trace_path)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {trace_path}: {exc}", file=sys.stderr)
        return 2
    try:
        profile = fold_trace_doc(trace_doc)
    except ValueError as exc:
        print(f"error: {trace_path}: {exc}", file=sys.stderr)
        return 2

    errors: list[str] = []
    metrics_path = directory / "metrics.json"
    if metrics_path.is_file():
        try:
            snapshot = _load_json(metrics_path)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"warning: cannot read {metrics_path}: {exc}; "
                  "reconciliation skipped", file=sys.stderr)
        else:
            errors = profile.reconcile(snapshot)
    else:
        print(f"warning: {metrics_path} missing; reconciliation skipped",
              file=sys.stderr)

    json_path, folded_path = write_profile(
        profile, args.output if args.output is not None else directory
    )
    print(_phase_table(profile))
    print()
    print(_frame_table(profile, args.top))
    totals = profile.totals()
    print()
    print(f"profile:  {json_path} ({len(profile.frames)} frames, "
          f"{totals['spans']} spans, {totals['self_ns']} self ns)")
    print(f"folded:   {folded_path}")
    if errors:
        for err in errors:
            print(f"error: reconcile: {err}", file=sys.stderr)
        return 1
    if metrics_path.is_file():
        print("reconcile: profile totals match metrics counters exactly")
    return 0


def _diff_table(diff: ProfileDiff, top: int) -> str:
    entries = diff.changed()[:top]
    return render_table(
        ("stack", "self ns (A)", "self ns (B)", "Δ self ns", "Δ bytes",
         "Δ spans"),
        [
            (e.path, e.self_ns_a, e.self_ns_b,
             f"{e.self_delta_ns:+d}", f"{e.bytes_delta:+d}",
             f"{e.count_delta:+d}")
            for e in entries
        ],
        title=f"top {len(entries)} changed span paths (by contribution)",
    )


def _cmd_diff(args: argparse.Namespace) -> int:
    try:
        profile_a, notes_a = load_profile(args.a)
        profile_b, notes_b = load_profile(args.b)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for note in notes_a + notes_b:
        print(f"note: {note}")
    diff = diff_profiles(profile_a, profile_b)
    doc = diff.to_doc()
    changed = diff.changed()
    if not changed:
        print("profiles are identical (no changed span paths)")
    else:
        print(_diff_table(diff, args.top))
        print()
        print(f"changed paths: {doc['changed_paths']}, "
              f"net self time {doc['self_delta_ns']:+d} ns, "
              f"net bytes {doc['bytes_delta']:+d}")
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(diff.to_json())
        print(f"diff document: {args.json}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "record":
        return _cmd_record(args)
    return _cmd_diff(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
