"""``carp-range-reader`` — analyze and query partitioned output (artifact A5).

Mirrors the paper artifact's CLI:

* ``-a`` analyzes the store (per-probe selectivity statistics),
* ``-q -e EPOCH -x LO -y HI`` runs a single range query,
* ``-b BATCH.csv`` runs a query batch (``epoch,query_begin,query_end``
  rows) and writes a per-query ``querylog.csv``.

Works identically against CARP output and compactor (sorted) output.

Examples::

    carp-range-reader -i /tmp/carp-out -a
    carp-range-reader -i /tmp/carp-out -q -e 0 -x 16 -y 64
    carp-range-reader -i /tmp/carp-out -b batch.csv --querylog qlog.csv
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.exec.factory import add_executor_args, executor_from_args
from repro.query.reader import RangeReader, read_batch_csv


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="carp-range-reader",
        description="Query client for CARP / sorted partitioned output.",
    )
    p.add_argument("-i", "--input", required=True, type=Path,
                   help="partitioned output directory")
    mode = p.add_mutually_exclusive_group(required=True)
    mode.add_argument("-a", "--analyze", action="store_true",
                      help="analysis mode: store statistics + selectivity")
    mode.add_argument("-q", "--query", action="store_true",
                      help="query mode: one range query (-e/-x/-y)")
    mode.add_argument("-b", "--batch", type=Path,
                      help="batch mode: CSV of epoch,query_begin,query_end")
    p.add_argument("-e", "--epoch", type=int, default=None,
                   help="epoch to query/analyze")
    p.add_argument("-x", "--query-begin", type=float, default=None)
    p.add_argument("-y", "--query-end", type=float, default=None)
    p.add_argument("--querylog", type=Path, default=Path("querylog.csv"),
                   help="batch-mode per-query log (default: querylog.csv)")
    add_executor_args(p)
    return p


def _analyze(reader: RangeReader, epoch: int | None) -> int:
    analysis = reader.analyze(epoch=epoch)
    print(f"epochs: {list(analysis.epochs)}")
    print(f"records: {analysis.total_records}  bytes: {analysis.total_bytes}"
          f"  SSTs: {analysis.ssts}")
    print("point selectivity at keyspace probes:")
    for key, sel in zip(analysis.probe_keys, analysis.probe_selectivity):
        print(f"  key {key:12.6g}: {sel:.2%}")
    print(f"median selectivity: {analysis.median_selectivity:.2%}")
    return 0


def _query(reader: RangeReader, epoch: int | None, lo: float | None,
           hi: float | None) -> int:
    if epoch is None or lo is None or hi is None:
        print("error: query mode needs -e, -x and -y", file=sys.stderr)
        return 2
    res = reader.query(epoch, lo, hi)
    c = res.cost
    print(f"matched {len(res)} records in [{lo}, {hi}] (epoch {epoch})")
    print(f"SSTs read: {c.ssts_read}/{c.ssts_considered}  "
          f"bytes: {c.bytes_read}  requests: {c.read_requests}")
    print(f"modeled latency: {c.latency * 1e3:.3f} ms "
          f"(read {c.read_time * 1e3:.3f} + merge {c.merge_time * 1e3:.3f})")
    return 0


def _batch(reader: RangeReader, batch_path: Path, log_path: Path) -> int:
    queries = read_batch_csv(batch_path)
    result = reader.run_batch(queries, log_path=log_path)
    print(f"ran {len(queries)} queries: matched {result.total_matched} "
          f"records, read {result.total_bytes_read} bytes, "
          f"total modeled latency {result.total_latency:.3f} s")
    print(f"per-query log written to {log_path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    executor, exec_owned = executor_from_args(args)
    try:
        with RangeReader(args.input, executor=executor) as reader:
            if args.analyze:
                return _analyze(reader, args.epoch)
            if args.query:
                return _query(reader, args.epoch, args.query_begin,
                              args.query_end)
            return _batch(reader, args.batch, args.querylog)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if exec_owned:
            executor.close()


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
