"""``carp-explain`` — plan + cost report for a range query.

Opens a directory of KoiDB logs (CARP or compacted output), builds the
EXPLAIN report for one range query, and — unless ``--no-verify`` —
also *executes* the query and reconciles the report's cost
field-for-field against the measured :class:`QueryCost`.  A zero exit
status therefore certifies that the report is exact, not an estimate.

    carp-explain out/db --epoch 0 --lo 0.5 --hi 2.0
    carp-explain out/db --epoch 1 --keys-only --json

With ``--lo``/``--hi`` omitted the query covers the epoch's central
half (25th-75th percentile of the key range), a selective-but-nonempty
default for eyeballing a store.  The executor resolves like everywhere
else (``CARP_EXECUTOR``/``CARP_WORKERS``, default serial).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.query.engine import PartitionedStore
from repro.sim.iomodel import IOModel


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="carp-explain",
        description=(
            "Explain a range query over KoiDB logs: per-log plan, "
            "cost breakdown, and exact reconciliation against the "
            "executed query's measured cost."
        ),
    )
    p.add_argument("store", type=Path,
                   help="directory of KoiDB logs (CARP or compacted output)")
    p.add_argument("--epoch", type=int, default=None,
                   help="epoch to query (default: first stored epoch)")
    p.add_argument("--lo", type=float, default=None,
                   help="range lower bound (default: 25th pct of key range)")
    p.add_argument("--hi", type=float, default=None,
                   help="range upper bound (default: 75th pct of key range)")
    p.add_argument("--keys-only", action="store_true",
                   help="explain a key-block-only query")
    p.add_argument("--recover", action="store_true",
                   help="tolerate crash-torn log tails")
    p.add_argument("--json", action="store_true",
                   help="emit the report as JSON instead of text")
    p.add_argument("--no-verify", action="store_true",
                   help="skip executing the query for reconciliation")
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if not args.store.is_dir():
        print(f"error: {args.store} is not a directory", file=sys.stderr)
        return 2
    try:
        store = PartitionedStore(args.store, io=IOModel(),
                                 recover=args.recover)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    with store:
        epochs = store.epochs()
        epoch = args.epoch if args.epoch is not None else epochs[0]
        if epoch not in epochs:
            print(f"error: epoch {epoch} not in store (has {epochs})",
                  file=sys.stderr)
            return 2
        kmin, kmax = store.key_range(epoch)
        lo = args.lo if args.lo is not None else kmin + 0.25 * (kmax - kmin)
        hi = args.hi if args.hi is not None else kmin + 0.75 * (kmax - kmin)
        if hi < lo:
            print(f"error: empty range [{lo}, {hi}]", file=sys.stderr)
            return 2
        report = store.explain(epoch, lo, hi, keys_only=args.keys_only)
        measured = None
        if not args.no_verify:
            measured = store.query(epoch, lo, hi,
                                   keys_only=args.keys_only).cost
    errors = report.reconcile(measured)
    if args.json:
        doc = report.to_dict()
        doc["verified"] = measured is not None and not errors
        print(json.dumps(doc, indent=2))
    else:
        print(report.render_text())
        if measured is not None and not errors:
            print("reconciliation: explain cost == measured QueryCost "
                  "(exact)")
    if errors:
        for e in errors:
            print(f"error: {e}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
