"""``carp-range-runner`` — replay a trace through CARP (artifact A3).

The paper's ``range-runner`` loads a VPIC trace and replays it to
simulate application I/O while the preloaded ``carp`` library indexes
it in-situ.  This CLI does the same against an ``eparticle``-format
trace directory (see :mod:`repro.traces.io`), writing KoiDB logs that
the other tools can compact and query.

Example::

    carp-range-runner -i /tmp/trace -o /tmp/carp-out -n 16 \
        --pivots 512 --renegs 6
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.carp import CarpRun
from repro.core.config import CarpOptions
from repro.core.records import RecordBatch
from repro.exec.factory import add_executor_args, executor_from_args
from repro.traces import io as trace_io


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="carp-range-runner",
        description="Replay an eparticle trace through CARP's in-situ "
                    "range partitioner.",
    )
    p.add_argument("-i", "--input", required=True, type=Path,
                   help="trace directory (T.<ts>/eparticle.<rank> layout)")
    p.add_argument("-o", "--output", required=True, type=Path,
                   help="output directory for KoiDB logs")
    p.add_argument("-n", "--ranks", type=int, default=16,
                   help="number of CARP ranks (default: 16)")
    p.add_argument("--pivots", type=int, default=512,
                   help="pivot count per rank (default: 512)")
    p.add_argument("--renegs", type=int, default=6,
                   help="renegotiations per epoch (default: 6)")
    p.add_argument("--oob", type=int, default=512,
                   help="OOB buffer capacity (default: 512)")
    p.add_argument("--memtable", type=int, default=4096,
                   help="memtable capacity in records (default: 4096)")
    p.add_argument("--subpartitions", type=int, default=1,
                   help="KoiDB subpartitioning factor (default: 1)")
    p.add_argument("--no-stray-separation", action="store_true",
                   help="disable KoiDB repartitioning (stray SSTs)")
    p.add_argument("--value-size", type=int, default=8,
                   help="payload bytes per record (default: 8)")
    p.add_argument("--timesteps", type=int, nargs="*", default=None,
                   help="subset of trace timesteps to replay (default: all)")
    add_executor_args(p)
    return p


def reshard(streams: list[RecordBatch], nranks: int) -> list[RecordBatch]:
    """Re-shard trace ranks onto ``nranks`` CARP ranks round-robin."""
    buckets: list[list[RecordBatch]] = [[] for _ in range(nranks)]
    for i, s in enumerate(streams):
        buckets[i % nranks].append(s)
    return [
        RecordBatch.concat(b) if b else RecordBatch.empty(streams[0].value_size)
        for b in buckets
    ]


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        timesteps = trace_io.list_timesteps(args.input)
    except FileNotFoundError:
        timesteps = []
    if not timesteps:
        print(f"error: no timesteps under {args.input}", file=sys.stderr)
        return 2
    if args.timesteps:
        missing = set(args.timesteps) - set(timesteps)
        if missing:
            print(f"error: timesteps not in trace: {sorted(missing)}",
                  file=sys.stderr)
            return 2
        timesteps = sorted(args.timesteps)

    options = CarpOptions(
        pivot_count=args.pivots,
        renegotiations_per_epoch=args.renegs,
        oob_capacity=args.oob,
        memtable_records=args.memtable,
        subpartitions=args.subpartitions,
        separate_strays=not args.no_stray_separation,
        value_size=args.value_size,
    )
    executor, exec_owned = executor_from_args(args)
    try:
        with CarpRun(args.ranks, args.output, options, executor=executor) as run:
            for epoch, ts in enumerate(timesteps):
                streams = trace_io.read_timestep(
                    args.input, ts, value_size=args.value_size,
                    seq_offset=epoch * (1 << 24),
                )
                streams = reshard(streams, args.ranks)
                stats = run.ingest_epoch(epoch, streams)
                print(
                    f"epoch {epoch} (T.{ts}): {stats.records} records, "
                    f"{stats.renegotiations} renegotiations, "
                    f"normalized load std-dev {stats.load_stddev:.4f}, "
                    f"strays {stats.stray_fraction:.2%}"
                )
            manifest = run.write_run_manifest()
    finally:
        if exec_owned:
            executor.close()
    print(f"partitioned output written to {args.output}")
    print(f"run manifest written to {manifest}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
