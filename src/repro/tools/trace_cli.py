"""``carp-trace`` — record an instrumented CARP run and emit its trace.

Drives a synthetic VPIC (or AMR) workload through a telemetry-enabled
:class:`~repro.api.Session`, then writes the observability artifacts
into the output directory:

* ``trace.json`` — Chrome ``trace_event`` JSON; load it in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``.  One track per
  subsystem (route/shuffle/renegotiate/flush/query/epoch), timestamps
  in virtual ticks.  Spans carry the request id of the ingest/query
  that caused them.
* ``metrics.json`` — the metrics snapshot (counters/gauges/histograms
  with bucket bounds and p50/p95/p99).
* ``telemetry.jsonl`` — the streaming samples (see
  docs/OBSERVABILITY.md for the schema; ``carp-health`` gates on it).
* ``metrics.om`` — OpenMetrics-style text exposition of the final
  snapshot.
* ``carp_run.json`` — the run manifest (config + per-epoch stats).

Before exiting, the tool cross-checks the metrics totals against the
run's :class:`~repro.core.carp.EpochStats` / ``KoiDBStats`` counters
and validates the trace document, so a zero exit status certifies a
self-consistent recording.  This module is the sanctioned home for
``time.perf_counter`` (wall-clock is banned from the instrumented
packages by carp-lint O501/D101): the report footer shows real
elapsed time, which never feeds back into the recording.

    carp-trace -o /tmp/carp-obs --ranks 16 --epochs 3 --records 2000

Two read-only modes work on archived artifacts, tolerating legacy
``metrics.json`` files that predate histogram snapshots:

    carp-trace --report /tmp/carp-obs            # re-render the report
    carp-trace --report /tmp/carp-obs --request query-000002
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.api import Session
from repro.core.config import CarpOptions
from repro.core.records import RecordBatch
from repro.obs import Obs, validate_trace_events
from repro.obs.report import (
    normalize_snapshot,
    render_report,
    request_tree_table,
    top_spans_table,
)
from repro.traces.amr import AmrTraceSpec
from repro.traces.amr import generate_timestep as amr_timestep
from repro.traces.vpic import VpicTraceSpec
from repro.traces.vpic import generate_timestep as vpic_timestep


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="carp-trace",
        description=(
            "Run an instrumented synthetic CARP ingestion and write a "
            "Perfetto-loadable trace plus metrics/telemetry snapshots; "
            "or re-render reports from archived artifacts."
        ),
    )
    p.add_argument("-o", "--output", type=Path, default=None,
                   help="output directory (trace.json, metrics.json, "
                        "telemetry.jsonl, DB logs)")
    p.add_argument("--report", type=Path, default=None, metavar="DIR",
                   help="render the report from an existing artifact "
                        "directory instead of running a workload")
    p.add_argument("--request", type=str, default=None, metavar="ID",
                   help="print the named request's cross-worker span tree "
                        "(e.g. ingest-000001, query-000003)")
    p.add_argument("--ranks", type=int, default=16)
    p.add_argument("--epochs", type=int, default=3)
    p.add_argument("--records", type=int, default=2000,
                   help="records per rank per epoch (default: 2000)")
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--workload", choices=("vpic", "amr"), default="vpic")
    p.add_argument("--queries", type=int, default=4,
                   help="instrumented range queries per epoch (default: 4)")
    p.add_argument("--top", type=int, default=0, metavar="N",
                   help="also print the N longest spans per track type, "
                        "with their args for attribution (default: off)")
    return p


def _epoch_streams(args: argparse.Namespace, epoch: int) -> list[RecordBatch]:
    """Streams for one epoch, spread across the workload's timesteps.

    Epochs sample the trace schedule early/mid/late so the recording
    exhibits the paper's distribution drift (and therefore
    renegotiations and strays), not just a stationary ingest.
    """
    if args.workload == "vpic":
        spec = VpicTraceSpec(nranks=args.ranks,
                             particles_per_rank=args.records,
                             seed=args.seed, value_size=8)
        gen = vpic_timestep
        nsteps = len(spec.timesteps)
    else:
        aspec = AmrTraceSpec(nranks=args.ranks, cells_per_rank=args.records,
                             seed=args.seed)
        nsteps = len(aspec.timesteps)
        idx = (epoch * (nsteps - 1)) // max(args.epochs - 1, 1)
        return amr_timestep(aspec, min(idx, nsteps - 1))
    idx = (epoch * (nsteps - 1)) // max(args.epochs - 1, 1)
    return gen(spec, min(idx, nsteps - 1))


def _run_queries(session: Session, epochs: int, nqueries: int) -> int:
    """Execute ``nqueries`` selective range queries per stored epoch."""
    ran = 0
    store = session.store()
    for epoch in store.epochs()[:epochs]:
        lo, hi = store.key_range(epoch)
        width = (hi - lo) / max(nqueries * 4, 1)
        for q in range(nqueries):
            qlo = lo + (hi - lo) * q / max(nqueries, 1)
            session.query(epoch, qlo, qlo + width)
            ran += 1
    return ran


def _reconcile(obs: Obs, run_doc: dict[str, object],
               koidb_totals: dict[str, int]) -> list[str]:
    """Compare metrics counters against the run's own statistics.

    The instrumentation increments its counters at the same code sites
    that maintain ``EpochStats``/``KoiDBStats``, so any disagreement
    means an instrumentation bug — worth failing the tool over.
    """
    errors: list[str] = []

    def expect(name: str, want: float) -> None:
        got = obs.metrics.counter_value(name)
        if got != want:
            errors.append(f"metric {name}={got} != run stats {want}")

    epochs = run_doc.get("epochs")
    assert isinstance(epochs, list)
    expect("carp.records_ingested", sum(e["records"] for e in epochs))
    expect("reneg.rounds", sum(e["renegotiations"] for e in epochs))
    expect("koidb.records_in", koidb_totals["records_in"])
    expect("koidb.stray_records", koidb_totals["stray_records"])
    expect("koidb.ssts_written", koidb_totals["ssts_written"])
    expect("koidb.stray_ssts_written", koidb_totals["stray_ssts_written"])
    expect("koidb.bytes_written", koidb_totals["bytes_written"])
    expect("koidb.memtable_flushes", koidb_totals["memtable_flushes"])
    return errors


def _report_mode(args: argparse.Namespace) -> int:
    """Re-render reports from an archived artifact directory."""
    directory: Path = args.report
    trace_path = directory / "trace.json"
    metrics_path = directory / "metrics.json"
    run_path = directory / "db" / "carp_run.json"
    if not run_path.exists():
        run_path = directory / "carp_run.json"
    try:
        trace_doc = json.loads(trace_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {trace_path}: {exc}", file=sys.stderr)
        return 2
    events = trace_doc.get("traceEvents")
    if not isinstance(events, list):
        print(f"error: {trace_path} has no traceEvents list", file=sys.stderr)
        return 2
    if args.request is not None:
        print(f"Spans for request {args.request}")
        print(request_tree_table(events, args.request))
        return 0
    # a trace-only directory still renders a partial report: the
    # metrics sections degrade to empty (with a note), they don't
    # abort — archived artifacts get pruned and the span timeline is
    # useful on its own
    raw_snapshot: dict[str, object] = {}
    missing_metrics: str | None = None
    if metrics_path.is_file():
        try:
            raw_snapshot = json.loads(metrics_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raw_snapshot = {}
            missing_metrics = f"cannot read {metrics_path}: {exc}"
    else:
        missing_metrics = f"{metrics_path} missing"
    # older recordings may predate histogram (or even gauge) sections;
    # degrade to what the snapshot has and say so, never crash
    snapshot, annotations = normalize_snapshot(raw_snapshot)
    if missing_metrics is not None:
        print(f"warning: {missing_metrics}; metrics sections are empty",
              file=sys.stderr)
        # the per-section "legacy snapshot" notes are noise when the
        # whole file is absent — one partial-report note says it all
        annotations = [f"{missing_metrics}; report is partial"]
    telemetry_path = directory / "telemetry.jsonl"
    if not telemetry_path.is_file():
        telemetry_path = directory / "db" / "telemetry.jsonl"
    if not telemetry_path.is_file():
        annotations.append(
            "telemetry.jsonl missing; carp-health has nothing to gate on"
        )
    run_doc: dict[str, object] = {}
    if run_path.exists():
        try:
            run_doc = json.loads(run_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            annotations.append(f"run manifest unreadable ({exc})")
    else:
        annotations.append("run manifest not found; header shows no epochs")
    print(render_report(run_doc, snapshot, events))
    if args.top > 0:
        print()
        print(f"Top {args.top} spans per track type")
        print(top_spans_table(events, args.top))
    for note in annotations:
        print(f"note: {note}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.report is not None:
        return _report_mode(args)
    if args.output is None:
        print("error: -o/--output is required unless --report is given",
              file=sys.stderr)
        return 2
    if args.ranks < 1 or args.epochs < 1 or args.records < 1:
        print("error: --ranks/--epochs/--records must be positive",
              file=sys.stderr)
        return 2
    t0 = time.perf_counter()
    out = args.output
    db_dir = out / "db"
    out.mkdir(parents=True, exist_ok=True)

    obs = Obs.recording()
    opts = CarpOptions(value_size=8)
    nqueries = 0
    with Session(args.ranks, db_dir, opts, obs=obs, telemetry=True) as session:
        for epoch in range(args.epochs):
            session.ingest_epoch(epoch, _epoch_streams(args, epoch))
        manifest_path = session.run.write_run_manifest()
        koidb_totals = {
            "records_in": sum(db.stats.records_in for db in session.run.koidbs),
            "stray_records": sum(
                db.stats.stray_records for db in session.run.koidbs
            ),
            "ssts_written": sum(
                db.stats.ssts_written for db in session.run.koidbs
            ),
            "stray_ssts_written": sum(
                db.stats.stray_ssts_written for db in session.run.koidbs
            ),
            "bytes_written": sum(
                db.stats.bytes_written for db in session.run.koidbs
            ),
            "memtable_flushes": sum(
                db.stats.memtable_flushes for db in session.run.koidbs
            ),
        }
        if args.queries > 0:
            nqueries = _run_queries(session, args.epochs, args.queries)

    run_doc = json.loads(manifest_path.read_text())
    errors = _reconcile(obs, run_doc, koidb_totals)

    trace_doc = obs.tracer.to_doc()
    errors.extend(validate_trace_events(trace_doc))

    trace_path = out / "trace.json"
    obs.tracer.write(trace_path)
    metrics_path = out / "metrics.json"
    obs.metrics.write_json(metrics_path)

    events = trace_doc["traceEvents"]
    assert isinstance(events, list)
    print(render_report(run_doc, obs.metrics.snapshot(), events))
    if args.top > 0:
        print()
        print(f"Top {args.top} spans per track type")
        print(top_spans_table(events, args.top))
    if args.request is not None:
        print()
        print(f"Spans for request {args.request}")
        print(request_tree_table(events, args.request))
    print()
    print(f"trace:     {trace_path} ({len(events)} events, "
          f"{nqueries} queries traced)")
    print(f"metrics:   {metrics_path}")
    print(f"telemetry: {db_dir / 'telemetry.jsonl'}")
    print(f"run:       {manifest_path}")
    print(f"elapsed:   {time.perf_counter() - t0:.2f}s wall")

    if errors:
        for e in errors:
            print(f"error: {e}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
