"""``carp-tracegen`` — materialize synthetic traces on disk.

Generates the synthetic VPIC or AMR traces (see :mod:`repro.traces`)
in the paper artifact's ``eparticle`` layout, so the CLI workflow runs
end-to-end without Python code:

    carp-tracegen -o /tmp/trace --workload vpic --ranks 32 \
        --records 4000 --timesteps 200 2000 3800
    carp-range-runner -i /tmp/trace -o /tmp/carp-out
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.traces import io as trace_io
from repro.traces.amr import AmrTraceSpec
from repro.traces.amr import generate_timestep as amr_timestep
from repro.traces.vpic import VpicTraceSpec
from repro.traces.vpic import generate_timestep as vpic_timestep


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="carp-tracegen",
        description="Generate a synthetic VPIC/AMR trace in eparticle format.",
    )
    p.add_argument("-o", "--output", required=True, type=Path,
                   help="trace output directory")
    p.add_argument("--workload", choices=("vpic", "amr"), default="vpic")
    p.add_argument("--ranks", type=int, default=32)
    p.add_argument("--records", type=int, default=4000,
                   help="records per rank per timestep (default: 4000)")
    p.add_argument("--timesteps", type=int, nargs="+", default=None,
                   help="timestep ids (default: the workload's schedule)")
    p.add_argument("--seed", type=int, default=42)
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.workload == "vpic":
            kwargs = dict(nranks=args.ranks, particles_per_rank=args.records,
                          seed=args.seed)
            if args.timesteps:
                kwargs["timesteps"] = tuple(args.timesteps)
            spec = VpicTraceSpec(**kwargs)
            gen = vpic_timestep
        else:
            kwargs = dict(nranks=args.ranks, cells_per_rank=args.records,
                          seed=args.seed)
            if args.timesteps:
                kwargs["timesteps"] = tuple(args.timesteps)
            spec = AmrTraceSpec(**kwargs)
            gen = amr_timestep
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    for i, ts in enumerate(spec.timesteps):
        trace_io.write_timestep(args.output, ts, gen(spec, i))
        print(f"wrote T.{ts}: {spec.nranks} ranks x {args.records} records")
    print(f"trace written to {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
