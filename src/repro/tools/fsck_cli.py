"""``carp-fsck`` — verify the integrity of a partitioned output directory.

Walks every KoiDB log, checking CRCs, manifest chains, and the
metadata invariants the query engine relies on.

Examples::

    carp-fsck -i /tmp/carp-out
    carp-fsck -i /tmp/carp-out --fast        # manifests only
    carp-fsck -i /tmp/carp-out --recover     # tolerate torn tails
    carp-fsck -i /tmp/carp-out --repair      # quarantine + truncate damage
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.storage.fsck import fsck


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="carp-fsck",
        description="Verify CRCs and invariants of KoiDB output.",
    )
    p.add_argument("-i", "--input", required=True, type=Path,
                   help="partitioned output directory")
    p.add_argument("--fast", action="store_true",
                   help="check manifests/footers only (skip SST bodies)")
    p.add_argument("--recover", action="store_true",
                   help="open crash-torn logs at their last valid footer")
    p.add_argument("--repair", action="store_true",
                   help="quarantine torn tails, truncate logs to their "
                        "commit point, and re-verify (prints a diff)")
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    report = fsck(args.input, deep=not args.fast,
                  recover=args.recover, repair=args.repair)
    print(report.summary())
    if args.repair:
        for name, kind in sorted(report.classifications.items()):
            print(f"  {name}: {kind}")
        for line in report.repairs:
            print(f"  repair: {line}")
        for err in report.errors_before:
            print(f"  before: {err}")
    for err in report.errors:
        print(f"  error: {err}", file=sys.stderr)
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
