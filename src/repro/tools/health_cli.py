"""``carp-health`` — gate a run on a declarative SLO policy.

Evaluates a :class:`~repro.obs.health.HealthPolicy` (JSON, or TOML on
python >= 3.11) against the ``telemetry.jsonl`` stream a telemetry-
enabled session produced, prints the breach report, and exits nonzero
when any rule breached — the CI-facing end of the telemetry plane::

    carp-health out/telemetry.jsonl --policy configs/health_default.json
    carp-health out/telemetry.jsonl --policy slo.toml --json health.json

Exit status: 0 all rules ok (or skipped), 1 at least one breach, 2 a
usage/input problem (unreadable stream, malformed policy).  Skipped
rules — selectors the run never emitted, e.g. quarantine counters on a
fault-free run — are reported but never fail the gate; pass
``--strict-skips`` to treat them as breaches when a policy must fully
resolve.

See docs/OBSERVABILITY.md for the policy format and the
``telemetry.jsonl`` schema.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs.health import (
    HealthPolicy,
    evaluate,
    parse_policy,
    parse_telemetry_lines,
)


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="carp-health",
        description=(
            "Evaluate an SLO health policy over a telemetry.jsonl stream "
            "and exit nonzero on any breach."
        ),
    )
    p.add_argument("telemetry", type=Path,
                   help="path to the telemetry.jsonl stream to gate on")
    p.add_argument("--policy", required=True, type=Path,
                   help="health policy file (.json, or .toml on py3.11+)")
    p.add_argument("--json", type=Path, default=None, metavar="PATH",
                   help="also write the full report as JSON")
    p.add_argument("--strict-skips", action="store_true",
                   help="fail when any rule's selector never resolved")
    return p


def _load_policy(path: Path) -> HealthPolicy:
    fmt = "toml" if path.suffix.lower() == ".toml" else "json"
    return parse_policy(path.read_text(encoding="utf-8"), fmt=fmt)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        policy = _load_policy(args.policy)
    except (OSError, ValueError, RuntimeError) as exc:
        print(f"error: cannot load policy {args.policy}: {exc}",
              file=sys.stderr)
        return 2
    try:
        samples = parse_telemetry_lines(
            args.telemetry.read_text(encoding="utf-8")
        )
    except (OSError, ValueError) as exc:
        print(f"error: cannot read telemetry {args.telemetry}: {exc}",
              file=sys.stderr)
        return 2

    report = evaluate(policy, samples)
    print(report.render())
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"report: {args.json}")

    if not report.ok:
        return 1
    if args.strict_skips and any(
        r.status == "skipped" for r in report.results
    ):
        print("error: unresolved selectors with --strict-skips",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
