"""``carp-compactor`` — build the fully sorted layout (artifact A4).

Merges CARP's partially sorted per-rank logs into a fully sorted,
clustered index, one output directory per epoch — the layout used as
the sorted baseline in the paper's Fig. 7a.

Example::

    carp-compactor -i /tmp/carp-out -o /tmp/carp-out.sorted -e 0
    carp-compactor -i /tmp/carp-out -o /tmp/carp-out.sorted --all
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.exec.factory import add_executor_args, executor_from_args
from repro.storage.compactor import compact_all_epochs, compact_epoch


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="carp-compactor",
        description="Merge CARP output into a fully sorted clustered index.",
    )
    p.add_argument("-i", "--input", required=True, type=Path,
                   help="CARP output directory (KoiDB logs)")
    p.add_argument("-o", "--output", required=True, type=Path,
                   help="sorted output root (one subdirectory per epoch)")
    group = p.add_mutually_exclusive_group(required=True)
    group.add_argument("-e", "--epoch", type=int, help="epoch to compact")
    group.add_argument("--all", action="store_true",
                       help="compact every epoch present in the input")
    p.add_argument("--sst-records", type=int, default=4096,
                   help="records per output SSTable (default: 4096)")
    add_executor_args(p)
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    executor, exec_owned = executor_from_args(args)
    try:
        if args.all:
            dirs = compact_all_epochs(args.input, args.output,
                                      sst_records=args.sst_records,
                                      executor=executor)
        else:
            dirs = [compact_epoch(args.input, args.output, args.epoch,
                                  sst_records=args.sst_records,
                                  executor=executor)]
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if exec_owned:
            executor.close()
    for d in dirs:
        print(f"sorted epoch written to {d}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
