"""Command-line tools mirroring the paper artifact's binaries.

* ``carp-range-runner`` — replay an eparticle trace through CARP (A3),
* ``carp-compactor``    — build the fully sorted layout (A4),
* ``carp-range-reader`` — analyze / query / batch-query output (A5),
* ``carp-tracegen``     — synthesize VPIC/AMR traces (stand-in for A1/A2),
* ``carp-fsck``         — verify CRCs and invariants of KoiDB output.
"""

from repro.tools import compactor_cli, fsck_cli, range_reader_cli, range_runner, tracegen

__all__ = ["compactor_cli", "fsck_cli", "range_reader_cli", "range_runner", "tracegen"]
