"""``carp-chaos`` — seeded crash-recovery trials for KoiDB logs.

Runs ``N`` chaos seeds (see :mod:`repro.faults.chaos`): each seed
generates a fault plan, runs a CARP workload against it on every
executor backend, injects the planned crash, recovers with
``fsck --repair``, appends a redo epoch, and checks that no committed
data was lost and that every backend produced bit-identical logs and
query results.

Exit status is nonzero if any seed fails; failing seeds write a JSON
repro bundle (the plan plus per-backend digests) under ``--bundle-dir``
so the exact trial can be replayed with ``--seed-start <seed> --seeds 1``.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

from repro.faults.chaos import SeedResult, run_seeds


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="carp-chaos",
        description="seeded ingest → kill → recover → query trials",
    )
    parser.add_argument(
        "--seeds", type=int, default=10,
        help="number of consecutive seeds to run (default: 10)",
    )
    parser.add_argument(
        "--seed-start", type=int, default=0,
        help="first seed (default: 0)",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="scratch directory (default: a temporary directory)",
    )
    parser.add_argument(
        "--bundle-dir", type=Path, default=None,
        help="where to write JSON repro bundles for failing seeds",
    )
    parser.add_argument(
        "--keep", action="store_true",
        help="keep scratch directories for passing seeds",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="only print the final summary",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.seeds <= 0:
        print("carp-chaos: --seeds must be positive", file=sys.stderr)
        return 2
    seeds = list(range(args.seed_start, args.seed_start + args.seeds))

    def report(result: SeedResult) -> None:
        if args.quiet and result.ok:
            return
        status = "ok" if result.ok else "FAIL"
        crashed = "crashed" if result.crashed else "clean"
        faults = len(result.plan.specs)
        print(
            f"seed {result.seed:>4}  {status:<4} "
            f"({faults} fault(s), {crashed})"
        )
        if not result.ok:
            for failure in result.all_failures():
                print(f"    {failure}")

    def run(base: Path) -> list[SeedResult]:
        return run_seeds(
            seeds, base,
            bundle_dir=args.bundle_dir,
            keep=args.keep,
            progress=report,
        )

    if args.out is not None:
        results = run(args.out)
    else:
        with tempfile.TemporaryDirectory(prefix="carp-chaos-") as tmp:
            results = run(Path(tmp))

    failed = [r for r in results if not r.ok]
    crashed = sum(1 for r in results if r.crashed)
    print(
        f"carp-chaos: {len(results)} seed(s), {crashed} with injected "
        f"crashes, {len(failed)} failed"
    )
    if failed:
        print(
            "failing seeds: " + ", ".join(str(r.seed) for r in failed),
            file=sys.stderr,
        )
        if args.bundle_dir is not None:
            print(f"repro bundles under {args.bundle_dir}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
