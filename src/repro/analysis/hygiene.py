"""Generic hygiene rules (H-family).

Repo-agnostic checks that ride along with the invariant rules: the
classic Python footguns that tend to surface as heisenbugs in long
simulation runs.

H001  mutable default argument
H002  bare ``except:``
H003  ``== None`` / ``!= None`` comparison
H004  assert on a non-empty tuple literal (always true)
H005  ``eval`` / ``exec``
H006  unused import (skipped for ``__init__.py`` re-export modules)
"""

from __future__ import annotations

import ast

from repro.analysis.core import FileContext, Rule, Violation

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                     ast.SetComp)
_MUTABLE_CALLS = frozenset({"list", "dict", "set", "defaultdict", "deque"})


class MutableDefaultRule(Rule):
    id = "H001"
    name = "mutable-default"
    description = "mutable default argument"

    def check(self, ctx: FileContext) -> list[Violation]:
        out: list[Violation] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                bad = isinstance(default, _MUTABLE_LITERALS) or (
                    isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in _MUTABLE_CALLS
                )
                if bad:
                    out.append(
                        self.violation(
                            ctx, default,
                            f"mutable default argument in {node.name}() is "
                            "shared across calls — default to None instead",
                        )
                    )
        return out


class BareExceptRule(Rule):
    id = "H002"
    name = "bare-except"
    description = "bare except clause"

    def check(self, ctx: FileContext) -> list[Violation]:
        out: list[Violation] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                out.append(
                    self.violation(
                        ctx, node,
                        "bare except catches SystemExit/KeyboardInterrupt — "
                        "name the exceptions this handler expects",
                    )
                )
        return out


class NoneComparisonRule(Rule):
    id = "H003"
    name = "none-comparison"
    description = "equality comparison against None"

    def check(self, ctx: FileContext) -> list[Violation]:
        out: list[Violation] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, right in zip(node.ops, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if any(
                    isinstance(o, ast.Constant) and o.value is None
                    for o in (node.left, right)
                ):
                    out.append(
                        self.violation(
                            ctx, node,
                            "comparison to None with ==/!= — use 'is None' / "
                            "'is not None'",
                        )
                    )
                    break
        return out


class AssertTupleRule(Rule):
    id = "H004"
    name = "assert-tuple"
    description = "assert on a non-empty tuple literal"

    def check(self, ctx: FileContext) -> list[Violation]:
        out: list[Violation] = []
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Assert)
                and isinstance(node.test, ast.Tuple)
                and node.test.elts
            ):
                out.append(
                    self.violation(
                        ctx, node,
                        "assert on a tuple literal is always true — "
                        "parenthesized assert message?",
                    )
                )
        return out


class EvalExecRule(Rule):
    id = "H005"
    name = "eval-exec"
    description = "eval()/exec() call"

    def check(self, ctx: FileContext) -> list[Violation]:
        out: list[Violation] = []
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("eval", "exec")
            ):
                out.append(
                    self.violation(
                        ctx, node,
                        f"{node.func.id}() on dynamic input — restructure to "
                        "avoid runtime code execution",
                    )
                )
        return out


class UnusedImportRule(Rule):
    id = "H006"
    name = "unused-import"
    description = "imported name never used"

    def check(self, ctx: FileContext) -> list[Violation]:
        if ctx.path.name == "__init__.py":
            return []  # re-export modules import for namespace effect
        imported: dict[str, ast.AST] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = (alias.asname or alias.name).split(".")[0]
                    imported[local] = node
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    if alias.name == "__future__" or node.module == "__future__":
                        continue
                    imported[alias.asname or alias.name] = node
        if not imported:
            return []
        used: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Name):
                used.add(node.id)
            elif isinstance(node, ast.Attribute):
                pass  # roots show up as Name nodes anyway
        # names referenced inside string annotations or __all__
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                for name in imported:
                    if name in node.value:
                        used.add(name)
        out: list[Violation] = []
        for name, node in sorted(imported.items()):
            if name not in used:
                out.append(
                    self.violation(
                        ctx, node, f"imported name {name!r} is never used"
                    )
                )
        return out


HYGIENE_RULES: tuple[Rule, ...] = (
    MutableDefaultRule(),
    BareExceptRule(),
    NoneComparisonRule(),
    AssertTupleRule(),
    EvalExecRule(),
    UnusedImportRule(),
)
