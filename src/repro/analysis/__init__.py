"""``carp-lint``: repo-aware static analysis for the CARP reproduction.

Enforces, at review time, the invariants the reproduction rests on:

* **determinism** (D-rules) — no wall clock, no unseeded or global
  RNG anywhere in the simulation core,
* **on-disk format safety** (F-rules) — ``struct`` formats stay
  pack/unpack-consistent and every block writer has a CRC-checking
  reader,
* **cost accounting** (C-rules) — no simulated I/O escapes the
  iomodel/netmodel charging,
* **typing surface** (T-rules) + generic hygiene (H-rules).

See ``docs/INVARIANTS.md`` for the rule catalogue and suppression
syntax, and :mod:`repro.analysis.cli` for the ``carp-lint`` command.
"""

from repro.analysis.core import FileContext, Rule, Violation
from repro.analysis.runner import (
    ALL_RULES,
    LintResult,
    format_human,
    lint_paths,
    rules_by_id,
    select_rules,
)

__all__ = [
    "FileContext", "Rule", "Violation", "ALL_RULES", "LintResult",
    "format_human", "lint_paths", "rules_by_id", "select_rules",
]
